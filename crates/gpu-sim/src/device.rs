//! The simulated device and its kernel-launch machinery.

use crate::buffer::DeviceBuffer;
use crate::counters::{Counters, LocalCounters};
use crate::machine::MachineSpec;
use crate::slice::UnsafeSlice;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static NEXT_DEVICE_ID: AtomicUsize = AtomicUsize::new(0);

/// A simulated GPU.
///
/// Kernels are closures executed once per *block* over a worker pool sized
/// like the machine's SM count (capped at host parallelism). The paper maps
/// one octant (or one octant×dof pair) to one block; the solver kernels in
/// `gw-core` do the same.
pub struct Device {
    spec: MachineSpec,
    counters: Arc<Counters>,
    id: usize,
    probe: gw_obs::Probe,
}

/// Launch geometry: a 1D or 2D grid of blocks, CUDA-style.
#[derive(Clone, Copy, Debug)]
pub struct LaunchConfig {
    /// Grid x dimension (e.g. number of octants `|E|`).
    pub grid_x: usize,
    /// Grid y dimension (e.g. degrees of freedom per point).
    pub grid_y: usize,
    /// Kernel name, for diagnostics.
    pub name: &'static str,
}

impl LaunchConfig {
    /// 1D grid.
    pub fn grid1(n: usize, name: &'static str) -> Self {
        Self { grid_x: n, grid_y: 1, name }
    }

    /// 2D grid `(|E|, dof)` — the paper's octant-to-patch geometry.
    pub fn grid2(x: usize, y: usize, name: &'static str) -> Self {
        Self { grid_x: x, grid_y: y, name }
    }

    pub fn total_blocks(&self) -> usize {
        self.grid_x * self.grid_y
    }
}

/// Per-block execution context handed to kernels.
pub struct BlockCtx {
    /// Block x index (`blockIdx.x`).
    pub bx: usize,
    /// Block y index (`blockIdx.y`).
    pub by: usize,
    local: LocalCounters,
}

impl BlockCtx {
    /// Allocate block shared memory (zero-initialized). Metered as one
    /// store + one load per byte over the block's lifetime, matching the
    /// staging pattern (global→shared, compute, shared→global) of the
    /// paper's kernels.
    pub fn shared_alloc(&mut self, n: usize) -> Vec<f64> {
        self.local.shared_bytes += (n * 8) as u64;
        vec![0.0; n]
    }

    /// Meter a global-memory read of `n` f64 values.
    #[inline]
    pub fn global_load(&mut self, n: usize) {
        self.local.global_load_bytes += (n * 8) as u64;
    }

    /// Meter a global-memory write of `n` f64 values.
    #[inline]
    pub fn global_store(&mut self, n: usize) {
        self.local.global_store_bytes += (n * 8) as u64;
    }

    /// Meter shared-memory traffic of `n` f64 values.
    #[inline]
    pub fn shared_traffic(&mut self, n: usize) {
        self.local.shared_bytes += (n * 8) as u64;
    }

    /// Meter `n` double-precision flops.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.local.flops += n;
    }

    /// Meter register-spill traffic (bytes), as `ptxas` would report.
    #[inline]
    pub fn spill(&mut self, load_bytes: u64, store_bytes: u64) {
        self.local.spill_load_bytes += load_bytes;
        self.local.spill_store_bytes += store_bytes;
    }
}

impl Device {
    pub fn new(spec: MachineSpec) -> Self {
        Self {
            spec,
            counters: Arc::new(Counters::new()),
            id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
            probe: gw_obs::Probe::disabled(),
        }
    }

    /// Attach an observability probe: every subsequent launch records a
    /// `kernel`-category span named after its [`LaunchConfig`] (timing
    /// only — the numeric path is untouched, see gw-obs).
    pub fn set_probe(&mut self, probe: gw_obs::Probe) {
        self.probe = probe;
    }

    /// The attached probe (disabled by default).
    pub fn probe(&self) -> &gw_obs::Probe {
        &self.probe
    }

    pub fn a100() -> Self {
        Self::new(MachineSpec::a100())
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Allocate a zeroed device buffer.
    pub fn alloc<T: Default + Clone>(&self, n: usize) -> DeviceBuffer<T> {
        DeviceBuffer { data: vec![T::default(); n], device_id: self.id }
    }

    /// Copy host data to a new device buffer (metered).
    pub fn htod<T: Copy>(&self, src: &[T]) -> DeviceBuffer<T> {
        self.counters.h2d_bytes.fetch_add(std::mem::size_of_val(src) as u64, Ordering::Relaxed);
        DeviceBuffer { data: src.to_vec(), device_id: self.id }
    }

    /// Copy host data into an existing device buffer (metered).
    pub fn htod_into<T: Copy>(&self, src: &[T], dst: &mut DeviceBuffer<T>) {
        assert_eq!(dst.device_id, self.id, "buffer belongs to another device");
        assert_eq!(src.len(), dst.data.len(), "size mismatch");
        self.counters.h2d_bytes.fetch_add(std::mem::size_of_val(src) as u64, Ordering::Relaxed);
        dst.data.copy_from_slice(src);
    }

    /// Copy a device buffer back to the host (metered).
    pub fn dtoh<T: Copy>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        assert_eq!(buf.device_id, self.id, "buffer belongs to another device");
        self.counters
            .d2h_bytes
            .fetch_add((buf.data.len() * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
        buf.data.clone()
    }

    /// Fault-injection backdoor: mutate a buffer's contents in place
    /// without any transfer metering — simulating in-memory corruption
    /// (see [`crate::fault`]). Not for normal data movement; host code
    /// that wants data must still go through [`Device::dtoh`].
    pub fn corrupt<T>(&self, buf: &mut DeviceBuffer<T>, f: impl FnOnce(&mut [T])) {
        assert_eq!(buf.device_id, self.id, "buffer belongs to another device");
        f(buf.as_mut_slice());
    }

    /// Device-to-device copy within this device (unmetered on h2d/d2h;
    /// kernels meter their own traffic).
    pub fn d2d<T: Copy>(&self, src: &DeviceBuffer<T>, dst: &mut DeviceBuffer<T>) {
        assert_eq!(src.device_id, self.id);
        assert_eq!(dst.device_id, self.id);
        assert_eq!(src.data.len(), dst.data.len());
        dst.data.copy_from_slice(&src.data);
    }

    /// Read-only kernel view of a buffer.
    ///
    /// Host code must not use this to bypass [`Device::dtoh`]; it exists
    /// for passing inputs into [`Device::launch`] closures.
    pub fn kernel_view<'a, T>(&self, buf: &'a DeviceBuffer<T>) -> &'a [T] {
        assert_eq!(buf.device_id, self.id, "buffer belongs to another device");
        buf.as_slice()
    }

    /// Writable kernel view of a buffer, shareable across blocks.
    pub fn kernel_view_mut<'a, T>(&self, buf: &'a mut DeviceBuffer<T>) -> UnsafeSlice<'a, T> {
        assert_eq!(buf.device_id, self.id, "buffer belongs to another device");
        UnsafeSlice::new(buf.as_mut_slice())
    }

    /// Launch a kernel: `body` runs once per block, in parallel over the
    /// device's workers. Returns when all blocks complete (CUDA stream
    /// semantics with an implicit sync; use [`crate::Stream`] for overlap).
    pub fn launch<F>(&self, cfg: LaunchConfig, body: F)
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        self.counters.launches.fetch_add(1, Ordering::Relaxed);
        self.probe.add(gw_obs::Counter::KernelLaunches, 1);
        let _span = self.probe.start_labeled(gw_obs::Phase::Kernel, cfg.name);
        let total = cfg.total_blocks();
        if total == 0 {
            return;
        }
        let workers = self.spec.host_workers().min(total);
        let next = AtomicUsize::new(0);
        let counters = &self.counters;
        let body = &body;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= total {
                        break;
                    }
                    let mut ctx = BlockCtx {
                        bx: b % cfg.grid_x,
                        by: b / cfg.grid_x,
                        local: LocalCounters::default(),
                    };
                    body(&mut ctx);
                    ctx.local.flush(counters);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htod_dtoh_roundtrip_and_metering() {
        let dev = Device::a100();
        let host: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let buf = dev.htod(&host);
        let back = dev.dtoh(&buf);
        assert_eq!(host, back);
        let s = dev.counters().snapshot();
        assert_eq!(s.h2d_bytes, 8000);
        assert_eq!(s.d2h_bytes, 8000);
    }

    #[test]
    fn launch_runs_every_block_once() {
        let dev = Device::a100();
        let mut out = dev.alloc::<u64>(1000);
        let view = dev.kernel_view_mut(&mut out);
        dev.launch(LaunchConfig::grid1(1000, "mark"), |ctx| {
            // Safety: each block writes only its own index.
            unsafe { view.write(ctx.bx, ctx.bx as u64 + 1) };
        });
        let host = dev.dtoh(&out);
        for (i, v) in host.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
        assert_eq!(dev.counters().snapshot().launches, 1);
    }

    #[test]
    fn grid2_block_indices() {
        let dev = Device::a100();
        let (gx, gy) = (7, 5);
        let mut out = dev.alloc::<u64>(gx * gy);
        let view = dev.kernel_view_mut(&mut out);
        dev.launch(LaunchConfig::grid2(gx, gy, "idx"), |ctx| unsafe {
            view.write(ctx.by * gx + ctx.bx, 1);
        });
        let host = dev.dtoh(&out);
        assert!(host.iter().all(|&v| v == 1));
    }

    #[test]
    fn kernel_metering_aggregates_across_blocks() {
        let dev = Device::a100();
        dev.launch(LaunchConfig::grid1(64, "meter"), |ctx| {
            ctx.global_load(10);
            ctx.global_store(5);
            ctx.flops(100);
            let sm = ctx.shared_alloc(16);
            assert_eq!(sm.len(), 16);
        });
        let s = dev.counters().snapshot();
        assert_eq!(s.global_load_bytes, 64 * 80);
        assert_eq!(s.global_store_bytes, 64 * 40);
        assert_eq!(s.flops, 6400);
        assert_eq!(s.shared_bytes, 64 * 128);
    }

    #[test]
    #[should_panic(expected = "another device")]
    fn cross_device_access_rejected() {
        let d1 = Device::a100();
        let d2 = Device::a100();
        let buf = d1.htod(&[1.0f64]);
        let _ = d2.dtoh(&buf);
    }

    #[test]
    fn empty_launch_is_noop() {
        let dev = Device::a100();
        dev.launch(LaunchConfig::grid1(0, "empty"), |_| panic!("must not run"));
    }

    #[test]
    fn d2d_copies() {
        let dev = Device::a100();
        let a = dev.htod(&[1.0f64, 2.0, 3.0]);
        let mut b = dev.alloc::<f64>(3);
        dev.d2d(&a, &mut b);
        assert_eq!(dev.dtoh(&b), vec![1.0, 2.0, 3.0]);
    }
}
