//! Machine parameter sets for the performance models (section III-D).

/// Hardware description used for execution (worker count) and for the
/// slow/fast-memory performance model.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    pub name: &'static str,
    /// Time per double-precision flop, seconds (`τ_f`).
    pub tau_f: f64,
    /// Main-memory access time per byte, seconds (`τ_m`).
    pub tau_m: f64,
    /// L2 / last-level-cache capacity, bytes (`C_L`).
    pub c_l: f64,
    /// Register-file (fast memory) capacity across the chip, bytes (`C_R`).
    pub c_r: f64,
    /// Relative cost of a fast-memory access (`ℓ < 1`).
    pub ell: f64,
    /// Parallel execution units — SMs for a GPU, cores for a CPU.
    pub workers: usize,
}

impl MachineSpec {
    /// NVIDIA A100-40GB, the paper's GPU. `τ_f = 1.0e-13 s` (≈9.7 TF/s
    /// FP64 with tensor cores counted as in the paper), `τ_m = 6.4e-13
    /// s/byte` (≈1.56 TB/s HBM2), `C_L = 40 MB` L2, `C_R = 27 MB`
    /// aggregate register file, `ℓ ≈ 1/4`, 108 SMs.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100",
            tau_f: 1.0e-13,
            tau_m: 6.4e-13,
            c_l: 40.0e6,
            c_r: 27.0e6,
            ell: 0.25,
            workers: 108,
        }
    }

    /// One AMD EPYC 7763 socket (64 cores): ≈2.4 TF/s FP64 peak,
    /// ≈200 GB/s per socket, 256 MB L3.
    pub fn epyc_7763_socket() -> Self {
        Self {
            name: "AMD EPYC 7763 (1 socket)",
            tau_f: 4.2e-13,
            tau_m: 5.0e-12,
            c_l: 256.0e6,
            c_r: 16.0e3 * 64.0, // architectural registers, negligible
            ell: 0.1,
            workers: 64,
        }
    }

    /// The paper's CPU comparison node: two EPYC 7763 sockets (128 cores).
    pub fn epyc_7763_node() -> Self {
        let s = Self::epyc_7763_socket();
        Self {
            name: "AMD EPYC 7763 (2 sockets)",
            tau_f: s.tau_f / 2.0,
            tau_m: s.tau_m / 2.0,
            c_l: 2.0 * s.c_l,
            c_r: 2.0 * s.c_r,
            ell: s.ell,
            workers: 128,
        }
    }

    /// The machine-imbalance parameter `ξ = 1/C_L + ℓ/C_R` (section III-D).
    pub fn xi(&self) -> f64 {
        1.0 / self.c_l + self.ell / self.c_r
    }

    /// Ratio `τ_f/τ_m`; a kernel with arithmetic intensity below
    /// `1/(τ_f/τ_m)` is bandwidth limited.
    pub fn flop_byte_ratio(&self) -> f64 {
        self.tau_f / self.tau_m
    }

    /// AI threshold below which flops are negligible (`Q < τ_m/τ_f`).
    pub fn bandwidth_bound_ai(&self) -> f64 {
        self.tau_m / self.tau_f
    }

    /// Peak double-precision throughput implied by `τ_f`, in GFlop/s.
    pub fn peak_gflops(&self) -> f64 {
        1.0e-9 / self.tau_f
    }

    /// Peak memory bandwidth implied by `τ_m`, in GB/s.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        1.0e-9 / self.tau_m
    }

    /// Actual worker threads to use on the current host (never more than
    /// available parallelism; at least 1).
    pub fn host_workers(&self) -> usize {
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.workers.min(avail).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_parameters_match_paper() {
        let m = MachineSpec::a100();
        // Paper: ξ ≈ 4e-8, τ_f/τ_m ≈ 0.16, bandwidth-bound below Q = 6.25.
        assert!((m.xi() - 4.0e-8).abs() / 4.0e-8 < 0.25, "xi = {}", m.xi());
        assert!((m.flop_byte_ratio() - 0.15625).abs() < 1e-6);
        assert!((m.bandwidth_bound_ai() - 6.4).abs() < 0.2);
        assert_eq!(m.workers, 108);
    }

    #[test]
    fn a100_peaks() {
        let m = MachineSpec::a100();
        assert!((m.peak_gflops() - 10_000.0).abs() < 100.0);
        assert!((m.peak_bandwidth_gbs() - 1562.5).abs() < 1.0);
    }

    #[test]
    fn node_is_twice_socket() {
        let s = MachineSpec::epyc_7763_socket();
        let n = MachineSpec::epyc_7763_node();
        assert_eq!(n.workers, 2 * s.workers);
        assert!((n.peak_gflops() - 2.0 * s.peak_gflops()).abs() < 1.0);
    }

    #[test]
    fn gpu_vs_cpu_speed_ratio_in_paper_range() {
        // A100 vs 2-socket EPYC: bandwidth ratio ~4x, flops ratio ~4x; the
        // paper's observed end-to-end gap is 2.5x. Sanity-check the specs
        // put the hardware ratio in the 2-8x band.
        let g = MachineSpec::a100();
        let c = MachineSpec::epyc_7763_node();
        let bw = g.peak_bandwidth_gbs() / c.peak_bandwidth_gbs();
        assert!(bw > 2.0 && bw < 8.0, "bw ratio {bw}");
    }

    #[test]
    fn host_workers_bounded() {
        let m = MachineSpec::a100();
        let w = m.host_workers();
        assert!((1..=108).contains(&w));
    }
}
