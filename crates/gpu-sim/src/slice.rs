//! Shared mutable slice for block-parallel kernels.
//!
//! CUDA kernels hand every thread block a raw pointer into global memory and
//! trust the kernel author to write disjoint regions. [`UnsafeSlice`] is the
//! same contract: blocks executing in parallel may write through it, and the
//! *kernel* (not this type) guarantees disjointness. All the solver kernels
//! uphold it structurally — e.g. in octant-to-patch each (octant, target
//! patch, padding region) triple is written by exactly one block.

use std::cell::UnsafeCell;

/// A `&mut [T]` that can be shared across the threads of one kernel launch.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

// Safety: access discipline is delegated to kernel authors (see module
// docs); the type itself only hands out raw element accesses.
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice for the duration of a launch.
    pub fn new(slice: &'a mut [T]) -> Self {
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        // Safety: UnsafeCell<T> has the same layout as T.
        Self { slice: unsafe { &*ptr } }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Write one element.
    ///
    /// # Safety
    /// No other thread may concurrently access index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.slice[i].get() = value;
    }

    /// Read one element.
    ///
    /// # Safety
    /// No other thread may concurrently *write* index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.slice[i].get()
    }

    /// Get a mutable sub-slice.
    ///
    /// # Safety
    /// The range must not be concurrently accessed by any other thread.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(start + len <= self.slice.len(), "slice_mut out of bounds");
        std::slice::from_raw_parts_mut(self.slice[start].get(), len)
    }

    /// Get a shared sub-slice.
    ///
    /// # Safety
    /// The range must not be concurrently written by any other thread.
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        assert!(start + len <= self.slice.len(), "slice out of bounds");
        std::slice::from_raw_parts(self.slice[start].get(), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 1024];
        {
            let s = UnsafeSlice::new(&mut data);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 256)..((t + 1) * 256) {
                            // Safety: each thread owns a disjoint quarter.
                            unsafe { s.write(i, i as u64) };
                        }
                    });
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn subslice_views() {
        let mut data = vec![1.0f64; 16];
        let s = UnsafeSlice::new(&mut data);
        unsafe {
            let sub = s.slice_mut(4, 4);
            for v in sub.iter_mut() {
                *v = 2.0;
            }
            assert_eq!(s.slice(0, 4), &[1.0; 4]);
            assert_eq!(s.slice(4, 4), &[2.0; 4]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_subslice_panics() {
        let mut data = vec![0f64; 8];
        let s = UnsafeSlice::new(&mut data);
        unsafe {
            let _ = s.slice(4, 8);
        }
    }
}
