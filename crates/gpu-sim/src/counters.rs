//! Device hardware counters.
//!
//! Kernels meter their own memory traffic and flops through
//! [`crate::device::BlockCtx`]; the counters aggregate across blocks with
//! relaxed atomics (per-block local accumulation, one flush per block, so
//! contention is negligible).
//!
//! Determinism: all counters are `u64` and integer addition is exact and
//! commutative, so the aggregate is independent of the order blocks (or
//! host threads) flush in — snapshots are bit-identical at any thread
//! count. This is the counter half of the pipeline's determinism policy;
//! floating-point reductions take the other half (fixed-order trees, see
//! `gw_par::tree_reduce`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated device counters. All byte counts are *logical* traffic as the
/// RAM model sees it (each load/store counted once at its natural width).
#[derive(Default, Debug)]
pub struct Counters {
    /// Bytes read from device global memory by kernels.
    pub global_load_bytes: AtomicU64,
    /// Bytes written to device global memory by kernels.
    pub global_store_bytes: AtomicU64,
    /// Bytes moved through block shared memory (loads + stores).
    pub shared_bytes: AtomicU64,
    /// Double-precision floating point operations.
    pub flops: AtomicU64,
    /// Host-to-device transfer bytes.
    pub h2d_bytes: AtomicU64,
    /// Device-to-host transfer bytes.
    pub d2h_bytes: AtomicU64,
    /// Kernel launches.
    pub launches: AtomicU64,
    /// Spill traffic (bytes) reported by register-pressure-aware kernels
    /// (the tape interpreter reports its scheduler's spill loads/stores
    /// here, mirroring `ptxas` spill statistics).
    pub spill_load_bytes: AtomicU64,
    pub spill_store_bytes: AtomicU64,
}

/// A plain-value snapshot of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub global_load_bytes: u64,
    pub global_store_bytes: u64,
    pub shared_bytes: u64,
    pub flops: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub launches: u64,
    pub spill_load_bytes: u64,
    pub spill_store_bytes: u64,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            global_load_bytes: self.global_load_bytes.load(Ordering::Relaxed),
            global_store_bytes: self.global_store_bytes.load(Ordering::Relaxed),
            shared_bytes: self.shared_bytes.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            spill_load_bytes: self.spill_load_bytes.load(Ordering::Relaxed),
            spill_store_bytes: self.spill_store_bytes.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.global_load_bytes.store(0, Ordering::Relaxed);
        self.global_store_bytes.store(0, Ordering::Relaxed);
        self.shared_bytes.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.h2d_bytes.store(0, Ordering::Relaxed);
        self.d2h_bytes.store(0, Ordering::Relaxed);
        self.launches.store(0, Ordering::Relaxed);
        self.spill_load_bytes.store(0, Ordering::Relaxed);
        self.spill_store_bytes.store(0, Ordering::Relaxed);
    }
}

impl CounterSnapshot {
    /// Total global-memory traffic in bytes (the `m` of the RAM model).
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    /// Arithmetic intensity `Q = f/m` over global traffic.
    ///
    /// Returns 0 for pure data-movement kernels (the paper notes
    /// patch-to-octant has "zero arithmetic intensity").
    pub fn arithmetic_intensity(&self) -> f64 {
        let m = self.global_bytes();
        if m == 0 {
            return 0.0;
        }
        self.flops as f64 / m as f64
    }

    /// Difference of two snapshots (`self - earlier`), for metering a
    /// region of execution.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            global_load_bytes: self.global_load_bytes - earlier.global_load_bytes,
            global_store_bytes: self.global_store_bytes - earlier.global_store_bytes,
            shared_bytes: self.shared_bytes - earlier.shared_bytes,
            flops: self.flops - earlier.flops,
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
            launches: self.launches - earlier.launches,
            spill_load_bytes: self.spill_load_bytes - earlier.spill_load_bytes,
            spill_store_bytes: self.spill_store_bytes - earlier.spill_store_bytes,
        }
    }
}

/// Per-block local accumulator flushed once into the shared [`Counters`].
#[derive(Default)]
pub struct LocalCounters {
    pub global_load_bytes: u64,
    pub global_store_bytes: u64,
    pub shared_bytes: u64,
    pub flops: u64,
    pub spill_load_bytes: u64,
    pub spill_store_bytes: u64,
}

impl LocalCounters {
    pub fn flush(&self, into: &Counters) {
        if self.global_load_bytes > 0 {
            into.global_load_bytes.fetch_add(self.global_load_bytes, Ordering::Relaxed);
        }
        if self.global_store_bytes > 0 {
            into.global_store_bytes.fetch_add(self.global_store_bytes, Ordering::Relaxed);
        }
        if self.shared_bytes > 0 {
            into.shared_bytes.fetch_add(self.shared_bytes, Ordering::Relaxed);
        }
        if self.flops > 0 {
            into.flops.fetch_add(self.flops, Ordering::Relaxed);
        }
        if self.spill_load_bytes > 0 {
            into.spill_load_bytes.fetch_add(self.spill_load_bytes, Ordering::Relaxed);
        }
        if self.spill_store_bytes > 0 {
            into.spill_store_bytes.fetch_add(self.spill_store_bytes, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = Counters::new();
        c.flops.fetch_add(100, Ordering::Relaxed);
        c.global_load_bytes.fetch_add(800, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.flops, 100);
        assert_eq!(s.global_bytes(), 800);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn arithmetic_intensity_basic() {
        let s = CounterSnapshot {
            flops: 500,
            global_load_bytes: 80,
            global_store_bytes: 20,
            ..Default::default()
        };
        assert_eq!(s.arithmetic_intensity(), 5.0);
    }

    #[test]
    fn zero_traffic_gives_zero_ai() {
        let s = CounterSnapshot { flops: 10, ..Default::default() };
        assert_eq!(s.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn delta_since() {
        let a = CounterSnapshot { flops: 100, global_load_bytes: 10, ..Default::default() };
        let b = CounterSnapshot { flops: 350, global_load_bytes: 25, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.flops, 250);
        assert_eq!(d.global_load_bytes, 15);
    }

    #[test]
    fn local_counters_flush() {
        let c = Counters::new();
        let l = LocalCounters { flops: 42, shared_bytes: 8, ..Default::default() };
        l.flush(&c);
        l.flush(&c);
        let s = c.snapshot();
        assert_eq!(s.flops, 84);
        assert_eq!(s.shared_bytes, 16);
    }
}
