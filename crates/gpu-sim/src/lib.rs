//! A software-simulated GPU device.
//!
//! The paper's contribution is evaluated on NVIDIA A100s. Rust has no
//! mature CUDA ecosystem, so — per the substitution policy in `DESIGN.md` —
//! this crate provides a *simulated device* that preserves everything the
//! paper's analysis depends on while executing on host threads:
//!
//! * **Explicit residency**: data must be moved into a [`DeviceBuffer`]
//!   before a kernel can touch it; host↔device transfers are explicit,
//!   metered operations ([`Device::htod`], [`Device::dtoh`]), so the
//!   "re-grid is the only synchronous host↔device movement" property of
//!   Algorithm 1 is checkable.
//! * **Block-parallel kernel launches** ([`Device::launch`]): a kernel runs
//!   one *block* per octant/patch (exactly the paper's mapping), blocks are
//!   scheduled over a worker pool sized like the machine's SM count, and
//!   each block gets a shared-memory arena ([`BlockCtx::shared_alloc`]).
//! * **Hardware counters** ([`Counters`]): kernels meter global/shared
//!   traffic and flops; the `gw-perfmodel` crate converts these into the
//!   paper's roofline / RAM-model estimates (arithmetic intensity,
//!   GFlop/s), which is how Tables II–III and Fig. 14 are regenerated.
//! * **Machine descriptions** ([`MachineSpec`]): the A100 and EPYC-7763
//!   parameter sets from section III-D.
//! * **Streams** ([`Stream`]): ordered asynchronous queues used for the
//!   wave-extraction overlap in the evolution loop.

//! * **Fault injection** ([`fault`]): seeded, reproducible corruption of
//!   device buffers (NaN poisoning, single-bit upsets) and forced stream
//!   failures — the harness the `gw-core` supervisor's recovery paths
//!   are tested against. Disabled by default: nothing in the transfer or
//!   launch paths consults it.

pub mod buffer;
pub mod counters;
pub mod device;
pub mod fault;
pub mod machine;
pub mod slice;
pub mod stream;

pub use buffer::DeviceBuffer;
pub use counters::{CounterSnapshot, Counters};
pub use device::{BlockCtx, Device, LaunchConfig};
pub use fault::FaultInjector;
pub use machine::MachineSpec;
pub use slice::UnsafeSlice;
pub use stream::{Stream, StreamError};
