//! Asynchronous streams.
//!
//! The paper's evolution loop extracts gravitational waves on an
//! asynchronous stream every ~16 timesteps while the main stream keeps
//! integrating (section IV, Algorithm 1 discussion). [`Stream`] provides
//! the minimal ordered-queue semantics needed for that overlap: work items
//! enqueue in order, run on a dedicated thread, and `synchronize` blocks
//! until the queue drains.

use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The stream has entered a failed state (an injected fault, standing in
/// for `cudaErrorIllegalAddress` and friends); queued and future work no
/// longer executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamError;

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream is in a failed state; subsequent work was not executed")
    }
}

impl std::error::Error for StreamError {}

/// An ordered asynchronous work queue (one per stream, CUDA-style).
pub struct Stream {
    tx: Option<Sender<Job>>,
    pending: Arc<AtomicUsize>,
    failed: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl Default for Stream {
    fn default() -> Self {
        Self::new()
    }
}

impl Stream {
    pub fn new() -> Self {
        let (tx, rx) = unbounded::<Job>();
        let pending = Arc::new(AtomicUsize::new(0));
        let failed = Arc::new(AtomicBool::new(false));
        let p = Arc::clone(&pending);
        let f = Arc::clone(&failed);
        let worker = std::thread::spawn(move || {
            for job in rx {
                // CUDA semantics: once a stream errors, queued work is
                // discarded (but still accounted, so synchronize returns).
                if !f.load(Ordering::Acquire) {
                    job();
                }
                p.fetch_sub(1, Ordering::Release);
            }
        });
        Self { tx: Some(tx), pending, failed, worker: Some(worker) }
    }

    /// Enqueue work; returns immediately. Items on one stream execute in
    /// submission order.
    pub fn enqueue<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.pending.fetch_add(1, Ordering::Acquire);
        self.tx.as_ref().expect("stream is live").send(Box::new(f)).expect("stream worker alive");
    }

    /// Number of not-yet-finished items.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Block until every enqueued item has finished.
    pub fn synchronize(&self) {
        while self.pending() > 0 {
            std::thread::yield_now();
        }
    }

    /// Like [`Stream::synchronize`], but reports whether the stream is
    /// in a failed state — the checked variant a supervisor uses.
    pub fn try_synchronize(&self) -> Result<(), StreamError> {
        self.synchronize();
        if self.failed.load(Ordering::Acquire) {
            Err(StreamError)
        } else {
            Ok(())
        }
    }

    /// Whether an injected failure has fired.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Fault-injection hook: enqueue a poison item that moves the stream
    /// to the failed state. Work queued *after* this point is discarded,
    /// exactly like a real stream after an asynchronous error.
    pub fn inject_failure(&self) {
        let f = Arc::clone(&self.failed);
        self.enqueue(move || f.store(true, Ordering::Release));
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        self.synchronize();
        drop(self.tx.take());
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn preserves_submission_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let s = Stream::new();
        for i in 0..100 {
            let o = Arc::clone(&order);
            s.enqueue(move || o.lock().unwrap().push(i));
        }
        s.synchronize();
        let got = order.lock().unwrap().clone();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn synchronize_waits_for_work() {
        let s = Stream::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let d = Arc::clone(&done);
            s.enqueue(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        s.synchronize();
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn drop_drains_queue() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let s = Stream::new();
            for _ in 0..16 {
                let d = Arc::clone(&done);
                s.enqueue(move || {
                    d.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn injected_failure_discards_later_work() {
        let s = Stream::new();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        s.enqueue(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        s.inject_failure();
        let d = Arc::clone(&done);
        s.enqueue(move || {
            d.fetch_add(100, Ordering::SeqCst);
        });
        assert_eq!(s.try_synchronize(), Err(StreamError));
        assert!(s.is_failed());
        // Pre-failure work ran; post-failure work was discarded.
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn healthy_stream_try_synchronize_ok() {
        let s = Stream::new();
        s.enqueue(|| {});
        assert_eq!(s.try_synchronize(), Ok(()));
        assert!(!s.is_failed());
    }

    #[test]
    fn overlap_with_host_work() {
        // Enqueue slow work, do host work meanwhile, then sync.
        let s = Stream::new();
        let flag = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&flag);
        s.enqueue(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f.store(1, Ordering::SeqCst);
        });
        // Host-side work proceeds without blocking.
        let host_result: u64 = (0..1000u64).sum();
        assert_eq!(host_result, 499500);
        s.synchronize();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }
}
