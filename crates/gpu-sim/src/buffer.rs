//! Device-resident buffers.
//!
//! A [`DeviceBuffer`] is storage that kernels may touch. Creating one or
//! moving data between host and device goes through [`crate::Device`]
//! methods so every transfer is metered — the discipline that lets the
//! evolution loop prove it only synchronizes with the host at re-grid time
//! (Algorithm 1 of the paper).

/// A typed device allocation.
///
/// The backing store is host memory (this is a simulator), but the API
/// enforces the CUDA-style residency discipline: host code cannot read the
/// contents except through [`crate::Device::dtoh`].
pub struct DeviceBuffer<T> {
    pub(crate) data: Vec<T>,
    pub(crate) device_id: usize,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// The device this buffer lives on.
    pub fn device_id(&self) -> usize {
        self.device_id
    }

    /// Kernel-side view (used by `Device::launch` closures).
    pub(crate) fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_bookkeeping() {
        let b = DeviceBuffer { data: vec![0.0f64; 100], device_id: 3 };
        assert_eq!(b.len(), 100);
        assert_eq!(b.size_bytes(), 800);
        assert_eq!(b.device_id(), 3);
        assert!(!b.is_empty());
    }
}
