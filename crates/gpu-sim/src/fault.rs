//! Deterministic device-fault injection.
//!
//! Long GPU campaigns see soft errors: a bit flips in HBM, a kernel
//! writes garbage, a stream dies. The supervisor layer in `gw-core`
//! exists to detect and recover from exactly these, and this module is
//! the harness that manufactures them on demand: seeded, reproducible
//! corruption of [`DeviceBuffer`] contents and forced [`Stream`]
//! failures.
//!
//! Everything here is an *explicit* test hook — nothing consults a fault
//! plan in kernel launches or transfers, so the fault-free hot path pays
//! zero overhead (the injector is not even constructed).

use crate::buffer::DeviceBuffer;
use crate::device::Device;

/// Seeded generator of buffer corruptions. The sequence of corrupted
/// (index, bit) choices is a pure function of the seed — rerunning a
/// test reproduces the identical fault.
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero state; splitmix tolerates any seed but
        // mixing in a constant keeps seed=0 distinct from seed absent.
        Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// splitmix64 step.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Deterministically pick an index in `[0, n)`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        (self.next() % n as u64) as usize
    }

    /// Overwrite one deterministic element with NaN (simulates a kernel
    /// writing garbage / an uncorrectable memory error surfacing as a
    /// poisoned value). Returns the poisoned index.
    pub fn poison_nan(&mut self, dev: &Device, buf: &mut DeviceBuffer<f64>) -> usize {
        let idx = self.pick(buf.len());
        dev.corrupt(buf, |data| data[idx] = f64::NAN);
        idx
    }

    /// Flip one deterministic bit of one deterministic element
    /// (simulates a radiation-induced single-bit upset in device
    /// memory). Returns `(index, bit)`.
    pub fn flip_bit(&mut self, dev: &Device, buf: &mut DeviceBuffer<f64>) -> (usize, u32) {
        let idx = self.pick(buf.len());
        let bit = (self.next() % 64) as u32;
        dev.corrupt(buf, |data| {
            data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << bit));
        });
        (idx, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_is_deterministic() {
        let dev = Device::a100();
        let run = |seed: u64| {
            let mut buf = dev.htod(&vec![1.0f64; 257]);
            let mut inj = FaultInjector::new(seed);
            let a = inj.poison_nan(&dev, &mut buf);
            let b = inj.poison_nan(&dev, &mut buf);
            (a, b, dev.dtoh(&buf))
        };
        let (a1, b1, d1) = run(42);
        let (a2, b2, d2) = run(42);
        assert_eq!((a1, b1), (a2, b2));
        assert_eq!(
            d1.iter().map(|v| v.is_nan()).collect::<Vec<_>>(),
            d2.iter().map(|v| v.is_nan()).collect::<Vec<_>>()
        );
        assert!(d1[a1].is_nan());
    }

    #[test]
    fn different_seeds_corrupt_differently() {
        let pick = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            (0..16).map(|_| inj.pick(1_000_000)).collect::<Vec<_>>()
        };
        assert_ne!(pick(1), pick(2));
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let dev = Device::a100();
        let host = vec![3.5f64; 64];
        let mut buf = dev.htod(&host);
        let mut inj = FaultInjector::new(7);
        let (idx, bit) = inj.flip_bit(&dev, &mut buf);
        let back = dev.dtoh(&buf);
        for (i, (orig, got)) in host.iter().zip(back.iter()).enumerate() {
            if i == idx {
                assert_eq!(orig.to_bits() ^ got.to_bits(), 1u64 << bit);
            } else {
                assert_eq!(orig.to_bits(), got.to_bits());
            }
        }
    }
}
