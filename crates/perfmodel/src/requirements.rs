//! The Table I model: resolution and timestep requirements vs mass ratio.
//!
//! Assumptions exactly as the paper states them: total mass `M = 1`,
//! initial separation `d = 8`, ~120 grid points across each event horizon.
//! The horizon (isotropic) diameter of a puncture of bare mass `m` is
//! ≈ `2m`… wait — calibrating against the table's own numbers gives
//! `Δx_i = 2 m_i / 120 = m_i / 60` (q = 1: 0.5/60 = 8.33e-3 ✓; q = 4
//! small hole: 0.2/60 = 3.33e-3 ✓). Merger times for q ≤ 16 are taken
//! from full-GR simulations (we carry the paper's values); for larger q
//! the leading-order quadrupole decay `t = (5/256) d⁴/(m₁ m₂ M)` is used
//! (which reproduces the paper's PN-2.5 values to ~15%). Timesteps are
//! `time / Δx_min` — i.e. a unit Courant factor on the finest spacing,
//! which is how the table's step counts are generated.

/// One Table-I row.
#[derive(Clone, Copy, Debug)]
pub struct Requirement {
    pub q: f64,
    /// Finest spacing at the smaller hole.
    pub dx_small: f64,
    /// Finest spacing needed at the larger hole.
    pub dx_large: f64,
    /// Merger time (in M).
    pub merger_time: f64,
    /// Total timesteps to merger.
    pub timesteps: f64,
}

/// Grid points across a horizon (paper: ~120).
pub const POINTS_ACROSS_HORIZON: f64 = 120.0;
/// Initial separation (paper: d = 8).
pub const SEPARATION: f64 = 8.0;

/// Leading-order (quadrupole) inspiral time from separation `d` for
/// masses `m1`, `m2` (geometric units, total mass `m1 + m2`).
pub fn quadrupole_merger_time(d: f64, m1: f64, m2: f64) -> f64 {
    5.0 / 256.0 * d.powi(4) / (m1 * m2 * (m1 + m2))
}

/// Merger-time model: measured full-GR values for q ≤ 16 (as the paper
/// uses), quadrupole decay beyond.
pub fn merger_time(q: f64) -> f64 {
    // The paper's simulation-calibrated values.
    match q {
        q if (q - 1.0).abs() < 1e-9 => 650.0,
        q if (q - 4.0).abs() < 1e-9 => 700.0,
        q if (q - 16.0).abs() < 1e-9 => 1400.0,
        _ => {
            let m1 = q / (1.0 + q);
            let m2 = 1.0 / (1.0 + q);
            quadrupole_merger_time(SEPARATION, m1, m2)
        }
    }
}

/// Compute one requirement row.
pub fn resolution_requirements(q: f64) -> Requirement {
    let m1 = q / (1.0 + q); // larger
    let m2 = 1.0 / (1.0 + q); // smaller
    let dx_small = 2.0 * m2 / POINTS_ACROSS_HORIZON;
    let dx_large = 2.0 * m1 / POINTS_ACROSS_HORIZON;
    let t = merger_time(q);
    Requirement { q, dx_small, dx_large, merger_time: t, timesteps: t / dx_small }
}

/// The paper's Table I rows for comparison: (q, Δx_small, Δx_large, time,
/// steps).
pub const PAPER_TABLE_I: [(f64, f64, f64, f64, f64); 6] = [
    (1.0, 8.33e-3, 8.33e-3, 650.0, 7.8e4),
    (4.0, 3.33e-3, 1.33e-2, 700.0, 2.1e5),
    (16.0, 9.80e-4, 1.57e-2, 1400.0, 1.4e6),
    (64.0, 2.56e-4, 1.64e-2, 6000.0, 2.3e7),
    (256.0, 6.46e-5, 1.65e-2, 24000.0, 3.7e8),
    (512.0, 3.23e-5, 1.65e-2, 48000.0, 1.5e9),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_resolutions() {
        for &(q, dxs, dxl, _, _) in &PAPER_TABLE_I {
            let r = resolution_requirements(q);
            assert!(
                (r.dx_small - dxs).abs() / dxs < 0.02,
                "q={q}: dx_small {} vs paper {dxs}",
                r.dx_small
            );
            assert!(
                (r.dx_large - dxl).abs() / dxl < 0.02,
                "q={q}: dx_large {} vs paper {dxl}",
                r.dx_large
            );
        }
    }

    #[test]
    fn reproduces_paper_timesteps_within_tolerance() {
        for &(q, _, _, t, steps) in &PAPER_TABLE_I {
            let r = resolution_requirements(q);
            let t_tol = if q <= 16.0 { 0.01 } else { 0.25 }; // PN model ~15–25%
            assert!(
                (r.merger_time - t).abs() / t < t_tol,
                "q={q}: time {} vs paper {t}",
                r.merger_time
            );
            assert!(
                (r.timesteps - steps).abs() / steps < t_tol + 0.1,
                "q={q}: steps {} vs paper {steps}",
                r.timesteps
            );
        }
    }

    #[test]
    fn timesteps_grow_superlinearly_with_q() {
        let mut prev = 0.0;
        for q in [1.0, 4.0, 16.0, 64.0, 256.0, 512.0] {
            let r = resolution_requirements(q);
            assert!(r.timesteps > prev);
            prev = r.timesteps;
        }
        // q = 512 needs ~4 orders of magnitude more steps than q = 1 —
        // the paper's core motivation for GPU acceleration.
        let r1 = resolution_requirements(1.0);
        let r512 = resolution_requirements(512.0);
        assert!(r512.timesteps / r1.timesteps > 1e4);
    }

    #[test]
    fn quadrupole_time_scales_as_d4() {
        let t8 = quadrupole_merger_time(8.0, 0.5, 0.5);
        let t16 = quadrupole_merger_time(16.0, 0.5, 0.5);
        assert!((t16 / t8 - 16.0).abs() < 1e-12);
    }
}
