//! Roofline construction and empirical-point projection (Fig. 14).

use crate::ram::RamModel;
use gw_gpu_sim::{CounterSnapshot, MachineSpec};

/// One empirical kernel point on the roofline.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    pub name: String,
    /// Arithmetic intensity, flops/byte.
    pub ai: f64,
    /// Achieved (or model-projected) GFlop/s.
    pub gflops: f64,
}

/// A machine roofline.
#[derive(Clone, Debug)]
pub struct Roofline {
    pub machine: MachineSpec,
}

impl Roofline {
    pub fn new(machine: MachineSpec) -> Self {
        Self { machine }
    }

    /// Attainable GFlop/s at arithmetic intensity `ai`:
    /// `min(peak_flops, ai × bandwidth)`.
    pub fn attainable_gflops(&self, ai: f64) -> f64 {
        (ai * self.machine.peak_bandwidth_gbs()).min(self.machine.peak_gflops())
    }

    /// The ridge point (AI where the kernel stops being bandwidth bound).
    pub fn ridge_ai(&self) -> f64 {
        self.machine.peak_gflops() / self.machine.peak_bandwidth_gbs()
    }

    /// Sample the ceiling over a log-spaced AI range for plotting.
    pub fn ceiling_series(&self, ai_min: f64, ai_max: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(ai_min > 0.0 && ai_max > ai_min && n >= 2);
        let la = ai_min.ln();
        let lb = ai_max.ln();
        (0..n)
            .map(|i| {
                let ai = (la + (lb - la) * i as f64 / (n - 1) as f64).exp();
                (ai, self.attainable_gflops(ai))
            })
            .collect()
    }

    /// Project a metered kernel run (delta counters + wall seconds) to a
    /// roofline point. If `wall_seconds` is `None` the RAM-model time is
    /// used (the simulator's host wall-clock is not meaningful A100 time).
    pub fn point(
        &self,
        name: &str,
        s: &CounterSnapshot,
        wall_seconds: Option<f64>,
    ) -> RooflinePoint {
        let ai = s.arithmetic_intensity();
        let t = wall_seconds.unwrap_or_else(|| RamModel::new(self.machine.clone()).kernel_time(s));
        let gflops = if t > 0.0 { s.flops as f64 * 1e-9 / t } else { 0.0 };
        RooflinePoint { name: name.to_string(), ai, gflops }
    }

    /// Fraction of the ceiling a point achieves (≤ 1 under the model).
    pub fn efficiency(&self, p: &RooflinePoint) -> f64 {
        let ceil = self.attainable_gflops(p.ai);
        if ceil > 0.0 {
            p.gflops / ceil
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_matches_paper_criterion() {
        let r = Roofline::new(MachineSpec::a100());
        // τ_m/τ_f = 6.4 — the paper's Q < 6.25 threshold (they quote
        // 1/0.16).
        assert!((r.ridge_ai() - 6.4).abs() < 0.2);
    }

    #[test]
    fn ceiling_shape() {
        let r = Roofline::new(MachineSpec::a100());
        // Below the ridge: linear in AI. Above: flat at peak.
        let low = r.attainable_gflops(1.0);
        assert!((low - r.machine.peak_bandwidth_gbs()).abs() < 1.0);
        let high = r.attainable_gflops(100.0);
        assert!((high - r.machine.peak_gflops()).abs() < 1.0);
        let series = r.ceiling_series(0.1, 100.0, 32);
        assert_eq!(series.len(), 32);
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-9));
    }

    #[test]
    fn paper_kernel_points_land_under_ceiling() {
        // The paper reports ~900 GFlop/s for o2p at AI ≈ 2–4 and
        // ~700 GFlop/s for the RHS at AI ≈ 0.62. Check those are
        // consistent with (i.e. under) the A100 ceiling.
        let r = Roofline::new(MachineSpec::a100());
        assert!(900.0 <= r.attainable_gflops(2.52));
        // AI 0.62 ceiling ≈ 968 GF/s: the paper's 700 fits below it.
        let c = r.attainable_gflops(0.62);
        assert!(700.0 < c && c < 1100.0, "ceiling {c}");
    }

    #[test]
    fn model_projected_point_efficiency_at_most_one() {
        let r = Roofline::new(MachineSpec::a100());
        let s = CounterSnapshot {
            flops: 5_000_000,
            global_load_bytes: 2_000_000,
            global_store_bytes: 500_000,
            ..Default::default()
        };
        let p = r.point("test", &s, None);
        let e = r.efficiency(&p);
        assert!(e > 0.0 && e <= 1.0 + 1e-9, "efficiency {e}");
    }
}
