//! Strong/weak scaling projection (Figs. 17, 18, 20).
//!
//! The host in this reproduction has a single core, so multi-GPU and
//! multi-node scaling cannot be *timed*; it is *modelled*, which the paper
//! itself does for its cost analysis: per-rank compute time comes from
//! measured single-device kernel costs divided over ranks (with the SFC
//! partition's actual load balance), and communication time from the
//! ghost-exchange plan's bytes/messages under an interconnect model.

use gw_comm::GhostPlan;

/// Interconnect parameters.
#[derive(Clone, Copy, Debug)]
pub struct Network {
    /// Per-message latency, seconds.
    pub latency: f64,
    /// Inverse bandwidth, seconds per byte.
    pub inv_bandwidth: f64,
}

impl Network {
    /// NVLink-class intra-node GPU interconnect (Lonestar 6's A100s:
    /// ~200 GB/s effective per direction, ~5 µs per aggregated exchange).
    pub fn gpu_interconnect() -> Self {
        Self { latency: 5e-6, inv_bandwidth: 1.0 / 200e9 }
    }

    /// HDR InfiniBand-class fabric (Frontera: ~12 GB/s effective,
    /// ~2 µs MPI latency).
    pub fn cluster_fabric() -> Self {
        Self { latency: 2e-6, inv_bandwidth: 1.0 / 12e9 }
    }

    /// Time to ship one aggregated exchange of `(messages, bytes)`.
    pub fn exchange_time(&self, messages: usize, bytes: u64) -> f64 {
        self.latency * messages as f64 + bytes as f64 * self.inv_bandwidth
    }
}

/// One rank's projected step cost breakdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepCost {
    pub compute: f64,
    pub comm: f64,
}

impl StepCost {
    pub fn total(&self) -> f64 {
        self.compute + self.comm
    }
}

/// Project the per-step wall time on `p` ranks: the slowest rank's
/// compute (from per-rank work shares) plus its exchange time.
///
/// `work_per_rank[r]` is rank r's compute seconds per step (already
/// divided by per-device throughput); `plan` the ghost schedule for this
/// partition; `dof`/`block_points` size the exchanged blocks.
pub fn project_step(
    work_per_rank: &[f64],
    plan: &GhostPlan,
    net: &Network,
    dof: usize,
    block_points: usize,
    exchanges_per_step: usize,
) -> StepCost {
    let p = work_per_rank.len();
    assert_eq!(plan.parts(), p);
    let mut worst = StepCost::default();
    for (r, &compute) in work_per_rank.iter().enumerate() {
        let comm = net
            .exchange_time(plan.messages_aggregated(r), plan.send_bytes(r, dof, block_points))
            * exchanges_per_step as f64;
        let c = StepCost { compute, comm };
        if c.total() > worst.total() {
            worst = c;
        }
    }
    worst
}

/// Parallel efficiency of a strong-scaling series `t[k]` at rank counts
/// `p[k]` relative to the first entry.
pub fn strong_efficiency(p: &[usize], t: &[f64]) -> Vec<f64> {
    assert_eq!(p.len(), t.len());
    let base = t[0] * p[0] as f64;
    p.iter().zip(t.iter()).map(|(&pi, &ti)| base / (ti * pi as f64)).collect()
}

/// Weak-scaling efficiency: `t[0] / t[k]` for constant per-rank work.
pub fn weak_efficiency(t: &[f64]) -> Vec<f64> {
    t.iter().map(|&ti| t[0] / ti).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_comm::GhostSchedule;
    use gw_octree::partition::partition_uniform;

    fn chain_plan(n: usize, p: usize) -> GhostPlan {
        let part = partition_uniform(n, p);
        let mut deps = Vec::new();
        for i in 1..n as u32 {
            deps.push((i - 1, i));
            deps.push((i, i - 1));
        }
        GhostSchedule::build(&part, deps.into_iter())
    }

    #[test]
    fn strong_scaling_efficiency_decays() {
        // Fixed total work, more ranks: comm grows relative to compute.
        let total_work = 1.0;
        let net = Network::gpu_interconnect();
        let n_oct = 4096;
        let mut times = Vec::new();
        let ps = [1usize, 2, 4, 8, 16];
        for &p in &ps {
            let plan = chain_plan(n_oct, p);
            let work = vec![total_work / p as f64; p];
            times.push(project_step(&work, &plan, &net, 24, 343, 4).total());
        }
        let eff = strong_efficiency(&ps, &times);
        assert!((eff[0] - 1.0).abs() < 1e-12);
        for w in eff.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "efficiency must decay: {eff:?}");
        }
        assert!(eff[4] < 1.0);
    }

    #[test]
    fn weak_scaling_efficiency_stays_high() {
        // Constant per-rank work: efficiency stays near 1 because ghost
        // volume per rank is constant in a chain.
        let net = Network::gpu_interconnect();
        let per_rank_work = 0.5;
        let mut times = Vec::new();
        for p in [1usize, 2, 4, 8, 16] {
            let plan = chain_plan(256 * p, p);
            let work = vec![per_rank_work; p];
            times.push(project_step(&work, &plan, &net, 24, 343, 4).total());
        }
        let eff = weak_efficiency(&times);
        assert!(eff.iter().all(|&e| e > 0.9), "{eff:?}");
    }

    #[test]
    fn exchange_time_components() {
        let net = Network { latency: 1e-5, inv_bandwidth: 1e-9 };
        let t = net.exchange_time(3, 1_000_000);
        assert!((t - (3e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_dominates_worst_rank() {
        let net = Network::gpu_interconnect();
        let plan = chain_plan(100, 4);
        let balanced = project_step(&[0.25; 4], &plan, &net, 24, 343, 1);
        let skewed = project_step(&[0.1, 0.1, 0.1, 0.7], &plan, &net, 24, 343, 1);
        assert!(skewed.total() > 2.0 * balanced.total());
    }
}
