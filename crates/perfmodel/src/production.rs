//! The Table IV production wall-clock model.
//!
//! The paper's production runs (q = 1, 2, 4, 8 to merger) take days on
//! 4–8 A100s; this reproduction models them: wall time = timesteps ×
//! per-step time, with the per-step time projected from measured
//! per-unknown kernel cost under the A100 RAM model and the device count.

use crate::ram::RamModel;

/// One Table-IV row (paper values carried for comparison).
#[derive(Clone, Copy, Debug)]
pub struct ProductionRun {
    pub q: f64,
    pub dx_small: f64,
    pub dx_large: f64,
    pub gpus: usize,
    pub horizon: f64,
    pub timesteps: f64,
    pub wall_hours: f64,
}

/// Paper Table IV.
pub const PAPER_TABLE_IV: [ProductionRun; 4] = [
    ProductionRun {
        q: 1.0,
        dx_small: 1.62e-2,
        dx_large: 1.62e-2,
        gpus: 4,
        horizon: 748.0,
        timesteps: 183e3,
        wall_hours: 87.0,
    },
    ProductionRun {
        q: 2.0,
        dx_small: 8.13e-3,
        dx_large: 3.25e-2,
        gpus: 4,
        horizon: 600.0,
        timesteps: 252e3,
        wall_hours: 96.0,
    },
    ProductionRun {
        q: 4.0,
        dx_small: 4.06e-3,
        dx_large: 3.25e-2,
        gpus: 4,
        horizon: 602.0,
        timesteps: 506e3,
        wall_hours: 129.0,
    },
    ProductionRun {
        q: 8.0,
        dx_small: 2.03e-3,
        dx_large: 3.25e-2,
        gpus: 8,
        horizon: 1400.0,
        timesteps: 4e6,
        wall_hours: 388.0,
    },
];

/// Model wall-clock hours for a run: `steps × unknowns/GPU ×
/// seconds_per_unknown_step / 3600`, where `seconds_per_unknown_step`
/// comes from the measured RHS+padding counters under the RAM model.
pub fn model_wall_hours(
    timesteps: f64,
    total_unknowns: f64,
    gpus: usize,
    seconds_per_unknown_step: f64,
) -> f64 {
    timesteps * (total_unknowns / gpus as f64) * seconds_per_unknown_step / 3600.0
}

/// Derive the paper's implied per-unknown-step cost from a Table-IV row
/// and a grid-size estimate. Used by the bench to compare our projected
/// throughput against the paper's implied one.
pub fn implied_seconds_per_unknown_step(row: &ProductionRun, total_unknowns: f64) -> f64 {
    row.wall_hours * 3600.0 / (row.timesteps * (total_unknowns / row.gpus as f64))
}

/// A rough grid-size model for a BBH run: the paper's q = 1 grids at
/// production resolution carry O(100 M) unknowns.
pub fn estimated_unknowns(_q: f64) -> f64 {
    1.0e8
}

/// Projected per-unknown-step seconds for our kernels on the A100 model:
/// derived from per-octant counters (flops f, bytes m per octant per
/// step) spread over 343 points × 24 dof unknowns.
pub fn projected_seconds_per_unknown_step(
    ram: &RamModel,
    flops_per_octant_step: u64,
    bytes_per_octant_step: u64,
) -> f64 {
    let t_oct = ram.time_infinite_cache(flops_per_octant_step, bytes_per_octant_step);
    // One octant = 343 points × 24 dof unknowns, spread over the device's
    // parallel workers.
    t_oct / (343.0 * 24.0) / ram.machine.workers as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_imply_consistent_throughput() {
        // All four paper rows should imply per-unknown-step costs within
        // an order of magnitude of each other (same code, similar grids).
        let costs: Vec<f64> = PAPER_TABLE_IV
            .iter()
            .map(|r| implied_seconds_per_unknown_step(r, estimated_unknowns(r.q)))
            .collect();
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min < 12.0, "implied costs too spread: {costs:?}");
    }

    #[test]
    fn wall_hours_scale_with_steps_and_gpus() {
        let a = model_wall_hours(1e5, 1e8, 4, 1e-10);
        let b = model_wall_hours(2e5, 1e8, 4, 1e-10);
        let c = model_wall_hours(1e5, 1e8, 8, 1e-10);
        assert!((b / a - 2.0).abs() < 1e-12);
        assert!((a / c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn q8_is_the_long_pole() {
        // The q = 8 run has the most steps and the most hours — check the
        // table ordering the paper reports.
        let steps: Vec<f64> = PAPER_TABLE_IV.iter().map(|r| r.timesteps).collect();
        let hours: Vec<f64> = PAPER_TABLE_IV.iter().map(|r| r.wall_hours).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]));
        assert!(hours.windows(2).all(|w| w[0] <= w[1]));
    }
}
