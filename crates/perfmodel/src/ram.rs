//! The slow/fast-memory execution models of section III-D.

use gw_gpu_sim::{CounterSnapshot, MachineSpec};

/// Bandwidth- vs compute-bound classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    BandwidthBound,
    ComputeBound,
}

/// The RAM model bound to a machine.
#[derive(Clone, Debug)]
pub struct RamModel {
    pub machine: MachineSpec,
}

impl RamModel {
    pub fn new(machine: MachineSpec) -> Self {
        Self { machine }
    }

    pub fn a100() -> Self {
        Self::new(MachineSpec::a100())
    }

    /// Infinite-cache kernel time: `T∞ = f τ_f + m τ_m`.
    pub fn time_infinite_cache(&self, flops: u64, bytes: u64) -> f64 {
        flops as f64 * self.machine.tau_f + bytes as f64 * self.machine.tau_m
    }

    /// Finite-cache kernel time: `T = m τ_m max(1, mξ) + f τ_f`.
    pub fn time_finite_cache(&self, flops: u64, bytes: u64) -> f64 {
        let m = bytes as f64;
        m * self.machine.tau_m * (m * self.machine.xi()).max(1.0)
            + flops as f64 * self.machine.tau_f
    }

    /// Model time for a metered kernel (uses global traffic + flops). The
    /// `m ξ` term matters only for working sets beyond the caches; we use
    /// the per-launch average working set = bytes / launches when the
    /// caller provides launches ≥ 1.
    pub fn kernel_time(&self, s: &CounterSnapshot) -> f64 {
        let m = s.global_bytes() + s.spill_load_bytes + s.spill_store_bytes;
        self.time_infinite_cache(s.flops, m)
    }

    /// Classification by arithmetic intensity: below `τ_m/τ_f` the flops
    /// are negligible (the paper's `Q < 6.25` criterion on the A100).
    pub fn classify(&self, ai: f64) -> KernelClass {
        if ai < self.machine.bandwidth_bound_ai() {
            KernelClass::BandwidthBound
        } else {
            KernelClass::ComputeBound
        }
    }

    /// Projected GFlop/s for a metered kernel under the model.
    pub fn projected_gflops(&self, s: &CounterSnapshot) -> f64 {
        let t = self.kernel_time(s);
        if t <= 0.0 {
            return 0.0;
        }
        s.flops as f64 * 1e-9 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_criterion() {
        let m = RamModel::a100();
        // Paper: Q < 6.25 ⇒ bandwidth bound. Both paper kernels qualify:
        // o2p (Q_U ≤ 5.07) and A (Q_A ≈ 1.94).
        assert_eq!(m.classify(5.07), KernelClass::BandwidthBound);
        assert_eq!(m.classify(1.94), KernelClass::BandwidthBound);
        assert_eq!(m.classify(0.62), KernelClass::BandwidthBound);
        assert_eq!(m.classify(10.0), KernelClass::ComputeBound);
    }

    #[test]
    fn infinite_cache_time_components() {
        let m = RamModel::a100();
        // Pure data movement: 1 GB at 6.4e-13 s/B = 0.64 ms.
        let t = m.time_infinite_cache(0, 1_000_000_000);
        assert!((t - 6.4e-4).abs() < 1e-8);
        // Pure flops: 1 GFlop at 1e-13 s = 0.1 ms.
        let t = m.time_infinite_cache(1_000_000_000, 0);
        assert!((t - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn finite_cache_penalizes_large_working_sets() {
        let m = RamModel::a100();
        // Paper: m ≈ 2 MB/octant × 108 octants ⇒ mξ ≈ 10.
        let bytes = (2.0e6 * 108.0) as u64;
        let mxi = bytes as f64 * m.machine.xi();
        assert!(mxi > 5.0 && mxi < 15.0, "mξ = {mxi}");
        let t_inf = m.time_infinite_cache(0, bytes);
        let t_fin = m.time_finite_cache(0, bytes);
        assert!(t_fin > 5.0 * t_inf);
        // Small working sets: the models agree.
        let small = 100_000;
        assert!((m.time_finite_cache(0, small) - m.time_infinite_cache(0, small)).abs() < 1e-12);
    }

    #[test]
    fn projected_gflops_bounded_by_peak() {
        let m = RamModel::a100();
        let s = CounterSnapshot {
            flops: 10_000_000,
            global_load_bytes: 1_000_000,
            global_store_bytes: 500_000,
            ..Default::default()
        };
        let g = m.projected_gflops(&s);
        assert!(g > 0.0 && g <= m.machine.peak_gflops());
    }
}
