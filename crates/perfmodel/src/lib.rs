//! Performance models (section III-D of the paper) and the analytic
//! models behind Tables I and IV and the scaling figures.
//!
//! * [`ram`] — the slow/fast-memory (RAM) execution models: infinite-cache
//!   `T∞(f, m) = f·τ_f + m·τ_m` and finite-cache
//!   `T(f, m) = m·τ_m·max(1, mξ) + f·τ_f`, plus kernel classification.
//! * [`roofline`] — attainable-performance ceilings and projection of
//!   measured counter sets onto the roofline (Fig. 14).
//! * [`requirements`] — the Table I resolution/timestep model: 120 points
//!   across each horizon, quadrupole-decay merger time, `Δt = Δx_min`.
//! * [`production`] — the Table IV wall-clock model driven by measured
//!   per-step costs.
//! * [`scaling`] — strong/weak scaling projection from per-rank work and
//!   the ghost-exchange plan (Figs. 17, 18, 20).

pub mod production;
pub mod ram;
pub mod requirements;
pub mod roofline;
pub mod scaling;

pub use ram::{KernelClass, RamModel};
pub use requirements::{resolution_requirements, Requirement};
pub use roofline::{Roofline, RooflinePoint};
