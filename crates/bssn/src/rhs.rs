//! The fused per-patch RHS driver: derivatives + algebraic combination.
//!
//! One call processes one octant: compute all 210 derivative blocks from
//! the 24 padded patches, then run the `A` component at each of the `r^3`
//! points — either the handwritten pointwise code or a generated tape
//! (the SymPyGR / binary-reduce / staged+CSE variants of Table II).

use crate::derivs::{fields_at, DerivWorkspace};
use crate::point::bssn_rhs_point;
use gw_expr::bssn::BssnParams;
use gw_expr::symbols::{NUM_INPUTS, NUM_VARS};
use gw_expr::tape::Tape;
use gw_stencil::patch::{PatchLayout, BLOCK_VOLUME};

/// Which `A` implementation to run.
pub enum RhsMode<'a> {
    /// Handwritten pointwise evaluation.
    Pointwise,
    /// A compiled tape (generated code).
    Tape(&'a Tape),
}

/// Scratch buffers for one octant's RHS evaluation.
pub struct RhsWorkspace {
    pub derivs: DerivWorkspace,
    inputs: Vec<f64>,
    point_out: Vec<f64>,
    slots: Vec<f64>,
}

impl RhsWorkspace {
    pub fn new(max_slots: usize) -> Self {
        Self {
            derivs: DerivWorkspace::new(),
            inputs: vec![0.0; NUM_INPUTS],
            point_out: vec![0.0; NUM_VARS],
            slots: vec![0.0; max_slots.max(1)],
        }
    }
}

/// Evaluate the BSSN RHS on one octant.
///
/// `patches[v]` is variable `v`'s padded patch, `out[v]` the `r^3` RHS
/// block to fill. Returns (derivative flops, `A` flops).
pub fn bssn_rhs_patch(
    patches: &[&[f64]],
    h: f64,
    params: &BssnParams,
    mode: &RhsMode<'_>,
    ws: &mut RhsWorkspace,
    out: &mut [&mut [f64]],
) -> (u64, u64) {
    assert_eq!(patches.len(), NUM_VARS);
    assert_eq!(out.len(), NUM_VARS);
    let d_flops = ws.derivs.compute(patches, h);
    let o = PatchLayout::octant();
    let mut a_flops = 0u64;
    for (i, j, k) in o.iter() {
        let pt = o.idx(i, j, k);
        let mut fields = fields_at(patches, i, j, k);
        // Moving-puncture χ floor (regularizes the 1/χ terms near the
        // punctures; both A paths see the same clamped value).
        fields[gw_expr::symbols::var::CHI] =
            fields[gw_expr::symbols::var::CHI].max(params.chi_floor);
        ws.derivs.assemble_inputs(&fields, pt, &mut ws.inputs);
        match mode {
            RhsMode::Pointwise => {
                bssn_rhs_point(&ws.inputs, &mut ws.point_out, params);
                a_flops += 2200; // handwritten op count estimate
            }
            RhsMode::Tape(t) => {
                t.eval_into(&ws.inputs, &mut ws.point_out, &mut ws.slots);
                a_flops += t.flops;
            }
        }
        for v in 0..NUM_VARS {
            out[v][pt] = ws.point_out[v];
        }
    }
    (d_flops, a_flops)
}

/// Convenience: run the RHS over a full mesh-shaped patch set, filling a
/// block-per-octant output. Used by tests and the CPU backend.
pub fn rhs_blocks_volume() -> usize {
    BLOCK_VOLUME
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_expr::bssn::build_bssn_rhs;
    use gw_expr::schedule::{schedule, ScheduleStrategy};
    use gw_stencil::patch::{PatchLayout, PADDING};

    /// Patches holding a smooth spacetime-like configuration.
    fn smooth_patches(h: f64) -> Vec<Vec<f64>> {
        let p = PatchLayout::padded();
        (0..NUM_VARS)
            .map(|v| {
                let mut buf = vec![0.0; p.volume()];
                for (i, j, k) in p.iter() {
                    let x = (i as f64 - PADDING as f64) * h;
                    let y = (j as f64 - PADDING as f64) * h;
                    let z = (k as f64 - PADDING as f64) * h;
                    let w = 0.02 * ((x + 0.3 * y).sin() * (0.5 * z).cos() + 0.3 * x * y);
                    use gw_expr::symbols::var;
                    buf[p.idx(i, j, k)] = match v {
                        var::ALPHA => 1.0 + 0.5 * w,
                        var::CHI => 1.0 + 0.4 * w,
                        _ if v == var::gt(0, 0) || v == var::gt(1, 1) || v == var::gt(2, 2) => {
                            1.0 + w
                        }
                        _ => w * (1.0 + 0.1 * v as f64),
                    };
                }
                buf
            })
            .collect()
    }

    #[test]
    fn pointwise_and_all_tapes_agree_on_patch() {
        let h = 0.05;
        let patches = smooth_patches(h);
        let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
        let params = BssnParams::default();

        let run = |mode: &RhsMode<'_>, max_slots: usize| -> Vec<Vec<f64>> {
            let mut ws = RhsWorkspace::new(max_slots);
            let mut out: Vec<Vec<f64>> = vec![vec![0.0; BLOCK_VOLUME]; NUM_VARS];
            {
                let mut views: Vec<&mut [f64]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
                bssn_rhs_patch(&refs, h, &params, mode, &mut ws, &mut views);
            }
            out
        };

        let base = run(&RhsMode::Pointwise, 1);
        let rhs = build_bssn_rhs(params);
        for strat in ScheduleStrategy::all() {
            let sch = schedule(&rhs.graph, &rhs.outputs, strat);
            let tape = Tape::compile(&rhs.graph, &sch, 56);
            let got = run(&RhsMode::Tape(&tape), tape.n_slots);
            for v in 0..NUM_VARS {
                for pt in 0..BLOCK_VOLUME {
                    let (a, b) = (base[v][pt], got[v][pt]);
                    assert!(
                        (a - b).abs() < 1e-10 * (1.0 + a.abs()),
                        "{strat:?} var {v} pt {pt}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_patches_produce_zero_rhs() {
        let h = 0.1;
        let p = PatchLayout::padded();
        let mut patches: Vec<Vec<f64>> = vec![vec![0.0; p.volume()]; NUM_VARS];
        use gw_expr::symbols::var;
        for v in [var::ALPHA, var::CHI, var::gt(0, 0), var::gt(1, 1), var::gt(2, 2)] {
            patches[v].iter_mut().for_each(|x| *x = 1.0);
        }
        let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
        let mut ws = RhsWorkspace::new(1);
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; BLOCK_VOLUME]; NUM_VARS];
        let mut views: Vec<&mut [f64]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        bssn_rhs_patch(&refs, h, &BssnParams::default(), &RhsMode::Pointwise, &mut ws, &mut views);
        for v in 0..NUM_VARS {
            for pt in 0..BLOCK_VOLUME {
                assert!(out[v][pt].abs() < 1e-12, "var {v} pt {pt}: {}", out[v][pt]);
            }
        }
    }

    #[test]
    fn flop_counts_reported() {
        let h = 0.05;
        let patches = smooth_patches(h);
        let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
        let mut ws = RhsWorkspace::new(1);
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; BLOCK_VOLUME]; NUM_VARS];
        let mut views: Vec<&mut [f64]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        let (d, a) = bssn_rhs_patch(
            &refs,
            h,
            &BssnParams::default(),
            &RhsMode::Pointwise,
            &mut ws,
            &mut views,
        );
        // Derivative flops: ~(72+33)·13 + 33·97 per point — order 10^6 per
        // octant. A flops similar.
        assert!(d > 500_000, "deriv flops {d}");
        assert!(a > 500_000, "A flops {a}");
    }
}
