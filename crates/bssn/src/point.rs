//! Handwritten pointwise BSSN right-hand side.
//!
//! A direct transcription of Eqs. (1)–(19) into scalar arithmetic. The
//! input layout is the 234-entry vector defined by `gw_expr::symbols`
//! (24 fields + 72 ∂ + 66 ∂∂ + 72 KO), the output the 24 RHS values.
//! Kept intentionally separate from the symbolic construction so the two
//! transcriptions check each other (see the cross-validation test).

use gw_expr::bssn::BssnParams;
use gw_expr::symbols::{input_d1, input_d2, input_ko, input_value, var, NUM_INPUTS, NUM_OUTPUTS};

/// Evaluate the BSSN RHS at one grid point.
pub fn bssn_rhs_point(u: &[f64], out: &mut [f64], params: &BssnParams) {
    debug_assert!(u.len() >= NUM_INPUTS);
    debug_assert!(out.len() >= NUM_OUTPUTS);

    // ---- Load fields -----------------------------------------------------
    let alpha = u[input_value(var::ALPHA)];
    let beta =
        [u[input_value(var::beta(0))], u[input_value(var::beta(1))], u[input_value(var::beta(2))]];
    let bb = [
        u[input_value(var::b_var(0))],
        u[input_value(var::b_var(1))],
        u[input_value(var::b_var(2))],
    ];
    let chi = u[input_value(var::CHI)];
    let kk = u[input_value(var::K)];
    let mut gt = [[0.0f64; 3]; 3];
    let mut at = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            gt[i][j] = u[input_value(var::gt(i, j))];
            at[i][j] = u[input_value(var::at(i, j))];
        }
    }
    let gamt =
        [u[input_value(var::gamt(0))], u[input_value(var::gamt(1))], u[input_value(var::gamt(2))]];

    // ---- Load derivatives ------------------------------------------------
    let d = |v: usize, a: usize| u[input_d1(v, a)];
    let d2 = |v: usize, a: usize, b: usize| u[input_d2(v, a, b)];
    let da = [d(var::ALPHA, 0), d(var::ALPHA, 1), d(var::ALPHA, 2)];
    let dchi = [d(var::CHI, 0), d(var::CHI, 1), d(var::CHI, 2)];
    let dk = [d(var::K, 0), d(var::K, 1), d(var::K, 2)];
    let mut db = [[0.0f64; 3]; 3]; // db[i][j] = ∂_j β^i
    let mut dbb = [[0.0f64; 3]; 3];
    let mut dgamt = [[0.0f64; 3]; 3]; // dgamt[i][j] = ∂_j Γ̃^i
    for i in 0..3 {
        for j in 0..3 {
            db[i][j] = d(var::beta(i), j);
            dbb[i][j] = d(var::b_var(i), j);
            dgamt[i][j] = d(var::gamt(i), j);
        }
    }
    // dgt[k][i][j] = ∂_k γ̃_ij ; dat likewise.
    let mut dgt = [[[0.0f64; 3]; 3]; 3];
    let mut dat = [[[0.0f64; 3]; 3]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                dgt[k][i][j] = d(var::gt(i, j), k);
                dat[k][i][j] = d(var::at(i, j), k);
            }
        }
    }

    let divbeta = db[0][0] + db[1][1] + db[2][2];
    let inv_chi = 1.0 / chi;

    // ---- Inverse conformal metric -----------------------------------------
    let det = gt[0][0] * (gt[1][1] * gt[2][2] - gt[1][2] * gt[1][2])
        - gt[0][1] * (gt[0][1] * gt[2][2] - gt[0][2] * gt[1][2])
        + gt[0][2] * (gt[0][1] * gt[1][2] - gt[0][2] * gt[1][1]);
    let idet = 1.0 / det;
    let mut gti = [[0.0f64; 3]; 3];
    gti[0][0] = (gt[1][1] * gt[2][2] - gt[1][2] * gt[1][2]) * idet;
    gti[0][1] = (gt[0][2] * gt[1][2] - gt[0][1] * gt[2][2]) * idet;
    gti[0][2] = (gt[0][1] * gt[1][2] - gt[0][2] * gt[1][1]) * idet;
    gti[1][1] = (gt[0][0] * gt[2][2] - gt[0][2] * gt[0][2]) * idet;
    gti[1][2] = (gt[0][1] * gt[0][2] - gt[0][0] * gt[1][2]) * idet;
    gti[2][2] = (gt[0][0] * gt[1][1] - gt[0][1] * gt[0][1]) * idet;
    gti[1][0] = gti[0][1];
    gti[2][0] = gti[0][2];
    gti[2][1] = gti[1][2];

    // ---- Christoffels ------------------------------------------------------
    // c1[l][i][j] = Γ̃_lij, c2[k][i][j] = Γ̃^k_ij.
    let mut c1 = [[[0.0f64; 3]; 3]; 3];
    for l in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                c1[l][i][j] = 0.5 * (dgt[j][l][i] + dgt[i][l][j] - dgt[l][i][j]);
            }
        }
    }
    let mut c2 = [[[0.0f64; 3]; 3]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for l in 0..3 {
                    s += gti[k][l] * c1[l][i][j];
                }
                c2[k][i][j] = s;
            }
        }
    }
    // Metric-derived Γ̃^m (used in R^χ).
    let mut cal_gamt = [0.0f64; 3];
    for (m, cg) in cal_gamt.iter_mut().enumerate() {
        let mut s = 0.0;
        for k in 0..3 {
            for l in 0..3 {
                s += gti[k][l] * c2[m][k][l];
            }
        }
        *cg = s;
    }

    // ---- Ã with raised indices ---------------------------------------------
    let mut at_u1 = [[0.0f64; 3]; 3]; // Ã^k_j
    for k in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            for l in 0..3 {
                s += gti[k][l] * at[l][j];
            }
            at_u1[k][j] = s;
        }
    }
    let mut at_u2 = [[0.0f64; 3]; 3]; // Ã^ij
    for i in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            for k in 0..3 {
                s += gti[j][k] * at_u1[i][k];
            }
            at_u2[i][j] = s;
        }
    }

    // ---- Ricci tensor --------------------------------------------------------
    let mut rt = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            // −½ γ̃^lm ∂_l∂_m γ̃_ij
            for l in 0..3 {
                for m in 0..3 {
                    s += -0.5 * gti[l][m] * d2(var::gt(i, j), l, m);
                }
            }
            // ½ (γ̃_ki ∂_j Γ̃^k + γ̃_kj ∂_i Γ̃^k) + ½ Γ̃^k (Γ̃_ijk + Γ̃_jik)
            for k in 0..3 {
                s += 0.5 * (gt[k][i] * dgamt[k][j] + gt[k][j] * dgamt[k][i]);
                s += 0.5 * gamt[k] * (c1[i][j][k] + c1[j][i][k]);
            }
            // γ̃^lm (Γ̃^k_li Γ̃_jkm + Γ̃^k_lj Γ̃_ikm + Γ̃^k_im Γ̃_klj)
            for l in 0..3 {
                for m in 0..3 {
                    for k in 0..3 {
                        s += gti[l][m]
                            * (c2[k][l][i] * c1[j][k][m]
                                + c2[k][l][j] * c1[i][k][m]
                                + c2[k][i][m] * c1[k][l][j]);
                    }
                }
            }
            rt[i][j] = s;
        }
    }
    // R^χ_ij.
    let mut lap_chi = 0.0;
    let mut dchi2 = 0.0;
    for k in 0..3 {
        for l in 0..3 {
            lap_chi += gti[k][l] * d2(var::CHI, k, l);
            dchi2 += gti[k][l] * dchi[k] * dchi[l];
        }
    }
    let mut gamt_dchi = 0.0;
    for m in 0..3 {
        gamt_dchi += cal_gamt[m] * dchi[m];
    }
    let bracket = lap_chi - 1.5 * dchi2 * inv_chi - gamt_dchi;
    let half_inv_chi = 0.5 * inv_chi;
    let mut ricci = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut cov = d2(var::CHI, i, j);
            for k in 0..3 {
                cov -= c2[k][i][j] * dchi[k];
            }
            let m1 = half_inv_chi * cov;
            let m2 = 0.25 * inv_chi * inv_chi * dchi[i] * dchi[j];
            let rchi = m1 - m2 + half_inv_chi * gt[i][j] * bracket;
            ricci[i][j] = rt[i][j] + rchi;
        }
    }

    // ---- Covariant second derivative of the lapse ------------------------------
    let mut gti_dchi = [0.0f64; 3];
    for (k, gd) in gti_dchi.iter_mut().enumerate() {
        let mut s = 0.0;
        for l in 0..3 {
            s += gti[k][l] * dchi[l];
        }
        *gd = s;
    }
    let mut dda_cov = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut s = d2(var::ALPHA, i, j);
            for k in 0..3 {
                let mut corr = 0.0;
                if k == i {
                    corr += dchi[j];
                }
                if k == j {
                    corr += dchi[i];
                }
                corr -= gt[i][j] * gti_dchi[k];
                let full_c = c2[k][i][j] - half_inv_chi * corr;
                s -= full_c * da[k];
            }
            dda_cov[i][j] = s;
        }
    }
    let mut lap_alpha = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            lap_alpha += gti[i][j] * dda_cov[i][j];
        }
    }
    lap_alpha *= chi;

    // ---- Equations ----------------------------------------------------------
    let adv = |grad: &[f64; 3]| beta[0] * grad[0] + beta[1] * grad[1] + beta[2] * grad[2];

    // (1) lapse.
    out[var::ALPHA] = adv(&da) - 2.0 * alpha * kk;

    // (8) Γ̃^i first (feeds B^i).
    let mut gamt_rhs = [0.0f64; 3];
    for i in 0..3 {
        let mut s = 0.0;
        for j in 0..3 {
            for k in 0..3 {
                s += gti[j][k] * d2(var::beta(i), j, k);
            }
        }
        for j in 0..3 {
            let mut dd = 0.0;
            for k in 0..3 {
                dd += d2(var::beta(k), j, k);
            }
            s += gti[i][j] * dd / 3.0;
        }
        s += adv(&[dgamt[i][0], dgamt[i][1], dgamt[i][2]]);
        for j in 0..3 {
            s -= gamt[j] * db[i][j];
        }
        s += 2.0 / 3.0 * gamt[i] * divbeta;
        for j in 0..3 {
            s -= 2.0 * at_u2[i][j] * da[j];
        }
        let mut inner = 0.0;
        for j in 0..3 {
            for k in 0..3 {
                inner += c2[i][j][k] * at_u2[j][k];
            }
            inner -= 1.5 * at_u2[i][j] * dchi[j] * inv_chi;
            inner -= 2.0 / 3.0 * gti[i][j] * dk[j];
        }
        s += 2.0 * alpha * inner;
        gamt_rhs[i] = s;
        out[var::gamt(i)] = s;
    }

    // (2) shift, (3) B.
    for i in 0..3 {
        out[var::beta(i)] = adv(&[db[i][0], db[i][1], db[i][2]]) + 0.75 * bb[i];
        out[var::b_var(i)] = gamt_rhs[i] - params.eta * bb[i]
            + adv(&[dbb[i][0], dbb[i][1], dbb[i][2]])
            - adv(&[dgamt[i][0], dgamt[i][1], dgamt[i][2]]);
    }

    // (4) conformal metric.
    for i in 0..3 {
        for j in i..3 {
            let mut s = adv(&[dgt[0][i][j], dgt[1][i][j], dgt[2][i][j]]);
            for k in 0..3 {
                s += gt[i][k] * db[k][j] + gt[k][j] * db[k][i];
            }
            s -= 2.0 / 3.0 * gt[i][j] * divbeta;
            s -= 2.0 * alpha * at[i][j];
            out[var::gt(i, j)] = s;
        }
    }

    // (5) chi.
    out[var::CHI] = adv(&dchi) + 2.0 / 3.0 * chi * (alpha * kk - divbeta);

    // (6) Ã.
    // S_ij = −D_iD_jα + α R_ij, trace-free with γ̃.
    let mut s_tensor = [[0.0f64; 3]; 3];
    let mut s_trace = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            s_tensor[i][j] = alpha * ricci[i][j] - dda_cov[i][j];
            s_trace += gti[i][j] * s_tensor[i][j];
        }
    }
    for i in 0..3 {
        for j in i..3 {
            let mut s = adv(&[dat[0][i][j], dat[1][i][j], dat[2][i][j]]);
            for k in 0..3 {
                s += at[i][k] * db[k][j] + at[k][j] * db[k][i];
            }
            s -= 2.0 / 3.0 * at[i][j] * divbeta;
            s += chi * (s_tensor[i][j] - gt[i][j] * s_trace / 3.0);
            let mut aa = 0.0;
            for k in 0..3 {
                aa += at[i][k] * at_u1[k][j];
            }
            s += alpha * (kk * at[i][j] - 2.0 * aa);
            out[var::at(i, j)] = s;
        }
    }

    // (7) K.
    let mut asq = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            asq += at_u2[i][j] * at[i][j];
        }
    }
    out[var::K] = adv(&dk) - lap_alpha + alpha * (asq + kk * kk / 3.0);

    // ---- KO dissipation ---------------------------------------------------
    for v in 0..NUM_OUTPUTS {
        let ko = u[input_ko(v, 0)] + u[input_ko(v, 1)] + u[input_ko(v, 2)];
        out[v] += params.ko_sigma * ko;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_expr::bssn::build_bssn_rhs;

    fn flat_inputs() -> Vec<f64> {
        let mut u = vec![0.0; NUM_INPUTS];
        u[input_value(var::ALPHA)] = 1.0;
        u[input_value(var::CHI)] = 1.0;
        u[input_value(var::gt(0, 0))] = 1.0;
        u[input_value(var::gt(1, 1))] = 1.0;
        u[input_value(var::gt(2, 2))] = 1.0;
        u
    }

    #[test]
    fn flat_space_stationary() {
        let mut out = vec![0.0; NUM_OUTPUTS];
        bssn_rhs_point(&flat_inputs(), &mut out, &BssnParams::default());
        for (i, o) in out.iter().enumerate() {
            assert!(o.abs() < 1e-14, "rhs[{i}] = {o}");
        }
    }

    /// The decisive test: the handwritten RHS and the independently-built
    /// symbolic RHS agree on randomized strong-field inputs.
    #[test]
    fn matches_symbolic_construction() {
        let params = BssnParams { eta: 1.3, ko_sigma: 0.25, chi_floor: 1e-4 };
        let rhs = build_bssn_rhs(params);
        let mut seed = 0xfeedbeefu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for trial in 0..25 {
            let mut u = vec![0.0; NUM_INPUTS];
            for v in u.iter_mut() {
                *v = 0.2 * rng();
            }
            // Keep the metric positive definite and χ, α away from zero.
            u[input_value(var::ALPHA)] = 0.8 + 0.3 * rng().abs();
            u[input_value(var::CHI)] = 0.5 + 0.4 * rng().abs();
            u[input_value(var::gt(0, 0))] = 1.0 + 0.2 * rng();
            u[input_value(var::gt(1, 1))] = 1.0 + 0.2 * rng();
            u[input_value(var::gt(2, 2))] = 1.0 + 0.2 * rng();
            let sym = rhs.graph.eval(&rhs.outputs, &u);
            let mut hand = vec![0.0; NUM_OUTPUTS];
            bssn_rhs_point(&u, &mut hand, &params);
            for v in 0..NUM_OUTPUTS {
                let scale = 1.0 + sym[v].abs();
                assert!(
                    (sym[v] - hand[v]).abs() < 1e-11 * scale,
                    "trial {trial} var {v} ({}): symbolic {} vs handwritten {}",
                    gw_expr::symbols::VAR_NAMES[v],
                    sym[v],
                    hand[v]
                );
            }
        }
    }

    #[test]
    fn schwarzschild_like_static_data_small_rhs() {
        // Isotropic-Schwarzschild-inspired conformal data at a sample
        // point: ψ = 1 + M/(2r), χ = ψ^{-4}, α = ψ^{-2} (precollapsed),
        // K = Ã = 0, conformally flat. These data are not an exact static
        // solution of the gauge, but constraint-satisfying: the metric
        // sector RHS (γ̃, χ) must vanish identically at zero shift.
        let m = 1.0;
        let r: f64 = 3.0;
        let psi = 1.0 + m / (2.0 * r);
        let mut u = flat_inputs();
        u[input_value(var::CHI)] = psi.powi(-4);
        u[input_value(var::ALPHA)] = psi.powi(-2);
        // Radial derivative of χ along x at (r,0,0): dχ/dr = 2M/r² ψ^{-5}.
        u[input_d1(var::CHI, 0)] = 2.0 * m / (r * r) * psi.powi(-5);
        let mut out = vec![0.0; NUM_OUTPUTS];
        bssn_rhs_point(&u, &mut out, &BssnParams::default());
        // ∂_t γ̃_ij = −2αÃ_ij = 0; ∂_t χ = (2/3)χ(αK − divβ) = 0.
        for i in 0..3 {
            for j in i..3 {
                assert!(out[var::gt(i, j)].abs() < 1e-14);
            }
        }
        assert!(out[var::CHI].abs() < 1e-14);
    }

    #[test]
    fn ko_dissipation_scaling() {
        let params = BssnParams { eta: 2.0, ko_sigma: 0.9, chi_floor: 1e-4 };
        let mut u = flat_inputs();
        u[input_ko(var::K, 1)] = 2.0;
        let mut out = vec![0.0; NUM_OUTPUTS];
        bssn_rhs_point(&u, &mut out, &params);
        assert!((out[var::K] - 1.8).abs() < 1e-14);
    }
}
