//! BSSN physics: equations, initial data, gauge, constraints.
//!
//! This crate supplies the numerical-relativity content of the solver:
//!
//! * [`point`] — a **handwritten** pointwise BSSN RHS (Eqs. 1–19 of the
//!   paper), deliberately written independently of the symbolic generator
//!   in `gw-expr` and cross-validated against it in the tests. The solver
//!   can run either this or a generated tape; agreement of the two is the
//!   same check the paper performs between hand code and SymPyGR output.
//! * [`derivs`] — the 210-derivative evaluation on a padded patch: 72
//!   first, 66 second, 72 Kreiss–Oliger derivatives per point, assembled
//!   into the 234-entry input vector the `A` component consumes.
//! * [`rhs`] — the per-patch fused RHS driver (derivatives + `A`), the
//!   host-side reference for the device kernels in `gw-core`.
//! * [`init`] — initial data: Brandt–Brügmann punctures with Bowen–York
//!   extrinsic curvature (binary black holes), and a linearized
//!   gravitational-wave packet with an analytic solution (propagation and
//!   convergence studies, Figs. 19/21 substitutions).
//! * [`constraints`] — Hamiltonian and momentum constraint monitors.
//! * [`sommerfeld`] — radiative (Sommerfeld) outer-boundary RHS.

// Tensor-index loops (`for k in 0..3`) mirror the written math
// throughout this crate; enumerate() forms would obscure the index
// symmetry.
#![allow(clippy::needless_range_loop)]

pub mod constraints;
pub mod derivs;
pub mod init;
pub mod point;
pub mod rhs;
pub mod sommerfeld;

pub use derivs::DerivWorkspace;
pub use gw_expr::bssn::BssnParams;
pub use point::bssn_rhs_point;
pub use rhs::{bssn_rhs_patch, RhsMode};
