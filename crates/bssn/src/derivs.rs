//! The 210-derivative evaluation on a padded patch.
//!
//! Section IV-B: every RHS evaluation needs, per grid point, 72 first
//! derivatives (3 × 24 variables), 66 second derivatives (6 pairs × 11
//! variables) and 72 KO derivatives — 210 in total. This module computes
//! them for a whole `r^3` octant block from the 24 padded patches and
//! assembles the per-point 234-entry input vector for the `A` component.

use gw_expr::symbols::{input_d1, input_d2, input_ko, second_deriv_slot, NUM_INPUTS, NUM_VARS};
use gw_stencil::fd::DerivOps;
use gw_stencil::ko::ko_deriv_axis;
use gw_stencil::patch::BLOCK_VOLUME;

/// Number of derivative blocks (the paper's 210).
pub const NUM_DERIV_BLOCKS: usize = 210;

/// Thread-local storage for all derivative blocks of one octant.
///
/// 210 blocks × 343 points × 8 B ≈ 0.58 MB — the "tremendous memory
/// pressure" the paper attributes to the RHS (section I).
pub struct DerivWorkspace {
    /// `[input_slot - NUM_VARS][point]`, i.e. indexed by the flat input
    /// index minus the 24 field values.
    data: Vec<f64>,
}

impl Default for DerivWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl DerivWorkspace {
    pub fn new() -> Self {
        Self { data: vec![0.0; NUM_DERIV_BLOCKS * BLOCK_VOLUME] }
    }

    #[inline]
    fn block_mut(&mut self, input_slot: usize) -> &mut [f64] {
        let b = input_slot - NUM_VARS;
        &mut self.data[b * BLOCK_VOLUME..(b + 1) * BLOCK_VOLUME]
    }

    #[inline]
    pub fn value(&self, input_slot: usize, point: usize) -> f64 {
        let b = input_slot - NUM_VARS;
        self.data[b * BLOCK_VOLUME + point]
    }

    /// Compute all 210 derivative blocks from the 24 padded patches of one
    /// octant. `patches[v]` is variable `v`'s `(r+2k)^3` patch; `h` the
    /// octant grid spacing. Returns the flop count.
    pub fn compute(&mut self, patches: &[&[f64]], h: f64) -> u64 {
        assert_eq!(patches.len(), NUM_VARS);
        let ops = DerivOps::new(h);
        let inv_h = 1.0 / h;
        let mut flops = 0u64;
        // First derivatives: 7-point stencil = 13 flops/point.
        for v in 0..NUM_VARS {
            for axis in 0..3 {
                ops.deriv(axis, patches[v], self.block_mut(input_d1(v, axis)));
                flops += 13 * BLOCK_VOLUME as u64;
            }
        }
        // Second derivatives for the 11 vars: pure 13/pt, mixed 2·(7·2)≈97/pt.
        for v in 0..NUM_VARS {
            if second_deriv_slot(v).is_none() {
                continue;
            }
            for a in 0..3 {
                ops.deriv2(a, patches[v], self.block_mut(input_d2(v, a, a)));
                flops += 13 * BLOCK_VOLUME as u64;
            }
            for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
                ops.deriv_mixed(a, b, patches[v], self.block_mut(input_d2(v, a, b)));
                flops += 97 * BLOCK_VOLUME as u64;
            }
        }
        // KO derivatives.
        for v in 0..NUM_VARS {
            for axis in 0..3 {
                ko_deriv_axis(axis, inv_h, patches[v], self.block_mut(input_ko(v, axis)));
                flops += 13 * BLOCK_VOLUME as u64;
            }
        }
        flops
    }

    /// Assemble the 234-entry input vector for one grid point.
    /// `patch_point` maps the block point to its patch index (interior
    /// offset applied by the caller via the field values slice).
    pub fn assemble_inputs(
        &self,
        fields_at_point: &[f64; NUM_VARS],
        point: usize,
        out: &mut [f64],
    ) {
        debug_assert!(out.len() >= NUM_INPUTS);
        out[..NUM_VARS].copy_from_slice(fields_at_point);
        for slot in NUM_VARS..NUM_INPUTS {
            out[slot] = self.value(slot, point);
        }
    }
}

/// Extract the 24 field values at a block point from the patches (the
/// interior of each patch).
pub fn fields_at(patches: &[&[f64]], i: usize, j: usize, k: usize) -> [f64; NUM_VARS] {
    use gw_stencil::patch::{PatchLayout, PADDING};
    let p = PatchLayout::padded();
    let idx = p.idx(i + PADDING, j + PADDING, k + PADDING);
    let mut out = [0.0; NUM_VARS];
    for (v, o) in out.iter_mut().enumerate() {
        *o = patches[v][idx];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_expr::symbols::{input_value, var};
    use gw_stencil::patch::{PatchLayout, PADDING};

    /// Build 24 patches where variable v holds a distinct polynomial.
    fn poly_patches(h: f64) -> Vec<Vec<f64>> {
        let p = PatchLayout::padded();
        (0..NUM_VARS)
            .map(|v| {
                let c = v as f64 + 1.0;
                let mut buf = vec![0.0; p.volume()];
                for (i, j, k) in p.iter() {
                    let x = (i as f64 - PADDING as f64) * h;
                    let y = (j as f64 - PADDING as f64) * h;
                    let z = (k as f64 - PADDING as f64) * h;
                    buf[p.idx(i, j, k)] = c * (x * x * y + 0.5 * z * z - x * y * z) + c;
                }
                buf
            })
            .collect()
    }

    #[test]
    fn derivatives_of_polynomials_exact() {
        let h = 0.1;
        let patches = poly_patches(h);
        let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
        let mut ws = DerivWorkspace::new();
        let flops = ws.compute(&refs, h);
        assert!(flops > 0);
        let o = PatchLayout::octant();
        for v in [var::ALPHA, var::CHI, var::K, var::at(1, 2)] {
            let c = v as f64 + 1.0;
            for (i, j, k) in o.iter() {
                let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
                let pt = o.idx(i, j, k);
                // f = c(x²y + z²/2 − xyz) + c
                let dx = c * (2.0 * x * y - y * z);
                let dy = c * (x * x - x * z);
                let dz = c * (z - x * y);
                assert!((ws.value(input_d1(v, 0), pt) - dx).abs() < 1e-9);
                assert!((ws.value(input_d1(v, 1), pt) - dy).abs() < 1e-9);
                assert!((ws.value(input_d1(v, 2), pt) - dz).abs() < 1e-9);
            }
        }
        // Second derivatives for a var that has them.
        let v = var::CHI;
        let c = v as f64 + 1.0;
        for (i, j, k) in o.iter() {
            let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
            let pt = o.idx(i, j, k);
            assert!((ws.value(input_d2(v, 0, 0), pt) - c * 2.0 * y).abs() < 1e-8);
            assert!((ws.value(input_d2(v, 2, 2), pt) - c).abs() < 1e-8);
            assert!((ws.value(input_d2(v, 0, 1), pt) - c * (2.0 * x - z)).abs() < 1e-8);
            assert!((ws.value(input_d2(v, 1, 2), pt) - c * (-x)).abs() < 1e-8);
        }
    }

    #[test]
    fn ko_vanishes_on_low_order_polynomials() {
        let h = 0.1;
        let patches = poly_patches(h);
        let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
        let mut ws = DerivWorkspace::new();
        ws.compute(&refs, h);
        for v in 0..NUM_VARS {
            for axis in 0..3 {
                for pt in 0..BLOCK_VOLUME {
                    assert!(ws.value(input_ko(v, axis), pt).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn assemble_inputs_layout() {
        let h = 0.2;
        let patches = poly_patches(h);
        let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
        let mut ws = DerivWorkspace::new();
        ws.compute(&refs, h);
        let o = PatchLayout::octant();
        let (i, j, k) = (2, 3, 4);
        let fields = fields_at(&refs, i, j, k);
        let mut u = vec![0.0; NUM_INPUTS];
        ws.assemble_inputs(&fields, o.idx(i, j, k), &mut u);
        // Field values in the first 24 slots.
        for v in 0..NUM_VARS {
            let c = v as f64 + 1.0;
            let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
            let expect = c * (x * x * y + 0.5 * z * z - x * y * z) + c;
            assert!((u[input_value(v)] - expect).abs() < 1e-12);
        }
        // A spot-checked derivative slot.
        assert_eq!(u[input_d1(3, 1)], ws.value(input_d1(3, 1), o.idx(i, j, k)));
    }

    #[test]
    fn paper_derivative_count() {
        // 72 + 66 + 72 = 210 blocks.
        assert_eq!(NUM_DERIV_BLOCKS, 210);
        assert_eq!(NUM_INPUTS - NUM_VARS, NUM_DERIV_BLOCKS);
    }
}
