//! Initial data.
//!
//! * [`PunctureData`] — Brandt–Brügmann moving-puncture data: conformally
//!   flat metric with ψ = 1 + Σ mᵢ/(2rᵢ), Bowen–York extrinsic curvature
//!   for momenta/spins, pre-collapsed lapse α = ψ⁻², zero shift. This is
//!   the approximate (non-elliptically-solved) variant: exact for
//!   time-symmetric (P = S = 0) multi-holes, first-order accurate in
//!   P, S otherwise — the standard substitute for the TwoPunctures solver
//!   (see DESIGN.md).
//! * [`LinearWaveData`] — a linearized gravitational plane-wave packet
//!   with closed-form time evolution, used by the propagation and
//!   convergence experiments (Fig. 19/21 substitutions).

use gw_expr::symbols::{var, NUM_VARS};

/// One black hole's puncture parameters.
#[derive(Clone, Copy, Debug)]
pub struct PunctureSpec {
    /// Bare mass.
    pub mass: f64,
    /// Position.
    pub pos: [f64; 3],
    /// Linear (Bowen–York) momentum.
    pub momentum: [f64; 3],
    /// Spin.
    pub spin: [f64; 3],
}

/// Brandt–Brügmann puncture initial data for a set of holes.
#[derive(Clone, Debug)]
pub struct PunctureData {
    pub punctures: Vec<PunctureSpec>,
    /// Softening radius to avoid the coordinate singularity at the
    /// puncture (points within get the softened value; physical runs keep
    /// the puncture off grid points).
    pub eps: f64,
}

impl PunctureData {
    pub fn new(punctures: Vec<PunctureSpec>) -> Self {
        Self { punctures, eps: 1e-6 }
    }

    /// Quasi-circular equal/unequal-mass binary of mass ratio `q` with
    /// total mass 1 and coordinate separation `d`: masses m₁ = q/(1+q),
    /// m₂ = 1/(1+q), placed on the x axis about the center of mass, with
    /// tangential momenta ±P ŷ estimated from the Newtonian circular
    /// orbit (P = μ √(M/d)).
    pub fn binary(q: f64, d: f64) -> Self {
        assert!(q >= 1.0 && d > 0.0);
        let m1 = q / (1.0 + q);
        let m2 = 1.0 / (1.0 + q);
        let x1 = d * m2; // about the COM: m1 x1 = m2 x2
        let x2 = -d * m1;
        let mu = m1 * m2;
        let p = mu * (1.0f64 / d).sqrt();
        Self::new(vec![
            PunctureSpec { mass: m1, pos: [x1, 0.0, 0.0], momentum: [0.0, p, 0.0], spin: [0.0; 3] },
            PunctureSpec {
                mass: m2,
                pos: [x2, 0.0, 0.0],
                momentum: [0.0, -p, 0.0],
                spin: [0.0; 3],
            },
        ])
    }

    /// Conformal factor ψ at a point.
    pub fn psi(&self, p: [f64; 3]) -> f64 {
        let mut s = 1.0;
        for bh in &self.punctures {
            let r = dist(p, bh.pos).max(self.eps);
            s += bh.mass / (2.0 * r);
        }
        s
    }

    /// Bowen–York conformal extrinsic curvature Â_ij at a point.
    pub fn abar(&self, p: [f64; 3]) -> [[f64; 3]; 3] {
        let mut a = [[0.0f64; 3]; 3];
        for bh in &self.punctures {
            let rvec = [p[0] - bh.pos[0], p[1] - bh.pos[1], p[2] - bh.pos[2]];
            let r = dist(p, bh.pos).max(self.eps);
            let n = [rvec[0] / r, rvec[1] / r, rvec[2] / r];
            let pn = bh.momentum[0] * n[0] + bh.momentum[1] * n[1] + bh.momentum[2] * n[2];
            // Momentum part: 3/(2r²)[Pᵢnⱼ + Pⱼnᵢ − (δᵢⱼ − nᵢnⱼ)(P·n)].
            for i in 0..3 {
                for j in 0..3 {
                    let delta = if i == j { 1.0 } else { 0.0 };
                    a[i][j] += 1.5 / (r * r)
                        * (bh.momentum[i] * n[j] + bh.momentum[j] * n[i]
                            - (delta - n[i] * n[j]) * pn);
                }
            }
            // Spin part: 3/r³ [εₖᵢₗ Sᵏ nˡ nⱼ + εₖⱼₗ Sᵏ nˡ nᵢ].
            let sxn = cross(bh.spin, n);
            for i in 0..3 {
                for j in 0..3 {
                    a[i][j] += 3.0 / (r * r * r) * (sxn[i] * n[j] + sxn[j] * n[i]);
                }
            }
        }
        a
    }

    /// Evaluate all 24 BSSN fields at a point (flat conformal metric).
    pub fn evaluate(&self, p: [f64; 3], out: &mut [f64]) {
        debug_assert!(out.len() >= NUM_VARS);
        out.iter_mut().take(NUM_VARS).for_each(|v| *v = 0.0);
        let psi = self.psi(p);
        let chi = psi.powi(-4);
        out[var::ALPHA] = psi.powi(-2); // pre-collapsed lapse
        out[var::CHI] = chi;
        out[var::gt(0, 0)] = 1.0;
        out[var::gt(1, 1)] = 1.0;
        out[var::gt(2, 2)] = 1.0;
        // Ã_ij = ψ^{-6} Â_ij (conformal weight), K = 0.
        let abar = self.abar(p);
        let w = psi.powi(-6);
        for i in 0..3 {
            for j in i..3 {
                out[var::at(i, j)] = w * abar[i][j];
            }
        }
    }

    /// ADM-like mass estimate (sum of bare masses; adequate for grid
    /// sizing).
    pub fn total_mass(&self) -> f64 {
        self.punctures.iter().map(|b| b.mass).sum()
    }
}

fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
    (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
}

/// A linearized `+`-polarized gravitational wave packet travelling along
/// `z`: h₊(z, t) = A f(z − t) with a Gaussian-modulated sine profile.
///
/// In transverse-traceless gauge, to linear order:
/// γ̃_xx = 1 + h₊, γ̃_yy = 1 − h₊, Ã_xx = −½ ∂_t h₊ = ½ h₊′,
/// Ã_yy = −½ ∂_t h₊ = −... (signs below), everything else flat. The
/// closed-form solution h₊(z − t) makes this the convergence reference.
#[derive(Clone, Copy, Debug)]
pub struct LinearWaveData {
    /// Amplitude (must be ≪ 1 for the linearization).
    pub amplitude: f64,
    /// Packet center at t = 0.
    pub center: f64,
    /// Gaussian width.
    pub width: f64,
    /// Carrier wavenumber.
    pub k: f64,
}

impl LinearWaveData {
    pub fn new(amplitude: f64, center: f64, width: f64, k: f64) -> Self {
        assert!(amplitude.abs() < 0.1, "linearized data needs a small amplitude");
        Self { amplitude, center, width, k }
    }

    /// Profile f(ζ) with ζ = z − t (right-moving packet).
    pub fn profile(&self, zeta: f64) -> f64 {
        let u = zeta - self.center;
        (-u * u / (self.width * self.width)).exp() * (self.k * u).sin()
    }

    /// d f / d ζ.
    pub fn profile_deriv(&self, zeta: f64) -> f64 {
        let u = zeta - self.center;
        let g = (-u * u / (self.width * self.width)).exp();
        g * (self.k * (self.k * u).cos() - 2.0 * u / (self.width * self.width) * (self.k * u).sin())
    }

    /// Analytic h₊ at (z, t).
    pub fn h_plus(&self, z: f64, t: f64) -> f64 {
        self.amplitude * self.profile(z - t)
    }

    /// Evaluate all 24 BSSN fields at a point at t = 0.
    pub fn evaluate(&self, p: [f64; 3], out: &mut [f64]) {
        debug_assert!(out.len() >= NUM_VARS);
        out.iter_mut().take(NUM_VARS).for_each(|v| *v = 0.0);
        let h = self.amplitude * self.profile(p[2]);
        let hdot = -self.amplitude * self.profile_deriv(p[2]); // ∂_t at t=0
        out[var::ALPHA] = 1.0;
        out[var::CHI] = 1.0;
        out[var::gt(0, 0)] = 1.0 + h;
        out[var::gt(1, 1)] = 1.0 - h;
        out[var::gt(2, 2)] = 1.0;
        // ∂_t γ̃_ij = −2αÃ_ij  ⇒  Ã_xx = −½ ḣ, Ã_yy = +½ ḣ.
        out[var::at(0, 0)] = -0.5 * hdot;
        out[var::at(1, 1)] = 0.5 * hdot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_puncture_matches_schwarzschild_isotropic() {
        let d = PunctureData::new(vec![PunctureSpec {
            mass: 1.0,
            pos: [0.0; 3],
            momentum: [0.0; 3],
            spin: [0.0; 3],
        }]);
        let r = 5.0;
        let psi = d.psi([r, 0.0, 0.0]);
        assert!((psi - 1.1).abs() < 1e-14);
        let mut u = vec![0.0; NUM_VARS];
        d.evaluate([r, 0.0, 0.0], &mut u);
        assert!((u[var::CHI] - 1.1f64.powi(-4)).abs() < 1e-14);
        assert_eq!(u[var::K], 0.0);
        // Time-symmetric: Ã = 0.
        for i in 0..3 {
            for j in i..3 {
                assert_eq!(u[var::at(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn binary_masses_and_com() {
        let q = 4.0;
        let b = PunctureData::binary(q, 8.0);
        assert!((b.total_mass() - 1.0).abs() < 1e-14);
        let m1 = b.punctures[0].mass;
        let m2 = b.punctures[1].mass;
        assert!((m1 / m2 - q).abs() < 1e-12);
        // Center of mass at origin.
        let com: f64 = b.punctures.iter().map(|p| p.mass * p.pos[0]).sum();
        assert!(com.abs() < 1e-12);
        // Opposite momenta.
        assert!((b.punctures[0].momentum[1] + b.punctures[1].momentum[1]).abs() < 1e-14);
    }

    #[test]
    fn bowen_york_abar_is_trace_free() {
        let d = PunctureData::new(vec![PunctureSpec {
            mass: 0.5,
            pos: [1.0, 0.0, 0.0],
            momentum: [0.1, 0.2, -0.05],
            spin: [0.0, 0.0, 0.3],
        }]);
        for p in [[3.0, 1.0, -2.0], [0.0, 4.0, 0.5], [-2.0, -2.0, -2.0]] {
            let a = d.abar(p);
            let tr = a[0][0] + a[1][1] + a[2][2];
            assert!(tr.abs() < 1e-12, "trace {tr} at {p:?}");
            // Symmetric.
            for i in 0..3 {
                for j in 0..3 {
                    assert!((a[i][j] - a[j][i]).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn abar_falls_off() {
        let d = PunctureData::new(vec![PunctureSpec {
            mass: 0.5,
            pos: [0.0; 3],
            momentum: [0.0, 0.2, 0.0],
            spin: [0.0; 3],
        }]);
        let near = d.abar([2.0, 0.0, 0.0])[0][1].abs();
        let far = d.abar([8.0, 0.0, 0.0])[0][1].abs();
        // Momentum part ~ r⁻²: factor 16.
        assert!((near / far - 16.0).abs() < 0.5, "ratio {}", near / far);
    }

    #[test]
    fn linear_wave_fields() {
        let w = LinearWaveData::new(1e-3, 0.0, 2.0, 1.5);
        let mut u = vec![0.0; NUM_VARS];
        w.evaluate([0.3, -0.1, 0.7], &mut u);
        let h = w.h_plus(0.7, 0.0);
        assert!((u[var::gt(0, 0)] - (1.0 + h)).abs() < 1e-15);
        assert!((u[var::gt(1, 1)] - (1.0 - h)).abs() < 1e-15);
        assert_eq!(u[var::gt(2, 2)], 1.0);
        // Trace-free Ã: Ã_xx + Ã_yy = 0.
        assert!((u[var::at(0, 0)] + u[var::at(1, 1)]).abs() < 1e-15);
    }

    #[test]
    fn wave_packet_translates() {
        let w = LinearWaveData::new(1e-3, -5.0, 1.0, 2.0);
        // h(z, t) = h(z − t, 0).
        for (z, t) in [(0.0, 5.0), (2.0, 7.0), (-1.0, 4.0)] {
            assert!((w.h_plus(z, t) - w.h_plus(z - t, 0.0)).abs() < 1e-15);
        }
        // At the packet center the envelope is 1 and the slope is the
        // carrier wavenumber.
        assert!(w.h_plus(-5.0, 0.0).abs() < 1e-6); // sin(0) node at center
        assert!((w.profile_deriv(-5.0) - 2.0).abs() < 1e-12);
    }
}
