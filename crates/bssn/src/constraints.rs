//! Constraint monitors.
//!
//! The Einstein constraint equations are not evolved; their residuals
//! measure solution quality (they converge to zero at the discretization
//! order for constraint-satisfying data). We monitor
//!
//! * the **Hamiltonian constraint** `H = R + ⅔K² − Ã_ij Ã^ij`, with `R`
//!   the physical Ricci scalar assembled from the same intermediates as
//!   the RHS, and
//! * the **momentum constraint** `M^i = ∂_j Ã^ij + Γ̃^i_jk Ã^jk −
//!   (3/(2χ)) Ã^ij ∂_j χ − ⅔ γ̃^ij ∂_j K`.
//!
//! Both are evaluated pointwise from the 234-entry input vector.

use gw_expr::symbols::{input_d1, input_d2, input_value, var};

/// Hamiltonian constraint residual at one point.
pub fn hamiltonian(u: &[f64]) -> f64 {
    let chi = u[input_value(var::CHI)];
    let kk = u[input_value(var::K)];
    let inv_chi = 1.0 / chi;
    let mut gt = [[0.0f64; 3]; 3];
    let mut at = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            gt[i][j] = u[input_value(var::gt(i, j))];
            at[i][j] = u[input_value(var::at(i, j))];
        }
    }
    let gti = inverse(&gt);
    let dchi = [u[input_d1(var::CHI, 0)], u[input_d1(var::CHI, 1)], u[input_d1(var::CHI, 2)]];
    let gamt =
        [u[input_value(var::gamt(0))], u[input_value(var::gamt(1))], u[input_value(var::gamt(2))]];
    let dgamt = |i: usize, j: usize| u[input_d1(var::gamt(i), j)];
    let dgt = |k: usize, i: usize, j: usize| u[input_d1(var::gt(i, j), k)];
    let ddgt = |k: usize, l: usize, i: usize, j: usize| u[input_d2(var::gt(i, j), k, l)];
    let ddchi = |i: usize, j: usize| u[input_d2(var::CHI, i, j)];

    // Christoffels.
    let mut c1 = [[[0.0f64; 3]; 3]; 3];
    for l in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                c1[l][i][j] = 0.5 * (dgt(j, l, i) + dgt(i, l, j) - dgt(l, i, j));
            }
        }
    }
    let mut c2 = [[[0.0f64; 3]; 3]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for l in 0..3 {
                    s += gti[k][l] * c1[l][i][j];
                }
                c2[k][i][j] = s;
            }
        }
    }
    let mut cal_gamt = [0.0f64; 3];
    for (m, cg) in cal_gamt.iter_mut().enumerate() {
        let mut s = 0.0;
        for k in 0..3 {
            for l in 0..3 {
                s += gti[k][l] * c2[m][k][l];
            }
        }
        *cg = s;
    }

    // Conformal Ricci R̃_ij and χ part, as in the RHS.
    let mut rsum = 0.0; // γ̃^ij (R̃_ij + R^χ_ij) … then scale by χ for γ^ij
    let mut lap_chi = 0.0;
    let mut dchi2 = 0.0;
    for k in 0..3 {
        for l in 0..3 {
            lap_chi += gti[k][l] * ddchi(k, l);
            dchi2 += gti[k][l] * dchi[k] * dchi[l];
        }
    }
    let mut gamt_dchi = 0.0;
    for m in 0..3 {
        gamt_dchi += cal_gamt[m] * dchi[m];
    }
    let bracket = lap_chi - 1.5 * dchi2 * inv_chi - gamt_dchi;
    for i in 0..3 {
        for j in 0..3 {
            let mut rt = 0.0;
            for l in 0..3 {
                for m in 0..3 {
                    rt += -0.5 * gti[l][m] * ddgt(l, m, i, j);
                }
            }
            for k in 0..3 {
                rt += 0.5 * (gt[k][i] * dgamt(k, j) + gt[k][j] * dgamt(k, i));
                rt += 0.5 * gamt[k] * (c1[i][j][k] + c1[j][i][k]);
            }
            for l in 0..3 {
                for m in 0..3 {
                    for k in 0..3 {
                        rt += gti[l][m]
                            * (c2[k][l][i] * c1[j][k][m]
                                + c2[k][l][j] * c1[i][k][m]
                                + c2[k][i][m] * c1[k][l][j]);
                    }
                }
            }
            let mut cov = ddchi(i, j);
            for k in 0..3 {
                cov -= c2[k][i][j] * dchi[k];
            }
            let rchi = 0.5 * inv_chi * cov - 0.25 * inv_chi * inv_chi * dchi[i] * dchi[j]
                + 0.5 * inv_chi * gt[i][j] * bracket;
            rsum += gti[i][j] * (rt + rchi);
        }
    }
    let r_phys = chi * rsum; // γ^ij = χ γ̃^ij

    // Ã_ij Ã^ij.
    let mut at_u1 = [[0.0f64; 3]; 3];
    for k in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            for l in 0..3 {
                s += gti[k][l] * at[l][j];
            }
            at_u1[k][j] = s;
        }
    }
    let mut asq = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            let mut aij_up = 0.0;
            for k in 0..3 {
                aij_up += gti[j][k] * at_u1[i][k];
            }
            asq += aij_up * at[i][j];
        }
    }

    r_phys + 2.0 / 3.0 * kk * kk - asq
}

/// Momentum constraint residual (vector) at one point.
pub fn momentum(u: &[f64]) -> [f64; 3] {
    let chi = u[input_value(var::CHI)];
    let inv_chi = 1.0 / chi;
    let mut gt = [[0.0f64; 3]; 3];
    let mut at = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            gt[i][j] = u[input_value(var::gt(i, j))];
            at[i][j] = u[input_value(var::at(i, j))];
        }
    }
    let gti = inverse(&gt);
    let dchi = [u[input_d1(var::CHI, 0)], u[input_d1(var::CHI, 1)], u[input_d1(var::CHI, 2)]];
    let dk = [u[input_d1(var::K, 0)], u[input_d1(var::K, 1)], u[input_d1(var::K, 2)]];
    let dgt = |k: usize, i: usize, j: usize| u[input_d1(var::gt(i, j), k)];
    let dat = |k: usize, i: usize, j: usize| u[input_d1(var::at(i, j), k)];

    let mut c1 = [[[0.0f64; 3]; 3]; 3];
    for l in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                c1[l][i][j] = 0.5 * (dgt(j, l, i) + dgt(i, l, j) - dgt(l, i, j));
            }
        }
    }
    let mut c2 = [[[0.0f64; 3]; 3]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for l in 0..3 {
                    s += gti[k][l] * c1[l][i][j];
                }
                c2[k][i][j] = s;
            }
        }
    }

    // Ã^ij and ∂_j Ã^ij (via product rule with ∂γ̃^{-1} = −γ̃^{-1}∂γ̃ γ̃^{-1}).
    let mut at_u2 = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            for k in 0..3 {
                for l in 0..3 {
                    s += gti[i][k] * gti[j][l] * at[k][l];
                }
            }
            at_u2[i][j] = s;
        }
    }
    let mut out = [0.0f64; 3];
    for (i, o) in out.iter_mut().enumerate() {
        let mut s = 0.0;
        // ∂_j Ã^ij = γ̃^ik γ̃^jl ∂_j Ã_kl − (∂γ̃ terms) — assemble via the
        // covariant form: D̃_j Ã^ij = γ̃^ik γ̃^jl D̃_j Ã_kl with
        // D̃_j Ã_kl = ∂_j Ã_kl − Γ̃^m_jk Ã_ml − Γ̃^m_jl Ã_km.
        for j in 0..3 {
            for k in 0..3 {
                for l in 0..3 {
                    let mut cov = dat(j, k, l);
                    for m in 0..3 {
                        cov -= c2[m][j][k] * at[m][l] + c2[m][j][l] * at[k][m];
                    }
                    s += gti[i][k] * gti[j][l] * cov;
                }
            }
        }
        // + Γ̃^i_jk Ã^jk
        for j in 0..3 {
            for k in 0..3 {
                s += c2[i][j][k] * at_u2[j][k];
            }
        }
        // − (3/(2χ)) Ã^ij ∂_j χ − ⅔ γ̃^ij ∂_j K
        for j in 0..3 {
            s -= 1.5 * inv_chi * at_u2[i][j] * dchi[j];
            s -= 2.0 / 3.0 * gti[i][j] * dk[j];
        }
        *o = s;
    }
    out
}

fn inverse(gt: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let det = gt[0][0] * (gt[1][1] * gt[2][2] - gt[1][2] * gt[1][2])
        - gt[0][1] * (gt[0][1] * gt[2][2] - gt[0][2] * gt[1][2])
        + gt[0][2] * (gt[0][1] * gt[1][2] - gt[0][2] * gt[1][1]);
    let idet = 1.0 / det;
    let mut g = [[0.0f64; 3]; 3];
    g[0][0] = (gt[1][1] * gt[2][2] - gt[1][2] * gt[1][2]) * idet;
    g[0][1] = (gt[0][2] * gt[1][2] - gt[0][1] * gt[2][2]) * idet;
    g[0][2] = (gt[0][1] * gt[1][2] - gt[0][2] * gt[1][1]) * idet;
    g[1][1] = (gt[0][0] * gt[2][2] - gt[0][2] * gt[0][2]) * idet;
    g[1][2] = (gt[0][1] * gt[0][2] - gt[0][0] * gt[1][2]) * idet;
    g[2][2] = (gt[0][0] * gt[1][1] - gt[0][1] * gt[0][1]) * idet;
    g[1][0] = g[0][1];
    g[2][0] = g[0][2];
    g[2][1] = g[1][2];
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_expr::symbols::NUM_INPUTS;

    fn flat_inputs() -> Vec<f64> {
        let mut u = vec![0.0; NUM_INPUTS];
        u[input_value(var::ALPHA)] = 1.0;
        u[input_value(var::CHI)] = 1.0;
        u[input_value(var::gt(0, 0))] = 1.0;
        u[input_value(var::gt(1, 1))] = 1.0;
        u[input_value(var::gt(2, 2))] = 1.0;
        u
    }

    #[test]
    fn flat_space_satisfies_constraints() {
        let u = flat_inputs();
        assert!(hamiltonian(&u).abs() < 1e-14);
        let m = momentum(&u);
        assert!(m.iter().all(|x| x.abs() < 1e-14));
    }

    #[test]
    fn pure_k_violates_hamiltonian_quadratically() {
        let mut u = flat_inputs();
        u[input_value(var::K)] = 0.3;
        let h = hamiltonian(&u);
        assert!((h - 2.0 / 3.0 * 0.09).abs() < 1e-14);
    }

    #[test]
    fn k_gradient_violates_momentum() {
        let mut u = flat_inputs();
        u[input_d1(var::K, 1)] = 0.6;
        let m = momentum(&u);
        assert!((m[1] + 0.4).abs() < 1e-14, "{m:?}");
        assert!(m[0].abs() < 1e-14 && m[2].abs() < 1e-14);
    }

    #[test]
    fn schwarzschild_conformal_data_satisfies_hamiltonian() {
        // For ψ = 1 + M/(2r) time-symmetric data the Hamiltonian
        // constraint is exactly satisfied: ∇²ψ = 0 away from the
        // puncture. Check at a sample point with analytic derivatives.
        // χ = ψ⁻⁴; at p = (r,0,0): ∂_xχ = −4ψ⁻⁵ψ_x with ψ_x = −M/(2r²).
        // Second derivatives via the radial formulas.
        let m = 1.0;
        let x: f64 = 3.0;
        let r = x;
        let psi = 1.0 + m / (2.0 * r);
        let mut u = flat_inputs();
        u[input_value(var::CHI)] = psi.powi(-4);
        // ψ_i = −M x_i/(2r³). At (x,0,0): ψ_x = −M/(2r²), ψ_y = ψ_z = 0.
        let psi_x = -m / (2.0 * r * r);
        // ψ_xx = −M/(2) (1/r³ − 3x²/r⁵) = −M/2 · (r² − 3x²)/r⁵ = M/r³ at y=z=0.
        let psi_xx = m / (r * r * r);
        let psi_yy = -m / (2.0 * r * r * r);
        let psi_zz = psi_yy;
        let chi_d = |pd: f64| -4.0 * psi.powi(-5) * pd;
        let chi_dd =
            |pa: f64, pb: f64, pab: f64| 20.0 * psi.powi(-6) * pa * pb - 4.0 * psi.powi(-5) * pab;
        u[input_d1(var::CHI, 0)] = chi_d(psi_x);
        u[input_d2(var::CHI, 0, 0)] = chi_dd(psi_x, psi_x, psi_xx);
        u[input_d2(var::CHI, 1, 1)] = chi_dd(0.0, 0.0, psi_yy);
        u[input_d2(var::CHI, 2, 2)] = chi_dd(0.0, 0.0, psi_zz);
        let h = hamiltonian(&u);
        assert!(h.abs() < 1e-12, "Hamiltonian residual {h}");
    }
}
