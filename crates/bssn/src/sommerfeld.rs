//! Sommerfeld (radiative) outer-boundary condition.
//!
//! At the outer boundary every BSSN field is assumed to behave like an
//! outgoing spherical wave around its asymptotic value:
//!
//! ```text
//! ∂_t u = −v (x^i/r) ∂_i u − v (u − u_∞)/r
//! ```
//!
//! with wave speed `v` (1 for most fields, √2 for the gauge fields under
//! 1+log slicing). The solver overwrites the interior RHS with this
//! expression at grid points of octants touching the physical boundary.

use gw_expr::symbols::{input_d1, input_value, var, NUM_VARS};

/// Asymptotic value of each variable (flat space at infinity).
pub fn asymptotic_value(v: usize) -> f64 {
    if v == var::ALPHA
        || v == var::CHI
        || v == var::gt(0, 0)
        || v == var::gt(1, 1)
        || v == var::gt(2, 2)
    {
        1.0
    } else {
        0.0
    }
}

/// Characteristic speed of each variable.
pub fn wave_speed(v: usize) -> f64 {
    // 1+log lapse propagates at √2 α... ≈ √2 asymptotically; the metric
    // and curvature fields at the coordinate speed of light.
    if v == var::ALPHA {
        std::f64::consts::SQRT_2
    } else {
        1.0
    }
}

/// Sommerfeld RHS for all 24 variables at one point with position `pos`
/// (relative to the domain center) and the 234-entry inputs `u`.
pub fn sommerfeld_rhs_point(u: &[f64], pos: [f64; 3], out: &mut [f64]) {
    let r = (pos[0] * pos[0] + pos[1] * pos[1] + pos[2] * pos[2]).sqrt().max(1e-10);
    let n = [pos[0] / r, pos[1] / r, pos[2] / r];
    for v in 0..NUM_VARS {
        let speed = wave_speed(v);
        let mut adv = 0.0;
        for (i, ni) in n.iter().enumerate() {
            adv += ni * u[input_d1(v, i)];
        }
        out[v] = -speed * adv - speed * (u[input_value(v)] - asymptotic_value(v)) / r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_expr::symbols::NUM_INPUTS;

    #[test]
    fn asymptotic_state_has_zero_rhs() {
        let mut u = vec![0.0; NUM_INPUTS];
        for v in 0..NUM_VARS {
            u[input_value(v)] = asymptotic_value(v);
        }
        let mut out = vec![0.0; NUM_VARS];
        sommerfeld_rhs_point(&u, [100.0, 0.0, 0.0], &mut out);
        assert!(out.iter().all(|x| x.abs() < 1e-14));
    }

    #[test]
    fn outgoing_wave_is_advected() {
        // u = u∞ + f(r − t)/r satisfies the condition exactly; check the
        // sign structure: positive radial gradient of K ⇒ negative ∂_t K.
        let mut u = vec![0.0; NUM_INPUTS];
        for v in 0..NUM_VARS {
            u[input_value(v)] = asymptotic_value(v);
        }
        u[input_d1(var::K, 0)] = 0.5;
        let mut out = vec![0.0; NUM_VARS];
        sommerfeld_rhs_point(&u, [50.0, 0.0, 0.0], &mut out);
        assert!((out[var::K] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn damping_towards_asymptotics() {
        let mut u = vec![0.0; NUM_INPUTS];
        for v in 0..NUM_VARS {
            u[input_value(v)] = asymptotic_value(v);
        }
        u[input_value(var::CHI)] = 1.2; // above asymptotic value
        let mut out = vec![0.0; NUM_VARS];
        sommerfeld_rhs_point(&u, [0.0, 40.0, 0.0], &mut out);
        assert!(out[var::CHI] < 0.0, "χ must relax down, got {}", out[var::CHI]);
        assert!((out[var::CHI] + 0.2 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_speed_faster() {
        let mut u = vec![0.0; NUM_INPUTS];
        u[input_d1(var::ALPHA, 2)] = 1.0;
        u[input_d1(var::K, 2)] = 1.0;
        u[input_value(var::ALPHA)] = 1.0;
        u[input_value(var::CHI)] = 1.0;
        u[input_value(var::gt(0, 0))] = 1.0;
        u[input_value(var::gt(1, 1))] = 1.0;
        u[input_value(var::gt(2, 2))] = 1.0;
        let mut out = vec![0.0; NUM_VARS];
        sommerfeld_rhs_point(&u, [0.0, 0.0, 30.0], &mut out);
        assert!(
            (out[var::ALPHA].abs() / out[var::K].abs() - std::f64::consts::SQRT_2).abs() < 1e-12
        );
    }
}
