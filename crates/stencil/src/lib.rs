//! Finite-difference stencils and intergrid transfer operators.
//!
//! The paper discretizes the BSSN equations with 6th-order centered finite
//! differences (`O(h^6)`), upwind-biased advective derivatives for the
//! shift-advection terms, and Kreiss–Oliger dissipation built from the 8th
//! derivative (the standard companion to a 6th-order scheme). Octants carry
//! `r = 7` points per side padded by `k = 3` ghost layers, so a padded patch
//! is `13^3` and interior stencils never leave the patch.
//!
//! Modules:
//! * [`fd`] — 1D stencil coefficient tables and 3D patch application
//!   (first, second, mixed, advective derivatives).
//! * [`ko`] — Kreiss–Oliger dissipation operator.
//! * [`interp`] — 1D polynomial prolongation (coarse→fine) and injection
//!   (fine→coarse) operators and their 3D tensor-product application, used
//!   by the octant-to-patch kernel and by regridding.
//! * [`patch`] — index arithmetic for `r^3` octant blocks and
//!   `(r+2k)^3` padded patches.

pub mod fd;
pub mod interp;
pub mod ko;
pub mod patch;

pub use fd::DerivOps;
pub use interp::Prolongation;
pub use ko::ko_dissipation;
pub use patch::{PatchLayout, PADDING, PATCH_SIDE, POINTS_PER_SIDE};
