//! Index arithmetic for octant blocks and padded patches.
//!
//! Terminology follows section III-C of the paper: each leaf octant carries
//! `r^3` uniformly spaced grid points; padding it with `k` ghost points per
//! direction yields a *patch* of `(r+2k)^3` points. For the 6th-order
//! stencils the paper fixes `r = 7`, `k = 3`, so patches are `13^3 = 2197`
//! points and octant blocks `7^3 = 343` points (which is also the GPU thread
//! block size in the fused RHS kernel, `__launch_bounds__(343, 3)`).

/// Grid points per octant side (`r` in the paper).
pub const POINTS_PER_SIDE: usize = 7;
/// Ghost layers per direction (`k` in the paper).
pub const PADDING: usize = 3;
/// Padded patch side (`r + 2k`).
pub const PATCH_SIDE: usize = POINTS_PER_SIDE + 2 * PADDING;
/// Points in an octant block.
pub const BLOCK_VOLUME: usize = POINTS_PER_SIDE * POINTS_PER_SIDE * POINTS_PER_SIDE;
/// Points in a padded patch.
pub const PATCH_VOLUME: usize = PATCH_SIDE * PATCH_SIDE * PATCH_SIDE;

/// Layout helper for a cubic block of side `n` stored x-fastest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatchLayout {
    pub n: usize,
}

impl PatchLayout {
    /// The `r^3` octant block layout.
    pub const fn octant() -> Self {
        Self { n: POINTS_PER_SIDE }
    }

    /// The `(r+2k)^3` padded patch layout.
    pub const fn padded() -> Self {
        Self { n: PATCH_SIDE }
    }

    /// Total number of points.
    #[inline]
    pub const fn volume(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Flatten (i, j, k) — x fastest.
    #[inline]
    pub const fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.n + j) * self.n + i
    }

    /// Inverse of [`Self::idx`].
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let i = idx % self.n;
        let j = (idx / self.n) % self.n;
        let k = idx / (self.n * self.n);
        (i, j, k)
    }

    /// Iterate all (i, j, k) triples in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |k| (0..n).flat_map(move |j| (0..n).map(move |i| (i, j, k))))
    }

    /// True if the point is in the interior region `[lo, n-hi)` in every
    /// axis.
    #[inline]
    pub const fn is_interior(&self, i: usize, j: usize, k: usize, margin: usize) -> bool {
        i >= margin
            && i < self.n - margin
            && j >= margin
            && j < self.n - margin
            && k >= margin
            && k < self.n - margin
    }
}

/// Copy the interior `r^3` block of a padded patch into an octant block.
///
/// This is the *patch-to-octant* data movement (a pure copy — zero
/// arithmetic intensity, as Table III notes).
pub fn patch_interior_to_octant(patch: &[f64], octant: &mut [f64]) {
    let p = PatchLayout::padded();
    let o = PatchLayout::octant();
    debug_assert_eq!(patch.len(), p.volume());
    debug_assert_eq!(octant.len(), o.volume());
    for k in 0..POINTS_PER_SIDE {
        for j in 0..POINTS_PER_SIDE {
            let src = p.idx(PADDING, j + PADDING, k + PADDING);
            let dst = o.idx(0, j, k);
            octant[dst..dst + POINTS_PER_SIDE].copy_from_slice(&patch[src..src + POINTS_PER_SIDE]);
        }
    }
}

/// Copy an octant block into the interior of a padded patch.
pub fn octant_to_patch_interior(octant: &[f64], patch: &mut [f64]) {
    let p = PatchLayout::padded();
    let o = PatchLayout::octant();
    debug_assert_eq!(patch.len(), p.volume());
    debug_assert_eq!(octant.len(), o.volume());
    for k in 0..POINTS_PER_SIDE {
        for j in 0..POINTS_PER_SIDE {
            let dst = p.idx(PADDING, j + PADDING, k + PADDING);
            let src = o.idx(0, j, k);
            patch[dst..dst + POINTS_PER_SIDE].copy_from_slice(&octant[src..src + POINTS_PER_SIDE]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        assert_eq!(POINTS_PER_SIDE, 7);
        assert_eq!(PADDING, 3);
        assert_eq!(PATCH_SIDE, 13);
        assert_eq!(BLOCK_VOLUME, 343);
        assert_eq!(PATCH_VOLUME, 2197);
    }

    #[test]
    fn idx_coords_roundtrip() {
        let l = PatchLayout::padded();
        for idx in 0..l.volume() {
            let (i, j, k) = l.coords(idx);
            assert_eq!(l.idx(i, j, k), idx);
        }
    }

    #[test]
    fn iter_visits_all_in_order() {
        let l = PatchLayout { n: 3 };
        let pts: Vec<_> = l.iter().collect();
        assert_eq!(pts.len(), 27);
        assert_eq!(pts[0], (0, 0, 0));
        assert_eq!(pts[1], (1, 0, 0)); // x fastest
        assert_eq!(pts[26], (2, 2, 2));
        for (n, &(i, j, k)) in pts.iter().enumerate() {
            assert_eq!(l.idx(i, j, k), n);
        }
    }

    #[test]
    fn interior_margins() {
        let l = PatchLayout::padded();
        assert!(l.is_interior(3, 3, 3, PADDING));
        assert!(l.is_interior(9, 9, 9, PADDING));
        assert!(!l.is_interior(2, 5, 5, PADDING));
        assert!(!l.is_interior(5, 5, 10, PADDING));
    }

    #[test]
    fn octant_patch_copy_roundtrip() {
        let o = PatchLayout::octant();
        let octant: Vec<f64> = (0..o.volume()).map(|i| i as f64).collect();
        let mut patch = vec![f64::NAN; PatchLayout::padded().volume()];
        octant_to_patch_interior(&octant, &mut patch);
        let mut back = vec![0.0; o.volume()];
        patch_interior_to_octant(&patch, &mut back);
        assert_eq!(octant, back);
    }

    #[test]
    fn patch_interior_copy_leaves_ghosts_untouched() {
        let o = PatchLayout::octant();
        let octant = vec![1.0; o.volume()];
        let mut patch = vec![-2.0; PatchLayout::padded().volume()];
        octant_to_patch_interior(&octant, &mut patch);
        let p = PatchLayout::padded();
        let mut interior = 0;
        for (i, j, k) in p.iter() {
            let v = patch[p.idx(i, j, k)];
            if p.is_interior(i, j, k, PADDING) {
                assert_eq!(v, 1.0);
                interior += 1;
            } else {
                assert_eq!(v, -2.0);
            }
        }
        assert_eq!(interior, BLOCK_VOLUME);
    }
}
