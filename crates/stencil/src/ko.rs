//! Kreiss–Oliger dissipation.
//!
//! KO dissipation (Kreiss & Oliger 1972) removes the high-frequency noise
//! generated near the punctures (section III-A of the paper). For a scheme
//! with `k = 3` ghost layers the widest centered difference that fits is the
//! 7-point 6th difference, giving the operator
//!
//! ```text
//! Q u = σ / (64 h) · (u_{i-3} − 6 u_{i-2} + 15 u_{i-1} − 20 u_i
//!                     + 15 u_{i+1} − 6 u_{i+2} + u_{i+3})
//! ```
//!
//! applied along each axis and summed — exactly Dendro-GR's `ko_deriv`
//! with the conventional `2^{2p}` normalization (`p = 3` → 64). The sign is
//! chosen so that `∂_t u += Q u` damps: the symbol of the 6th difference is
//! `−(2 sin(ξ/2))^6 ≤ 0`, scaled by `+σ/64`.

use crate::patch::{PatchLayout, PADDING, PATCH_SIDE, POINTS_PER_SIDE};

/// 7-point 6th-difference coefficients (binomial row 6, alternating sign).
pub const KO_WEIGHTS: [f64; 7] = [1.0, -6.0, 15.0, -20.0, 15.0, -6.0, 1.0];

/// Normalization `2^{2p}` for `p = 3`.
pub const KO_NORM: f64 = 64.0;

/// Apply KO dissipation to a padded patch, **accumulating** `σ Q u` into
/// the `r^3` output block (so it can be fused into an RHS that was already
/// written).
pub fn ko_dissipation(sigma: f64, inv_h: f64, patch: &[f64], out: &mut [f64]) {
    let p = PatchLayout::padded();
    let o = PatchLayout::octant();
    debug_assert_eq!(patch.len(), p.volume());
    debug_assert_eq!(out.len(), o.volume());
    let scale = sigma * inv_h / KO_NORM;
    let strides = [1isize, PATCH_SIDE as isize, (PATCH_SIDE * PATCH_SIDE) as isize];
    for kz in 0..POINTS_PER_SIDE {
        for ky in 0..POINTS_PER_SIDE {
            for kx in 0..POINTS_PER_SIDE {
                let c = p.idx(kx + PADDING, ky + PADDING, kz + PADDING) as isize;
                let mut acc = 0.0;
                for &st in &strides {
                    for (t, &w) in KO_WEIGHTS.iter().enumerate() {
                        let off = t as isize - 3;
                        acc += w * patch[(c + off * st) as usize];
                    }
                }
                out[o.idx(kx, ky, kz)] += acc * scale;
            }
        }
    }
}

/// The 1D KO derivative of a single axis, written (not accumulated) to the
/// output block. Used where the code generator wants the 72 KO derivatives
/// as separate inputs (section IV-B counts them in the 210).
pub fn ko_deriv_axis(axis: usize, inv_h: f64, patch: &[f64], out: &mut [f64]) {
    let p = PatchLayout::padded();
    let o = PatchLayout::octant();
    debug_assert_eq!(patch.len(), p.volume());
    debug_assert_eq!(out.len(), o.volume());
    let st = match axis {
        0 => 1isize,
        1 => PATCH_SIDE as isize,
        _ => (PATCH_SIDE * PATCH_SIDE) as isize,
    };
    let scale = inv_h / KO_NORM;
    for kz in 0..POINTS_PER_SIDE {
        for ky in 0..POINTS_PER_SIDE {
            for kx in 0..POINTS_PER_SIDE {
                let c = p.idx(kx + PADDING, ky + PADDING, kz + PADDING) as isize;
                let mut acc = 0.0;
                for (t, &w) in KO_WEIGHTS.iter().enumerate() {
                    let off = t as isize - 3;
                    acc += w * patch[(c + off * st) as usize];
                }
                out[o.idx(kx, ky, kz)] = acc * scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_patch(f: impl Fn(f64, f64, f64) -> f64, h: f64) -> Vec<f64> {
        let p = PatchLayout::padded();
        let mut v = vec![0.0; p.volume()];
        for (i, j, k) in p.iter() {
            let x = (i as f64 - PADDING as f64) * h;
            let y = (j as f64 - PADDING as f64) * h;
            let z = (k as f64 - PADDING as f64) * h;
            v[p.idx(i, j, k)] = f(x, y, z);
        }
        v
    }

    #[test]
    fn weights_sum_to_zero() {
        // A 6th difference annihilates constants (and polynomials ≤ 5).
        assert_eq!(KO_WEIGHTS.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn vanishes_on_degree5_polynomial() {
        let h = 0.1;
        let patch = fill_patch(|x, y, z| x.powi(5) + y.powi(4) - 3.0 * z.powi(3) + x * y, h);
        let mut out = vec![0.0; PatchLayout::octant().volume()];
        ko_dissipation(0.4, 1.0 / h, &patch, &mut out);
        for v in &out {
            assert!(v.abs() < 1e-6, "KO must annihilate smooth low-order fields, got {v}");
        }
    }

    #[test]
    fn damps_highest_frequency_mode() {
        // The Nyquist mode u_i = (-1)^i is the worst offender; Q u must have
        // sign opposite to u (damping) at every point.
        let p = PatchLayout::padded();
        let mut patch = vec![0.0; p.volume()];
        for (i, j, k) in p.iter() {
            patch[p.idx(i, j, k)] = if (i + j + k) % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut out = vec![0.0; PatchLayout::octant().volume()];
        let sigma = 0.1;
        ko_dissipation(sigma, 1.0, &patch, &mut out);
        let o = PatchLayout::octant();
        for (i, j, k) in o.iter() {
            let u = patch[p.idx(i + PADDING, j + PADDING, k + PADDING)];
            let q = out[o.idx(i, j, k)];
            assert!(u * q < 0.0, "Q u must oppose u at ({i},{j},{k}): u={u} q={q}");
            // Magnitude: 3 axes × 64/64 × σ = 3σ per unit amplitude.
            assert!((q.abs() - 3.0 * sigma).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulates_into_output() {
        let patch = fill_patch(|x, _, _| (8.0 * x).sin(), 0.1);
        let mut out = vec![5.0; PatchLayout::octant().volume()];
        let mut fresh = vec![0.0; PatchLayout::octant().volume()];
        ko_dissipation(0.3, 10.0, &patch, &mut out);
        ko_dissipation(0.3, 10.0, &patch, &mut fresh);
        for (a, b) in out.iter().zip(fresh.iter()) {
            assert!((a - (b + 5.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn axis_derivatives_sum_to_total() {
        let patch = fill_patch(|x, y, z| (5.0 * x).sin() + (7.0 * y).cos() + (3.0 * z).sin(), 0.1);
        let o = PatchLayout::octant();
        let mut total = vec![0.0; o.volume()];
        ko_dissipation(1.0, 10.0, &patch, &mut total);
        let mut parts = vec![0.0; o.volume()];
        for axis in 0..3 {
            let mut a = vec![0.0; o.volume()];
            ko_deriv_axis(axis, 10.0, &patch, &mut a);
            for (p, v) in parts.iter_mut().zip(a.iter()) {
                *p += v;
            }
        }
        for (a, b) in total.iter().zip(parts.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn scales_linearly_with_sigma() {
        let patch = fill_patch(|x, y, _| (9.0 * x).sin() * (9.0 * y).cos(), 0.1);
        let o = PatchLayout::octant();
        let mut s1 = vec![0.0; o.volume()];
        let mut s2 = vec![0.0; o.volume()];
        ko_dissipation(0.2, 10.0, &patch, &mut s1);
        ko_dissipation(0.4, 10.0, &patch, &mut s2);
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }
}
