//! Intergrid transfer: prolongation (coarse→fine) and injection
//! (fine→coarse) operators.
//!
//! Interpolations are tensor products of 1D operators (section IV-A,
//! "Interpolations"): the 1D prolongation maps the `r` coarse points of an
//! octant edge to the `2r − 1` fine points of its refined edge (even fine
//! points coincide with coarse points; odd points are degree-`r−1` Lagrange
//! midpoint interpolants). A full octant prolongation is three 1D passes
//! (x, then y, then z slices), costing `O(3(2r−1)r^3)` operations — the
//! count used for the paper's arithmetic-intensity bound `Q_U ≤ 5.07`
//! (Eq. 20).

use crate::patch::{PatchLayout, POINTS_PER_SIDE};

/// Fine points along a refined edge: `2r − 1`.
pub const FINE_SIDE: usize = 2 * POINTS_PER_SIDE - 1;

/// Lagrange basis weights for evaluating at `x` from nodes `nodes`.
pub fn lagrange_weights(nodes: &[f64], x: f64) -> Vec<f64> {
    let n = nodes.len();
    let mut w = vec![0.0; n];
    for j in 0..n {
        let mut p = 1.0;
        for m in 0..n {
            if m != j {
                p *= (x - nodes[m]) / (nodes[j] - nodes[m]);
            }
        }
        w[j] = p;
    }
    w
}

/// Lagrange basis weights together with their first and second
/// derivatives at `x` — differentiation of the interpolant, used for
/// evaluating gradients/Hessians of grid fields at off-grid points
/// (e.g. the Weyl-scalar extraction on spheres).
pub fn lagrange_weights_d2(nodes: &[f64], x: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = nodes.len();
    let mut w = vec![0.0; n];
    let mut dw = vec![0.0; n];
    let mut ddw = vec![0.0; n];
    for j in 0..n {
        // ℓ_j(x) = Π_{m≠j} (x − x_m)/(x_j − x_m); differentiate the
        // product analytically via sums over excluded factors.
        let denom: f64 = (0..n).filter(|&m| m != j).map(|m| nodes[j] - nodes[m]).product();
        let mut p0 = 1.0; // Π (x − x_m)
        for (m, &xm) in nodes.iter().enumerate() {
            if m != j {
                p0 *= x - xm;
            }
        }
        // First derivative: Σ_k Π_{m≠j,k} (x − x_m).
        let mut p1 = 0.0;
        let mut p2 = 0.0;
        for k in 0..n {
            if k == j {
                continue;
            }
            let mut prod_k = 1.0;
            for (m, &xm) in nodes.iter().enumerate() {
                if m != j && m != k {
                    prod_k *= x - xm;
                }
            }
            p1 += prod_k;
            // Second derivative: Σ_{k≠l} Π_{m≠j,k,l} (x − x_m).
            for l in 0..n {
                if l == j || l == k {
                    continue;
                }
                let mut prod_kl = 1.0;
                for (m, &xm) in nodes.iter().enumerate() {
                    if m != j && m != k && m != l {
                        prod_kl *= x - xm;
                    }
                }
                p2 += prod_kl;
            }
        }
        w[j] = p0 / denom;
        dw[j] = p1 / denom;
        ddw[j] = p2 / denom;
    }
    (w, dw, ddw)
}

/// The `(2r−1) × r` 1D prolongation matrix: row `i` holds the weights that
/// produce fine point `i` (at coarse coordinate `i/2`) from the `r` coarse
/// points at integer coordinates.
pub fn prolong_matrix() -> Vec<[f64; POINTS_PER_SIDE]> {
    let nodes: Vec<f64> = (0..POINTS_PER_SIDE).map(|i| i as f64).collect();
    let mut rows = Vec::with_capacity(FINE_SIDE);
    for i in 0..FINE_SIDE {
        let x = i as f64 * 0.5;
        let w = lagrange_weights(&nodes, x);
        let mut row = [0.0; POINTS_PER_SIDE];
        row.copy_from_slice(&w);
        rows.push(row);
    }
    rows
}

/// Inject a fine edge (length `2r−1`) onto the coarse edge (length `r`) by
/// taking the coincident (even) points. Exact for grid-aligned refinement.
pub fn inject_1d(fine: &[f64], coarse: &mut [f64]) {
    debug_assert_eq!(fine.len(), FINE_SIDE);
    debug_assert_eq!(coarse.len(), POINTS_PER_SIDE);
    for (c, f) in coarse.iter_mut().zip(fine.iter().step_by(2)) {
        *c = *f;
    }
}

/// Reusable temporaries for [`Prolongation::prolong3d_ws`].
pub struct ProlongWorkspace {
    t1: Vec<f64>,
    t2: Vec<f64>,
}

impl Default for ProlongWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ProlongWorkspace {
    pub fn new() -> Self {
        let r = POINTS_PER_SIDE;
        let f = FINE_SIDE;
        Self { t1: vec![0.0; f * r * r], t2: vec![0.0; f * f * r] }
    }
}

/// Precomputed tensor-product prolongation operator.
pub struct Prolongation {
    rows: Vec<[f64; POINTS_PER_SIDE]>,
}

impl Default for Prolongation {
    fn default() -> Self {
        Self::new()
    }
}

impl Prolongation {
    pub fn new() -> Self {
        Self { rows: prolong_matrix() }
    }

    /// Number of f64 values in the operator table (`(2r−1) × r`), used by
    /// the performance model for the `2r^2`-ish operator-load term.
    pub fn table_len(&self) -> usize {
        self.rows.len() * POINTS_PER_SIDE
    }

    /// Prolong a `r^3` coarse octant to the full `(2r−1)^3` fine block via
    /// three 1D passes. Returns the flop count performed (for the
    /// simulator's counters). Allocates internal temporaries; hot loops
    /// should use [`Prolongation::prolong3d_ws`].
    pub fn prolong3d(&self, coarse: &[f64], fine: &mut [f64]) -> u64 {
        let mut ws = ProlongWorkspace::new();
        self.prolong3d_ws(coarse, fine, &mut ws)
    }

    /// Allocation-free variant of [`Prolongation::prolong3d`].
    pub fn prolong3d_ws(&self, coarse: &[f64], fine: &mut [f64], ws: &mut ProlongWorkspace) -> u64 {
        let r = POINTS_PER_SIDE;
        let f = FINE_SIDE;
        debug_assert_eq!(coarse.len(), r * r * r);
        debug_assert_eq!(fine.len(), f * f * f);
        let mut flops = 0u64;
        // Pass 1: x direction, (r,r,r) -> (f,r,r).
        let t1 = &mut ws.t1;
        for kz in 0..r {
            for ky in 0..r {
                for i in 0..f {
                    let row = &self.rows[i];
                    let mut acc = 0.0;
                    for (c, w) in row.iter().enumerate() {
                        acc += w * coarse[(kz * r + ky) * r + c];
                    }
                    t1[(kz * r + ky) * f + i] = acc;
                    flops += 2 * r as u64;
                }
            }
        }
        // Pass 2: y direction, (f,r,r) -> (f,f,r).
        let t2 = &mut ws.t2;
        for kz in 0..r {
            for j in 0..f {
                let row = &self.rows[j];
                for i in 0..f {
                    let mut acc = 0.0;
                    for (c, w) in row.iter().enumerate() {
                        acc += w * t1[(kz * r + c) * f + i];
                    }
                    t2[(kz * f + j) * f + i] = acc;
                    flops += 2 * r as u64;
                }
            }
        }
        // Pass 3: z direction, (f,f,r) -> (f,f,f).
        for kk in 0..f {
            let row = &self.rows[kk];
            for j in 0..f {
                for i in 0..f {
                    let mut acc = 0.0;
                    for (c, w) in row.iter().enumerate() {
                        acc += w * t2[(c * f + j) * f + i];
                    }
                    fine[(kk * f + j) * f + i] = acc;
                    flops += 2 * r as u64;
                }
            }
        }
        flops
    }

    /// Prolong directly into one child's `r^3` block (`child` is the Morton
    /// child index: bit 0 = x-high, bit 1 = y-high, bit 2 = z-high).
    pub fn prolong_to_child(&self, coarse: &[f64], child: usize, out: &mut [f64]) -> u64 {
        let r = POINTS_PER_SIDE;
        debug_assert!(child < 8);
        debug_assert_eq!(out.len(), r * r * r);
        let mut fine = vec![0.0f64; FINE_SIDE * FINE_SIDE * FINE_SIDE];
        let flops = self.prolong3d(coarse, &mut fine);
        let ox = (child & 1) * (r - 1);
        let oy = ((child >> 1) & 1) * (r - 1);
        let oz = ((child >> 2) & 1) * (r - 1);
        let l = PatchLayout::octant();
        for kz in 0..r {
            for ky in 0..r {
                for kx in 0..r {
                    out[l.idx(kx, ky, kz)] =
                        fine[((kz + oz) * FINE_SIDE + (ky + oy)) * FINE_SIDE + (kx + ox)];
                }
            }
        }
        flops
    }

    /// Restrict (inject) a child's `r^3` block back onto the parent: writes
    /// the `⌈r/2⌉^3` coincident parent points covered by that child.
    pub fn inject_from_child(&self, child_data: &[f64], child: usize, parent: &mut [f64]) {
        let r = POINTS_PER_SIDE;
        debug_assert!(child < 8);
        debug_assert_eq!(child_data.len(), r * r * r);
        debug_assert_eq!(parent.len(), r * r * r);
        let half = r / 2; // 3 for r = 7
        let ox = (child & 1) * half;
        let oy = ((child >> 1) & 1) * half;
        let oz = ((child >> 2) & 1) * half;
        let l = PatchLayout::octant();
        // Child fine point 2m coincides with parent point offset + m.
        for mz in 0..=half {
            for my in 0..=half {
                for mx in 0..=half {
                    parent[l.idx(ox + mx, oy + my, oz + mz)] =
                        child_data[l.idx(2 * mx, 2 * my, 2 * mz)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prolong_matrix_rows_are_partition_of_unity() {
        for row in prolong_matrix() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn even_rows_are_injection() {
        let m = prolong_matrix();
        for i in (0..FINE_SIDE).step_by(2) {
            for (c, w) in m[i].iter().enumerate() {
                let expect = if c == i / 2 { 1.0 } else { 0.0 };
                assert!((w - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lagrange_weights_exact_for_polynomials() {
        let nodes: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let f = |x: f64| 2.0 * x.powi(6) - x.powi(3) + 4.0;
        let x = 2.5;
        let w = lagrange_weights(&nodes, x);
        let approx: f64 = w.iter().zip(nodes.iter()).map(|(w, n)| w * f(*n)).sum();
        assert!((approx - f(x)).abs() < 1e-9);
    }

    fn octant_field(f: impl Fn(f64, f64, f64) -> f64) -> Vec<f64> {
        let r = POINTS_PER_SIDE;
        let l = PatchLayout::octant();
        let mut v = vec![0.0; r * r * r];
        for (i, j, k) in l.iter() {
            v[l.idx(i, j, k)] = f(i as f64, j as f64, k as f64);
        }
        v
    }

    #[test]
    fn prolong3d_exact_on_polynomial() {
        let p = Prolongation::new();
        let f = |x: f64, y: f64, z: f64| x * x * y - 0.5 * z.powi(3) + x * y * z + 1.0;
        let coarse = octant_field(f);
        let mut fine = vec![0.0; FINE_SIDE * FINE_SIDE * FINE_SIDE];
        p.prolong3d(&coarse, &mut fine);
        for kz in 0..FINE_SIDE {
            for ky in 0..FINE_SIDE {
                for kx in 0..FINE_SIDE {
                    let exact = f(kx as f64 * 0.5, ky as f64 * 0.5, kz as f64 * 0.5);
                    let got = fine[(kz * FINE_SIDE + ky) * FINE_SIDE + kx];
                    assert!((got - exact).abs() < 1e-9, "({kx},{ky},{kz}): {got} vs {exact}");
                }
            }
        }
    }

    #[test]
    fn prolong_flop_count_matches_model() {
        // Paper: a single coarse→fine interpolation is O(3(2r−1)r^3) ops.
        // Our three passes do 2r flops per output point:
        // pass1 f·r·r + pass2 f·f·r + pass3 f·f·f outputs.
        let p = Prolongation::new();
        let coarse = vec![1.0; 343];
        let mut fine = vec![0.0; FINE_SIDE.pow(3)];
        let flops = p.prolong3d(&coarse, &mut fine);
        let r = POINTS_PER_SIDE as u64;
        let f = FINE_SIDE as u64;
        let expect = 2 * r * (f * r * r + f * f * r + f * f * f);
        assert_eq!(flops, expect);
    }

    #[test]
    fn prolong_to_child_matches_window_of_full() {
        let p = Prolongation::new();
        let f = |x: f64, y: f64, z: f64| (0.3 * x).sin() + y * z * 0.1;
        let coarse = octant_field(f);
        let mut full = vec![0.0; FINE_SIDE.pow(3)];
        p.prolong3d(&coarse, &mut full);
        let r = POINTS_PER_SIDE;
        for child in 0..8 {
            let mut block = vec![0.0; r * r * r];
            p.prolong_to_child(&coarse, child, &mut block);
            let ox = (child & 1) * (r - 1);
            let oy = ((child >> 1) & 1) * (r - 1);
            let oz = ((child >> 2) & 1) * (r - 1);
            let l = PatchLayout::octant();
            for (i, j, k) in l.iter() {
                let expect = full[((k + oz) * FINE_SIDE + (j + oy)) * FINE_SIDE + (i + ox)];
                assert_eq!(block[l.idx(i, j, k)], expect);
            }
        }
    }

    #[test]
    fn inject_inverts_prolong_on_coincident_points() {
        let p = Prolongation::new();
        let f = |x: f64, y: f64, z: f64| x + 2.0 * y - z + 0.25 * x * y;
        let parent = octant_field(f);
        let mut rec = vec![f64::NAN; parent.len()];
        for child in 0..8 {
            let mut block = vec![0.0; parent.len()];
            p.prolong_to_child(&parent, child, &mut block);
            p.inject_from_child(&block, child, &mut rec);
        }
        for (a, b) in parent.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn inject_1d_takes_even_points() {
        let fine: Vec<f64> = (0..FINE_SIDE).map(|i| i as f64).collect();
        let mut coarse = vec![0.0; POINTS_PER_SIDE];
        inject_1d(&fine, &mut coarse);
        assert_eq!(coarse, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }
}
