//! The computational mesh: octant geometry plus precomputed kernel maps.

use gw_octree::{Domain, MortonKey, NeighborDirection, NeighborLevel, NeighborQuery};
use gw_stencil::patch::{PATCH_VOLUME, POINTS_PER_SIDE};

/// Structural problems with the leaf set handed to [`Mesh::try_build`].
///
/// These are *input* errors (a caller handed us something that is not a
/// sorted, complete, 2:1-balanced linear octree), distinct from internal
/// invariant violations, which stay `panic!`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeshError {
    /// The leaf set is empty — there is no domain to mesh.
    EmptyLeaves,
    /// The leaf vector is not strictly sorted (or contains duplicates),
    /// so neighbor lookups via binary search are meaningless.
    UnsortedLeaves,
    /// The leaves do not tile the domain (gaps or overlaps): not a
    /// complete linear octree.
    IncompleteTree,
    /// The tree violates 2:1 balance, which the scatter-map case analysis
    /// (Same/Inject/Prolong) relies on.
    UnbalancedTree,
    /// A neighbor reported by the octree query is not present in the leaf
    /// set (defensive backstop; the up-front completeness and balance
    /// checks should make this unreachable).
    MissingNeighbor { of: MortonKey, missing: MortonKey },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::EmptyLeaves => write!(f, "empty leaf set"),
            MeshError::UnsortedLeaves => {
                write!(f, "leaf set is not strictly sorted (balanced linear octree required)")
            }
            MeshError::IncompleteTree => {
                write!(f, "leaf set does not tile the domain (not a complete linear octree)")
            }
            MeshError::UnbalancedTree => {
                write!(f, "leaf set violates 2:1 balance (full face/edge/corner balance required)")
            }
            MeshError::MissingNeighbor { of, missing } => write!(
                f,
                "neighbor {missing:?} of leaf {of:?} is not in the leaf set \
                 (tree not complete / 2:1 balanced)"
            ),
        }
    }
}

impl std::error::Error for MeshError {}

/// How a scatter source relates to its destination patch (the three cases
/// of Algorithm 2, guaranteed exhaustive by the 2:1 balance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScatterKind {
    /// Source and destination at the same level: direct copy.
    Same,
    /// Source finer than destination: injection (copy of coincident
    /// points).
    Inject,
    /// Source coarser than destination: tensor-product interpolation of
    /// the source block, then copy of covered points.
    Prolong,
}

/// One entry of the `O2P` map: octant `src` contributes to the padding
/// region `delta` of octant `dst`'s patch.
///
/// `off` is the per-axis origin offset `(dst_origin − src_origin)` measured
/// in the *working spacing* of the operation: the source spacing for
/// `Same`/`Inject`, the destination spacing for `Prolong`. All index
/// arithmetic in the scatter kernels derives from `delta` and `off` alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterOp {
    pub src: u32,
    pub dst: u32,
    /// Direction of the padding region in the destination patch
    /// (= direction from dst towards src), components in `{-1,0,1}`.
    pub delta: [i8; 3],
    pub kind: ScatterKind,
    /// See type-level docs.
    pub off: [i32; 3],
    /// For `Inject`: whether this source owns the `i_src == 6` plane along
    /// each axis (true when no sibling source sits at `off + 6`, so the
    /// boundary point has a unique writer). Unused by other kinds.
    pub inc6: [bool; 3],
}

/// A fine→coarse interface synchronization copy: one coincident point,
/// fully resolved at grid construction and deduplicated (a coarse corner
/// point touched by several fine octants gets exactly one writer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncCopy {
    pub src_oct: u32,
    pub src_idx: u32,
    pub dst_oct: u32,
    pub dst_idx: u32,
}

/// Geometry of one octant.
#[derive(Clone, Copy, Debug)]
pub struct OctInfo {
    pub key: MortonKey,
    pub level: u8,
    /// Physical origin (anchor corner).
    pub origin: [f64; 3],
    /// Grid spacing `h = size / (r − 1)`.
    pub h: f64,
}

/// The computational mesh: sorted balanced leaves plus the maps driving
/// the padding, RHS and synchronization kernels.
pub struct Mesh {
    pub domain: Domain,
    pub octants: Vec<OctInfo>,
    /// Flattened `O2P` scatter map grouped by source octant.
    pub scatter: Vec<ScatterOp>,
    /// `scatter_offsets[e]..scatter_offsets[e+1]` = ops with `src == e`.
    pub scatter_offsets: Vec<usize>,
    /// Padding regions on the physical domain boundary: `(oct, delta)`.
    pub boundary_regions: Vec<(u32, [i8; 3])>,
    /// Fine→coarse point synchronization copies (deduplicated).
    pub syncs: Vec<SyncCopy>,
    /// For the gather (loop-over-patches) variant: per destination octant,
    /// the list of incoming ops (same content as `scatter`, regrouped).
    pub gather_offsets: Vec<usize>,
    pub gather: Vec<ScatterOp>,
}

impl Mesh {
    /// Build a mesh from a 2:1-balanced complete linear octree.
    ///
    /// Panics on malformed input; use [`Mesh::try_build`] to get a typed
    /// [`MeshError`] instead.
    pub fn build(domain: Domain, leaves: &[MortonKey]) -> Mesh {
        Self::try_build(domain, leaves).unwrap_or_else(|e| panic!("Mesh::build: {e}"))
    }

    /// Fallible [`Mesh::build`]: rejects empty, unsorted, and
    /// incomplete/unbalanced leaf sets with a typed error instead of
    /// panicking deep inside neighbor resolution.
    pub fn try_build(domain: Domain, leaves: &[MortonKey]) -> Result<Mesh, MeshError> {
        if leaves.is_empty() {
            return Err(MeshError::EmptyLeaves);
        }
        if leaves.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MeshError::UnsortedLeaves);
        }
        if !gw_octree::is_complete_linear(leaves) {
            return Err(MeshError::IncompleteTree);
        }
        if !gw_octree::is_balanced(leaves, gw_octree::BalanceMode::Full) {
            return Err(MeshError::UnbalancedTree);
        }
        let n = leaves.len();
        let octants: Vec<OctInfo> = leaves
            .iter()
            .map(|k| OctInfo {
                key: *k,
                level: k.level(),
                origin: domain.octant_origin(k),
                h: domain.grid_spacing(k.level(), POINTS_PER_SIDE),
            })
            .collect();
        let index_of = |of: &MortonKey, k: &MortonKey| -> Result<u32, MeshError> {
            leaves
                .binary_search(k)
                .map(|i| i as u32)
                .map_err(|_| MeshError::MissingNeighbor { of: *of, missing: *k })
        };
        let q = NeighborQuery::new(leaves);

        let mut per_src: Vec<Vec<ScatterOp>> = vec![Vec::new(); n];
        let mut boundary_regions = Vec::new();
        // (dst_oct, dst_idx) -> (src_oct, src_idx); later writers replace
        // earlier ones (all writers hold the same value up to round-off;
        // dedup makes the parallel sync kernel race-free).
        let mut sync_map: std::collections::HashMap<(u32, u32), (u32, u32)> =
            std::collections::HashMap::new();
        let r = POINTS_PER_SIDE;
        let layout = |i: i32, j: i32, k: i32| -> u32 {
            ((k as usize * r + j as usize) * r + i as usize) as u32
        };

        // Per-axis offset (a_origin − b_origin) in units of `h`, from
        // physical coordinates (octant lattice sides are powers of two and
        // not divisible by the 6 point intervals, so lattice arithmetic
        // would be fractional).
        let off_in = |a: &OctInfo, b: &OctInfo, h: f64| -> [i32; 3] {
            let mut o = [0i32; 3];
            for (ax, oo) in o.iter_mut().enumerate() {
                *oo = ((a.origin[ax] - b.origin[ax]) / h).round() as i32;
            }
            o
        };

        for (bi, b) in leaves.iter().enumerate() {
            for dir in NeighborDirection::all() {
                let delta = dir.0;
                match q.neighbor(b, dir) {
                    NeighborLevel::Boundary => {
                        boundary_regions.push((bi as u32, delta));
                    }
                    NeighborLevel::Same(e) => {
                        let ei = index_of(b, &e)?;
                        per_src[ei as usize].push(ScatterOp {
                            src: ei,
                            dst: bi as u32,
                            delta,
                            kind: ScatterKind::Same,
                            // Same-level: index math uses only delta; off
                            // recorded for completeness ((dst−src) in src
                            // point units: −6δ).
                            off: [-6 * delta[0] as i32, -6 * delta[1] as i32, -6 * delta[2] as i32],
                            inc6: [true; 3],
                        });
                    }
                    NeighborLevel::Coarser(e) => {
                        // Source coarser: offset (dst − src) in dst (fine)
                        // spacing units.
                        let ei = index_of(b, &e)?;
                        let h_b = octants[bi].h;
                        let off = off_in(&octants[bi], &octants[ei as usize], h_b);
                        per_src[ei as usize].push(ScatterOp {
                            src: ei,
                            dst: bi as u32,
                            delta,
                            kind: ScatterKind::Prolong,
                            off,
                            inc6: [true; 3],
                        });
                    }
                    NeighborLevel::Finer(fs) => {
                        // All sibling offsets for this (dst, delta) group,
                        // to resolve boundary-plane ownership.
                        let mut offs: Vec<[i32; 3]> = Vec::with_capacity(fs.len());
                        for e in fs.iter() {
                            let ei = index_of(b, e)? as usize;
                            offs.push(off_in(&octants[ei], &octants[bi], octants[ei].h));
                        }
                        for (e, off) in fs.iter().zip(offs.iter()) {
                            let ei = index_of(b, e)?;
                            let off = *off;
                            // Own the i_src == 6 plane along axis a iff no
                            // sibling source sits at off[a] + 6 (with the
                            // other axes equal).
                            let mut inc6 = [true; 3];
                            for a in 0..3 {
                                let mut shifted = off;
                                shifted[a] += 6;
                                if offs.contains(&shifted) {
                                    inc6[a] = false;
                                }
                            }
                            per_src[ei as usize].push(ScatterOp {
                                src: ei,
                                dst: bi as u32,
                                delta,
                                kind: ScatterKind::Inject,
                                off,
                                inc6,
                            });
                            // Interface sync: fine src overwrites the
                            // coincident own points of the coarse dst.
                            // Coarse point m coincides with fine index
                            // i_e = 2m − off when 0 ≤ i_e ≤ 6.
                            for mz in 0..r as i32 {
                                let ez = 2 * mz - off[2];
                                if !(0..=6).contains(&ez) {
                                    continue;
                                }
                                for my in 0..r as i32 {
                                    let ey = 2 * my - off[1];
                                    if !(0..=6).contains(&ey) {
                                        continue;
                                    }
                                    for mx in 0..r as i32 {
                                        let ex = 2 * mx - off[0];
                                        if !(0..=6).contains(&ex) {
                                            continue;
                                        }
                                        sync_map.insert(
                                            (bi as u32, layout(mx, my, mz)),
                                            (ei, layout(ex, ey, ez)),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut syncs: Vec<SyncCopy> = sync_map
            .into_iter()
            .map(|((dst_oct, dst_idx), (src_oct, src_idx))| SyncCopy {
                src_oct,
                src_idx,
                dst_oct,
                dst_idx,
            })
            .collect();
        syncs.sort_by_key(|c| (c.dst_oct, c.dst_idx));

        // Flatten by source.
        let mut scatter = Vec::with_capacity(per_src.iter().map(|v| v.len()).sum());
        let mut scatter_offsets = Vec::with_capacity(n + 1);
        scatter_offsets.push(0);
        for ops in &per_src {
            scatter.extend_from_slice(ops);
            scatter_offsets.push(scatter.len());
        }
        // Regroup by destination for the gather variant.
        let mut per_dst: Vec<Vec<ScatterOp>> = vec![Vec::new(); n];
        for op in &scatter {
            per_dst[op.dst as usize].push(*op);
        }
        let mut gather = Vec::with_capacity(scatter.len());
        let mut gather_offsets = Vec::with_capacity(n + 1);
        gather_offsets.push(0);
        for ops in &per_dst {
            gather.extend_from_slice(ops);
            gather_offsets.push(gather.len());
        }

        let mesh = Mesh {
            domain,
            octants,
            scatter,
            scatter_offsets,
            boundary_regions,
            syncs,
            gather_offsets,
            gather,
        };
        // Internal invariant, asserted in release builds too: it is what
        // makes the octant-parallel scatter race-free (see DESIGN.md).
        if let Err(msg) = check_write_partition(n, &mesh.gather, &mesh.gather_offsets) {
            panic!("write-partition invariant violated: {msg}");
        }
        Ok(mesh)
    }

    pub fn n_octants(&self) -> usize {
        self.octants.len()
    }

    /// Total grid points (with our duplicated-boundary storage).
    pub fn n_points(&self) -> usize {
        self.n_octants() * POINTS_PER_SIDE.pow(3)
    }

    /// Unknown count for a `dof`-variable system (the paper's "unknowns").
    pub fn unknowns(&self, dof: usize) -> usize {
        self.n_points() * dof
    }

    /// Physical coordinates of a local grid point.
    #[inline]
    pub fn point_coords(&self, oct: usize, i: usize, j: usize, k: usize) -> [f64; 3] {
        let info = &self.octants[oct];
        [
            info.origin[0] + i as f64 * info.h,
            info.origin[1] + j as f64 * info.h,
            info.origin[2] + k as f64 * info.h,
        ]
    }

    /// Scatter ops originating from octant `e`.
    pub fn scatter_of(&self, e: usize) -> &[ScatterOp] {
        &self.scatter[self.scatter_offsets[e]..self.scatter_offsets[e + 1]]
    }

    /// Scatter ops targeting octant `b` (gather view).
    pub fn gather_of(&self, b: usize) -> &[ScatterOp] {
        &self.gather[self.gather_offsets[b]..self.gather_offsets[b + 1]]
    }

    /// A simple adaptivity measure: fraction of scatter ops that need
    /// interpolation or injection (0 on a uniform grid). Higher values ↔
    /// the `m_1`-like highly adaptive grids of Table III.
    pub fn adaptivity_ratio(&self) -> f64 {
        if self.scatter.is_empty() {
            return 0.0;
        }
        let nonuniform = self.scatter.iter().filter(|o| o.kind != ScatterKind::Same).count();
        nonuniform as f64 / self.scatter.len() as f64
    }

    /// The octant (index) containing a physical point, if any.
    pub fn locate(&self, p: [f64; 3]) -> Option<usize> {
        // Binary search on the deepest key containing p.
        let probe = self.domain.locate(p, gw_octree::MAX_LEVEL);
        let keys: Vec<MortonKey> = self.octants.iter().map(|o| o.key).collect();
        let idx = match keys.binary_search(&probe) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        keys[idx].contains(&probe).then_some(idx)
    }
}

/// Verify the scatter write partition: within each destination patch,
/// every padding point has **at most one** writer among the incoming ops.
/// Interiors are written only by the owning octant, and the padding
/// targets of distinct sources must be disjoint — this is exactly the
/// property that lets [`crate::scatter::fill_patches_scatter_par`] run
/// one task per source octant with no write synchronization. Enforced as
/// a release-mode assertion at mesh construction.
fn check_write_partition(
    n_oct: usize,
    gather: &[ScatterOp],
    gather_offsets: &[usize],
) -> Result<(), String> {
    // Epoch-marked writer table, reused across destination octants.
    let mut writer: Vec<u32> = vec![u32::MAX; PATCH_VOLUME];
    let mut epoch_src: Vec<u32> = vec![u32::MAX; PATCH_VOLUME];
    for b in 0..n_oct {
        let epoch = b as u32;
        for op in &gather[gather_offsets[b]..gather_offsets[b + 1]] {
            let mut clash: Option<(usize, u32)> = None;
            crate::scatter::for_each_scatter_point(op, |dst_idx, _src_idx| {
                if writer[dst_idx] == epoch && epoch_src[dst_idx] != op.src {
                    clash.get_or_insert((dst_idx, epoch_src[dst_idx]));
                }
                writer[dst_idx] = epoch;
                epoch_src[dst_idx] = op.src;
            });
            if let Some((idx, prev)) = clash {
                return Err(format!(
                    "patch {b} point {idx} written by both octant {prev} and octant {} \
                     ({:?} from delta {:?})",
                    op.src, op.kind, op.delta
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, MortonKey};

    fn uniform_mesh(level: u8) -> Mesh {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..level {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        Mesh::build(Domain::unit(), &leaves)
    }

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::unit(), &t)
    }

    #[test]
    fn uniform_mesh_all_same_scatter() {
        let m = uniform_mesh(2);
        assert_eq!(m.n_octants(), 64);
        assert!(m.scatter.iter().all(|o| o.kind == ScatterKind::Same));
        assert_eq!(m.adaptivity_ratio(), 0.0);
        // Interior octant has 26 incoming ops; corner octant has 7.
        let counts: Vec<usize> = (0..64).map(|b| m.gather_of(b).len()).collect();
        assert!(counts.contains(&26));
        assert!(counts.contains(&7));
    }

    #[test]
    fn boundary_regions_present_on_domain_faces() {
        let m = uniform_mesh(1);
        // 8 octants, each with 26 directions; every octant is at a corner
        // of the domain: 26−7 = 19 boundary regions each.
        assert_eq!(m.boundary_regions.len(), 8 * 19);
    }

    #[test]
    fn adaptive_mesh_has_all_three_kinds() {
        let m = adaptive_mesh();
        let kinds: std::collections::HashSet<ScatterKind> =
            m.scatter.iter().map(|o| o.kind).collect();
        assert!(kinds.contains(&ScatterKind::Same));
        assert!(kinds.contains(&ScatterKind::Inject));
        assert!(kinds.contains(&ScatterKind::Prolong));
        assert!(m.adaptivity_ratio() > 0.0);
        assert!(!m.syncs.is_empty());
    }

    #[test]
    fn scatter_and_gather_hold_identical_ops() {
        let m = adaptive_mesh();
        let mut a = m.scatter.clone();
        let mut b = m.gather.clone();
        let key = |o: &ScatterOp| (o.src, o.dst, o.delta, o.off);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn every_nonboundary_region_has_a_source() {
        // For every octant and direction: either a boundary region or at
        // least one incoming scatter op with that delta.
        let m = adaptive_mesh();
        let boundary: std::collections::HashSet<(u32, [i8; 3])> =
            m.boundary_regions.iter().copied().collect();
        for b in 0..m.n_octants() {
            for dir in NeighborDirection::all() {
                if boundary.contains(&(b as u32, dir.0)) {
                    continue;
                }
                let found = m.gather_of(b).iter().any(|o| o.delta == dir.0);
                assert!(found, "octant {b} dir {:?} has no source", dir.0);
            }
        }
    }

    #[test]
    fn point_coords_and_locate_agree() {
        let m = adaptive_mesh();
        for oct in [0usize, m.n_octants() / 2, m.n_octants() - 1] {
            let p = m.point_coords(oct, 3, 3, 3); // octant center
            assert_eq!(m.locate(p), Some(oct));
        }
    }

    #[test]
    fn spacing_halves_per_level() {
        let m = adaptive_mesh();
        let by_level: std::collections::HashMap<u8, f64> =
            m.octants.iter().map(|o| (o.level, o.h)).collect();
        let levels: Vec<u8> = {
            let mut v: Vec<u8> = by_level.keys().copied().collect();
            v.sort();
            v
        };
        for w in levels.windows(2) {
            let ratio = by_level[&w[0]] / by_level[&w[1]];
            assert!((ratio - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unknowns_counting() {
        let m = uniform_mesh(1);
        assert_eq!(m.n_points(), 8 * 343);
        assert_eq!(m.unknowns(24), 8 * 343 * 24);
    }

    #[test]
    fn try_build_rejects_empty_leaf_set() {
        assert_eq!(Mesh::try_build(Domain::unit(), &[]).err(), Some(MeshError::EmptyLeaves));
    }

    #[test]
    fn try_build_rejects_unsorted_and_duplicate_leaves() {
        let mut leaves: Vec<MortonKey> = MortonKey::root().children().to_vec();
        leaves.swap(0, 1);
        assert_eq!(Mesh::try_build(Domain::unit(), &leaves).err(), Some(MeshError::UnsortedLeaves));
        let dup = vec![MortonKey::root().children()[0]; 2];
        assert_eq!(Mesh::try_build(Domain::unit(), &dup).err(), Some(MeshError::UnsortedLeaves));
    }

    #[test]
    fn try_build_rejects_incomplete_tree() {
        // Drop one sibling from a uniform level-1 tree: the domain is no
        // longer tiled, and we get a typed error instead of a panic.
        let mut leaves: Vec<MortonKey> = MortonKey::root().children().to_vec();
        leaves.remove(3);
        assert_eq!(Mesh::try_build(Domain::unit(), &leaves).err(), Some(MeshError::IncompleteTree));
    }

    #[test]
    fn try_build_rejects_unbalanced_tree() {
        // Refine the interior corner of one level-1 octant down to level 3
        // without rebalancing: level-3 leaves touch level-1 leaves.
        let c = MortonKey::root().children();
        let c0 = c[0].children();
        let mut leaves: Vec<MortonKey> = c0[..7].to_vec();
        leaves.extend(c0[7].children());
        leaves.extend_from_slice(&c[1..]);
        leaves.sort();
        assert_eq!(Mesh::try_build(Domain::unit(), &leaves).err(), Some(MeshError::UnbalancedTree));
    }

    #[test]
    fn single_leaf_mesh_builds() {
        // Root-only domain: all 26 directions are boundary, no scatter.
        let m = Mesh::build(Domain::unit(), &[MortonKey::root()]);
        assert_eq!(m.n_octants(), 1);
        assert!(m.scatter.is_empty());
        assert_eq!(m.boundary_regions.len(), 26);
        assert!(m.syncs.is_empty());
    }

    #[test]
    fn write_partition_holds_on_adaptive_mesh() {
        let m = adaptive_mesh();
        assert!(check_write_partition(m.n_octants(), &m.gather, &m.gather_offsets).is_ok());
    }

    #[test]
    fn write_partition_checker_catches_overlap() {
        // Duplicate one incoming op under a different source id: the
        // checker must flag the double-write.
        let m = uniform_mesh(1);
        let mut gather = m.gather.clone();
        let mut offsets = m.gather_offsets.clone();
        let mut forged = gather[0];
        forged.src = (forged.src + 1) % m.n_octants() as u32;
        gather.insert(1, forged);
        for o in offsets.iter_mut().skip(1) {
            *o += 1;
        }
        assert!(check_write_partition(m.n_octants(), &gather, &offsets).is_err());
    }
}
