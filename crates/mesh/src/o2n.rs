//! The `O2N` map: octant → global grid points ("zipped" storage).
//!
//! Section III-C of the paper: Dendro-GR stores the solution as a vector
//! over *unique* grid points — duplicate points (shared by face-adjacent
//! octants at equal level) and *hanging* points (fine-octant boundary
//! points with no coarse counterpart at a coarse–fine interface) are
//! removed during grid construction. The `O2N` map sends each octant's
//! `r³` local points to global indices; hanging points map to the special
//! marker [`HANGING`] and are reconstructed by interpolation from the
//! coarse side during *unzip* (Algorithm 2's `interp_hanging`).
//!
//! The solver's default storage is the duplicated per-octant form (see
//! the crate docs); this module provides the paper-faithful alternative
//! plus zip/unzip conversions, and the tests prove the two
//! representations agree on shared points.

use crate::field::Field;
use crate::grid::Mesh;
use gw_stencil::interp::lagrange_weights;
use gw_stencil::patch::{PatchLayout, POINTS_PER_SIDE};
use std::collections::HashMap;

/// Marker for hanging local points (no global storage).
pub const HANGING: u32 = u32::MAX;

/// Classification of one local grid point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointClass {
    /// The octant owns this point's global slot.
    Owned(u32),
    /// Another octant owns the coincident global point.
    Shared(u32),
    /// No coincident coarse point exists: interpolate on unzip.
    Hanging,
}

/// The octant→global-point map.
pub struct O2NMap {
    /// `o2n[oct][local]` = global index, or [`HANGING`].
    pub o2n: Vec<Vec<u32>>,
    /// Number of unique (global) grid points.
    pub n_global: usize,
    /// For each octant, whether it is the owner of each local point (the
    /// zip operation writes only owned points, making zip deterministic).
    pub owner: Vec<Vec<bool>>,
}

/// Quantized physical coordinate key for point identification.
///
/// Points are keyed by their position in units of the *finest* grid
/// spacing present in the mesh; coincident points across levels land on
/// the same key exactly because level spacings are related by powers of
/// two... up to f64 rounding, hence the explicit rounding to i64.
fn point_key(p: [f64; 3], inv_q: f64) -> [i64; 3] {
    [(p[0] * inv_q).round() as i64, (p[1] * inv_q).round() as i64, (p[2] * inv_q).round() as i64]
}

impl O2NMap {
    /// Build the map for a mesh.
    ///
    /// A local point of octant `e` is **hanging** iff it lies on a
    /// coarse–fine interface face/edge/corner of `e` (the coarse side is
    /// a neighbor at the parent level) and does not coincide with a
    /// coarse grid point. Equivalently (and the way we compute it): a
    /// point is hanging iff no *coarsest* octant containing the point in
    /// its closure carries a coincident point. We build global slots by
    /// hashing quantized coordinates, with ownership assigned to the
    /// first octant in SFC order — but a fine point that coincides only
    /// with points of *finer or equal* octants is genuine; hanging status
    /// only arises for fine boundary points facing a coarser neighbor.
    pub fn build(mesh: &Mesh) -> O2NMap {
        let n = mesh.n_octants();
        let h_min = mesh.octants.iter().map(|o| o.h).fold(f64::INFINITY, f64::min);
        // Quantize at half the finest spacing for exact coincidence keys.
        let inv_q = 2.0 / h_min;
        let l = PatchLayout::octant();
        let r = POINTS_PER_SIDE;

        let mut global_of: HashMap<[i64; 3], u32> = HashMap::new();
        let mut o2n: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut owner: Vec<Vec<bool>> = Vec::with_capacity(n);
        let mut next: u32 = 0;
        for oct in 0..n {
            let h = mesh.octants[oct].h;
            // Interface directions toward coarser neighbors: the Prolong
            // sources of this octant's patch.
            let coarse_deltas: Vec<[i8; 3]> = mesh
                .gather_of(oct)
                .iter()
                .filter(|op| op.kind == crate::grid::ScatterKind::Prolong)
                .map(|op| op.delta)
                .collect();
            let mut ids = Vec::with_capacity(l.volume());
            let mut own = Vec::with_capacity(l.volume());
            for (i, j, k) in l.iter() {
                let p = mesh.point_coords(oct, i, j, k);
                // Is this point on a boundary region facing a coarser
                // neighbor?
                let idx = [i, j, k];
                let on_coarse_iface = coarse_deltas.iter().any(|d| {
                    (0..3).all(|a| match d[a] {
                        -1 => idx[a] == 0,
                        1 => idx[a] == r - 1,
                        _ => true,
                    })
                });
                // Hanging iff on such an interface and off the coarse
                // (2h) lattice — no coincident coarse grid point exists.
                let hanging = on_coarse_iface && !on_lattice(p, mesh.domain.min, 2.0 * h);
                if hanging {
                    ids.push(HANGING);
                    own.push(false);
                } else {
                    let id = *global_of.entry(point_key(p, inv_q)).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                    ids.push(id);
                    own.push(false);
                }
            }
            o2n.push(ids);
            owner.push(own);
        }
        // Ownership pass: first claim in SFC order wins.
        let mut claimed = vec![false; next as usize];
        for (oct, ids) in o2n.iter().enumerate() {
            for (li, &id) in ids.iter().enumerate() {
                if id != HANGING && !claimed[id as usize] {
                    claimed[id as usize] = true;
                    owner[oct][li] = true;
                }
            }
        }
        O2NMap { o2n, n_global: next as usize, owner }
    }

    /// Zip: per-octant (duplicated) field → global vector. Owned points
    /// write their value; duplicates and hanging points are skipped.
    pub fn zip(&self, mesh: &Mesh, field: &Field, var: usize) -> Vec<f64> {
        let mut g = vec![0.0f64; self.n_global];
        for oct in 0..mesh.n_octants() {
            let block = field.block(var, oct);
            for (li, (&id, &own)) in self.o2n[oct].iter().zip(self.owner[oct].iter()).enumerate() {
                if own {
                    g[id as usize] = block[li];
                }
            }
        }
        g
    }

    /// Unzip: global vector → one octant's `r³` block, interpolating
    /// hanging points from the coarse neighbor's points (degree-6
    /// Lagrange along the interface, matching the scheme order).
    pub fn unzip_octant(&self, mesh: &Mesh, global: &[f64], oct: usize, out: &mut [f64]) {
        let l = PatchLayout::octant();
        debug_assert_eq!(out.len(), l.volume());
        // Direct points first.
        for (li, &id) in self.o2n[oct].iter().enumerate() {
            if id != HANGING {
                out[li] = global[id as usize];
            }
        }
        // Hanging points: interpolate from the coarse side. We evaluate
        // by locating the coarse octant that covers the point and doing
        // tensor Lagrange interpolation over its (already direct) points.
        for (li, &id) in self.o2n[oct].iter().enumerate() {
            if id != HANGING {
                continue;
            }
            let (i, j, k) = l.coords(li);
            let p = mesh.point_coords(oct, i, j, k);
            // Find a containing octant that is coarser than us.
            let cov =
                self.coarse_cover(mesh, oct, p).expect("hanging point must have a coarse cover");
            out[li] = self.interp_in_octant(mesh, global, cov, p);
        }
    }

    /// Find a neighbor octant coarser than `oct` whose closed block
    /// contains `p`.
    fn coarse_cover(&self, mesh: &Mesh, oct: usize, p: [f64; 3]) -> Option<usize> {
        let my_level = mesh.octants[oct].level;
        // Search the scatter sources targeting us (cheap: the coarse
        // neighbors are exactly the Prolong sources of our patch).
        for op in mesh.gather_of(oct) {
            if op.kind == crate::grid::ScatterKind::Prolong {
                let cand = op.src as usize;
                if mesh.octants[cand].level < my_level && contains_closed(mesh, cand, p) {
                    return Some(cand);
                }
            }
        }
        None
    }

    /// Degree-6 Lagrange interpolation of the global field inside one
    /// octant (all of whose own points are non-hanging by construction —
    /// 2:1 balance means a coarse octant's points are never hanging
    /// relative to an even coarser neighbor at the same location...
    /// guaranteed here because hanging points only occur on faces toward
    /// *coarser* neighbors).
    fn interp_in_octant(&self, mesh: &Mesh, global: &[f64], oct: usize, p: [f64; 3]) -> f64 {
        let info = &mesh.octants[oct];
        let nodes: Vec<f64> = (0..POINTS_PER_SIDE).map(|i| i as f64).collect();
        let mut w = [[0.0f64; POINTS_PER_SIDE]; 3];
        for a in 0..3 {
            let xi = ((p[a] - info.origin[a]) / info.h).clamp(0.0, 6.0);
            w[a].copy_from_slice(&lagrange_weights(&nodes, xi));
        }
        let l = PatchLayout::octant();
        let ids = &self.o2n[oct];
        let mut acc = 0.0;
        for k in 0..POINTS_PER_SIDE {
            for j in 0..POINTS_PER_SIDE {
                for i in 0..POINTS_PER_SIDE {
                    let wt = w[0][i] * w[1][j] * w[2][k];
                    if wt == 0.0 {
                        continue;
                    }
                    let id = ids[l.idx(i, j, k)];
                    debug_assert_ne!(id, HANGING, "coarse octant points are never hanging here");
                    acc += wt * global[id as usize];
                }
            }
        }
        acc
    }

    /// Fraction of local points that are hanging (diagnostic; 0 on
    /// uniform grids).
    pub fn hanging_fraction(&self) -> f64 {
        let total: usize = self.o2n.iter().map(|v| v.len()).sum();
        let hanging: usize =
            self.o2n.iter().map(|v| v.iter().filter(|&&id| id == HANGING).count()).sum();
        hanging as f64 / total as f64
    }
}

fn on_lattice(p: [f64; 3], origin: [f64; 3], h: f64) -> bool {
    (0..3).all(|a| {
        let t = (p[a] - origin[a]) / h;
        (t - t.round()).abs() < 1e-9
    })
}

fn contains_closed(mesh: &Mesh, oct: usize, p: [f64; 3]) -> bool {
    let info = &mesh.octants[oct];
    let size = info.h * (POINTS_PER_SIDE - 1) as f64;
    (0..3).all(|a| p[a] >= info.origin[a] - 1e-12 && p[a] <= info.origin[a] + size + 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

    fn uniform_mesh(level: u8) -> Mesh {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..level {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        Mesh::build(Domain::unit(), &leaves)
    }

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::unit(), &t)
    }

    #[test]
    fn uniform_grid_has_no_hanging_points() {
        let mesh = uniform_mesh(2);
        let map = O2NMap::build(&mesh);
        assert_eq!(map.hanging_fraction(), 0.0);
        // Unique points: (4·6+1)³ for 4 octants/side with shared faces.
        let per_side = 4 * (POINTS_PER_SIDE - 1) + 1;
        assert_eq!(map.n_global, per_side.pow(3));
    }

    #[test]
    fn adaptive_grid_has_hanging_points_on_interfaces() {
        let mesh = adaptive_mesh();
        let map = O2NMap::build(&mesh);
        assert!(map.hanging_fraction() > 0.0, "coarse-fine interfaces must hang");
        assert!(map.hanging_fraction() < 0.2, "but only a small fraction");
        // Every hanging point belongs to a fine octant with a coarser
        // neighbor.
        for (oct, ids) in map.o2n.iter().enumerate() {
            if ids.contains(&HANGING) {
                let has_coarser = mesh
                    .gather_of(oct)
                    .iter()
                    .any(|op| op.kind == crate::grid::ScatterKind::Prolong);
                assert!(has_coarser, "octant {oct} hangs without a coarse neighbor");
            }
        }
    }

    #[test]
    fn global_count_less_than_duplicated_count() {
        let mesh = adaptive_mesh();
        let map = O2NMap::build(&mesh);
        let duplicated = mesh.n_octants() * PatchLayout::octant().volume();
        assert!(map.n_global < duplicated);
        // Each global slot has exactly one owner.
        let mut owners = vec![0usize; map.n_global];
        for (oct, ids) in map.o2n.iter().enumerate() {
            for (li, &id) in ids.iter().enumerate() {
                if id != HANGING && map.owner[oct][li] {
                    owners[id as usize] += 1;
                }
            }
        }
        assert!(owners.iter().all(|&c| c == 1), "every global point exactly one owner");
    }

    #[test]
    fn zip_unzip_roundtrip_exact_on_polynomial() {
        // A degree-≤6 polynomial: hanging-point interpolation is exact,
        // so zip → unzip reproduces the duplicated field everywhere.
        let mesh = adaptive_mesh();
        let map = O2NMap::build(&mesh);
        let f =
            |p: [f64; 3]| 1.0 + p[0] - 2.0 * p[1] * p[2] + p[0] * p[0] * p[1] - 0.3 * p[2].powi(3);
        let mut field = Field::zeros(1, mesh.n_octants());
        let l = PatchLayout::octant();
        for oct in 0..mesh.n_octants() {
            let vals: Vec<f64> =
                l.iter().map(|(i, j, k)| f(mesh.point_coords(oct, i, j, k))).collect();
            field.block_mut(0, oct).copy_from_slice(&vals);
        }
        let g = map.zip(&mesh, &field, 0);
        let mut out = vec![0.0; l.volume()];
        for oct in 0..mesh.n_octants() {
            map.unzip_octant(&mesh, &g, oct, &mut out);
            for (li, v) in out.iter().enumerate() {
                let expect = field.block(0, oct)[li];
                assert!(
                    (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                    "oct {oct} pt {li}: {v} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn memory_saving_matches_paper_claim() {
        // The zipped representation is the paper's storage; ours trades
        // ~10-20% memory for simplicity. Quantify on the adaptive mesh.
        let mesh = adaptive_mesh();
        let map = O2NMap::build(&mesh);
        let duplicated = mesh.n_octants() * PatchLayout::octant().volume();
        let saving = 1.0 - map.n_global as f64 / duplicated as f64;
        assert!(saving > 0.05 && saving < 0.5, "saving {saving}");
    }
}
