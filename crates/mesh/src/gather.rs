//! Loop-over-patches octant-to-patch — the Dendro-GR baseline (Fig. 7).
//!
//! Each destination patch *pulls* its padding from neighbor octants. The
//! result is identical to the scatter variant; the cost is not: a coarse
//! octant adjacent to several finer patches is re-interpolated once per
//! target (redundant interpolations), and reads hop between source octants
//! (poor locality) — the two deficiencies section IV-A calls out, worth
//! ~3× on a single core in the paper.

use crate::field::{Field, PatchField};
use crate::grid::{Mesh, ScatterKind};
use crate::scatter::apply_scatter_op;
use gw_stencil::interp::{ProlongWorkspace, Prolongation, FINE_SIDE};

/// Octant-to-patch via loop-over-patches. Returns interpolation flops —
/// compare with [`crate::scatter::fill_patches_scatter`]'s count to see
/// the redundancy factor.
pub fn fill_patches_gather(mesh: &Mesh, field: &Field, patches: &mut PatchField) -> u64 {
    let prolong = Prolongation::new();
    let mut ws = ProlongWorkspace::new();
    let mut fine13 = vec![0.0f64; FINE_SIDE * FINE_SIDE * FINE_SIDE];
    let mut flops = 0u64;
    for var in 0..field.dof {
        for b in 0..mesh.n_octants() {
            // Own interior first.
            gw_stencil::patch::octant_to_patch_interior(
                field.block(var, b),
                patches.patch_mut(var, b),
            );
            // Pull each incoming contribution; re-interpolate per op —
            // the gather has no way to share a source's prolongation
            // across destinations.
            for op in mesh.gather_of(b) {
                let src = field.block(var, op.src as usize);
                if op.kind == ScatterKind::Prolong {
                    flops += prolong.prolong3d_ws(src, &mut fine13, &mut ws);
                }
                let dst = patches.patch_mut(var, op.dst as usize);
                apply_scatter_op(op, src, &fine13, dst);
            }
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Mesh;
    use crate::scatter::fill_patches_scatter;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};
    use gw_stencil::patch::PatchLayout;

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::unit(), &t)
    }

    fn test_field(mesh: &Mesh) -> Field {
        let mut f = Field::zeros(2, mesh.n_octants());
        for var in 0..2 {
            for oct in 0..mesh.n_octants() {
                let l = PatchLayout::octant();
                let vals: Vec<f64> = l
                    .iter()
                    .map(|(i, j, k)| {
                        let p = mesh.point_coords(oct, i, j, k);
                        (1.0 + var as f64) * (p[0] + 2.0 * p[1] * p[2]) + p[0] * p[0]
                    })
                    .collect();
                f.block_mut(var, oct).copy_from_slice(&vals);
            }
        }
        f
    }

    #[test]
    fn gather_equals_scatter() {
        let mesh = adaptive_mesh();
        let f = test_field(&mesh);
        let mut pg = PatchField::zeros(2, mesh.n_octants());
        let mut ps = PatchField::zeros(2, mesh.n_octants());
        pg.fill(f64::NAN);
        ps.fill(f64::NAN);
        fill_patches_gather(&mesh, &f, &mut pg);
        fill_patches_scatter(&mesh, &f, &mut ps);
        for var in 0..2 {
            for oct in 0..mesh.n_octants() {
                for (a, b) in pg.patch(var, oct).iter().zip(ps.patch(var, oct).iter()) {
                    match (a.is_nan(), b.is_nan()) {
                        (true, true) => {}
                        (false, false) => assert_eq!(a, b),
                        _ => panic!("coverage mismatch between gather and scatter"),
                    }
                }
            }
        }
    }

    #[test]
    fn gather_does_redundant_interpolations() {
        let mesh = adaptive_mesh();
        let f = test_field(&mesh);
        let mut pg = PatchField::zeros(2, mesh.n_octants());
        let mut ps = PatchField::zeros(2, mesh.n_octants());
        let flops_gather = fill_patches_gather(&mesh, &f, &mut pg);
        let flops_scatter = fill_patches_scatter(&mesh, &f, &mut ps);
        assert!(
            flops_gather > flops_scatter,
            "gather {flops_gather} must re-interpolate more than scatter {flops_scatter}"
        );
    }
}
