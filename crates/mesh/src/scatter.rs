//! Loop-over-octants octant-to-patch (Algorithm 2), patch-to-octant, and
//! interface synchronization — the CPU reference implementations.
//!
//! The GPU (simulated-device) versions in `gw-core` run the same index
//! arithmetic inside kernel blocks; these host versions are the
//! correctness oracle and the single-core baseline of Fig. 7.

use crate::field::{Field, PatchField};
use crate::grid::{Mesh, ScatterKind, ScatterOp};
use gw_par::{tree_reduce, ThreadPool, UnsafeSlice};
use gw_stencil::interp::{ProlongWorkspace, Prolongation, FINE_SIDE};
use gw_stencil::patch::{PatchLayout, PADDING, PATCH_VOLUME, POINTS_PER_SIDE};
use std::cell::RefCell;

/// Per-axis padded-patch index range of the padding region in direction
/// `delta` (−1 → `[0,3)`, 0 → `[3,10)`, +1 → `[10,13)`).
#[inline]
pub fn region_range(delta: i8) -> std::ops::Range<usize> {
    match delta {
        -1 => 0..PADDING,
        0 => PADDING..PADDING + POINTS_PER_SIDE,
        1 => PADDING + POINTS_PER_SIDE..PADDING + POINTS_PER_SIDE + PADDING,
        _ => unreachable!("delta components are in {{-1,0,1}}"),
    }
}

/// Enumerate the `(dst_idx, src_idx)` point pairs of one scatter op.
/// `dst_idx` indexes the destination's padded patch; `src_idx` indexes the
/// source's `r^3` block for `Same`/`Inject` and the prolonged `(2r−1)^3`
/// block for `Prolong`. This single index walk backs both the execution
/// kernel ([`apply_scatter_op`]) and the build-time write-partition check
/// in `grid.rs`, so what is validated is exactly what is executed.
#[inline]
pub fn for_each_scatter_point(op: &ScatterOp, mut visit: impl FnMut(usize, usize)) {
    let p = PatchLayout::padded();
    let o = PatchLayout::octant();
    match op.kind {
        ScatterKind::Same => {
            // i_src = (p − 3) + 6δ ... derived from origins: src at
            // direction δ from dst ⇒ src_origin = dst_origin + 6δh.
            for pz in region_range(op.delta[2]) {
                let ez = pz as i32 - 3 - 6 * op.delta[2] as i32;
                debug_assert!((0..7).contains(&ez));
                for py in region_range(op.delta[1]) {
                    let ey = py as i32 - 3 - 6 * op.delta[1] as i32;
                    for px in region_range(op.delta[0]) {
                        let ex = px as i32 - 3 - 6 * op.delta[0] as i32;
                        visit(p.idx(px, py, pz), o.idx(ex as usize, ey as usize, ez as usize));
                    }
                }
            }
        }
        ScatterKind::Inject => {
            // i_src = 2(p − 3) − off; the i_src == 6 boundary plane is
            // written only by the op that owns it (grid-construction-time
            // ownership, see `ScatterOp::inc6`).
            let valid = |i: i32, ax: usize| i >= 0 && (i < 6 || (i == 6 && op.inc6[ax]));
            for pz in region_range(op.delta[2]) {
                let ez = 2 * (pz as i32 - 3) - op.off[2];
                if !valid(ez, 2) {
                    continue;
                }
                for py in region_range(op.delta[1]) {
                    let ey = 2 * (py as i32 - 3) - op.off[1];
                    if !valid(ey, 1) {
                        continue;
                    }
                    for px in region_range(op.delta[0]) {
                        let ex = 2 * (px as i32 - 3) - op.off[0];
                        if !valid(ex, 0) {
                            continue;
                        }
                        visit(p.idx(px, py, pz), o.idx(ex as usize, ey as usize, ez as usize));
                    }
                }
            }
        }
        ScatterKind::Prolong => {
            // j = off + (p − 3) into the prolonged (2r−1)^3 block.
            let f = FINE_SIDE as i32;
            for pz in region_range(op.delta[2]) {
                let jz = op.off[2] + pz as i32 - 3;
                if !(0..f).contains(&jz) {
                    continue;
                }
                for py in region_range(op.delta[1]) {
                    let jy = op.off[1] + py as i32 - 3;
                    if !(0..f).contains(&jy) {
                        continue;
                    }
                    for px in region_range(op.delta[0]) {
                        let jx = op.off[0] + px as i32 - 3;
                        if !(0..f).contains(&jx) {
                            continue;
                        }
                        visit(p.idx(px, py, pz), ((jz * f + jy) * f + jx) as usize);
                    }
                }
            }
        }
    }
}

/// Execute one scatter op for one variable. `src_block` is the source
/// octant's `r^3` data; `fine13` must hold the source's prolonged
/// `(2r−1)^3` block when `kind == Prolong` (pass anything otherwise).
/// Returns (points written, flops).
pub fn apply_scatter_op(
    op: &ScatterOp,
    src_block: &[f64],
    fine13: &[f64],
    dst_patch: &mut [f64],
) -> (u64, u64) {
    let src = if op.kind == ScatterKind::Prolong { fine13 } else { src_block };
    let mut written = 0u64;
    for_each_scatter_point(op, |dst_idx, src_idx| {
        dst_patch[dst_idx] = src[src_idx];
        written += 1;
    });
    (written, 0)
}

/// Octant-to-patch via **loop-over-octants** (the paper's approach):
/// each octant copies its interior into its own patch, prolongs itself
/// *once* if any finer... (coarser-destination) target exists, and
/// scatters to all neighbor patches. Single-threaded host version.
///
/// Returns total interpolation flops (for AI accounting).
pub fn fill_patches_scatter(mesh: &Mesh, field: &Field, patches: &mut PatchField) -> u64 {
    let prolong = Prolongation::new();
    let mut ws = ProlongWorkspace::new();
    let mut fine13 = vec![0.0f64; FINE_SIDE * FINE_SIDE * FINE_SIDE];
    let mut flops = 0u64;
    let n = mesh.n_octants();
    for var in 0..field.dof {
        for e in 0..n {
            let src = field.block(var, e);
            // Own interior.
            gw_stencil::patch::octant_to_patch_interior(src, patches.patch_mut(var, e));
            let ops = mesh.scatter_of(e);
            // One prolongation shared by all Prolong targets (the key
            // saving versus loop-over-patches).
            if ops.iter().any(|op| op.kind == ScatterKind::Prolong) {
                flops += prolong.prolong3d_ws(src, &mut fine13, &mut ws);
            }
            for op in ops {
                let dst = patches.patch_mut(var, op.dst as usize);
                apply_scatter_op(op, src, &fine13, dst);
            }
        }
    }
    flops
}

/// Octant-parallel [`fill_patches_scatter`]: one task per source octant,
/// mirroring the paper's one-GPU-block-per-octant kernel grid. Race
/// freedom is structural — each task writes its own patch interior plus
/// the padding targets of its outgoing ops, and `Mesh::build` asserts
/// that those target sets are disjoint across sources (the write
/// partition). Bit-identical to the serial version at any thread count:
/// every patch point has exactly one writer and its value depends only on
/// the source block, never on execution order.
pub fn fill_patches_scatter_par(
    mesh: &Mesh,
    field: &Field,
    patches: &mut PatchField,
    pool: &ThreadPool,
) -> u64 {
    thread_local! {
        static SCRATCH: RefCell<Option<(ProlongWorkspace, Vec<f64>)>> =
            const { RefCell::new(None) };
    }
    let prolong = Prolongation::new();
    let dof = field.dof;
    let n_oct = patches.n_oct;
    let n = mesh.n_octants();
    let out = UnsafeSlice::new(patches.as_mut_slice());
    let flops: Vec<u64> = pool.map(n, |e| {
        SCRATCH.with(|cell| {
            let mut guard = cell.borrow_mut();
            let (ws, fine13) = guard.get_or_insert_with(|| {
                (ProlongWorkspace::new(), vec![0.0f64; FINE_SIDE * FINE_SIDE * FINE_SIDE])
            });
            let o = PatchLayout::octant();
            let p = PatchLayout::padded();
            let ops = mesh.scatter_of(e);
            let needs_prolong = ops.iter().any(|op| op.kind == ScatterKind::Prolong);
            let mut fl = 0u64;
            for var in 0..dof {
                let src = field.block(var, e);
                // Own interior: this task is the sole writer of patch
                // (var, e)'s interior region.
                let own = (var * n_oct + e) * PATCH_VOLUME;
                for (i, j, k) in o.iter() {
                    // Safety: single writer per point (see fn docs).
                    unsafe {
                        out.write(
                            own + p.idx(i + PADDING, j + PADDING, k + PADDING),
                            src[o.idx(i, j, k)],
                        )
                    };
                }
                if needs_prolong {
                    fl += prolong.prolong3d_ws(src, fine13, ws);
                }
                for op in ops {
                    let base = (var * n_oct + op.dst as usize) * PATCH_VOLUME;
                    let sarr: &[f64] = if op.kind == ScatterKind::Prolong { fine13 } else { src };
                    for_each_scatter_point(op, |dst_idx, src_idx| {
                        // Safety: the write partition makes (base+dst_idx)
                        // unique to this source octant.
                        unsafe { out.write(base + dst_idx, sarr[src_idx]) };
                    });
                }
            }
            fl
        })
    });
    tree_reduce(&flops, 0u64, |a, b| a + b)
}

/// Patch-to-octant: copy every patch interior back into the octant blocks
/// (a pure data-movement kernel; Table III reports zero arithmetic
/// intensity for it).
pub fn patches_to_octants(mesh: &Mesh, patches: &PatchField, field: &mut Field) {
    for var in 0..field.dof {
        for e in 0..mesh.n_octants() {
            gw_stencil::patch::patch_interior_to_octant(
                patches.patch(var, e),
                field.block_mut(var, e),
            );
        }
    }
}

/// Octant-parallel [`patches_to_octants`]: octant blocks are disjoint per
/// `(var, octant)`, so each task owns its output blocks outright.
pub fn patches_to_octants_par(
    mesh: &Mesh,
    patches: &PatchField,
    field: &mut Field,
    pool: &ThreadPool,
) {
    use gw_stencil::patch::BLOCK_VOLUME;
    let dof = field.dof;
    let n_oct = field.n_oct;
    let out = UnsafeSlice::new(field.as_mut_slice());
    pool.for_each(mesh.n_octants(), |e| {
        for var in 0..dof {
            // Safety: block (var, e) is written by task e alone.
            let block = unsafe { out.slice_mut((var * n_oct + e) * BLOCK_VOLUME, BLOCK_VOLUME) };
            gw_stencil::patch::patch_interior_to_octant(patches.patch(var, e), block);
        }
    });
}

/// Fine→coarse interface synchronization: overwrite coarse points that
/// coincide with fine points using the fine (authoritative) values.
pub fn sync_interfaces(mesh: &Mesh, field: &mut Field) {
    for var in 0..field.dof {
        for c in &mesh.syncs {
            let v = field.block(var, c.src_oct as usize)[c.src_idx as usize];
            field.block_mut(var, c.dst_oct as usize)[c.dst_idx as usize] = v;
        }
    }
}

/// Variable-parallel [`sync_interfaces`]: one task per variable, matching
/// the GPU kernel's `grid(NUM_VARS)` launch. The copy list is applied in
/// its serial order *within* each variable — with ≥3 refinement levels a
/// point can be a sync destination for one interface and a sync source
/// for another, so cross-copy order within a variable is preserved, while
/// distinct variables touch disjoint storage.
pub fn sync_interfaces_par(mesh: &Mesh, field: &mut Field, pool: &ThreadPool) {
    use gw_stencil::patch::BLOCK_VOLUME;
    let n_oct = field.n_oct;
    let dof = field.dof;
    let out = UnsafeSlice::new(field.as_mut_slice());
    pool.for_each_chunked(dof, 1, |var| {
        for c in &mesh.syncs {
            // Safety: all accesses of task `var` stay within variable
            // `var`'s block range; tasks are disjoint per variable.
            unsafe {
                let v = out
                    .read((var * n_oct + c.src_oct as usize) * BLOCK_VOLUME + c.src_idx as usize);
                out.write(
                    (var * n_oct + c.dst_oct as usize) * BLOCK_VOLUME + c.dst_idx as usize,
                    v,
                );
            }
        }
    });
}

/// Fill domain-boundary padding regions by 6th-order polynomial
/// extrapolation along each outward axis (sufficient for the far-field
/// boundaries, which the solver additionally treats with Sommerfeld
/// conditions on the RHS).
pub fn fill_boundary_padding(mesh: &Mesh, patches: &mut PatchField, dof: usize) {
    fill_boundary_padding_range(mesh, patches, dof, 0..mesh.n_octants());
}

/// [`fill_boundary_padding`] restricted to octants in `range` (used by
/// the distributed driver, which only owns a contiguous SFC range).
pub fn fill_boundary_padding_range(
    mesh: &Mesh,
    patches: &mut PatchField,
    dof: usize,
    range: std::ops::Range<usize>,
) {
    let p = PatchLayout::padded();
    for var in 0..dof {
        for &(oct, delta) in &mesh.boundary_regions {
            if !range.contains(&(oct as usize)) {
                continue;
            }
            let patch = patches.patch_mut(var, oct as usize);
            for pz in region_range(delta[2]) {
                for py in region_range(delta[1]) {
                    for px in region_range(delta[0]) {
                        // Clamp to the nearest interior point (constant
                        // extrapolation; the physical boundary is in the
                        // wave zone where fields are smooth and the
                        // Sommerfeld RHS dominates).
                        let cx = px.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        let cy = py.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        let cz = pz.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        patch[p.idx(px, py, pz)] = patch[p.idx(cx, cy, cz)];
                    }
                }
            }
        }
    }
}

/// Region-parallel [`fill_boundary_padding`]: one task per boundary
/// `(octant, delta)` region. Regions of the same patch are disjoint, and
/// the clamped read source is always in the patch interior, which this
/// kernel never writes.
pub fn fill_boundary_padding_par(
    mesh: &Mesh,
    patches: &mut PatchField,
    dof: usize,
    pool: &ThreadPool,
) {
    let n_oct = patches.n_oct;
    let regions = &mesh.boundary_regions;
    let out = UnsafeSlice::new(patches.as_mut_slice());
    pool.for_each(regions.len(), |ri| {
        let (oct, delta) = regions[ri];
        let p = PatchLayout::padded();
        for var in 0..dof {
            let base = (var * n_oct + oct as usize) * PATCH_VOLUME;
            for pz in region_range(delta[2]) {
                for py in region_range(delta[1]) {
                    for px in region_range(delta[0]) {
                        let cx = px.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        let cy = py.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        let cz = pz.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        // Safety: reads hit the (never-written) interior;
                        // each padding point belongs to exactly one region.
                        unsafe {
                            let v = out.read(base + p.idx(cx, cy, cz));
                            out.write(base + p.idx(px, py, pz), v);
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::unit(), &t)
    }

    fn uniform_mesh(level: u8) -> Mesh {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..level {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        Mesh::build(Domain::unit(), &leaves)
    }

    /// Fill a field with a polynomial that 6th-order interpolation must
    /// reproduce exactly, then check every written padding point.
    fn poly(p: [f64; 3]) -> f64 {
        1.0 + 2.0 * p[0] - p[1] + 0.5 * p[2] + p[0] * p[1] - p[2] * p[2]
            + p[0] * p[0] * p[2]
            + 0.25 * p[1] * p[1] * p[1]
    }

    fn analytic_field(mesh: &Mesh) -> Field {
        let mut f = Field::zeros(1, mesh.n_octants());
        for oct in 0..mesh.n_octants() {
            let l = PatchLayout::octant();
            let coords: Vec<f64> =
                l.iter().map(|(i, j, k)| poly(mesh.point_coords(oct, i, j, k))).collect();
            f.block_mut(0, oct).copy_from_slice(&coords);
        }
        f
    }

    fn check_patches(mesh: &Mesh, patches: &PatchField, tol: f64) {
        let p = PatchLayout::padded();
        let boundary: std::collections::HashSet<(u32, [i8; 3])> =
            mesh.boundary_regions.iter().copied().collect();
        let mut checked = 0usize;
        for oct in 0..mesh.n_octants() {
            let info = &mesh.octants[oct];
            let patch = patches.patch(0, oct);
            for (i, j, k) in p.iter() {
                // Which region is this point in?
                let reg = |t: usize| -> i8 {
                    if t < PADDING {
                        -1
                    } else if t < PADDING + POINTS_PER_SIDE {
                        0
                    } else {
                        1
                    }
                };
                let delta = [reg(i), reg(j), reg(k)];
                if boundary.contains(&(oct as u32, delta)) {
                    continue; // boundary padding is extrapolated, skip
                }
                let pos = [
                    info.origin[0] + (i as f64 - PADDING as f64) * info.h,
                    info.origin[1] + (j as f64 - PADDING as f64) * info.h,
                    info.origin[2] + (k as f64 - PADDING as f64) * info.h,
                ];
                let expect = poly(pos);
                let got = patch[p.idx(i, j, k)];
                assert!(
                    (got - expect).abs() < tol,
                    "oct {oct} point ({i},{j},{k}) delta {delta:?}: {got} vs {expect}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn uniform_grid_padding_exact() {
        let mesh = uniform_mesh(2);
        let f = analytic_field(&mesh);
        let mut patches = PatchField::zeros(1, mesh.n_octants());
        patches.fill(f64::NAN);
        fill_patches_scatter(&mesh, &f, &mut patches);
        check_patches(&mesh, &patches, 1e-12);
    }

    #[test]
    fn adaptive_grid_padding_exact_on_polynomial() {
        let mesh = adaptive_mesh();
        let f = analytic_field(&mesh);
        let mut patches = PatchField::zeros(1, mesh.n_octants());
        patches.fill(f64::NAN);
        fill_patches_scatter(&mesh, &f, &mut patches);
        check_patches(&mesh, &patches, 1e-9);
    }

    #[test]
    fn no_nan_left_in_interior_regions() {
        // Every non-boundary padding point must be written exactly once.
        let mesh = adaptive_mesh();
        let f = analytic_field(&mesh);
        let mut patches = PatchField::zeros(1, mesh.n_octants());
        patches.fill(f64::NAN);
        fill_patches_scatter(&mesh, &f, &mut patches);
        let p = PatchLayout::padded();
        let boundary: std::collections::HashSet<(u32, [i8; 3])> =
            mesh.boundary_regions.iter().copied().collect();
        for oct in 0..mesh.n_octants() {
            let patch = patches.patch(0, oct);
            for (i, j, k) in p.iter() {
                let reg = |t: usize| -> i8 {
                    if t < PADDING {
                        -1
                    } else if t < PADDING + POINTS_PER_SIDE {
                        0
                    } else {
                        1
                    }
                };
                let delta = [reg(i), reg(j), reg(k)];
                if delta == [0, 0, 0] || boundary.contains(&(oct as u32, delta)) {
                    continue;
                }
                assert!(
                    !patch[p.idx(i, j, k)].is_nan(),
                    "unwritten padding at oct {oct} ({i},{j},{k}) delta {delta:?}"
                );
            }
        }
    }

    #[test]
    fn patch_to_octant_roundtrip() {
        let mesh = uniform_mesh(1);
        let f = analytic_field(&mesh);
        let mut patches = PatchField::zeros(1, mesh.n_octants());
        fill_patches_scatter(&mesh, &f, &mut patches);
        let mut back = Field::zeros(1, mesh.n_octants());
        patches_to_octants(&mesh, &patches, &mut back);
        for oct in 0..mesh.n_octants() {
            for (a, b) in f.block(0, oct).iter().zip(back.block(0, oct).iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn sync_interfaces_copies_fine_to_coarse() {
        let mesh = adaptive_mesh();
        assert!(!mesh.syncs.is_empty());
        let mut f = analytic_field(&mesh);
        // Perturb all coarse octants' data; sync must restore coincident
        // points from fine neighbors.
        let sync_dsts: std::collections::HashSet<u32> =
            mesh.syncs.iter().map(|c| c.dst_oct).collect();
        for &d in &sync_dsts {
            for v in f.block_mut(0, d as usize).iter_mut() {
                *v += 100.0;
            }
        }
        sync_interfaces(&mesh, &mut f);
        for c in &mesh.syncs {
            let fine_v = f.block(0, c.src_oct as usize)[c.src_idx as usize];
            let coarse_v = f.block(0, c.dst_oct as usize)[c.dst_idx as usize];
            assert_eq!(fine_v, coarse_v);
        }
    }

    #[test]
    fn sync_targets_are_unique() {
        let mesh = adaptive_mesh();
        let mut seen = std::collections::HashSet::new();
        for c in &mesh.syncs {
            assert!(seen.insert((c.dst_oct, c.dst_idx)), "duplicate sync target {c:?}");
        }
    }

    #[test]
    fn boundary_padding_filled() {
        let mesh = uniform_mesh(1);
        let f = analytic_field(&mesh);
        let mut patches = PatchField::zeros(1, mesh.n_octants());
        patches.fill(f64::NAN);
        fill_patches_scatter(&mesh, &f, &mut patches);
        fill_boundary_padding(&mesh, &mut patches, 1);
        // Now no NaN anywhere.
        for oct in 0..mesh.n_octants() {
            assert!(patches.patch(0, oct).iter().all(|v| !v.is_nan()));
        }
    }

    /// The parallel kernels must be bit-identical to the serial oracles
    /// for every thread count — the core determinism claim of the
    /// threading model (DESIGN.md).
    #[test]
    fn parallel_kernels_bitwise_match_serial_at_any_thread_count() {
        let mesh = adaptive_mesh();
        let dof = 3;
        let mut f = Field::zeros(dof, mesh.n_octants());
        for var in 0..dof {
            for oct in 0..mesh.n_octants() {
                for (i, v) in f.block_mut(var, oct).iter_mut().enumerate() {
                    *v = ((var * 1009 + oct * 131 + i) as f64).sin();
                }
            }
        }
        // Serial reference pipeline.
        let mut p_ref = PatchField::zeros(dof, mesh.n_octants());
        p_ref.fill(f64::NAN);
        let flops_ref = fill_patches_scatter(&mesh, &f, &mut p_ref);
        fill_boundary_padding(&mesh, &mut p_ref, dof);
        let mut back_ref = Field::zeros(dof, mesh.n_octants());
        patches_to_octants(&mesh, &p_ref, &mut back_ref);
        let mut sync_ref = f.clone();
        sync_interfaces(&mesh, &mut sync_ref);
        for threads in [1usize, 2, 3, 8] {
            let pool = gw_par::ThreadPool::new(threads);
            let mut p = PatchField::zeros(dof, mesh.n_octants());
            p.fill(f64::NAN);
            let flops = fill_patches_scatter_par(&mesh, &f, &mut p, &pool);
            assert_eq!(flops, flops_ref, "flop count differs at {threads} threads");
            fill_boundary_padding_par(&mesh, &mut p, dof, &pool);
            let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(p.as_slice()),
                bits(p_ref.as_slice()),
                "patches differ at {threads} threads"
            );
            let mut back = Field::zeros(dof, mesh.n_octants());
            patches_to_octants_par(&mesh, &p, &mut back, &pool);
            assert_eq!(bits(back.as_slice()), bits(back_ref.as_slice()));
            let mut sync = f.clone();
            sync_interfaces_par(&mesh, &mut sync, &pool);
            assert_eq!(bits(sync.as_slice()), bits(sync_ref.as_slice()));
        }
    }

    #[test]
    fn scatter_flops_counted_for_adaptive_grids_only() {
        let u = uniform_mesh(2);
        let fu = analytic_field(&u);
        let mut pu = PatchField::zeros(1, u.n_octants());
        assert_eq!(fill_patches_scatter(&u, &fu, &mut pu), 0);
        let a = adaptive_mesh();
        let fa = analytic_field(&a);
        let mut pa = PatchField::zeros(1, a.n_octants());
        assert!(fill_patches_scatter(&a, &fa, &mut pa) > 0);
    }
}
