//! Block storage for octant fields.

use gw_par::{ThreadPool, UnsafeSlice};
use gw_stencil::patch::{BLOCK_VOLUME, PATCH_VOLUME};

/// Chunk length for the element-wise parallel kernels (AXPY, copy): big
/// enough to amortize task dispatch, small enough to load-balance.
const AXPY_CHUNK: usize = 4096;

/// A multi-dof field over the octants of a mesh: `dof × n_oct` blocks of
/// `r^3 = 343` points, laid out variable-major (`[var][octant][point]`) so
/// per-variable kernels stream contiguously — the access pattern of the
/// paper's octant-to-patch kernel grid `(|E|, dof)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    pub dof: usize,
    pub n_oct: usize,
    data: Vec<f64>,
}

impl Field {
    pub fn zeros(dof: usize, n_oct: usize) -> Self {
        Self { dof, n_oct, data: vec![0.0; dof * n_oct * BLOCK_VOLUME] }
    }

    /// Total scalar unknowns (counting duplicated boundary points).
    pub fn unknowns(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn block(&self, var: usize, oct: usize) -> &[f64] {
        let s = (var * self.n_oct + oct) * BLOCK_VOLUME;
        &self.data[s..s + BLOCK_VOLUME]
    }

    #[inline]
    pub fn block_mut(&mut self, var: usize, oct: usize) -> &mut [f64] {
        let s = (var * self.n_oct + oct) * BLOCK_VOLUME;
        &mut self.data[s..s + BLOCK_VOLUME]
    }

    /// Raw storage (e.g. for host↔device transfers).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn from_vec(dof: usize, n_oct: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), dof * n_oct * BLOCK_VOLUME);
        Self { dof, n_oct, data }
    }

    /// `self += a * other` (the RK AXPY update).
    pub fn axpy(&mut self, a: f64, other: &Field) {
        assert_eq!(self.data.len(), other.data.len());
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += a * y;
        }
    }

    /// `self = base + a * slope` (RK stage formation).
    pub fn assign_axpy(&mut self, base: &Field, a: f64, slope: &Field) {
        assert_eq!(self.data.len(), base.data.len());
        assert_eq!(self.data.len(), slope.data.len());
        for ((x, b), s) in self.data.iter_mut().zip(base.data.iter()).zip(slope.data.iter()) {
            *x = b + a * s;
        }
    }

    /// Chunk-parallel [`Field::axpy`]. Each output element depends only
    /// on its own input pair, so any chunking is bit-identical to serial.
    pub fn axpy_par(&mut self, a: f64, other: &Field, pool: &ThreadPool) {
        assert_eq!(self.data.len(), other.data.len());
        let n = self.data.len();
        let out = UnsafeSlice::new(&mut self.data);
        pool.for_each(n.div_ceil(AXPY_CHUNK), |ci| {
            let s = ci * AXPY_CHUNK;
            let e = (s + AXPY_CHUNK).min(n);
            // Safety: chunks are disjoint.
            let dst = unsafe { out.slice_mut(s, e - s) };
            for (x, y) in dst.iter_mut().zip(other.data[s..e].iter()) {
                *x += a * y;
            }
        });
    }

    /// Chunk-parallel [`Field::assign_axpy`].
    pub fn assign_axpy_par(&mut self, base: &Field, a: f64, slope: &Field, pool: &ThreadPool) {
        assert_eq!(self.data.len(), base.data.len());
        assert_eq!(self.data.len(), slope.data.len());
        let n = self.data.len();
        let out = UnsafeSlice::new(&mut self.data);
        pool.for_each(n.div_ceil(AXPY_CHUNK), |ci| {
            let s = ci * AXPY_CHUNK;
            let e = (s + AXPY_CHUNK).min(n);
            // Safety: chunks are disjoint.
            let dst = unsafe { out.slice_mut(s, e - s) };
            for ((x, b), sl) in
                dst.iter_mut().zip(base.data[s..e].iter()).zip(slope.data[s..e].iter())
            {
                *x = b + a * sl;
            }
        });
    }

    /// Chunk-parallel copy of `other`'s contents into `self`.
    pub fn copy_from_par(&mut self, other: &Field, pool: &ThreadPool) {
        assert_eq!(self.data.len(), other.data.len());
        let n = self.data.len();
        let out = UnsafeSlice::new(&mut self.data);
        pool.for_each(n.div_ceil(AXPY_CHUNK), |ci| {
            let s = ci * AXPY_CHUNK;
            let e = (s + AXPY_CHUNK).min(n);
            // Safety: chunks are disjoint.
            unsafe { out.slice_mut(s, e - s) }.copy_from_slice(&other.data[s..e]);
        });
    }

    /// Max-norm over one variable.
    pub fn linf(&self, var: usize) -> f64 {
        let s = var * self.n_oct * BLOCK_VOLUME;
        self.data[s..s + self.n_oct * BLOCK_VOLUME].iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Max-norm over everything.
    pub fn linf_all(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// RMS over one variable.
    pub fn rms(&self, var: usize) -> f64 {
        let s = var * self.n_oct * BLOCK_VOLUME;
        let sl = &self.data[s..s + self.n_oct * BLOCK_VOLUME];
        (sl.iter().map(|v| v * v).sum::<f64>() / sl.len() as f64).sqrt()
    }
}

/// Padded-patch storage: `dof × n_oct` patches of `(r+2k)^3 = 2197`
/// points — the "unzip" vector the octant-to-patch kernel fills.
#[derive(Clone, Debug)]
pub struct PatchField {
    pub dof: usize,
    pub n_oct: usize,
    data: Vec<f64>,
}

impl PatchField {
    pub fn zeros(dof: usize, n_oct: usize) -> Self {
        Self { dof, n_oct, data: vec![0.0; dof * n_oct * PATCH_VOLUME] }
    }

    #[inline]
    pub fn patch(&self, var: usize, oct: usize) -> &[f64] {
        let s = (var * self.n_oct + oct) * PATCH_VOLUME;
        &self.data[s..s + PATCH_VOLUME]
    }

    #[inline]
    pub fn patch_mut(&mut self, var: usize, oct: usize) -> &mut [f64] {
        let s = (var * self.n_oct + oct) * PATCH_VOLUME;
        &mut self.data[s..s + PATCH_VOLUME]
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat offset of a patch, for kernels working on raw buffers.
    #[inline]
    pub fn patch_offset(&self, var: usize, oct: usize) -> usize {
        (var * self.n_oct + oct) * PATCH_VOLUME
    }

    /// Fill everything with a sentinel (tests use NaN to prove that every
    /// padding point belonging to the domain interior gets written).
    pub fn fill(&mut self, v: f64) {
        self.data.iter_mut().for_each(|x| *x = v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_block_addressing_is_disjoint() {
        let mut f = Field::zeros(3, 5);
        for var in 0..3 {
            for oct in 0..5 {
                f.block_mut(var, oct)[0] = (var * 10 + oct) as f64;
            }
        }
        for var in 0..3 {
            for oct in 0..5 {
                assert_eq!(f.block(var, oct)[0], (var * 10 + oct) as f64);
            }
        }
        assert_eq!(f.unknowns(), 3 * 5 * 343);
    }

    #[test]
    fn axpy_updates() {
        let mut a = Field::zeros(1, 1);
        let mut b = Field::zeros(1, 1);
        a.block_mut(0, 0).iter_mut().for_each(|v| *v = 2.0);
        b.block_mut(0, 0).iter_mut().for_each(|v| *v = 3.0);
        a.axpy(0.5, &b);
        assert!(a.block(0, 0).iter().all(|&v| (v - 3.5).abs() < 1e-15));
        let mut c = Field::zeros(1, 1);
        c.assign_axpy(&a, 2.0, &b);
        assert!(c.block(0, 0).iter().all(|&v| (v - 9.5).abs() < 1e-15));
    }

    #[test]
    fn parallel_axpy_bitwise_matches_serial() {
        let n_oct = 5;
        let dof = 4;
        let mk = |seed: usize| {
            let mut f = Field::zeros(dof, n_oct);
            for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
                *v = ((seed * 7919 + i) as f64).cos();
            }
            f
        };
        let (x0, y, b, s) = (mk(1), mk(2), mk(3), mk(4));
        let mut x_ref = x0.clone();
        x_ref.axpy(0.3, &y);
        let mut z_ref = Field::zeros(dof, n_oct);
        z_ref.assign_axpy(&b, -1.7, &s);
        for threads in [1usize, 2, 7] {
            let pool = ThreadPool::new(threads);
            let mut x = x0.clone();
            x.axpy_par(0.3, &y, &pool);
            assert_eq!(x, x_ref);
            let mut z = Field::zeros(dof, n_oct);
            z.assign_axpy_par(&b, -1.7, &s, &pool);
            assert_eq!(z, z_ref);
            let mut c = Field::zeros(dof, n_oct);
            c.copy_from_par(&y, &pool);
            assert_eq!(c, y);
        }
    }

    #[test]
    fn norms() {
        let mut f = Field::zeros(2, 1);
        f.block_mut(1, 0)[7] = -4.0;
        assert_eq!(f.linf(0), 0.0);
        assert_eq!(f.linf(1), 4.0);
        assert_eq!(f.linf_all(), 4.0);
        assert!(f.rms(1) > 0.0 && f.rms(1) < 4.0);
    }

    #[test]
    fn patch_field_addressing() {
        let mut p = PatchField::zeros(2, 3);
        p.patch_mut(1, 2)[100] = 9.0;
        assert_eq!(p.patch(1, 2)[100], 9.0);
        assert_eq!(p.patch(0, 2)[100], 0.0);
        assert_eq!(p.patch_offset(1, 2), (3 + 2) * 2197);
    }
}
