//! Mesh layer: octree → computational grid.
//!
//! Builds everything the solver kernels need from a balanced linear octree:
//!
//! * [`field`] — per-octant block storage for multi-dof fields (`r^3`
//!   points per octant) and their padded-patch counterparts (`(r+2k)^3`).
//! * [`grid`] — the [`grid::Mesh`]: octant geometry, the `O2P`
//!   (octant-to-neighboring-patches) scatter map precomputed at grid
//!   construction (section IV-A), domain-boundary padding regions, and the
//!   fine→coarse interface-sync map.
//! * [`scatter`] — *loop-over-octants* octant-to-patch: each octant
//!   scatters its data into neighbor patches with direct copy / injection /
//!   interpolation per the 2:1 case analysis (Algorithm 2). Plus
//!   patch-to-octant (pure copy-back) and interface sync.
//! * [`gather`] — *loop-over-patches* octant-to-patch (the Dendro-GR
//!   baseline the paper improves on, Fig. 7): each patch pulls from its
//!   neighbors, re-interpolating per target (redundant interpolations).
//!
//! ## Storage convention (substitution note)
//!
//! Dendro-GR stores a deduplicated global point vector ("zipped") and
//! materializes blocks+padding on demand ("unzip"). We store each octant's
//! full `r^3` block including shared boundary points (duplicated across
//! face-adjacent octants). At equal refinement the duplicated points evolve
//! bit-identically (same stencil inputs), so no synchronization is needed;
//! across coarse–fine interfaces the fine side is authoritative and
//! [`scatter::sync_interfaces`] re-injects fine face values into the
//! overlapping coarse points after each step — the same semantics Dendro's
//! hanging-node zip/unzip pair provides, at the cost of ~15% extra memory.

pub mod field;
pub mod gather;
pub mod grid;
pub mod o2n;
pub mod scatter;

pub use field::{Field, PatchField};
pub use grid::{Mesh, MeshError, ScatterKind, ScatterOp};
pub use o2n::O2NMap;
pub use scatter::{
    fill_patches_scatter, fill_patches_scatter_par, patches_to_octants, patches_to_octants_par,
    sync_interfaces, sync_interfaces_par,
};
