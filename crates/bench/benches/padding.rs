//! Criterion bench: octant-to-patch strategies (Fig. 7 / Table III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gw_bench::table3_grids;
use gw_mesh::gather::fill_patches_gather;
use gw_mesh::scatter::{fill_patches_scatter, patches_to_octants};
use gw_mesh::{Field, PatchField};

fn bench_padding(c: &mut Criterion) {
    let mut group = c.benchmark_group("padding");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, mesh) in table3_grids(1.0).into_iter().take(2) {
        let n = mesh.n_octants();
        let dof = 4;
        let mut field = Field::zeros(dof, n);
        for v in 0..dof {
            for oct in 0..n {
                for (i, x) in field.block_mut(v, oct).iter_mut().enumerate() {
                    *x = ((oct * 13 + i) % 97) as f64;
                }
            }
        }
        let mut patches = PatchField::zeros(dof, n);
        group.bench_with_input(BenchmarkId::new("scatter", &name), &mesh, |b, m| {
            b.iter(|| fill_patches_scatter(m, &field, &mut patches))
        });
        group.bench_with_input(BenchmarkId::new("gather", &name), &mesh, |b, m| {
            b.iter(|| fill_patches_gather(m, &field, &mut patches))
        });
        let mut back = Field::zeros(dof, n);
        group.bench_with_input(BenchmarkId::new("patch_to_octant", &name), &mesh, |b, m| {
            b.iter(|| patches_to_octants(m, &patches, &mut back))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);
