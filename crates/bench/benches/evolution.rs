//! Criterion bench: full RK4 steps on CPU and simulated-GPU backends
//! (Fig. 16 microbenchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use gw_bench::grids::{bbh_grid, uniform_grid};
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, CpuBackend, GpuBackend, RhsKind};
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_expr::schedule::ScheduleStrategy;
use gw_gpu_sim::Device;
use gw_octree::Domain;

fn bench_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("rk4-step");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let _ = bbh_grid; // larger grids available; the bench uses a small one
    let mesh = uniform_grid(Domain::centered_cube(16.0), 2);
    let u = fill_field(&mesh, &|_p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
        }
    });
    let rk = Rk4::default();
    let dt = rk.timestep(&mesh);

    let mut cpu = CpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise);
    cpu.upload(&u);
    group.bench_function(format!("cpu-pointwise-{}oct", mesh.n_octants()), |b| {
        b.iter(|| rk.step(&mut cpu, &mesh, dt))
    });

    let mut gpu = GpuBackend::new(
        &mesh,
        BssnParams::default(),
        RhsKind::Generated(ScheduleStrategy::StagedCse),
        Device::a100(),
    );
    gpu.upload(&u);
    group.bench_function(format!("gpu-sim-staged-{}oct", mesh.n_octants()), |b| {
        b.iter(|| rk.step(&mut gpu, &mesh, dt))
    });
    group.finish();
}

criterion_group!(benches, bench_evolution);
criterion_main!(benches);
