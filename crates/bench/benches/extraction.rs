//! Criterion bench: wave-extraction pipeline (sphere interpolation, SWSH
//! projection, Lebedev vs product quadrature).

use criterion::{criterion_group, criterion_main, Criterion};
use gw_bench::grids::uniform_grid;
use gw_core::solver::fill_field;
use gw_octree::Domain;
use gw_waveform::lebedev::{integrate, lebedev_rule, product_rule};
use gw_waveform::swsh::swsh;
use gw_waveform::{ExtractionSphere, ModeExtractor};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("swsh-2-2", |b| b.iter(|| swsh(-2, 2, 2, 1.234, 0.567)));
    group.bench_function("swsh-4-3", |b| b.iter(|| swsh(-2, 4, 3, 1.234, 0.567)));

    for (name, rule) in [("lebedev-26", lebedev_rule(7)), ("product-8x16", product_rule(8, 16))] {
        group.bench_function(format!("integrate-{name}"), |b| {
            b.iter(|| integrate(&rule, |n| n.dir[0] * n.dir[0] * n.dir[2].abs()))
        });
    }

    let mesh = uniform_grid(Domain::centered_cube(8.0), 3);
    let u = fill_field(&mesh, &|p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = if v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
        }
        out[9] += 1e-3 * (0.5 * p[2]).sin();
        out[12] -= 1e-3 * (0.5 * p[2]).sin();
    });
    let sphere = ExtractionSphere::new(4.0, product_rule(8, 16));
    let mut ex = ModeExtractor::new(sphere, vec![(2, 2), (2, -2), (3, 2)]);
    let mut t = 0.0;
    group.bench_function("record-3-modes-128-nodes", |b| {
        b.iter(|| {
            t += 1.0;
            ex.record(t, &mesh, &u)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
