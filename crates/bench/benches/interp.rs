//! Criterion bench: stencil and interpolation kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use gw_stencil::fd::DerivOps;
use gw_stencil::interp::{ProlongWorkspace, Prolongation, FINE_SIDE};
use gw_stencil::ko::ko_dissipation;
use gw_stencil::patch::{PatchLayout, BLOCK_VOLUME, PATCH_VOLUME};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("stencil");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let patch: Vec<f64> = (0..PATCH_VOLUME).map(|i| (i % 31) as f64 * 0.01).collect();
    let mut out = vec![0.0; BLOCK_VOLUME];
    let ops = DerivOps::new(0.05);

    group.bench_function("deriv-x", |b| b.iter(|| ops.deriv(0, &patch, &mut out)));
    group.bench_function("deriv2-z", |b| b.iter(|| ops.deriv2(2, &patch, &mut out)));
    group.bench_function("deriv-mixed-xy", |b| b.iter(|| ops.deriv_mixed(0, 1, &patch, &mut out)));
    group.bench_function("advective-x", |b| {
        b.iter(|| ops.deriv_advective(0, &patch, true, &mut out))
    });
    group.bench_function("ko-dissipation", |b| {
        b.iter(|| ko_dissipation(0.4, 20.0, &patch, &mut out))
    });

    let prolong = Prolongation::new();
    let coarse = vec![1.0; BLOCK_VOLUME];
    let mut fine = vec![0.0; FINE_SIDE * FINE_SIDE * FINE_SIDE];
    let mut ws = ProlongWorkspace::new();
    group.bench_function("prolong3d", |b| {
        b.iter(|| prolong.prolong3d_ws(&coarse, &mut fine, &mut ws))
    });

    // All 210 derivatives of one octant (the paper's per-octant load).
    let mut dws = gw_bssn::DerivWorkspace::new();
    let patches: Vec<Vec<f64>> = (0..24).map(|_| patch.clone()).collect();
    let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
    group.bench_function("all-210-derivatives", |b| b.iter(|| dws.compute(&refs, 0.05)));

    let l = PatchLayout::octant();
    let _ = l;
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
