//! Criterion bench: BSSN RHS per-patch cost — pointwise vs the three
//! generated tapes (Fig. 11 / Table II microbenchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use gw_bssn::rhs::{bssn_rhs_patch, RhsMode, RhsWorkspace};
use gw_bssn::BssnParams;
use gw_expr::bssn::build_bssn_rhs;
use gw_expr::schedule::{schedule, ScheduleStrategy};
use gw_expr::symbols::NUM_VARS;
use gw_expr::tape::Tape;
use gw_stencil::patch::{PatchLayout, BLOCK_VOLUME, PADDING};

fn smooth_patches(h: f64) -> Vec<Vec<f64>> {
    let p = PatchLayout::padded();
    (0..NUM_VARS)
        .map(|v| {
            let mut buf = vec![0.0; p.volume()];
            for (i, j, k) in p.iter() {
                let x = (i as f64 - PADDING as f64) * h;
                let y = (j as f64 - PADDING as f64) * h;
                let z = (k as f64 - PADDING as f64) * h;
                let w = 0.01 * ((x + 0.3 * y).sin() * (0.5 * z).cos());
                buf[p.idx(i, j, k)] = match v {
                    0 | 7 | 9 | 12 | 14 => 1.0 + w,
                    _ => w,
                };
            }
            buf
        })
        .collect()
}

fn bench_rhs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bssn-rhs-per-patch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let h = 0.05;
    let patches = smooth_patches(h);
    let refs: Vec<&[f64]> = patches.iter().map(|p| p.as_slice()).collect();
    let params = BssnParams::default();

    group.bench_function("pointwise", |b| {
        let mut ws = RhsWorkspace::new(1);
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; BLOCK_VOLUME]; NUM_VARS];
        b.iter(|| {
            let mut views: Vec<&mut [f64]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
            bssn_rhs_patch(&refs, h, &params, &RhsMode::Pointwise, &mut ws, &mut views)
        })
    });

    let rhs = build_bssn_rhs(params);
    for strat in ScheduleStrategy::all() {
        let sch = schedule(&rhs.graph, &rhs.outputs, strat);
        let tape = Tape::compile(&rhs.graph, &sch, 56);
        group.bench_function(strat.name(), |b| {
            let mut ws = RhsWorkspace::new(tape.n_slots);
            let mut out: Vec<Vec<f64>> = vec![vec![0.0; BLOCK_VOLUME]; NUM_VARS];
            b.iter(|| {
                let mut views: Vec<&mut [f64]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
                bssn_rhs_patch(&refs, h, &params, &RhsMode::Tape(&tape), &mut ws, &mut views)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rhs);
criterion_main!(benches);
