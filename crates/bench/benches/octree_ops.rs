//! Criterion bench: octree construction, 2:1 balance (ripple vs bucket —
//! the DESIGN.md §5 ablation), SFC sort/partition.

use criterion::{criterion_group, criterion_main, Criterion};
use gw_octree::balance::{balance_octree, balance_octree_bucket};
use gw_octree::partition::partition_weighted;
use gw_octree::{
    complete_octree, refine_loop, BalanceMode, Domain, MortonKey, Puncture, PunctureRefiner,
};

fn unbalanced_tree() -> Vec<MortonKey> {
    // Center-refined tree with gross violations.
    let root_ch = MortonKey::root().children();
    let mut leaves: Vec<MortonKey> = root_ch[1..].to_vec();
    let mut k = root_ch[0];
    for _ in 1..7 {
        let ch = k.children();
        leaves.extend_from_slice(&ch[..7]);
        k = ch[7];
    }
    leaves.push(k);
    leaves.sort();
    leaves
}

fn bench_octree(c: &mut Criterion) {
    let mut group = c.benchmark_group("octree");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let t = unbalanced_tree();
    group.bench_function("balance-ripple", |b| b.iter(|| balance_octree(&t, BalanceMode::Full)));
    group.bench_function("balance-bucket", |b| {
        b.iter(|| balance_octree_bucket(&t, BalanceMode::Full))
    });
    group.bench_function("balance-face-only", |b| b.iter(|| balance_octree(&t, BalanceMode::Face)));

    group.bench_function("complete-octree", |b| {
        let keys: Vec<MortonKey> = t.iter().step_by(3).copied().collect();
        b.iter(|| complete_octree(keys.clone()))
    });

    group.bench_function("bbh-refine-loop", |b| {
        let domain = Domain::centered_cube(16.0);
        let p = Puncture { pos: [3.0, 0.0, 0.0], finest_level: 5, inner_radius: 0.5 };
        let r = PunctureRefiner::new(vec![p], 2);
        b.iter(|| refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 12))
    });

    group.bench_function("sfc-partition-weighted", |b| {
        let w: Vec<f64> = (0..100_000).map(|i| 1.0 + (i % 7) as f64).collect();
        b.iter(|| partition_weighted(&w, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_octree);
criterion_main!(benches);
