//! Aligned text-table printing for the regenerators.

/// A minimal fixed-width table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> =
                cells.iter().zip(widths.iter()).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format in scientific notation like the paper's tables.
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

/// Format a float with 3 significant-ish decimals.
pub fn num(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        t.print("test");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(sci(78000.0), "7.80e4");
        assert_eq!(num(0.123456), "0.1235");
        assert_eq!(num(1234.0), "1234");
    }
}
