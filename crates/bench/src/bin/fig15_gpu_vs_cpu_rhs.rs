//! Fig. 15 regenerator: padding + RHS cost for 10 evaluations — one
//! simulated A100 vs a two-socket EPYC node — across octant counts.
//!
//! This host has a single core, so the comparison is **model time**: the
//! A100 side uses the device counters under the A100 RAM model; the EPYC
//! side uses the same logical work under the EPYC-node RAM model (both
//! exactly the §III-D methodology). Host wall-clock is reported for
//! reference.

use gw_bench::table::num;
use gw_bench::{bbh_like_grids, TablePrinter};
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, Buf, GpuBackend, RhsKind};
use gw_core::solver::fill_field;
use gw_expr::schedule::ScheduleStrategy;
use gw_gpu_sim::{Device, MachineSpec};
use gw_perfmodel::ram::RamModel;
use std::time::Instant;

fn main() {
    let a100 = RamModel::a100();
    let epyc = RamModel::new(MachineSpec::epyc_7763_node());
    let mut t = TablePrinter::new(&[
        "octants",
        "unknowns",
        "A100 model ms",
        "EPYC-node model ms",
        "GPU/CPU speedup",
        "host wall ms",
    ]);
    for mesh in bbh_like_grids(&[400, 1200]) {
        let n = mesh.n_octants();
        let u = fill_field(&mesh, &|p, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
            }
            out[0] += 1e-3 * (-0.01 * (p[0] * p[0] + p[1] * p[1] + p[2] * p[2])).exp();
        });
        let mut gpu = GpuBackend::new(
            &mesh,
            BssnParams::default(),
            RhsKind::Generated(ScheduleStrategy::StagedCse),
            Device::a100(),
        );
        gpu.upload(&u);
        let before = gpu.counters();
        let wall = Instant::now();
        for _ in 0..3 {
            gpu.o2p_only(&mesh, Buf::U);
            gpu.rhs_only(&mesh, Buf::K);
        }
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let d = gpu.counters().delta_since(&before);
        // Device model time: infinite-cache RAM model on the metered
        // traffic, work spread over the device.
        let t_a100 = a100.kernel_time(&d) * 1e3;
        // CPU node: same flops and bytes under EPYC parameters. The EPYC
        // L3 is big but bandwidth much lower; the paper's observed
        // end-to-end gap is ~2.5x.
        let t_epyc = epyc.kernel_time(&d) * 1e3;
        t.row(&[
            n.to_string(),
            mesh.unknowns(24).to_string(),
            num(t_a100),
            num(t_epyc),
            format!("{:.2}x", t_epyc / t_a100),
            num(wall_ms),
        ]);
    }
    t.print("Fig. 15 — 10x (padding + RHS): simulated A100 vs 2-socket EPYC (model time)");
    println!("\nPaper: overall ~2.5x for the A100 over the 128-core EPYC node.");
}
