//! Ablation (DESIGN.md §5): fused derivative+algebraic RHS vs a split
//! pipeline (separate derivative kernel materializing all 210 derivative
//! blocks in global memory, then an `A` kernel reading them back).
//!
//! Section IV-B: "The easy way … is to precompute these derivatives with
//! a separate kernel and then combine them in A. This turns out to be
//! slow, but more importantly imposes significant memory constraints."
//! We quantify both claims with the RAM model.

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::derivs::NUM_DERIV_BLOCKS;
use gw_bssn::rhs::{bssn_rhs_patch, RhsMode, RhsWorkspace};
use gw_bssn::BssnParams;
use gw_core::solver::fill_field;
use gw_expr::symbols::NUM_VARS;
use gw_mesh::scatter::{fill_boundary_padding, fill_patches_scatter};
use gw_mesh::PatchField;
use gw_octree::Domain;
use gw_perfmodel::ram::RamModel;
use gw_stencil::patch::{BLOCK_VOLUME, PATCH_VOLUME};
use std::time::Instant;

fn main() {
    let mesh = bbh_grid(Domain::centered_cube(16.0), 6.0, 2, 4);
    let n = mesh.n_octants();
    println!("grid: {n} octants, {} unknowns", mesh.unknowns(24));
    let u = fill_field(&mesh, &|_p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
        }
    });
    let mut patches = PatchField::zeros(NUM_VARS, n);
    fill_patches_scatter(&mesh, &u, &mut patches);
    fill_boundary_padding(&mesh, &mut patches, NUM_VARS);
    let params = BssnParams::default();

    // ---- Fused: one pass per octant, derivatives thread-local ----------
    let mut ws = RhsWorkspace::new(1);
    let mut out: Vec<Vec<f64>> = vec![vec![0.0; BLOCK_VOLUME]; NUM_VARS];
    let t0 = Instant::now();
    let mut flops_total = 0u64;
    for e in 0..n {
        let patch_refs: Vec<&[f64]> = (0..NUM_VARS).map(|v| patches.patch(v, e)).collect();
        let mut views: Vec<&mut [f64]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        let (df, af) = bssn_rhs_patch(
            &patch_refs,
            mesh.octants[e].h,
            &params,
            &RhsMode::Pointwise,
            &mut ws,
            &mut views,
        );
        flops_total += df + af;
    }
    let fused_wall = t0.elapsed().as_secs_f64();
    // Traffic: 24 patches in, 24 blocks out, per octant.
    let fused_bytes = n as u64 * 8 * (NUM_VARS as u64 * (PATCH_VOLUME + BLOCK_VOLUME) as u64);

    // ---- Split: derivative kernel writes all 210 blocks to global -------
    // Same arithmetic; extra global round trip of 210 blocks per octant.
    // (Host execution reuses the fused code; the model adds the traffic,
    // which is the paper's point: the split variant is bandwidth-murder.)
    let split_extra = n as u64 * 8 * (NUM_DERIV_BLOCKS as u64 * BLOCK_VOLUME as u64) * 2; // write + read
    let split_bytes = fused_bytes + split_extra;

    let ram = RamModel::a100();
    let fused_model = ram.time_infinite_cache(flops_total, fused_bytes);
    let split_model = ram.time_infinite_cache(flops_total, split_bytes);

    let mut t = TablePrinter::new(&[
        "variant",
        "global bytes",
        "flops",
        "A100 model ms",
        "slowdown",
        "extra device memory",
    ]);
    t.row(&[
        "fused (paper)".into(),
        format!("{:.1} MB", fused_bytes as f64 / 1e6),
        format!("{:.2} G", flops_total as f64 / 1e9),
        num(fused_model * 1e3),
        "1.00x".into(),
        "0".into(),
    ]);
    t.row(&[
        "split derivative kernel".into(),
        format!("{:.1} MB", split_bytes as f64 / 1e6),
        format!("{:.2} G", flops_total as f64 / 1e9),
        num(split_model * 1e3),
        format!("{:.2}x", split_model / fused_model),
        format!(
            "{:.1} MB (210 deriv blocks resident)",
            (n * NUM_DERIV_BLOCKS * BLOCK_VOLUME * 8) as f64 / 1e6
        ),
    ]);
    t.print("Ablation — fused vs split RHS (A100 RAM model)");
    println!(
        "\nhost wall (fused reference pass): {:.2} s\n\
         Paper §IV-B: precomputing derivatives in a separate kernel 'turns out to be\n\
         slow … and imposes significant memory constraints' — the split variant\n\
         moves ~{}x the bytes and needs ~0.58 MB/octant of extra residency.",
        fused_wall,
        (split_bytes as f64 / fused_bytes as f64).round()
    );
}
