//! Fig. 21 regenerator: extracted waveforms computed with the GPU path
//! overlaid on the CPU path for "q = 1" and "q = 2" wave content.
//!
//! Substitution (DESIGN.md): full inspiral evolutions are multi-GPU-days
//! workloads, so each q's *wave content* comes from the quadrupole IMR
//! chirp model imprinted as a linearized packet, propagated through the
//! full BSSN pipeline on both backends; the figure's content — the two
//! backends producing the same Re Ψ₄ (2,2) series — is checked exactly.

use gw_bench::table::sci;
use gw_bench::TablePrinter;
use gw_bssn::init::LinearWaveData;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_core::unigrid::uniform_mesh;
use gw_octree::Domain;
use gw_waveform::chirp::ChirpModel;
use gw_waveform::{lebedev::product_rule, ExtractionSphere, ModeExtractor};

fn run(q: f64, use_gpu: bool, steps: usize) -> gw_waveform::WaveformSeries {
    let domain = Domain::centered_cube(8.0);
    // Carrier wavenumber from the chirp's late-inspiral GW frequency.
    let chirp = ChirpModel::new(q, 8.0);
    let k = 2.0 * chirp.orbital_omega(4.0);
    let wave = LinearWaveData::new(1e-3 / q, 0.0, 2.0, k);
    let mesh = uniform_mesh(domain, 3);
    let mut solver = GwSolver::new(
        SolverConfig { extract_every: 1, use_gpu, ..Default::default() },
        mesh,
        |p, out| wave.evaluate(p, out),
    );
    let sphere = ExtractionSphere::new(4.0, product_rule(6, 12));
    solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2)]));
    for _ in 0..steps {
        solver.step();
    }
    solver.extractors[0].mode(2, 2).unwrap().clone()
}

fn main() {
    let steps = 10;
    let mut t = TablePrinter::new(&[
        "q",
        "samples",
        "max |Re h22| (cpu)",
        "max |Re h22| (gpu)",
        "Linf(cpu - gpu)",
    ]);
    for q in [1.0, 2.0] {
        let cpu = run(q, false, steps);
        let gpu = run(q, true, steps);
        assert_eq!(cpu.len(), gpu.len());
        let mut max_cpu = 0.0f64;
        let mut max_gpu = 0.0f64;
        let mut linf = 0.0f64;
        for (a, b) in cpu.values.iter().zip(gpu.values.iter()) {
            max_cpu = max_cpu.max(a.re.abs());
            max_gpu = max_gpu.max(b.re.abs());
            linf = linf.max((a.re - b.re).abs());
        }
        t.row(&[format!("{q}"), cpu.len().to_string(), sci(max_cpu), sci(max_gpu), sci(linf)]);
        println!("q={q} Re h22 series (t, cpu, gpu):");
        for i in (0..cpu.len()).step_by(2) {
            println!(
                "  {:7.3}  {:+.6e}  {:+.6e}",
                cpu.times[i], cpu.values[i].re, gpu.values[i].re
            );
        }
    }
    t.print("Fig. 21 — GPU vs CPU extracted waveforms (must overlay)");
    println!("\nPaper: GPU and CPU waveforms match closely; here they agree to round-off.");
}
