//! Table III regenerator: octant-to-patch / patch-to-octant timings and
//! arithmetic intensity on the m₁…m₅ grid family (decreasing adaptivity),
//! run as device kernels on the simulated A100 with counter-derived AI.

use gw_bench::table::num;
use gw_bench::{table3_grids, TablePrinter};
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, Buf, GpuBackend, RhsKind};
use gw_core::solver::fill_field;
use gw_gpu_sim::Device;
use gw_mesh::scatter::patches_to_octants;
use gw_mesh::{Field, PatchField};
use gw_perfmodel::ram::RamModel;
use std::time::Instant;

fn main() {
    let ram = RamModel::a100();
    let mut t = TablePrinter::new(&[
        "grid",
        "octants x dof",
        "AI o2p (ours)",
        "AI (paper)",
        "o2p model ms",
        "o2p host ms",
        "p2o host ms",
        "adaptivity",
    ]);
    let paper_ai = [4.07, 2.52, 2.20, 1.90, 1.74];
    let dof = 24;
    for (i, (name, mesh)) in table3_grids(1.0).into_iter().enumerate() {
        let n = mesh.n_octants();
        // Fill with a smooth state so interpolation has real work.
        let u = fill_field(&mesh, &|p, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = 1.0 + 0.01 * ((p[0] * 0.3 + v as f64).sin() + p[1] * p[2] * 1e-3);
            }
        });
        // Device o2p with counters.
        let mut gpu =
            GpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise, Device::a100());
        gpu.upload(&u);
        let before = gpu.counters();
        // eval_rhs runs o2p + rhs; we want o2p alone — use the internal
        // kernel through eval and subtract? Instead: run o2p only via the
        // host scatter for timing, and meter the device o2p through a
        // full eval by capturing the o2p launch counters separately.
        gpu.o2p_only(&mesh, Buf::U);
        let after = gpu.counters();
        let d = after.delta_since(&before);
        let ai = d.arithmetic_intensity();
        let model_ms = ram.kernel_time(&d) * 1e3;
        drop(gpu); // free device buffers before the host-side allocations

        // Host wall-clock for the same operation (single core).
        let mut patches = PatchField::zeros(dof, n);
        let t0 = Instant::now();
        gw_mesh::scatter::fill_patches_scatter(&mesh, &u, &mut patches);
        let o2p_host = t0.elapsed().as_secs_f64() * 1e3;
        let mut back = Field::zeros(dof, n);
        let t1 = Instant::now();
        patches_to_octants(&mesh, &patches, &mut back);
        let p2o_host = t1.elapsed().as_secs_f64() * 1e3;

        t.row(&[
            name,
            format!("{n} x {dof}"),
            format!("{ai:.2}"),
            format!("{:.2}", paper_ai[i]),
            num(model_ms),
            num(o2p_host),
            num(p2o_host),
            format!("{:.3}", mesh.adaptivity_ratio()),
        ]);
    }
    t.print("Table III — octant-to-patch / patch-to-octant (simulated A100 + host)");
    println!(
        "\nPaper AI decreases 4.07 → 1.74 as adaptivity decreases; bound Q_U <= 5.07.\n\
         p2o is pure data movement (AI = 0) and ~an order of magnitude cheaper."
    );
}
