//! Ablation (DESIGN.md §5): aggregated per-neighbor halo messages vs one
//! message per ghost octant, and ripple vs bucket 2:1 balancing.

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_comm::GhostSchedule;
use gw_core::multi::dependencies;
use gw_octree::balance::{balance_octree, balance_octree_bucket, BalanceMode};
use gw_octree::partition::partition_uniform;
use gw_octree::{Domain, MortonKey};
use gw_perfmodel::scaling::Network;
use std::time::Instant;

fn main() {
    let mesh = bbh_grid(Domain::centered_cube(16.0), 6.0, 2, 5);
    let n = mesh.n_octants();
    println!("grid: {n} octants");
    let deps = dependencies(&mesh);
    let net = Network::gpu_interconnect();

    let mut t = TablePrinter::new(&[
        "ranks",
        "msgs aggregated",
        "msgs per-octant",
        "latency agg (us)",
        "latency per-oct (us)",
        "exchange agg (us)",
        "exchange per-oct (us)",
    ]);
    for p in [2usize, 4, 8, 16] {
        let part = partition_uniform(n, p);
        let plan = GhostSchedule::build(&part, deps.iter().copied());
        let (mut ma, mut mo, mut bytes) = (0usize, 0usize, 0u64);
        for r in 0..p {
            ma += plan.messages_aggregated(r);
            mo += plan.messages_per_octant(r);
            bytes += plan.send_bytes(r, 24, 343);
        }
        let t_agg = net.exchange_time(ma, bytes);
        let t_per = net.exchange_time(mo, bytes);
        t.row(&[
            p.to_string(),
            ma.to_string(),
            mo.to_string(),
            num(net.latency * ma as f64 * 1e6),
            num(net.latency * mo as f64 * 1e6),
            num(t_agg * 1e6),
            num(t_per * 1e6),
        ]);
    }
    t.print("Ablation — aggregated vs per-octant halo messages");

    // Balance-algorithm ablation.
    let root_ch = MortonKey::root().children();
    let mut leaves: Vec<MortonKey> = root_ch[1..].to_vec();
    let mut k = root_ch[0];
    for _ in 1..8 {
        let ch = k.children();
        leaves.extend_from_slice(&ch[..7]);
        k = ch[7];
    }
    leaves.push(k);
    leaves.sort();
    let t0 = Instant::now();
    let ripple = balance_octree(&leaves, BalanceMode::Full);
    let t_ripple = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let bucket = balance_octree_bucket(&leaves, BalanceMode::Full);
    let t_bucket = t1.elapsed().as_secs_f64();
    assert_eq!(ripple, bucket);
    println!(
        "\nAblation — 2:1 balance: ripple {:.2} ms vs bucket {:.2} ms ({} leaves out),\n\
         identical trees; face-only balance yields {} leaves (vs {} full).",
        t_ripple * 1e3,
        t_bucket * 1e3,
        ripple.len(),
        balance_octree(&leaves, BalanceMode::Face).len(),
        ripple.len()
    );
}
