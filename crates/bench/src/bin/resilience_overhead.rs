//! Resilience-overhead regenerator: what does the reliable delivery /
//! checkpoint / rollback stack cost in practice? Three runs of the same
//! distributed evolution are timed wall-clock:
//!
//! 1. fault-free (acks and sequence bookkeeping only),
//! 2. 1 % seeded message drops recovered by retransmission,
//! 3. a fail-stopped rank forcing one manifest rollback + replay.
//!
//! All three produce bit-identical states (asserted), so the table is a
//! pure throughput comparison of the recovery machinery.

// The deprecated wrapper is exercised on purpose: this bin times the
// driver the `Run` builder delegates to.
#![allow(deprecated)]

use gw_bench::grids::uniform_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::init::LinearWaveData;
use gw_bssn::BssnParams;
use gw_comm::world::WorldConfig;
use gw_comm::CommFaultPlan;
use gw_core::multi::{
    evolve_distributed_cfg, evolve_distributed_resilient, KillSpec, ResilienceConfig,
};
use gw_core::solver::fill_field;
use gw_core::supervisor::DegradationPolicy;
use gw_octree::Domain;
use std::time::{Duration, Instant};

fn main() {
    let ranks = 4;
    let steps = 6;
    let domain = Domain::centered_cube(8.0);
    let mesh = uniform_grid(domain, 2);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
    let params = BssnParams::default();
    println!(
        "resilience overhead: {} octants on {ranks} ranks, {steps} RK4 steps",
        mesh.n_octants()
    );

    // 1. Fault-free baseline (reliable layer active, nothing to recover).
    let t0 = Instant::now();
    let baseline =
        evolve_distributed_cfg(&mesh, &u0, ranks, steps, 0.25, params, WorldConfig::default())
            .expect("fault-free run");
    let t_free = t0.elapsed().as_secs_f64();

    // 2. 1 % of halo messages dropped; every loss recovered in-line by
    //    the receiver-driven retransmission protocol.
    let cfg = WorldConfig {
        faults: Some(CommFaultPlan::new(42).with_drop_rate(0.01)),
        heartbeat_interval: Duration::from_millis(5),
        ..WorldConfig::default()
    };
    let t0 = Instant::now();
    let dropped = evolve_distributed_cfg(&mesh, &u0, ranks, steps, 0.25, params, cfg)
        .expect("1% drops must be recovered by retransmission");
    let t_drop = t0.elapsed().as_secs_f64();
    for (a, b) in baseline.state.as_slice().iter().zip(dropped.state.as_slice().iter()) {
        assert_eq!(a, b, "retransmission recovery must be bit-identical");
    }

    // 3. One induced rollback: a rank fail-stops mid-run, survivors roll
    //    back to the last committed manifest and replay (bit-exact under
    //    identity degradation).
    let dir = std::env::temp_dir().join("gw_amr_resilience_overhead");
    let dir_s = dir.to_str().unwrap().to_string();
    let _ = std::fs::remove_dir_all(&dir);
    let resilience = ResilienceConfig {
        checkpoint_dir: Some(dir_s),
        checkpoint_every: 2,
        degradation: DegradationPolicy { courant_factor: 1.0, ko_boost: 0.0, max_retries: 2 },
        kill_once: Some(KillSpec { rank: 1, at_step: 3 }),
    };
    let cfg =
        WorldConfig { heartbeat_interval: Duration::from_millis(5), ..WorldConfig::default() };
    let t0 = Instant::now();
    let rolled =
        evolve_distributed_resilient(&mesh, &u0, ranks, steps, 0.25, params, cfg, &resilience)
            .expect("one death within the retry budget must recover");
    let t_roll = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(rolled.retries, 1, "exactly one rollback expected");
    for (a, b) in baseline.state.as_slice().iter().zip(rolled.result.state.as_slice().iter()) {
        assert_eq!(a, b, "manifest replay must be bit-identical");
    }

    let mut t = TablePrinter::new(&["scenario", "wall s", "steps/s", "vs fault-free"]);
    let sps = |secs: f64| steps as f64 / secs;
    for (name, secs) in
        [("fault-free", t_free), ("1% message drop", t_drop), ("1 kill + rollback", t_roll)]
    {
        t.row(&[name.to_string(), num(secs), num(sps(secs)), format!("{:.2}x", secs / t_free)]);
    }
    t.print("distributed resilience overhead (bit-identical results)");
    println!(
        "\nall three final states bit-identical; rollback replayed {} step(s) \
         from the last committed manifest",
        steps - 2
    );
}
