//! Fig. 14 regenerator: empirical roofline on the simulated A100 — the
//! overall RHS, the A (algebraic) component, and octant-to-patch on the
//! m₁…m₅ grids.

use gw_bench::table::num;
use gw_bench::{table3_grids, TablePrinter};
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, Buf, GpuBackend, RhsKind};
use gw_core::solver::fill_field;
use gw_expr::bssn::build_bssn_rhs;
use gw_expr::schedule::{schedule, ScheduleStrategy};
use gw_expr::tape::Tape;
use gw_gpu_sim::Device;
use gw_perfmodel::{Roofline, RooflinePoint};

fn main() {
    let roofline = Roofline::new(gw_gpu_sim::MachineSpec::a100());
    println!(
        "A100 roofline: peak {} GF/s, bw {} GB/s, ridge AI {:.2}",
        roofline.machine.peak_gflops(),
        roofline.machine.peak_bandwidth_gbs(),
        roofline.ridge_ai()
    );
    println!("Ceiling series (AI, GF/s):");
    for (ai, gf) in roofline.ceiling_series(0.25, 32.0, 8) {
        println!("  {ai:8.3}  {gf:9.1}");
    }

    let mut points: Vec<(RooflinePoint, f64)> = Vec::new();
    // Effective AI: flops over ALL memory traffic, including the
    // thread-local derivative staging and register spills that nv-compute
    // sees as extra DRAM/L2 transactions (why the paper's RHS lands at
    // AI ~0.62 despite the Eq. 21a bound of 6.68).
    let effective_ai = |d: &gw_gpu_sim::CounterSnapshot| -> f64 {
        let bytes = d.global_bytes() + d.shared_bytes + d.spill_load_bytes + d.spill_store_bytes;
        if bytes == 0 {
            0.0
        } else {
            d.flops as f64 / bytes as f64
        }
    };

    // Analytic AI of the A component (Eq. 21b): Q_A = O_A/(8·(48+210)).
    let rhs = build_bssn_rhs(BssnParams::default());
    let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::StagedCse);
    let tape = Tape::compile(&rhs.graph, &sch, 56);
    let q_a = tape.flops as f64 / (8.0 * (24.0 * 2.0 + 210.0));
    println!("\nA-component analytic AI (Eq. 21b form): {q_a:.2} (paper: ~1.94)");

    // o2p kernel on each Table-III grid + the full RHS kernel.
    for (name, mesh) in table3_grids(1.0) {
        let u = fill_field(&mesh, &|p, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = 1.0 + 0.01 * ((0.2 * p[0] + v as f64).sin() + 1e-3 * p[1] * p[2]);
            }
        });
        let mut gpu = GpuBackend::new(
            &mesh,
            BssnParams::default(),
            RhsKind::Generated(ScheduleStrategy::StagedCse),
            Device::a100(),
        );
        gpu.upload(&u);
        let b0 = gpu.counters();
        gpu.o2p_only(&mesh, Buf::U);
        let b1 = gpu.counters();
        let d_o2p = b1.delta_since(&b0);
        points.push((roofline.point(&format!("o2p {name}"), &d_o2p, None), effective_ai(&d_o2p)));
        gpu.rhs_only(&mesh, Buf::K);
        let b2 = gpu.counters();
        let d_rhs = b2.delta_since(&b1);
        points.push((roofline.point(&format!("RHS {name}"), &d_rhs, None), effective_ai(&d_rhs)));
    }

    let mut t = TablePrinter::new(&[
        "kernel",
        "AI logical",
        "AI effective",
        "GF/s (model)",
        "ceiling GF/s",
        "efficiency",
    ]);
    for (p, eai) in &points {
        t.row(&[
            p.name.clone(),
            format!("{:.2}", p.ai),
            format!("{:.2}", eai),
            num(p.gflops),
            num(roofline.attainable_gflops(p.ai)),
            format!("{:.2}", roofline.efficiency(p)),
        ]);
    }
    t.print("Fig. 14 — empirical roofline points (simulated A100, RAM-model time)");
    println!(
        "\nPaper: o2p ~900 GF/s at AI 1.74–4.07 (higher AI on more adaptive grids);\n\
         overall RHS ~700 GF/s at AI ~0.62. All kernels bandwidth-bound (AI < 6.25)."
    );
}
