//! Fig. 16 regenerator: overall wall-clock for 5 RK4 steps — one
//! simulated A100 vs a two-socket EPYC node — on BBH grids of increasing
//! size. (Paper sizes 36M–104M unknowns; ours are scaled down ~20x,
//! documented in EXPERIMENTS.md; the GPU/CPU ratio is size-stable.)

use gw_bench::table::num;
use gw_bench::{bbh_like_grids, TablePrinter};
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, CpuBackend, GpuBackend, RhsKind};
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_expr::schedule::ScheduleStrategy;
use gw_gpu_sim::{Device, MachineSpec};
use gw_perfmodel::ram::RamModel;
use std::time::Instant;

fn main() {
    let a100 = RamModel::a100();
    let epyc = RamModel::new(MachineSpec::epyc_7763_node());
    let mut t = TablePrinter::new(&[
        "octants",
        "unknowns",
        "RK4 A100 model ms (per step)",
        "RK4 EPYC model ms (per step)",
        "speedup",
        "host wall s",
    ]);
    for mesh in bbh_like_grids(&[400, 1200]) {
        let n = mesh.n_octants();
        let u = fill_field(&mesh, &|p, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
            }
            out[0] += 1e-4 * (-0.01 * (p[0] * p[0] + p[1] * p[1] + p[2] * p[2])).exp();
        });
        let mut gpu = GpuBackend::new(
            &mesh,
            BssnParams::default(),
            RhsKind::Generated(ScheduleStrategy::StagedCse),
            Device::a100(),
        );
        gpu.upload(&u);
        let rk = Rk4::default();
        let dt = rk.timestep(&mesh);
        let before = gpu.counters();
        let wall = Instant::now();
        for _ in 0..2 {
            rk.step(&mut gpu, &mesh, dt);
        }
        let wall_s = wall.elapsed().as_secs_f64();
        let d = gpu.counters().delta_since(&before);
        let t_a100 = a100.kernel_time(&d) * 1e3 / 2.0; // per step
        let t_epyc = epyc.kernel_time(&d) * 1e3 / 2.0;
        t.row(&[
            n.to_string(),
            mesh.unknowns(24).to_string(),
            num(t_a100),
            num(t_epyc),
            format!("{:.2}x", t_epyc / t_a100),
            num(wall_s),
        ]);
        // Sanity: the CPU backend computes the identical thing (used by
        // the accuracy figures); skip timing it here — single host core.
        let _ = CpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise);
    }
    t.print("Fig. 16 — 5 RK4 steps, simulated A100 vs 2-socket EPYC (model time)");
    println!("\nPaper: 36M–104M unknowns, overall ~2.5x GPU advantage.");
}
