//! Fig. 11 regenerator: time per octant for 10 RHS evaluations with the
//! three code-generation strategies, on the simulated A100, for a range
//! of octant counts.

use gw_bench::table::num;
use gw_bench::{bbh_like_grids, TablePrinter};
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, Buf, GpuBackend, RhsKind};
use gw_core::solver::fill_field;
use gw_expr::schedule::{schedule, ScheduleStrategy};
use gw_gpu_sim::Device;
use std::time::Instant;

fn main() {
    let grids = bbh_like_grids(&[400, 1200]);
    let mut t = TablePrinter::new(&[
        "octants",
        "strategy",
        "host ms / 3 evals",
        "us per octant",
        "host speedup",
        "A100-model speedup",
    ]);
    // Device-model time per point: streamed inputs/outputs + the spill
    // traffic of the strategy's schedule at 56 registers (the same model
    // as table2_codegen; the host interpreter cannot express register
    // pressure, the device model can).
    let a100 = gw_perfmodel::ram::RamModel::a100();
    let rhs_graph = gw_expr::bssn::build_bssn_rhs(BssnParams::default());
    let model_time = |strat: ScheduleStrategy| -> f64 {
        let sch = schedule(&rhs_graph.graph, &rhs_graph.outputs, strat);
        let tape = gw_expr::tape::Tape::compile(&rhs_graph.graph, &sch, 56);
        let stream = ((gw_expr::symbols::NUM_INPUTS + 24) * 8) as u64;
        a100.time_infinite_cache(tape.flops, stream + tape.spill_stats.total_spill_bytes())
    };
    let base_model = model_time(ScheduleStrategy::CseTopo);
    for mesh in &grids {
        let n = mesh.n_octants();
        let u = fill_field(mesh, &|p, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
            }
            out[0] += 1e-3 * (-0.01 * (p[0] * p[0] + p[1] * p[1] + p[2] * p[2])).exp();
        });
        let mut base = 0.0;
        for strat in ScheduleStrategy::all() {
            let mut gpu = GpuBackend::new(
                mesh,
                BssnParams::default(),
                RhsKind::Generated(strat),
                Device::a100(),
            );
            gpu.upload(&u);
            gpu.o2p_only(mesh, Buf::U); // patches ready once
            gpu.rhs_only(mesh, Buf::K); // warm-up
            let evals = 3; // scaled from the paper's 10 (single-core host)
            let t0 = Instant::now();
            for _ in 0..evals {
                gpu.rhs_only(mesh, Buf::K);
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            if strat == ScheduleStrategy::CseTopo {
                base = ms;
            }
            t.row(&[
                n.to_string(),
                strat.name().to_string(),
                num(ms),
                num(ms * 1e3 / (evals as f64) / n as f64),
                format!("{:.2}x", base / ms),
                format!("{:.2}x", base_model / model_time(strat)),
            ]);
        }
    }
    t.print("Fig. 11 — RHS codegen strategies, 10 evaluations (simulated A100)");
    println!("\nPaper: binary-reduce 1.55x, staged+CSE 1.76x over the SymPyGR baseline.");
}
