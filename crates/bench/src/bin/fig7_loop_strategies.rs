//! Fig. 7 regenerator: single-core CPU comparison of the padding-zone
//! computation — loop-over-patches (gather, the Dendro-GR baseline) vs
//! loop-over-octants (scatter, the paper's approach). The paper reports
//! ~3× in favor of the scatter on adaptive grids.

use gw_bench::table::num;
use gw_bench::{table3_grids, TablePrinter};
use gw_expr::symbols::NUM_VARS;
use gw_mesh::gather::fill_patches_gather;
use gw_mesh::scatter::fill_patches_scatter;
use gw_mesh::{Field, PatchField};
use std::time::Instant;

fn main() {
    let mut t = TablePrinter::new(&[
        "grid",
        "octants",
        "adaptivity",
        "gather (ms)",
        "scatter (ms)",
        "speedup",
        "interp flops gather",
        "interp flops scatter",
    ]);
    for (name, mesh) in table3_grids(1.0) {
        let n = mesh.n_octants();
        // One representative variable set (dof = 24 like the paper's
        // runs would multiply both sides equally; use 4 here to keep the
        // sweep quick — the ratio is dof-independent).
        let dof = 4.min(NUM_VARS);
        let mut field = Field::zeros(dof, n);
        for v in 0..dof {
            for oct in 0..n {
                let b = field.block_mut(v, oct);
                for (i, x) in b.iter_mut().enumerate() {
                    *x = (oct * 31 + i * 7 + v) as f64 * 1e-3;
                }
            }
        }
        let mut pg = PatchField::zeros(dof, n);
        let mut ps = PatchField::zeros(dof, n);
        // Warm up.
        fill_patches_gather(&mesh, &field, &mut pg);
        fill_patches_scatter(&mesh, &field, &mut ps);
        let reps = 3;
        let t0 = Instant::now();
        let mut fg = 0;
        for _ in 0..reps {
            fg = fill_patches_gather(&mesh, &field, &mut pg);
        }
        let tg = t0.elapsed().as_secs_f64() / reps as f64 * 1e3;
        let t1 = Instant::now();
        let mut fs = 0;
        for _ in 0..reps {
            fs = fill_patches_scatter(&mesh, &field, &mut ps);
        }
        let ts = t1.elapsed().as_secs_f64() / reps as f64 * 1e3;
        t.row(&[
            name,
            n.to_string(),
            format!("{:.3}", mesh.adaptivity_ratio()),
            num(tg),
            num(ts),
            format!("{:.2}x", tg / ts),
            fg.to_string(),
            fs.to_string(),
        ]);
    }
    t.print("Fig. 7 — loop-over-patches (gather) vs loop-over-octants (scatter), 1 core");
    println!("\nPaper: scatter ≈3x faster on adaptive grids (redundant interpolation removed).");
}
