//! Fig. 18 regenerator: weak scaling — constant unknowns per simulated
//! GPU, 1–16 devices (~35M per GPU in the paper, scaled down here).

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::BssnParams;
use gw_comm::GhostSchedule;
use gw_core::backend::{Backend, GpuBackend, RhsKind};
use gw_core::multi::dependencies;
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_expr::schedule::ScheduleStrategy;
use gw_gpu_sim::Device;
use gw_octree::partition::partition_uniform;
use gw_octree::Domain;
use gw_perfmodel::ram::RamModel;
use gw_perfmodel::scaling::{project_step, weak_efficiency, Network};

fn main() {
    // A family of grids with roughly p-proportional octant counts: deepen
    // the refinement as p grows (weak scaling in an AMR setting — the
    // paper grows the refinement radius; we grow the refined region).
    let ps = [1usize, 2, 4, 8, 16];
    let ram = RamModel::a100();
    let net = Network::gpu_interconnect();
    let rk = Rk4::default();

    let mut times = Vec::new();
    let mut rows = Vec::new();
    for (&p, finest) in ps.iter().zip([4u8, 5, 5, 6, 6]) {
        // Tune inner radius to scale the octant count ≈ linearly in p.
        let mesh = match p {
            1 => bbh_grid(Domain::centered_cube(16.0), 6.0, 2, finest),
            2 => bbh_grid(Domain::centered_cube(16.0), 6.0, 3, finest),
            4 => bbh_grid(Domain::centered_cube(16.0), 6.0, 3, finest),
            8 => bbh_grid(Domain::centered_cube(16.0), 6.0, 3, finest),
            _ => bbh_grid(Domain::centered_cube(16.0), 6.0, 4, finest),
        };
        let n = mesh.n_octants();
        let u = fill_field(&mesh, &|_p, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
            }
        });
        let mut gpu = GpuBackend::new(
            &mesh,
            BssnParams::default(),
            RhsKind::Generated(ScheduleStrategy::StagedCse),
            Device::a100(),
        );
        gpu.upload(&u);
        let dt = rk.timestep(&mesh);
        let before = gpu.counters();
        rk.step(&mut gpu, &mesh, dt);
        let d = gpu.counters().delta_since(&before);
        let t_total = ram.kernel_time(&d);
        let part = partition_uniform(n, p);
        let plan = GhostSchedule::build(&part, dependencies(&mesh).iter().copied());
        let work: Vec<f64> =
            (0..p).map(|r| t_total * part.range(r).len() as f64 / n as f64).collect();
        let cost = project_step(&work, &plan, &net, 24, 343, 5);
        times.push(cost.total());
        rows.push((p, n, mesh.unknowns(24), cost.compute * 1e3, cost.comm * 1e3));
    }
    // The discrete grid family cannot hold unknowns/GPU exactly constant,
    // so normalize each time by its actual per-GPU load before computing
    // the weak-scaling efficiency.
    let normalized: Vec<f64> = times
        .iter()
        .zip(rows.iter())
        .map(|(&t, &(p, _, unk, _, _))| t / (unk as f64 / p as f64))
        .collect();
    let eff = weak_efficiency(&normalized);
    let mut t = TablePrinter::new(&[
        "GPUs",
        "octants",
        "unknowns",
        "per-GPU unknowns",
        "compute ms",
        "comm ms",
        "total ms (5 steps)",
        "efficiency",
    ]);
    for (i, &(p, n, unk, comp, comm)) in rows.iter().enumerate() {
        t.row(&[
            p.to_string(),
            n.to_string(),
            unk.to_string(),
            (unk / p).to_string(),
            num(comp),
            num(comm),
            num(5.0 * times[i] * 1e3),
            format!("{:.0}%", eff[i] * 100.0),
        ]);
    }
    t.print("Fig. 18 — weak scaling, ~constant unknowns per simulated A100");
    println!("\nPaper: ~35M unknowns/GPU, average parallel efficiency 83% at 16 GPUs.");
}
