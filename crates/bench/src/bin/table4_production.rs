//! Table IV regenerator: production-run wall-clock model for the
//! q = 1, 2, 4, 8 binaries, from measured per-step kernel costs under
//! the A100 RAM model and the paper's timestep counts.

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, GpuBackend, RhsKind};
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_expr::schedule::ScheduleStrategy;
use gw_gpu_sim::Device;
use gw_octree::Domain;
use gw_perfmodel::production::{model_wall_hours, PAPER_TABLE_IV};
use gw_perfmodel::ram::RamModel;

fn main() {
    // Measure per-unknown-step device cost on a real grid.
    let mesh = bbh_grid(Domain::centered_cube(16.0), 6.0, 2, 5);
    let u = fill_field(&mesh, &|_p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
        }
    });
    let mut gpu = GpuBackend::new(
        &mesh,
        BssnParams::default(),
        RhsKind::Generated(ScheduleStrategy::StagedCse),
        Device::a100(),
    );
    gpu.upload(&u);
    let rk = Rk4::default();
    let dt = rk.timestep(&mesh);
    let before = gpu.counters();
    rk.step(&mut gpu, &mesh, dt);
    let d = gpu.counters().delta_since(&before);
    let ram = RamModel::a100();
    let t_step = ram.kernel_time(&d);
    let per_unknown_step = t_step / mesh.unknowns(24) as f64;
    println!(
        "calibration: {} unknowns, A100-model {:.4} s/step, {:.3e} s/unknown-step",
        mesh.unknowns(24),
        t_step,
        per_unknown_step
    );

    let mut t = TablePrinter::new(&[
        "q",
        "GPUs",
        "T [M]",
        "timesteps",
        "wall hrs (model)",
        "wall hrs (paper)",
        "ratio",
    ]);
    // Production grids carry ~1e8 unknowns (paper-scale estimate).
    let unknowns = 1.0e8;
    for row in &PAPER_TABLE_IV {
        let ours = model_wall_hours(row.timesteps, unknowns, row.gpus, per_unknown_step);
        t.row(&[
            format!("{}", row.q),
            row.gpus.to_string(),
            num(row.horizon),
            format!("{:.0}", row.timesteps),
            num(ours),
            num(row.wall_hours),
            format!("{:.2}", ours / row.wall_hours),
        ]);
    }
    t.print("Table IV — production BBH wall-clock (model vs paper)");
    println!(
        "\nShape: hours grow with timesteps (q = 8 the long pole); absolute ratios\n\
         reflect the RAM-model idealization vs the real machine (documented in\n\
         EXPERIMENTS.md)."
    );
}
