//! Fig. 19 regenerator: convergence of extracted waveforms with the
//! refinement tolerance ε.
//!
//! The paper compares AMR waveforms against a high-resolution LAZEV
//! reference as ε decreases. Substitution (DESIGN.md): the reference is
//! (a) the analytic solution of the linearized wave and (b) a
//! high-resolution unigrid run of the same physics. We evolve a
//! linearized GW packet on ε-refined AMR grids and report the Re Ψ₄
//! (2,2)-mode difference against the reference — the plotted quantity of
//! Fig. 19.

use gw_bench::table::sci;
use gw_bench::TablePrinter;
use gw_bssn::init::LinearWaveData;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_core::unigrid::unigrid_solver;
use gw_mesh::Mesh;
use gw_octree::{refine_loop, BalanceMode, Domain, InterpErrorRefiner, MortonKey};
use gw_waveform::{lebedev::product_rule, psi4_from_strain, ExtractionSphere, ModeExtractor};

fn run_amr(eps: f64, horizon: f64) -> (gw_waveform::WaveformSeries, usize) {
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    // ε-driven refinement on the initial wave profile (cap level 4: the
    // eps sweep 4e-4 → 1e-4 crosses two refinement transitions).
    let field = move |p: [f64; 3]| wave.h_plus(p[2], 0.0);
    let refiner = InterpErrorRefiner::new(field, eps, 2, 4);
    let leaves = refine_loop(&[MortonKey::root()], &domain, &refiner, BalanceMode::Full, 8);
    let mesh = Mesh::build(domain, &leaves);
    let n_oct = mesh.n_octants();
    let mut solver =
        GwSolver::new(SolverConfig { extract_every: 1, ..Default::default() }, mesh, |p, out| {
            wave.evaluate(p, out)
        });
    let sphere = ExtractionSphere::new(4.0, product_rule(6, 12));
    solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2)]));
    let steps = (horizon / solver.dt()).round().max(4.0) as usize;
    for _ in 0..steps {
        solver.step();
    }
    let strain = solver.extractors[0].mode(2, 2).unwrap().clone();
    (psi4_from_strain(&strain), n_oct)
}

fn main() {
    let horizon = 0.6;
    let domain = Domain::centered_cube(8.0);
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    // Level-4 unigrid reference: finer than every AMR grid in the sweep
    // (the LAZEV high-resolution stand-in).
    let mut reference = unigrid_solver(
        SolverConfig { extract_every: 1, ..Default::default() },
        domain,
        4,
        |p, out| wave.evaluate(p, out),
    );
    let sphere = ExtractionSphere::new(4.0, product_rule(6, 12));
    reference.add_extractor(ModeExtractor::new(sphere, vec![(2, 2)]));
    println!(
        "reference: unigrid level 4, {} octants (standing in for LAZEV)",
        reference.mesh.n_octants()
    );
    let ref_steps = (horizon / reference.dt()).round() as usize;
    for _ in 0..ref_steps {
        reference.step();
    }
    let ref_psi4 = psi4_from_strain(reference.extractors[0].mode(2, 2).unwrap());

    let mut t = TablePrinter::new(&["eps", "octants", "Linf |Re psi4 - ref|", "RMS diff"]);
    let mut prev = f64::INFINITY;
    let mut monotone = true;
    for eps in [4e-4, 2e-4, 1e-4] {
        let (psi4, n_oct) = run_amr(eps, horizon);
        let linf = psi4.linf_re_diff(&ref_psi4);
        let rms = psi4.rms_re_diff(&ref_psi4);
        if linf > prev * 1.05 {
            monotone = false;
        }
        prev = linf;
        t.row(&[sci(eps), n_oct.to_string(), sci(linf), sci(rms)]);
    }
    t.print("Fig. 19 — waveform convergence with refinement tolerance ε");
    println!(
        "\nPaper: decreasing ε converges the AMR waveform to the (LAZEV) reference.\n\
         Monotone decrease observed: {monotone}"
    );
}
