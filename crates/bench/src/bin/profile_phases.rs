//! Per-phase step breakdown on the Fig. 12/13 production grids.
//!
//! Evolves a gauge wave on the q = 8 inspiral grid (Fig. 12) and the
//! post-merger wave-shell grid (Fig. 13) under a live observability
//! probe, prints the per-phase timing table (the EXPERIMENTS.md
//! "where does a step go" breakdown), and writes Chrome-trace profiles
//! to `results/TRACE_inspiral.json` / `results/TRACE_postmerger.json`
//! — open them in Perfetto, or validate with
//! `trace_check results/TRACE_inspiral.json --min-coverage 0.9`.
//!
//! ```text
//! cargo run --release -p gw-bench --bin profile_phases
//! ```

use gw_bench::{fig12_inspiral_leaves, fig13_postmerger_leaves, TablePrinter};
use gw_bssn::init::LinearWaveData;
use gw_core::run::Run;
use gw_core::solver::SolverConfig;
use gw_mesh::Mesh;
use gw_obs::Probe;
use gw_octree::{Domain, MortonKey};

const STEPS: usize = 4;

fn profile_grid(name: &str, domain: Domain, leaves: &[MortonKey], out_path: &str) {
    let mesh = Mesh::build(domain, leaves);
    println!("\n== {name}: {} octants, {STEPS} steps ==", mesh.n_octants());
    let wave = LinearWaveData::new(1e-3, 0.0, 3.0, 0.8);
    let probe = Probe::enabled();
    let outcome = Run::new(SolverConfig::default())
        .mesh(mesh)
        .init(move |p, out| wave.evaluate(p, out))
        .steps(STEPS)
        .probe(probe.clone())
        .profile(out_path)
        .execute()
        .expect("profiled run");
    let trace = probe.report().expect("enabled probe reports a trace");

    let step_ms = trace.step_total_ms();
    let mut table = TablePrinter::new(&["phase", "calls", "total ms", "% of step"]);
    for (cat, agg) in trace.phase_totals() {
        if cat == "step" {
            continue;
        }
        table.row(&[
            cat.to_string(),
            agg.count.to_string(),
            format!("{:.3}", agg.total_ms),
            format!("{:.1}", 100.0 * agg.total_ms / step_ms.max(1e-12)),
        ]);
    }
    table.row(&[
        "step (wall)".to_string(),
        STEPS.to_string(),
        format!("{step_ms:.3}"),
        format!("{:.1}", 100.0 * trace.step_coverage()),
    ]);
    table.print(&format!("{name} — per-phase step breakdown"));
    println!(
        "step coverage {:.1}% (work phases vs step wall time); trace: {}",
        100.0 * trace.step_coverage(),
        outcome.trace_path.as_deref().unwrap_or("-")
    );
    assert!(trace.step_coverage() >= 0.9, "{name}: phases must cover >= 90% of step wall time");
}

fn main() {
    if !Probe::enabled().is_enabled() {
        println!("profile_phases: built without the `obs` feature — nothing to measure");
        return;
    }
    std::fs::create_dir_all("results").expect("results dir");
    let domain = Domain::centered_cube(16.0);
    let inspiral = fig12_inspiral_leaves(&domain);
    profile_grid("Fig. 12 inspiral grid", domain, &inspiral, "results/TRACE_inspiral.json");
    let postmerger = fig13_postmerger_leaves(&domain);
    profile_grid("Fig. 13 post-merger grid", domain, &postmerger, "results/TRACE_postmerger.json");
    println!("\nprofiles written: results/TRACE_inspiral.json, results/TRACE_postmerger.json");
}
