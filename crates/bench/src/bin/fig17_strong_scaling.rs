//! Fig. 17 regenerator: strong scaling — fixed problem size, 1–16
//! simulated GPUs. Per-rank compute comes from the measured single-device
//! counters under the A100 RAM model partitioned by the SFC map; the
//! exchange cost from the actual ghost plan under the GPU-interconnect
//! model. Real multi-rank runs (gw-core::multi) provide the traffic.

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::BssnParams;
use gw_comm::GhostSchedule;
use gw_core::backend::{Backend, GpuBackend, RhsKind};
use gw_core::multi::dependencies;
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_expr::schedule::ScheduleStrategy;
use gw_gpu_sim::Device;
use gw_octree::partition::{imbalance, partition_weighted};
use gw_octree::Domain;
use gw_perfmodel::ram::RamModel;
use gw_perfmodel::scaling::{strong_efficiency, Network};

fn main() {
    // Fixed-size problem (scaled ~30x below the paper's 257M unknowns).
    let mesh = bbh_grid(Domain::centered_cube(16.0), 6.0, 2, 6);
    let n = mesh.n_octants();
    println!("strong-scaling grid: {} octants, {} unknowns", n, mesh.unknowns(24));

    // Measure one RK4 step's device work on the full grid.
    let u = fill_field(&mesh, &|p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
        }
        out[0] += 1e-4 * (-0.01 * (p[0] * p[0] + p[1] * p[1] + p[2] * p[2])).exp();
    });
    let mut gpu = GpuBackend::new(
        &mesh,
        BssnParams::default(),
        RhsKind::Generated(ScheduleStrategy::StagedCse),
        Device::a100(),
    );
    gpu.upload(&u);
    let rk = Rk4::default();
    let dt = rk.timestep(&mesh);
    let before = gpu.counters();
    rk.step(&mut gpu, &mesh, dt);
    let d = gpu.counters().delta_since(&before);
    let ram = RamModel::a100();
    let t_step_1gpu = ram.kernel_time(&d);
    println!("single-device model time per RK4 step: {:.3} ms", t_step_1gpu * 1e3);

    // Per-octant weights ∝ grid points (uniform r^3) — the paper's
    // partition weight.
    let weights = vec![1.0f64; n];
    let net = Network::gpu_interconnect();
    let deps = dependencies(&mesh);

    let ps = [1usize, 2, 4, 8, 16];
    // Two projections: at our measured (scaled-down) size, and at the
    // paper's 257M unknowns. At the paper's size the per-rank ghost
    // surface shrinks relative to the volume by (V_paper/V_ours)^(1/3),
    // which is what makes the paper's 4-GPU point 97%-efficient.
    let paper_unknowns = 257e6;
    let ours_unknowns = mesh.unknowns(24) as f64;
    let size_ratio = paper_unknowns / ours_unknowns;
    let surface_scale = size_ratio.powf(2.0 / 3.0);
    let rate = t_step_1gpu / ours_unknowns; // seconds per unknown-step

    for (label, vol_scale) in [("measured size", 1.0f64), ("paper size (257M)", size_ratio)] {
        let mut times = Vec::new();
        let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
        for &p in &ps {
            let part = partition_weighted(&weights, p);
            let plan = GhostSchedule::build(&part, deps.iter().copied());
            let imb = imbalance(&weights, &part);
            let work: Vec<f64> = (0..p)
                .map(|r| rate * vol_scale * ours_unknowns * part.range(r).len() as f64 / n as f64)
                .collect();
            // 5 exchanges per RK4 step (4 stages + interface sync); ghost
            // bytes scale with the surface.
            let ghost_scale = if vol_scale > 1.0 { surface_scale } else { 1.0 };
            let mut worst = gw_perfmodel::scaling::StepCost::default();
            for (r, &compute) in work.iter().enumerate() {
                let bytes = (plan.send_bytes(r, 24, 343) as f64 * ghost_scale) as u64;
                let comm = net.exchange_time(plan.messages_aggregated(r), bytes) * 5.0;
                let c = gw_perfmodel::scaling::StepCost { compute, comm };
                if c.total() > worst.total() {
                    worst = c;
                }
            }
            times.push(worst.total());
            rows.push((p, worst.compute * 1e3, worst.comm * 1e3, imb));
        }
        let eff = strong_efficiency(&ps, &times);
        let mut t = TablePrinter::new(&[
            "GPUs",
            "compute ms",
            "comm ms",
            "total ms (5 steps)",
            "efficiency",
            "imbalance",
        ]);
        for (i, &(p, comp, comm, imb)) in rows.iter().enumerate() {
            t.row(&[
                p.to_string(),
                num(comp),
                num(comm),
                num(5.0 * times[i] * 1e3),
                format!("{:.0}%", eff[i] * 100.0),
                format!("{imb:.3}"),
            ]);
        }
        t.print(&format!("Fig. 17 — strong scaling at {label}"));
    }
    println!("\nPaper GPU efficiencies: 97% (4), 89% (8), 64% (16); CPU: 93/79/66%.");
}
