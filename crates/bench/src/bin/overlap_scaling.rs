//! Overlap-scaling bench: blocking vs dependency-aware overlapped halo
//! exchange (`WorldConfig::overlap`) on the Fig. 17/18 grid families.
//!
//! For each grid × rank count the same evolution runs twice — once with
//! the classic exchange-then-compute loop, once with sends posted early
//! and interior octants evaluated while ghosts are in flight — and we
//! record:
//!
//! * the **overlap ratio** `halo_overlap_us / (halo_overlap_us +
//!   halo_wait_us)`: the fraction of halo latency hidden behind interior
//!   RHS work,
//! * the **halo-stall share**: halo-span milliseconds over all recorded
//!   work-phase milliseconds, before and after, and
//! * a bit-identity check: both paths must produce the same state.
//!
//! Output: a text table, `results/BENCH_overlap.json`, and a
//! schema-valid probe trace at `results/TRACE_overlap.json`.

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::init::LinearWaveData;
use gw_bssn::BssnParams;
use gw_comm::WorldConfig;
use gw_core::multi::evolve_distributed_cfg;
use gw_core::solver::fill_field;
use gw_mesh::Mesh;
use gw_obs::{Counter, Probe};
use gw_octree::Domain;
use std::time::Instant;

/// Halo-span milliseconds as a share of all recorded work-phase time.
fn halo_share(trace: &gw_obs::Trace) -> f64 {
    let totals = trace.phase_totals();
    let halo: f64 = totals.get("halo").map(|a| a.total_ms).unwrap_or(0.0);
    let all: f64 = totals.values().map(|a| a.total_ms).sum();
    if all <= 0.0 {
        0.0
    } else {
        halo / all
    }
}

struct Row {
    grid: &'static str,
    octants: usize,
    ranks: usize,
    wall_blocking_ms: f64,
    wall_overlap_ms: f64,
    share_blocking: f64,
    share_overlap: f64,
    overlap_ratio: f64,
}

fn main() {
    let domain = Domain::centered_cube(16.0);
    // The Fig. 17 strong-scaling grid (one refinement level shallower so
    // a real multi-rank CPU evolution stays in bench budget) and the
    // Fig. 18 weak-scaling p=2 grid at full size.
    let grids: Vec<(&'static str, Mesh)> = vec![
        ("fig17_strong", bbh_grid(domain, 6.0, 2, 5)),
        ("fig18_weak_p2", bbh_grid(domain, 6.0, 3, 5)),
    ];
    let params = BssnParams::default();
    let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
    let steps = 1;

    let mut rows: Vec<Row> = Vec::new();
    let mut last_overlap_trace: Option<gw_obs::Trace> = None;
    for (name, mesh) in &grids {
        let u0 = fill_field(mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        println!("\n== {name}: {} octants, {} unknowns ==", mesh.n_octants(), mesh.unknowns(24));
        for ranks in [2usize, 4] {
            let probe_b = Probe::enabled();
            let cfg_b = WorldConfig { probe: probe_b.clone(), ..WorldConfig::default() };
            let t0 = Instant::now();
            let blocking = evolve_distributed_cfg(mesh, &u0, ranks, steps, 0.25, params, cfg_b)
                .expect("blocking run");
            let wall_b = t0.elapsed().as_secs_f64() * 1e3;
            let trace_b = probe_b.report().expect("blocking trace");

            let probe_o = Probe::enabled();
            let cfg_o = WorldConfig {
                overlap: true,
                overlap_threads: 1,
                probe: probe_o.clone(),
                ..WorldConfig::default()
            };
            let t1 = Instant::now();
            let overlapped = evolve_distributed_cfg(mesh, &u0, ranks, steps, 0.25, params, cfg_o)
                .expect("overlapped run");
            let wall_o = t1.elapsed().as_secs_f64() * 1e3;
            let trace_o = probe_o.report().expect("overlapped trace");

            assert_eq!(
                blocking.state.as_slice(),
                overlapped.state.as_slice(),
                "{name} x{ranks}: overlapped state must be bit-identical to blocking"
            );
            assert_eq!(blocking.traffic, overlapped.traffic, "{name} x{ranks}: traffic");

            let hidden = probe_o.counter(Counter::HaloOverlapUs);
            let wait = probe_o.counter(Counter::HaloWaitUs);
            let ratio = trace_o.overlap_ratio();
            println!(
                "  ranks {ranks}: hidden {hidden} us, exposed wait {wait} us, \
                 overlap ratio {:.1}%",
                ratio * 100.0
            );
            rows.push(Row {
                grid: name,
                octants: mesh.n_octants(),
                ranks,
                wall_blocking_ms: wall_b,
                wall_overlap_ms: wall_o,
                share_blocking: halo_share(&trace_b),
                share_overlap: halo_share(&trace_o),
                overlap_ratio: ratio,
            });
            last_overlap_trace = Some(trace_o);
        }
    }

    let mut t = TablePrinter::new(&[
        "grid",
        "octants",
        "ranks",
        "blocking ms",
        "overlap ms",
        "halo share before",
        "halo share after",
        "overlap ratio",
    ]);
    for r in &rows {
        t.row(&[
            r.grid.to_string(),
            r.octants.to_string(),
            r.ranks.to_string(),
            num(r.wall_blocking_ms),
            num(r.wall_overlap_ms),
            format!("{:.1}%", r.share_blocking * 100.0),
            format!("{:.1}%", r.share_overlap * 100.0),
            format!("{:.1}%", r.overlap_ratio * 100.0),
        ]);
    }
    t.print("Overlapped halo exchange — hidden latency and stall share");

    // The acceptance gate: on the Fig. 18 grid at least 30% of halo
    // latency must be hidden, and the halo-stall share must shrink.
    for r in rows.iter().filter(|r| r.grid == "fig18_weak_p2") {
        assert!(
            r.overlap_ratio >= 0.30,
            "fig18 x{}: overlap ratio {:.3} below the 30% gate",
            r.ranks,
            r.overlap_ratio
        );
        assert!(
            r.share_overlap < r.share_blocking,
            "fig18 x{}: halo-stall share did not shrink ({:.3} -> {:.3})",
            r.ranks,
            r.share_blocking,
            r.share_overlap
        );
    }

    let mut json = String::from("{\n  \"bench\": \"overlap_scaling\",\n");
    json.push_str(
        "  \"note\": \"blocking vs overlapped halo exchange; overlap_ratio = halo_overlap_us/(halo_overlap_us+halo_wait_us); halo share = halo-span ms over all work-phase ms; wall times from a single-core CI host\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"grid\": \"{}\", \"octants\": {}, \"ranks\": {}, \"wall_blocking_ms\": {:.3}, \"wall_overlap_ms\": {:.3}, \"halo_share_blocking\": {:.4}, \"halo_share_overlap\": {:.4}, \"overlap_ratio\": {:.4}, \"bit_identical\": true}}{}\n",
            r.grid,
            r.octants,
            r.ranks,
            r.wall_blocking_ms,
            r.wall_overlap_ms,
            r.share_blocking,
            r.share_overlap,
            r.overlap_ratio,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("results/BENCH_overlap.json", &json).expect("write results/BENCH_overlap.json");
    println!("\nwrote results/BENCH_overlap.json");

    if let Some(trace) = last_overlap_trace {
        trace
            .write_to(std::path::Path::new("results/TRACE_overlap.json"), &[])
            .expect("write results/TRACE_overlap.json");
        println!("wrote results/TRACE_overlap.json");
    }
}
