//! Table II regenerator: register-spill statistics and execution speedup
//! for the three RHS code-generation strategies (SymPyGR baseline,
//! binary-reduce, staged + CSE) at the paper's 56-registers-per-thread
//! budget.
//!
//! Spill bytes come from the Belady register-file model over each
//! schedule; the speedup column is measured by executing the three tapes
//! over a batch of grid points (the working-set/locality effect the
//! paper attributes to reduced spilling).

use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_expr::bssn::{build_bssn_rhs, BssnParams};
use gw_expr::schedule::{schedule, ScheduleStrategy};
use gw_expr::symbols::NUM_INPUTS;
use gw_expr::tape::Tape;
use std::time::Instant;

fn main() {
    let rhs = build_bssn_rhs(BssnParams::default());
    let (nodes, edges) = rhs.graph.graph_stats(&rhs.outputs);
    println!("BSSN A-component DAG: {nodes} nodes, {edges} edges (paper: 2516 nodes, 6708 edges)");
    println!(
        "CSE temporaries (multi-use): {} (paper: ~900); interior nodes: {}; flops/point: {}",
        rhs.graph.shared_count(&rhs.outputs),
        rhs.graph.interior_count(&rhs.outputs),
        rhs.graph.flop_count(&rhs.outputs)
    );

    // Benchmark inputs: randomized near-flat states.
    let n_points = 20_000;
    let mut seed = 0x5eed_1234u64;
    let mut rng = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
    };
    let mut inputs = vec![0.0f64; NUM_INPUTS];
    for v in inputs.iter_mut() {
        *v = 0.05 * rng();
    }
    inputs[0] = 1.0; // alpha
    inputs[7] = 1.0; // chi
    inputs[9] = 1.0;
    inputs[12] = 1.0;
    inputs[14] = 1.0; // gt diag

    let mut t = TablePrinter::new(&[
        "RHS variation",
        "spill stores (B)",
        "spill loads (B)",
        "max live",
        "slots",
        "host ns/pt",
        "model speedup",
        "paper speedup",
    ]);
    // A100 RAM-model time per point: streamed inputs/outputs plus the
    // spill traffic the register file generates at 56 registers.
    let a100 = gw_perfmodel::ram::RamModel::a100();
    let model_time = |tape: &Tape| -> f64 {
        let stream_bytes = ((gw_expr::symbols::NUM_INPUTS + 24) * 8) as u64;
        let spill = tape.spill_stats.total_spill_bytes();
        a100.time_infinite_cache(tape.flops, stream_bytes + spill)
    };
    let mut base_model = 0.0;
    let paper = [
        ("SymPyGR", 15892u64, 33288u64, 1.0),
        ("binary-reduce", 0, 22012, 1.55),
        ("staged + CSE", 8876, 22028, 1.76),
    ];
    for (i, strat) in ScheduleStrategy::all().iter().enumerate() {
        let sch = schedule(&rhs.graph, &rhs.outputs, *strat);
        let tape = Tape::compile(&rhs.graph, &sch, 56);
        let live = sch.max_live(&rhs.graph);
        // Warm up + measure.
        let mut out = vec![0.0; tape.n_outputs];
        let mut slots = vec![0.0; tape.n_slots];
        for _ in 0..100 {
            tape.eval_into(&inputs, &mut out, &mut slots);
        }
        let t0 = Instant::now();
        for _ in 0..n_points {
            tape.eval_into(&inputs, &mut out, &mut slots);
        }
        let per_pt = t0.elapsed().as_secs_f64() / n_points as f64 * 1e9;
        let tm = model_time(&tape);
        if i == 0 {
            base_model = tm;
        }
        t.row(&[
            strat.name().to_string(),
            tape.spill_stats.spill_store_bytes.to_string(),
            tape.spill_stats.spill_load_bytes.to_string(),
            live.to_string(),
            tape.n_slots.to_string(),
            num(per_pt),
            format!("{:.2}x", base_model / tm),
            format!("{:.2}x", paper[i].3),
        ]);
    }
    t.print("Table II — codegen strategies at 56 registers/thread");
    println!(
        "\nPaper spill bytes: SymPyGR 15892/33288, binary-reduce —/22012, staged+CSE 8876/22028.\n\
         Shape check: baseline spills most; binary-reduce and staged+CSE cut spills\n\
         substantially and run faster."
    );
}
