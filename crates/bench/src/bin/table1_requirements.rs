//! Table I regenerator: resolution and timestep requirements vs mass
//! ratio (model of section I with the paper's assumptions: M = 1,
//! d = 8, ~120 points across each horizon).

use gw_bench::table::{num, sci};
use gw_bench::TablePrinter;
use gw_perfmodel::requirements::{resolution_requirements, PAPER_TABLE_I};

fn main() {
    let mut t = TablePrinter::new(&[
        "q",
        "dx_min small (ours)",
        "(paper)",
        "dx_min large (ours)",
        "(paper)",
        "time [M] (ours)",
        "(paper)",
        "timesteps (ours)",
        "(paper)",
    ]);
    for &(q, dxs_p, dxl_p, t_p, n_p) in &PAPER_TABLE_I {
        let r = resolution_requirements(q);
        t.row(&[
            format!("{q}"),
            sci(r.dx_small),
            sci(dxs_p),
            sci(r.dx_large),
            sci(dxl_p),
            num(r.merger_time),
            num(t_p),
            sci(r.timesteps),
            sci(n_p),
        ]);
    }
    t.print("Table I — resolution requirements vs mass ratio (ours vs paper)");
    println!(
        "\nModel: dx = 2 m_i / 120; merger time from full-GR values (q<=16)\n\
         or quadrupole decay t = (5/256) d^4/(m1 m2 M); steps = time / dx_min."
    );
}
