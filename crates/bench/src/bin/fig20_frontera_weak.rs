//! Fig. 20 regenerator: Frontera-scale weak scaling — per-RK4-step cost
//! breakdown (RHS, padding, communication) at ~500K unknowns per core up
//! to the paper's 229,376 cores / 118B unknowns.
//!
//! At these scales the study is a *model projection* (the paper's own
//! cost breakdown is what is being reproduced): per-core compute from
//! measured per-unknown kernel costs on this machine's CPU, comm from the
//! ghost-surface model of an SFC-partitioned octree.

use gw_bench::grids::bbh_grid;
use gw_bench::table::num;
use gw_bench::TablePrinter;
use gw_bssn::BssnParams;
use gw_core::backend::{Backend, CpuBackend, RhsKind};
use gw_core::rk4::Rk4;
use gw_core::solver::fill_field;
use gw_octree::Domain;
use gw_perfmodel::scaling::Network;
use std::time::Instant;

fn main() {
    // Calibrate per-unknown per-step cost on a real (small) grid.
    let mesh = bbh_grid(Domain::centered_cube(16.0), 6.0, 2, 4);
    let u = fill_field(&mesh, &|_p, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = if v == 0 || v == 7 || v == 9 || v == 12 || v == 14 { 1.0 } else { 0.0 };
        }
    });
    let mut cpu = CpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise);
    cpu.upload(&u);
    let rk = Rk4::default();
    let dt = rk.timestep(&mesh);
    rk.step(&mut cpu, &mesh, dt); // warm-up
    let t0 = Instant::now();
    rk.step(&mut cpu, &mesh, dt);
    let step_s = t0.elapsed().as_secs_f64();
    let per_unknown = step_s / mesh.unknowns(24) as f64;
    println!(
        "calibration: {} unknowns, {:.3} s/RK4-step, {:.3e} s/unknown-step (1 core)",
        mesh.unknowns(24),
        step_s,
        per_unknown
    );

    // Of the step, what fraction is RHS vs padding? Measured by running
    // padding alone.
    let mut patches = gw_mesh::PatchField::zeros(24, mesh.n_octants());
    let tp = Instant::now();
    for _ in 0..4 {
        gw_mesh::scatter::fill_patches_scatter(&mesh, &u, &mut patches);
    }
    let pad_frac = (tp.elapsed().as_secs_f64()) / step_s;
    let pad_frac = pad_frac.min(0.45);
    println!("padding fraction of a step: {:.2}", pad_frac);

    // Project the Frontera sweep: 56 cores/node, 500K unknowns per core.
    let unknowns_per_core = 500_000.0;
    let net = Network::cluster_fabric();
    let mut t = TablePrinter::new(&[
        "nodes",
        "cores",
        "unknowns",
        "RHS s",
        "padding s",
        "comm s",
        "total s/step",
    ]);
    for nodes in [8usize, 64, 512, 2048, 4096] {
        let cores = nodes * 56;
        let unknowns = unknowns_per_core * cores as f64;
        let compute = unknowns_per_core * per_unknown;
        let rhs_s = compute * (1.0 - pad_frac);
        let pad_s = compute * pad_frac;
        // Ghost surface per core: an SFC partition of N octants over p
        // ranks has O((N/p)^{2/3}) boundary octants; each ghost block is
        // 24×343×8 B; 5 exchanges per step; ~6 neighbor ranks.
        let octants_per_core = unknowns_per_core / (24.0 * 343.0);
        let ghost_octants = 6.0 * octants_per_core.powf(2.0 / 3.0);
        let bytes = ghost_octants * 24.0 * 343.0 * 8.0;
        let comm = 5.0 * net.exchange_time(6, bytes as u64);
        t.row(&[
            nodes.to_string(),
            cores.to_string(),
            format!("{:.2e}", unknowns),
            num(rhs_s),
            num(pad_s),
            num(comm),
            num(rhs_s + pad_s + comm),
        ]);
    }
    t.print("Fig. 20 — Frontera weak scaling projection, cost breakdown per RK4 step");
    println!(
        "\nPaper: ~500K unknowns/core, largest run 118B unknowns on 4096 nodes;\n\
         breakdown dominated by RHS with near-flat total (weak scaling ~holds\n\
         because the per-core ghost surface is constant)."
    );
}
