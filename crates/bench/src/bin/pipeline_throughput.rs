//! Parallel patch-pipeline throughput sweep (threads = 1, 2, 4, 8).
//!
//! Runs the CPU backend's four parallel stages — octant→patch scatter,
//! BSSN RHS, patch→octant copy-back and the RK4 AXPY updates — over the
//! Fig. 12 (inspiral) and Fig. 13 (post-merger) grid profiles at several
//! worker counts, and records both:
//!
//! * **wall** step time — meaningful only on multi-core hosts (the CI
//!   container has a single core, where all thread counts tie), and
//! * **model** step time under the substitution policy (DESIGN.md §2):
//!   per-item costs are *measured* serially, then the pool's actual
//!   dynamic-chunk claiming discipline is simulated to obtain the
//!   makespan at each worker count. The model has no free parameters.
//!
//! Also re-checks the pipeline's core promise on every grid: final
//! states are **bit-identical** across all swept thread counts.
//!
//! Output: a text table plus `results/BENCH_pipeline.json`.

use gw_bench::{fig12_inspiral_leaves, fig13_postmerger_leaves};
use gw_bssn::init::LinearWaveData;
use gw_core::backend::Buf;
use gw_core::checkpoint;
use gw_core::solver::{GwSolver, SolverConfig};
use gw_mesh::Mesh;
use gw_octree::Domain;
use gw_stencil::patch::BLOCK_VOLUME;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Field chunk size used by the AXPY stages (`gw_mesh::field`).
const AXPY_CHUNK: usize = 4096;

/// Makespan of `n_items` homogeneous items (each `per_item` seconds)
/// under the pool's dynamic claiming: workers repeatedly grab the next
/// `chunk` indices, so the load split is the greedy one.
fn makespan(n_items: usize, threads: usize, per_item: f64, chunk: usize) -> f64 {
    let chunk = chunk.max(1);
    let n_chunks = n_items.div_ceil(chunk);
    let mut loads = vec![0.0f64; threads];
    for c in 0..n_chunks {
        let items = chunk.min(n_items - c * chunk);
        let w = (0..threads).min_by(|&a, &b| loads[a].total_cmp(&loads[b])).unwrap();
        loads[w] += per_item * items as f64;
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// The claim-chunk size `ThreadPool::for_each` derives for `n` items.
fn pool_chunk(n: usize, threads: usize) -> usize {
    (n / (4 * threads.max(1))).clamp(1, 256)
}

struct Sweep {
    name: &'static str,
    octants: usize,
    /// (threads, wall step seconds, model step seconds, state CRC).
    rows: Vec<(usize, f64, f64, u32)>,
}

fn solver_for(domain: Domain, leaves: &[gw_octree::MortonKey], threads: usize) -> GwSolver {
    let wave = LinearWaveData::new(1e-3, 0.0, 3.0, 0.8);
    let config = SolverConfig { threads, ..Default::default() };
    GwSolver::new(config, Mesh::build(domain, leaves), move |p, out| wave.evaluate(p, out))
}

fn sweep(name: &'static str, domain: Domain, leaves: &[gw_octree::MortonKey]) -> Sweep {
    let n_oct = Mesh::build(domain, leaves).n_octants();
    println!("\n== {name}: {n_oct} octants ==");

    // Serial per-item costs: time the RHS region (scatter + padding +
    // BSSN kernel, all octant-parallel) and a whole step; the remainder
    // is the chunk-parallel AXPY/copy/sync traffic between RHS calls.
    let mut probe = solver_for(domain, leaves, 1);
    probe.step(); // warm up (tape compile, allocations)
    let reps = 3;
    let probe_mesh = Mesh::build(domain, leaves);
    let t0 = Instant::now();
    for _ in 0..reps {
        probe.backend.eval_rhs(&probe_mesh, Buf::U, Buf::K);
    }
    let t_rhs = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        probe.step();
    }
    let t_step1 = t0.elapsed().as_secs_f64() / reps as f64;
    let t_rest = (t_step1 - 4.0 * t_rhs).max(0.0);
    let n_chunks = (gw_expr::symbols::NUM_VARS * n_oct * BLOCK_VOLUME).div_ceil(AXPY_CHUNK);
    println!(
        "  serial: step {:.1} ms (rhs region 4 × {:.1} ms, axpy/copy/sync {:.1} ms)",
        t_step1 * 1e3,
        t_rhs * 1e3,
        t_rest * 1e3
    );

    let mut rows = Vec::new();
    for t in THREADS {
        // Wall time at this worker count (2 timed steps after warm-up).
        let mut s = solver_for(domain, leaves, t);
        s.step();
        let t0 = Instant::now();
        s.step();
        s.step();
        let wall = t0.elapsed().as_secs_f64() / 2.0;
        // The checkpoint's embedded body CRC (trailing word). The whole
        // stream's CRC is the CRC-32 residue constant for every valid
        // checkpoint, so it would compare equal vacuously.
        let crc = {
            let b = checkpoint::save(&s);
            let sl = b.as_slice();
            u32::from_le_bytes(sl[sl.len() - 4..].try_into().unwrap())
        };
        // Model: four RHS regions over octants + the AXPY-class traffic
        // over field chunks, each under the pool's claiming discipline.
        let model = 4.0 * makespan(n_oct, t, t_rhs / n_oct as f64, pool_chunk(n_oct, t))
            + makespan(n_chunks, t, t_rest / n_chunks as f64, 1);
        rows.push((t, wall, model, crc));
    }

    let crc0 = rows[0].3;
    for &(t, _, _, crc) in &rows {
        assert_eq!(crc, crc0, "{name}: threads={t} diverged from the serial run");
    }
    println!("  determinism: checkpoint CRC 0x{crc0:08x} identical across threads {THREADS:?}");
    println!("  {:>7}  {:>12}  {:>13}  {:>13}", "threads", "wall ms", "model ms", "model speedup");
    for &(t, wall, model, _) in &rows {
        println!(
            "  {t:>7}  {:>12.1}  {:>13.1}  {:>12.2}x",
            wall * 1e3,
            model * 1e3,
            rows[0].2 / model
        );
    }
    Sweep { name, octants: n_oct, rows }
}

fn main() {
    let domain = Domain::centered_cube(16.0);
    let sweeps = [
        sweep("fig12_inspiral", domain, &fig12_inspiral_leaves(&domain)),
        sweep("fig13_postmerger", domain, &fig13_postmerger_leaves(&domain)),
    ];

    // Acceptance gate: >= 2x model speedup at 4 threads on the largest
    // profile (the target the parallel pipeline was built for).
    let largest = sweeps.iter().max_by_key(|s| s.octants).unwrap();
    let at = |s: &Sweep, t: usize| {
        let m = s.rows.iter().find(|r| r.0 == t).unwrap().2;
        s.rows[0].2 / m
    };
    let sp4 = at(largest, 4);
    println!(
        "\nlargest profile {} ({} octants): {sp4:.2}x at 4 threads",
        largest.name, largest.octants
    );
    assert!(sp4 >= 2.0, "expected >= 2x model speedup at 4 threads, got {sp4:.2}x");

    // JSON record (flat, hand-serialized — same dependency policy as the
    // par-file parser).
    let mut json = String::from("{\n  \"bench\": \"pipeline_throughput\",\n");
    json.push_str(
        "  \"note\": \"wall times from a single-core CI host (all thread counts tie); \
         model = measured serial per-item costs + simulated dynamic-chunk makespan \
         (substitution policy, DESIGN.md)\",\n  \"grids\": [\n",
    );
    for (gi, s) in sweeps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"octants\": {}, \"rows\": [\n",
            s.name, s.octants
        ));
        for (ri, &(t, wall, model, crc)) in s.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"threads\": {t}, \"wall_step_ms\": {:.3}, \"model_step_ms\": {:.3}, \
                 \"model_speedup\": {:.3}, \"state_crc32\": {crc}}}{}\n",
                wall * 1e3,
                model * 1e3,
                s.rows[0].2 / model,
                if ri + 1 < s.rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("    ]}}{}\n", if gi + 1 < sweeps.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/BENCH_pipeline.json", &json)
        .expect("write results/BENCH_pipeline.json");
    println!("\nwrote results/BENCH_pipeline.json");
}
