//! Fig. 12/13 regenerator: octant refinement-level profiles along the x
//! axis for (a) a q = 8 binary during inspiral and (b) a post-merger
//! grid with a radially outgoing wave shell.

use gw_bench::{fig12_inspiral_leaves, fig13_postmerger_leaves};
use gw_octree::{Domain, MortonKey};

fn profile_along_x(domain: &Domain, leaves: &[MortonKey], samples: usize) -> Vec<(f64, u8)> {
    let half = domain.max[0];
    let mesh_keys = leaves;
    (0..samples)
        .map(|i| {
            let x = -half + (2.0 * half) * (i as f64 + 0.5) / samples as f64;
            let p = [x, 0.01, 0.01];
            let probe = domain.locate(p, gw_octree::MAX_LEVEL);
            let idx = match mesh_keys.binary_search(&probe) {
                Ok(k) => k,
                Err(0) => 0,
                Err(k) => k - 1,
            };
            (x, mesh_keys[idx].level())
        })
        .collect()
}

fn print_profile(title: &str, prof: &[(f64, u8)]) {
    println!("\n== {title} ==");
    println!("  {:>8}  {:>5}  profile", "x", "level");
    for &(x, l) in prof {
        println!("  {x:8.2}  {l:5}  {}", "#".repeat(l as usize * 2));
    }
}

fn main() {
    let domain = Domain::centered_cube(16.0);

    // Fig. 12: q = 8 inspiral — unequal punctures, the smaller hole two
    // levels deeper (grid shared with `pipeline_throughput`).
    let d = 6.0;
    let m1 = 8.0 / 9.0;
    let leaves = fig12_inspiral_leaves(&domain);
    println!("inspiral grid: {} octants", leaves.len());
    let prof = profile_along_x(&domain, &leaves, 48);
    print_profile("Fig. 12 — level vs x, q = 8 inspiral (asymmetric wells)", &prof);
    // Structural checks mirrored from the paper's plot.
    let lmax = prof.iter().map(|p| p.1).max().unwrap();
    let small_region: Vec<u8> =
        prof.iter().filter(|(x, _)| (x - d * m1).abs() < 1.0).map(|p| p.1).collect();
    assert!(small_region.contains(&lmax), "deepest refinement at the small hole");

    // Fig. 13: post-merger — single central remnant + outgoing wave shell.
    let leaves = fig13_postmerger_leaves(&domain);
    println!("\npost-merger grid: {} octants", leaves.len());
    let prof = profile_along_x(&domain, &leaves, 48);
    print_profile("Fig. 13 — level vs x, post-merger (center + wave shell)", &prof);
    // The shell band must be refined above its surroundings.
    let shell_lvl =
        prof.iter().filter(|(x, _)| x.abs() > 8.5 && x.abs() < 11.5).map(|p| p.1).max().unwrap();
    // The far field is probed at the domain corners (r ≈ 26), well
    // outside the shell's influence; the x-axis beyond the shell stays
    // partially refined because sibling-coarsening is all-or-nothing.
    let corner_lvl = {
        let p = [15.0, 15.0, 15.0];
        let probe = domain.locate(p, gw_octree::MAX_LEVEL);
        let idx = match leaves.binary_search(&probe) {
            Ok(k) => k,
            Err(0) => 0,
            Err(k) => k - 1,
        };
        leaves[idx].level()
    };
    assert!(
        shell_lvl > corner_lvl,
        "wave shell (level {shell_lvl}) refined above far field (level {corner_lvl})"
    );
    println!("\nshape checks passed: asymmetric wells (Fig. 12), refined shell (Fig. 13)");
}
