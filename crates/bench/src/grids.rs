//! Benchmark grid construction.
//!
//! * [`table3_grids`] — the five grids `m₁…m₅` of Table III with
//!   *decreasing adaptivity* at increasing size, built like the paper's:
//!   `m₁` is a strongly adaptive BBH-like grid, `m₅` nearly uniform.
//! * [`bbh_like_grids`] — binary-puncture grids at several target sizes
//!   for the Fig. 15/16 sweeps.
//! * [`uniform_grid`] — uniform meshes for calibration runs.

use gw_mesh::Mesh;
use gw_octree::{refine_loop, BalanceMode, Domain, MortonKey, Puncture, PunctureRefiner};

/// Uniform mesh at `level`.
pub fn uniform_grid(domain: Domain, level: u8) -> Mesh {
    let mut leaves = vec![MortonKey::root()];
    for _ in 0..level {
        leaves = leaves.iter().flat_map(|k| k.children()).collect();
    }
    leaves.sort();
    Mesh::build(domain, &leaves)
}

/// A BBH-like adaptive grid: two punctures at separation `d` refined
/// `extra` levels above a base level.
pub fn bbh_grid(domain: Domain, d: f64, base: u8, finest: u8) -> Mesh {
    let p1 = Puncture { pos: [d / 2.0, 0.0, 0.0], finest_level: finest, inner_radius: d / 10.0 };
    let p2 = Puncture { pos: [-d / 2.0, 0.0, 0.0], finest_level: finest, inner_radius: d / 10.0 };
    let r = PunctureRefiner::new(vec![p1, p2], base);
    let leaves = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 20);
    Mesh::build(domain, &leaves)
}

/// The Table-III grid family: five grids of growing size and shrinking
/// adaptivity ratio (`m₁` most adaptive). Sizes are scaled down ~4×
/// from the paper's 400–9304 octants to stay laptop-friendly in debug
/// runs; pass `scale = 1.0` for paper-sized grids.
pub fn table3_grids(scale: f64) -> Vec<(String, Mesh)> {
    let domain = Domain::centered_cube(16.0);
    let mut out = Vec::new();
    // (base level, finest level): deep narrow refinement → adaptive;
    // shallow broad refinement → uniform-ish.
    let configs: [(u8, u8, f64); 5] = [
        (2, 5, 1.0), // m1: most adaptive (measured adaptivity ~0.48)
        (2, 6, 0.6), // ~0.36
        (3, 6, 1.2), // ~0.25
        (3, 5, 2.4), // ~0.23
        (4, 5, 3.0), // m5: nearly uniform (~0.09)
    ];
    for (i, &(base, finest, r_in)) in configs.iter().enumerate() {
        let d = 6.0;
        let p1 = Puncture {
            pos: [d / 2.0, 0.0, 0.0],
            finest_level: finest,
            inner_radius: r_in * scale.max(0.25),
        };
        let p2 = Puncture {
            pos: [-d / 2.0, 0.0, 0.0],
            finest_level: finest,
            inner_radius: r_in * scale.max(0.25),
        };
        let rfn = PunctureRefiner::new(vec![p1, p2], base);
        let leaves = refine_loop(&[MortonKey::root()], &domain, &rfn, BalanceMode::Full, 16);
        out.push((format!("m{}", i + 1), Mesh::build(domain, &leaves)));
    }
    out
}

/// The Fig. 12 grid: a q = 8 inspiral with unequal punctures, the
/// smaller hole refined two levels deeper. Shared by the level-profile
/// regenerator and the pipeline-throughput sweep.
pub fn fig12_inspiral_leaves(domain: &Domain) -> Vec<MortonKey> {
    let m1 = 8.0 / 9.0;
    let m2 = 1.0 / 9.0;
    let d = 6.0;
    let big = Puncture { pos: [-d * m2, 0.0, 0.0], finest_level: 5, inner_radius: m1 };
    let small = Puncture { pos: [d * m1, 0.0, 0.0], finest_level: 7, inner_radius: m2 };
    let r = PunctureRefiner::new(vec![big, small], 2);
    refine_loop(&[MortonKey::root()], domain, &r, BalanceMode::Full, 20)
}

/// The Fig. 13 grid: a post-merger remnant at the origin plus a
/// radially outgoing wave shell refined above its surroundings.
pub fn fig13_postmerger_leaves(domain: &Domain) -> Vec<MortonKey> {
    let remnant = Puncture { pos: [0.0, 0.0, 0.0], finest_level: 6, inner_radius: 1.0 };
    let r = PunctureRefiner::new(vec![remnant], 2).with_shell(8.0, 12.0, 4);
    refine_loop(&[MortonKey::root()], domain, &r, BalanceMode::Full, 20)
}

/// BBH grids with octant counts near the requested targets (Fig. 15/16
/// problem-size sweeps).
pub fn bbh_like_grids(targets: &[usize]) -> Vec<Mesh> {
    let domain = Domain::centered_cube(16.0);
    let mut out = Vec::new();
    for &t in targets {
        // Scan finest level until the octant count reaches the target.
        let mut best: Option<Mesh> = None;
        for finest in 4..=8u8 {
            let m = bbh_grid(domain, 6.0, 2, finest);
            if m.n_octants() >= t || finest == 8 {
                best = Some(m);
                break;
            }
            best = Some(m);
        }
        out.push(best.expect("grid built"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_family_adaptivity_decreases() {
        let grids = table3_grids(1.0);
        assert_eq!(grids.len(), 5);
        let ratios: Vec<f64> = grids.iter().map(|(_, m)| m.adaptivity_ratio()).collect();
        // m1 clearly more adaptive than m5.
        assert!(ratios[0] > ratios[4] + 0.05, "adaptivity must decrease m1→m5: {ratios:?}");
        let sizes: Vec<usize> = grids.iter().map(|(_, m)| m.n_octants()).collect();
        assert!(sizes[4] > sizes[0], "m5 should be the largest: {sizes:?}");
    }

    #[test]
    fn bbh_grid_refines_punctures() {
        let m = bbh_grid(Domain::centered_cube(16.0), 6.0, 2, 5);
        let lmax = m.octants.iter().map(|o| o.level).max().unwrap();
        let lmin = m.octants.iter().map(|o| o.level).min().unwrap();
        assert_eq!(lmax, 5);
        assert!(lmin <= 3);
    }
}
