//! Shared helpers for the table/figure regenerators.
//!
//! Each binary in `src/bin` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4). They print aligned text tables with the paper's
//! values alongside ours where applicable.

pub mod grids;
pub mod table;

pub use grids::{
    bbh_like_grids, fig12_inspiral_leaves, fig13_postmerger_leaves, table3_grids, uniform_grid,
};
pub use table::TablePrinter;
