//! Observability: hierarchical phase timers, monotonic counters, and a
//! structured trace sink.
//!
//! The paper tells its whole performance story through per-kernel
//! breakdowns (octant-to-patch, RHS, AXPY, halo exchange — Figs. 12,
//! 13, 19); this crate gives every backend and driver in the workspace
//! one uniform way to produce those numbers.
//!
//! Design constraints, in order:
//!
//! 1. **Never perturb results.** A probe only reads clocks and bumps
//!    relaxed atomics / pushes to a side buffer; it takes no locks
//!    inside parallel numeric loops and never touches solver state, so
//!    enabling it cannot change a single bit of the evolution at any
//!    thread count (this is locked in by `tests/determinism_matrix.rs`).
//! 2. **Zero cost when compiled out.** With the `enabled` feature off,
//!    [`Probe`] is a fieldless struct and every method is an empty
//!    inlined body — the API stays identical so no caller needs `cfg`.
//! 3. **Cheap when present but dormant.** A disabled-at-runtime probe
//!    ([`Probe::disabled`]) is one `Option` check per call.
//!
//! The trace sink writes Chrome-trace-compatible JSON (`chrome://tracing`,
//! Perfetto) with an aggregated per-phase `summary` section; see
//! [`trace`] for the schema and [`json::validate_trace`] for the
//! validator behind the `trace_check` binary.

pub mod json;
pub mod trace;

pub use trace::{Trace, TraceEvent};

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// A phase in the span hierarchy: `step → {o2p, rhs, p2o, axpy, halo,
/// regrid, checkpoint}` plus the cross-cutting categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// One full RK4 step (the parent of the work phases).
    Step,
    /// Octant-to-patch scatter (+ boundary padding fill).
    O2p,
    /// BSSN right-hand side evaluation.
    Rhs,
    /// Patch-to-octant consistency: coarse–fine interface sync. (The
    /// fused RHS kernels write octant blocks directly, so the classic
    /// copy-back phase reduces to this sync — see DESIGN.md §10.)
    P2o,
    /// AXPY-family buffer arithmetic (axpy, assign_axpy, copy).
    Axpy,
    /// Distributed halo exchange (the blocking receive/copy part).
    Halo,
    /// Interior compute overlapped with an in-flight halo exchange (the
    /// dependency-aware overlap path of the distributed driver).
    HaloOverlap,
    /// Host-side re-discretization (regrid).
    Regrid,
    /// Checkpoint serialization / IO.
    Checkpoint,
    /// Waveform extraction (device→host read + projection).
    Extract,
    /// Supervisor health check.
    Health,
    /// An individual device-kernel launch (child of o2p/rhs/axpy/p2o).
    Kernel,
}

impl Phase {
    /// Stable lowercase name used in trace categories and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Step => "step",
            Phase::O2p => "o2p",
            Phase::Rhs => "rhs",
            Phase::P2o => "p2o",
            Phase::Axpy => "axpy",
            Phase::Halo => "halo",
            Phase::HaloOverlap => "halo_overlap",
            Phase::Regrid => "regrid",
            Phase::Checkpoint => "checkpoint",
            Phase::Extract => "extract",
            Phase::Health => "health",
            Phase::Kernel => "kernel",
        }
    }

    /// The phases expected to account for a step's wall time (the
    /// denominator of the trace coverage check): direct children of
    /// `step` doing the actual work.
    pub const WORK: [Phase; 6] =
        [Phase::O2p, Phase::Rhs, Phase::P2o, Phase::Axpy, Phase::Halo, Phase::HaloOverlap];
}

/// Monotonic per-kernel / per-subsystem counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// RK4 steps completed.
    Steps,
    /// Octant patches assembled by o2p passes.
    PatchesProcessed,
    /// Patch points written by o2p scatter passes.
    PointsScattered,
    /// Host↔device bytes moved by upload/download.
    BytesMoved,
    /// Device kernel launches.
    KernelLaunches,
    /// Point-to-point halo messages delivered.
    HaloMessages,
    /// Halo payload bytes delivered.
    HaloBytes,
    /// Reliable-delivery retransmissions.
    Retransmits,
    /// Liveness heartbeats emitted.
    Heartbeats,
    /// Supervisor health checks performed.
    HealthChecks,
    /// Health checks that found the state unhealthy.
    FaultsDetected,
    /// Rollback/retry recoveries performed.
    Rollbacks,
    /// Checkpoints written (in-memory or disk).
    Checkpoints,
    /// Regrids performed.
    Regrids,
    /// Microseconds of interior compute overlapped with an in-flight
    /// halo exchange (the hidden portion of the halo latency).
    HaloOverlapUs,
    /// Microseconds spent stalled waiting for ghosts *after* the
    /// overlapped interior compute finished (the exposed portion).
    HaloWaitUs,
    /// Reusable per-worker workspaces (re)allocated — a steady-state hot
    /// loop must not bump this (asserted by the backend tests).
    WorkspaceAllocs,
}

impl Counter {
    pub const COUNT: usize = 17;

    /// All counters, in declaration order (the summary emits them in
    /// this order, so output is deterministic).
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Steps,
        Counter::PatchesProcessed,
        Counter::PointsScattered,
        Counter::BytesMoved,
        Counter::KernelLaunches,
        Counter::HaloMessages,
        Counter::HaloBytes,
        Counter::Retransmits,
        Counter::Heartbeats,
        Counter::HealthChecks,
        Counter::FaultsDetected,
        Counter::Rollbacks,
        Counter::Checkpoints,
        Counter::Regrids,
        Counter::HaloOverlapUs,
        Counter::HaloWaitUs,
        Counter::WorkspaceAllocs,
    ];

    /// Stable snake_case name used in the summary's `counters` object.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Steps => "steps",
            Counter::PatchesProcessed => "patches_processed",
            Counter::PointsScattered => "points_scattered",
            Counter::BytesMoved => "bytes_moved",
            Counter::KernelLaunches => "kernel_launches",
            Counter::HaloMessages => "halo_messages",
            Counter::HaloBytes => "halo_bytes",
            Counter::Retransmits => "retransmits",
            Counter::Heartbeats => "heartbeats",
            Counter::HealthChecks => "health_checks",
            Counter::FaultsDetected => "faults_detected",
            Counter::Rollbacks => "rollbacks",
            Counter::Checkpoints => "checkpoints",
            Counter::Regrids => "regrids",
            Counter::HaloOverlapUs => "halo_overlap_us",
            Counter::HaloWaitUs => "halo_wait_us",
            Counter::WorkspaceAllocs => "workspace_allocs",
        }
    }

    #[cfg(feature = "enabled")]
    fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).expect("counter in ALL")
    }
}

#[cfg(feature = "enabled")]
struct Inner {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
    counters: [AtomicU64; Counter::COUNT],
}

#[cfg(feature = "enabled")]
impl Inner {
    fn new() -> Self {
        Self {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[cfg(feature = "enabled")]
mod tls {
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT_TID: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// Stack of open span labels on this thread, for parent
        /// attribution. Guards must be dropped on the thread that
        /// created them (all our spans are lexically scoped).
        pub static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    }

    /// Small dense trace thread-id for the current thread.
    pub fn tid() -> u64 {
        TID.with(|c| {
            let v = c.get();
            if v != u64::MAX {
                return v;
            }
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        })
    }
}

/// A handle to one recording session, shared by every instrumented
/// component of a run. `Clone` is a cheap `Arc` bump; all clones feed
/// the same event buffer and counters. The default/[`Probe::disabled`]
/// probe records nothing.
#[derive(Clone, Default)]
pub struct Probe {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_enabled() {
            f.write_str("Probe(enabled)")
        } else {
            f.write_str("Probe(disabled)")
        }
    }
}

impl Probe {
    /// A probe that records nothing (the default everywhere).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live probe. With the `enabled` feature compiled out this still
    /// returns a disabled probe (and [`Probe::report`] returns `None`).
    pub fn enabled() -> Self {
        #[cfg(feature = "enabled")]
        {
            Probe { inner: Some(Arc::new(Inner::new())) }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Probe {}
        }
    }

    /// Whether this probe is actually recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Open a span for `phase`; it closes (and records one trace event)
    /// when the returned guard drops. Guards nest: an inner span records
    /// the enclosing span's label as its parent.
    #[inline]
    pub fn start(&self, phase: Phase) -> SpanGuard {
        self.start_labeled(phase, phase.name())
    }

    /// Open a span with an explicit label (e.g. a kernel name) under
    /// category `phase`.
    #[inline]
    pub fn start_labeled(&self, phase: Phase, label: &'static str) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            let rec = self.inner.as_ref().map(|inner| {
                let parent = tls::SPAN_STACK.with(|s| s.borrow().last().copied());
                tls::SPAN_STACK.with(|s| s.borrow_mut().push(label));
                Rec {
                    inner: inner.clone(),
                    label,
                    cat: phase.name(),
                    parent,
                    start: Instant::now(),
                    tid: tls::tid(),
                }
            });
            SpanGuard { rec }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (phase, label);
            SpanGuard {}
        }
    }

    /// Bump a monotonic counter by `n`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &self.inner {
            inner.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (counter, n);
    }

    /// Current value of a counter (0 on a disabled probe).
    pub fn counter(&self, counter: Counter) -> u64 {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &self.inner {
            return inner.counters[counter.index()].load(Ordering::Relaxed);
        }
        let _ = counter;
        0
    }

    /// Snapshot the recorded events and counters. `None` on a disabled
    /// probe (including every probe when the `enabled` feature is
    /// compiled out), so callers can skip sink IO entirely.
    pub fn report(&self) -> Option<Trace> {
        #[cfg(feature = "enabled")]
        {
            let inner = self.inner.as_ref()?;
            let events = inner.events.lock().expect("events lock").clone();
            let counters: Vec<(&'static str, u64)> = Counter::ALL
                .iter()
                .map(|&c| (c.name(), inner.counters[c.index()].load(Ordering::Relaxed)))
                .collect();
            let wall_ms = inner.origin.elapsed().as_secs_f64() * 1e3;
            Some(Trace { events, counters, wall_ms })
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }
}

#[cfg(feature = "enabled")]
struct Rec {
    inner: Arc<Inner>,
    label: &'static str,
    cat: &'static str,
    parent: Option<&'static str>,
    start: Instant,
    tid: u64,
}

/// Open-span guard; records a completed trace event when dropped.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    rec: Option<Rec>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(rec) = self.rec.take() {
            let end = Instant::now();
            tls::SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            let ts_us = rec.start.duration_since(rec.inner.origin).as_secs_f64() * 1e6;
            let dur_us = end.duration_since(rec.start).as_secs_f64() * 1e6;
            rec.inner.events.lock().expect("events lock").push(TraceEvent {
                name: rec.label,
                cat: rec.cat,
                parent: rec.parent,
                ts_us,
                dur_us,
                tid: rec.tid,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        {
            let _g = p.start(Phase::Step);
            p.add(Counter::Steps, 1);
        }
        assert_eq!(p.counter(Counter::Steps), 0);
        assert!(p.report().is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_nest_with_parent_attribution() {
        let p = Probe::enabled();
        {
            let _step = p.start(Phase::Step);
            {
                let _o2p = p.start(Phase::O2p);
                let _k = p.start_labeled(Phase::Kernel, "octant-to-patch");
            }
            let _rhs = p.start(Phase::Rhs);
        }
        let t = p.report().expect("enabled probe reports");
        // Events are recorded at close time: innermost first.
        assert_eq!(t.events.len(), 4);
        let by_name = |n: &str| t.events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("octant-to-patch").parent, Some("o2p"));
        assert_eq!(by_name("octant-to-patch").cat, "kernel");
        assert_eq!(by_name("o2p").parent, Some("step"));
        assert_eq!(by_name("rhs").parent, Some("step"));
        assert_eq!(by_name("step").parent, None);
        // Nesting: the parent span covers the child in time.
        let (o, k) = (by_name("o2p"), by_name("octant-to-patch"));
        assert!(o.ts_us <= k.ts_us && k.ts_us + k.dur_us <= o.ts_us + o.dur_us + 1.0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_accumulate_across_clones_and_threads() {
        let p = Probe::enabled();
        let q = p.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        q.add(Counter::Retransmits, 2);
                    }
                });
            }
        });
        assert_eq!(p.counter(Counter::Retransmits), 800);
    }
}
