//! A minimal JSON value model, writer, and recursive-descent parser.
//!
//! The workspace is intentionally dependency-free, and `gw-core`'s
//! parameter loader only handles flat scalar objects, so the trace sink
//! carries its own small JSON implementation: enough to emit the trace
//! file and to re-parse and schema-check it (`trace_check`, CI, tests).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order (the writer side);
/// lookups are linear, which is fine at trace-summary sizes.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers as f64; counter magnitudes stay far below 2^53.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Value)>) -> Value {
        Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write_num(f, *n),
            Value::Str(s) => write_str(f, s),
            Value::Arr(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null so the file stays parseable.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        write!(f, "{n:?}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse a JSON document. Strict enough for schema checking: rejects
/// trailing garbage, trailing commas, and unescaped control characters.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number '{s}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates in trace files are never needed;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("unescaped control character at byte {}", self.pos));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            out.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Aggregate facts extracted by [`validate_trace`].
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Number of trace events.
    pub events: usize,
    /// Fraction of measured `step` wall time covered by the work phases.
    pub step_coverage: f64,
    /// Total run wall time (ms).
    pub wall_ms: f64,
    /// Per-phase totals (name → total_ms), sorted by name.
    pub phase_ms: BTreeMap<String, f64>,
    /// Counters (name → value), sorted by name.
    pub counters: BTreeMap<String, f64>,
}

impl TraceStats {
    /// Fraction of halo latency hidden behind interior compute, derived
    /// from the `halo_overlap_us` / `halo_wait_us` counters. 0.0 when
    /// the overlapped exchange path never ran.
    pub fn overlap_ratio(&self) -> f64 {
        let hidden = self.counters.get("halo_overlap_us").copied().unwrap_or(0.0);
        let wait = self.counters.get("halo_wait_us").copied().unwrap_or(0.0);
        if hidden + wait <= 0.0 {
            return 0.0;
        }
        hidden / (hidden + wait)
    }
}

/// Schema identifier written by (and required of) every trace file.
pub const TRACE_SCHEMA: &str = "gw-obs-trace-v1";

fn num_field(obj: &Value, key: &str, at: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{at}: missing or non-numeric \"{key}\""))
}

fn str_field<'v>(obj: &'v Value, key: &str, at: &str) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{at}: missing or non-string \"{key}\""))
}

/// Validate a trace document against the `gw-obs-trace-v1` schema and
/// extract its headline stats. Errors name the offending field.
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    let root = parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("root: missing \"traceEvents\" array")?;
    for (i, e) in events.iter().enumerate() {
        let at = format!("traceEvents[{i}]");
        let ph = str_field(e, "ph", &at)?;
        if ph != "X" {
            return Err(format!("{at}: unsupported event type \"{ph}\" (expected complete \"X\")"));
        }
        str_field(e, "name", &at)?;
        str_field(e, "cat", &at)?;
        for k in ["ts", "dur", "pid", "tid"] {
            let v = num_field(e, k, &at)?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{at}: \"{k}\" must be finite and >= 0, got {v}"));
            }
        }
    }
    let summary = root.get("summary").ok_or("root: missing \"summary\" object")?;
    let schema = str_field(summary, "schema", "summary")?;
    if schema != TRACE_SCHEMA {
        return Err(format!("summary: schema \"{schema}\" != \"{TRACE_SCHEMA}\""));
    }
    let wall_ms = num_field(summary, "wall_ms", "summary")?;
    let step_coverage = num_field(summary, "step_coverage", "summary")?;
    if !(0.0..=1.0 + 1e-9).contains(&step_coverage) {
        return Err(format!("summary: step_coverage {step_coverage} outside [0, 1]"));
    }
    let mut phase_ms = BTreeMap::new();
    for (name, agg) in
        summary.get("phases").and_then(Value::as_obj).ok_or("summary: missing \"phases\" object")?
    {
        let at = format!("summary.phases.{name}");
        num_field(agg, "count", &at)?;
        phase_ms.insert(name.clone(), num_field(agg, "total_ms", &at)?);
    }
    let mut counters = BTreeMap::new();
    for (name, v) in summary
        .get("counters")
        .and_then(Value::as_obj)
        .ok_or("summary: missing \"counters\" object")?
    {
        let n = v.as_f64().ok_or_else(|| format!("summary.counters.{name}: non-numeric"))?;
        counters.insert(name.clone(), n);
    }
    Ok(TraceStats { events: events.len(), step_coverage, wall_ms, phase_ms, counters })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::obj(vec![
            ("a", Value::Num(1.5)),
            ("b", Value::Str("x\"y\\z\n".into())),
            ("c", Value::Arr(vec![Value::Bool(true), Value::Null, Value::Num(-3.0)])),
            ("d", Value::obj(vec![("nested", Value::Num(9007199254740991.0))])),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{\"a\":1} x", "\"\u{1}\"", "nul"] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn validate_rejects_wrong_schema_and_bad_events() {
        let ok = r#"{"traceEvents":[{"name":"step","cat":"step","ph":"X","ts":0,"dur":5,"pid":1,"tid":0}],
            "summary":{"schema":"gw-obs-trace-v1","wall_ms":1.0,"step_coverage":0.95,
            "phases":{"step":{"count":1,"total_ms":0.005}},"counters":{"steps":1}}}"#;
        let stats = validate_trace(ok).expect("valid");
        assert_eq!(stats.events, 1);
        assert!((stats.step_coverage - 0.95).abs() < 1e-12);

        let wrong_schema = ok.replace("gw-obs-trace-v1", "v0");
        assert!(validate_trace(&wrong_schema).unwrap_err().contains("schema"));
        let bad_ph = ok.replace("\"ph\":\"X\"", "\"ph\":\"B\"");
        assert!(validate_trace(&bad_ph).unwrap_err().contains("unsupported event type"));
        let no_summary = r#"{"traceEvents":[]}"#;
        assert!(validate_trace(no_summary).unwrap_err().contains("summary"));
    }
}
