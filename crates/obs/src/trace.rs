//! The trace model and Chrome-trace JSON sink.
//!
//! A trace file is a single JSON object:
//!
//! ```json
//! {
//!   "traceEvents": [
//!     {"name":"o2p","cat":"o2p","ph":"X","ts":12.5,"dur":803.1,
//!      "pid":1,"tid":0,"args":{"parent":"step"}},
//!     ...
//!   ],
//!   "summary": {
//!     "schema": "gw-obs-trace-v1",
//!     "wall_ms": ..., "steps": ...,
//!     "step_total_ms": ..., "step_coverage": 0.97,
//!     "phases":  {"o2p": {"count":32,"total_ms":...,"mean_ms":...}, ...},
//!     "kernels": {"bssn-rhs": {"count":32,"total_ms":...}, ...},
//!     "counters": {"steps":8, "retransmits":0, ...}
//!   }
//! }
//! ```
//!
//! The `traceEvents` half is the standard Chrome trace-event array
//! (complete `"X"` events, microsecond timestamps) and loads directly
//! into `chrome://tracing` / Perfetto; the object form tolerates the
//! extra `summary` member. `step_coverage` is the fraction of measured
//! `step` wall time accounted for by the work phases (o2p, rhs, p2o,
//! axpy, halo) that are *direct children* of a step span — the CI smoke
//! gate requires ≥ 0.9.

use crate::json::{Value, TRACE_SCHEMA};
use crate::Phase;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// One completed span.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Span label (phase name, or kernel name for `cat == "kernel"`).
    pub name: &'static str,
    /// Phase category.
    pub cat: &'static str,
    /// Label of the span that enclosed this one on the same thread.
    pub parent: Option<&'static str>,
    /// Start, microseconds since the probe was created.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Dense per-thread id.
    pub tid: u64,
}

/// Per-label aggregate used in the summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseAgg {
    pub count: u64,
    pub total_ms: f64,
}

/// A snapshot of a probe's recorded events and counters
/// (see [`crate::Probe::report`]).
#[derive(Clone, Debug)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    /// Counter values in [`crate::Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Wall time from probe creation to the report call (ms).
    pub wall_ms: f64,
}

impl Trace {
    /// Aggregate events by phase category.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, PhaseAgg> {
        let mut out: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
        for e in &self.events {
            let agg = out.entry(e.cat).or_default();
            agg.count += 1;
            agg.total_ms += e.dur_us / 1e3;
        }
        out
    }

    /// Aggregate kernel-category events by kernel name.
    pub fn kernel_totals(&self) -> BTreeMap<&'static str, PhaseAgg> {
        let mut out: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
        for e in &self.events {
            if e.cat == Phase::Kernel.name() {
                let agg = out.entry(e.name).or_default();
                agg.count += 1;
                agg.total_ms += e.dur_us / 1e3;
            }
        }
        out
    }

    /// Total measured step time (ms).
    pub fn step_total_ms(&self) -> f64 {
        self.events.iter().filter(|e| e.cat == Phase::Step.name()).map(|e| e.dur_us / 1e3).sum()
    }

    /// Fraction of step wall time covered by work phases that are
    /// direct children of a step span. 1.0 when no steps were recorded
    /// (nothing to cover).
    pub fn step_coverage(&self) -> f64 {
        let step_ms = self.step_total_ms();
        if step_ms <= 0.0 {
            return 1.0;
        }
        let work: Vec<&'static str> = Phase::WORK.iter().map(|p| p.name()).collect();
        let covered: f64 = self
            .events
            .iter()
            .filter(|e| e.parent == Some(Phase::Step.name()) && work.contains(&e.cat))
            .map(|e| e.dur_us / 1e3)
            .sum();
        (covered / step_ms).min(1.0)
    }

    /// Fraction of halo latency hidden behind interior compute:
    /// `halo_overlap_us / (halo_overlap_us + halo_wait_us)`. 0.0 when
    /// the overlapped exchange path never ran (both counters zero).
    pub fn overlap_ratio(&self) -> f64 {
        let get = |name: &str| {
            self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v as f64).unwrap_or(0.0)
        };
        let hidden = get("halo_overlap_us");
        let wait = get("halo_wait_us");
        if hidden + wait <= 0.0 {
            return 0.0;
        }
        hidden / (hidden + wait)
    }

    fn agg_value(aggs: &BTreeMap<&'static str, PhaseAgg>, with_mean: bool) -> Value {
        Value::Obj(
            aggs.iter()
                .map(|(name, a)| {
                    let mut m = vec![
                        ("count".to_string(), Value::Num(a.count as f64)),
                        ("total_ms".to_string(), Value::Num(a.total_ms)),
                    ];
                    if with_mean && a.count > 0 {
                        m.push(("mean_ms".to_string(), Value::Num(a.total_ms / a.count as f64)));
                    }
                    (name.to_string(), Value::Obj(m))
                })
                .collect(),
        )
    }

    /// Build the full trace document. `extra` sections (e.g. `device`
    /// counter snapshots, `model` roofline predictions) are appended to
    /// the summary verbatim.
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                let mut m = vec![
                    ("name", Value::Str(e.name.to_string())),
                    ("cat", Value::Str(e.cat.to_string())),
                    ("ph", Value::Str("X".to_string())),
                    ("ts", Value::Num(e.ts_us)),
                    ("dur", Value::Num(e.dur_us)),
                    ("pid", Value::Num(1.0)),
                    ("tid", Value::Num(e.tid as f64)),
                ];
                if let Some(p) = e.parent {
                    m.push(("args", Value::obj(vec![("parent", Value::Str(p.to_string()))])));
                }
                Value::obj(m)
            })
            .collect();
        let steps = self.counters.iter().find(|(n, _)| *n == "steps").map(|(_, v)| *v).unwrap_or(0);
        let mut summary = vec![
            ("schema", Value::Str(TRACE_SCHEMA.to_string())),
            ("wall_ms", Value::Num(self.wall_ms)),
            ("steps", Value::Num(steps as f64)),
            ("step_total_ms", Value::Num(self.step_total_ms())),
            ("step_coverage", Value::Num(self.step_coverage())),
            ("overlap_ratio", Value::Num(self.overlap_ratio())),
            ("phases", Self::agg_value(&self.phase_totals(), true)),
            ("kernels", Self::agg_value(&self.kernel_totals(), false)),
            (
                "counters",
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.to_string(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ];
        for (k, v) in extra {
            summary.push((k, v.clone()));
        }
        Value::obj(vec![("traceEvents", Value::Arr(events)), ("summary", Value::obj(summary))])
    }

    /// Render the trace document as JSON text.
    pub fn render(&self, extra: &[(&str, Value)]) -> String {
        self.to_value(extra).to_string()
    }

    /// Write the trace document to `path` (creating parent directories).
    pub fn write_to(&self, path: &Path, extra: &[(&str, Value)]) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render(extra).as_bytes())?;
        f.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_trace;

    fn synthetic() -> Trace {
        // A known two-step workload: each step has 80 µs of o2p, 300 µs
        // of rhs, 40 µs of axpy, 10 µs of p2o under a 450 µs step, plus
        // a kernel child and an uncovered top-level checkpoint.
        let mut events = Vec::new();
        for s in 0..2u64 {
            let t0 = s as f64 * 1000.0;
            events.push(TraceEvent {
                name: "octant-to-patch",
                cat: "kernel",
                parent: Some("o2p"),
                ts_us: t0 + 1.0,
                dur_us: 70.0,
                tid: 0,
            });
            for (name, ts, dur) in [
                ("o2p", 0.0, 80.0),
                ("rhs", 80.0, 300.0),
                ("axpy", 380.0, 40.0),
                ("p2o", 420.0, 10.0),
            ] {
                events.push(TraceEvent {
                    name,
                    cat: name,
                    parent: Some("step"),
                    ts_us: t0 + ts,
                    dur_us: dur,
                    tid: 0,
                });
            }
            events.push(TraceEvent {
                name: "step",
                cat: "step",
                parent: None,
                ts_us: t0,
                dur_us: 450.0,
                tid: 0,
            });
        }
        events.push(TraceEvent {
            name: "checkpoint",
            cat: "checkpoint",
            parent: None,
            ts_us: 2000.0,
            dur_us: 100.0,
            tid: 0,
        });
        Trace { events, counters: vec![("steps", 2), ("retransmits", 0)], wall_ms: 2.2 }
    }

    #[test]
    fn aggregation_and_coverage_on_synthetic_workload() {
        let t = synthetic();
        let phases = t.phase_totals();
        assert_eq!(phases["rhs"], PhaseAgg { count: 2, total_ms: 0.6 });
        assert_eq!(phases["step"].count, 2);
        assert_eq!(t.kernel_totals()["octant-to-patch"].count, 2);
        // Covered: (80+300+40+10)*2 = 860 of 900 µs of step time. The
        // kernel child must NOT double-count (its parent is o2p, and
        // its cat is "kernel"), nor the top-level checkpoint.
        let expect = 860.0 / 900.0;
        assert!((t.step_coverage() - expect).abs() < 1e-12, "{}", t.step_coverage());
    }

    #[test]
    fn rendered_trace_validates_and_round_trips() {
        let t = synthetic();
        let extra = [(
            "device",
            Value::obj(vec![("flops", Value::Num(12345.0)), ("launches", Value::Num(6.0))]),
        )];
        let text = t.render(&extra);
        let stats = validate_trace(&text).expect("schema-valid");
        assert_eq!(stats.events, t.events.len());
        assert!((stats.step_coverage - t.step_coverage()).abs() < 1e-12);
        assert!((stats.phase_ms["rhs"] - 0.6).abs() < 1e-12);
        assert_eq!(stats.counters["steps"], 2.0);
        // Extra sections survive verbatim.
        let doc = crate::json::parse(&text).expect("parse");
        let flops = doc.get("summary").unwrap().get("device").unwrap().get("flops").unwrap();
        assert_eq!(flops.as_f64(), Some(12345.0));
    }

    #[test]
    fn overlap_ratio_from_counters() {
        let mut t = synthetic();
        assert_eq!(t.overlap_ratio(), 0.0, "no overlap counters → 0");
        t.counters.push(("halo_overlap_us", 300));
        t.counters.push(("halo_wait_us", 100));
        assert!((t.overlap_ratio() - 0.75).abs() < 1e-12);
        let doc = crate::json::parse(&t.render(&[])).expect("parse");
        let r = doc.get("summary").unwrap().get("overlap_ratio").unwrap().as_f64().unwrap();
        assert!((r - 0.75).abs() < 1e-12);
        let stats = validate_trace(&t.render(&[])).expect("valid");
        assert!((stats.overlap_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_one_without_steps() {
        let t = Trace { events: vec![], counters: vec![], wall_ms: 0.0 };
        assert_eq!(t.step_coverage(), 1.0);
        assert!(validate_trace(&t.render(&[])).is_ok());
    }
}
