//! Validate a gw-obs trace file against the `gw-obs-trace-v1` schema
//! and enforce the step-coverage budget.
//!
//! ```text
//! trace_check <trace.json> [--min-coverage 0.9] [--min-overlap 0.3]
//! ```
//!
//! `--min-overlap` additionally requires the halo overlap ratio
//! (`halo_overlap_us / (halo_overlap_us + halo_wait_us)`) to meet the
//! threshold — the gate for the overlapped-exchange CI smoke.
//!
//! Exit codes: 0 valid (and thresholds met), 1 invalid or under a
//! threshold, 2 usage error.

use gw_obs::json::validate_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut min_coverage = 0.0f64;
    let mut min_overlap: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--min-coverage" => {
                let v = args.get(i + 1).and_then(|s| s.parse::<f64>().ok());
                match v {
                    Some(v) if (0.0..=1.0).contains(&v) => min_coverage = v,
                    _ => usage("--min-coverage takes a value in [0, 1]"),
                }
                i += 2;
            }
            "--min-overlap" => {
                let v = args.get(i + 1).and_then(|s| s.parse::<f64>().ok());
                match v {
                    Some(v) if (0.0..=1.0).contains(&v) => min_overlap = Some(v),
                    _ => usage("--min-overlap takes a value in [0, 1]"),
                }
                i += 2;
            }
            a if path.is_none() && !a.starts_with('-') => {
                path = Some(a.to_string());
                i += 1;
            }
            a => usage(&format!("unexpected argument '{a}'")),
        }
    }
    let Some(path) = path else { usage("missing trace file path") };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_trace(&text) {
        Ok(stats) => {
            println!(
                "{path}: {} events, wall {:.1} ms, step coverage {:.1}%, overlap {:.1}%",
                stats.events,
                stats.wall_ms,
                stats.step_coverage * 100.0,
                stats.overlap_ratio() * 100.0
            );
            if stats.step_coverage < min_coverage {
                eprintln!(
                    "trace_check: step coverage {:.3} below required {min_coverage:.3} — \
                     the work phases do not account for the measured step wall time",
                    stats.step_coverage
                );
                std::process::exit(1);
            }
            if let Some(min) = min_overlap {
                let r = stats.overlap_ratio();
                if r < min {
                    eprintln!(
                        "trace_check: halo overlap ratio {r:.3} below required {min:.3} — \
                         interior compute is not hiding enough of the halo exchange"
                    );
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("trace_check: {path}: schema violation: {e}");
            std::process::exit(1);
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "trace_check: {msg}\nusage: trace_check <trace.json> [--min-coverage X] [--min-overlap X]"
    );
    std::process::exit(2);
}
