//! Extraction spheres and mesh-to-sphere interpolation.
//!
//! The paper places several extraction spheres at 50–100 M (Fig. 4); at
//! each timestep the needed fields are interpolated from the AMR grid to
//! the quadrature nodes. Interpolation is tensor-product degree-6
//! Lagrange inside the containing octant (matching the scheme order).

use crate::lebedev::QuadNode;
use gw_mesh::{Field, Mesh};
use gw_stencil::interp::lagrange_weights;
use gw_stencil::patch::{PatchLayout, POINTS_PER_SIDE};

/// An extraction sphere: radius + quadrature nodes.
pub struct ExtractionSphere {
    pub radius: f64,
    pub nodes: Vec<QuadNode>,
    /// Cartesian coordinates of each node (center-origin).
    pub points: Vec<[f64; 3]>,
}

impl ExtractionSphere {
    pub fn new(radius: f64, nodes: Vec<QuadNode>) -> Self {
        assert!(radius > 0.0);
        let points = nodes
            .iter()
            .map(|n| [radius * n.dir[0], radius * n.dir[1], radius * n.dir[2]])
            .collect();
        Self { radius, nodes, points }
    }

    /// Interpolate variable `var` of `field` onto every node.
    pub fn sample(&self, mesh: &Mesh, field: &Field, var: usize) -> Vec<f64> {
        self.points.iter().map(|&p| interpolate(mesh, field, var, p)).collect()
    }
}

/// Degree-6 Lagrange interpolation of one variable at a physical point.
///
/// Panics if the point is outside the mesh domain.
pub fn interpolate(mesh: &Mesh, field: &Field, var: usize, p: [f64; 3]) -> f64 {
    let oct = mesh.locate(p).unwrap_or_else(|| panic!("point {p:?} outside mesh domain"));
    let info = &mesh.octants[oct];
    let nodes: Vec<f64> = (0..POINTS_PER_SIDE).map(|i| i as f64).collect();
    let mut w = [[0.0f64; POINTS_PER_SIDE]; 3];
    for axis in 0..3 {
        let xi = ((p[axis] - info.origin[axis]) / info.h).clamp(0.0, 6.0);
        w[axis].copy_from_slice(&lagrange_weights(&nodes, xi));
    }
    let block = field.block(var, oct);
    let l = PatchLayout::octant();
    let mut acc = 0.0;
    for k in 0..POINTS_PER_SIDE {
        if w[2][k] == 0.0 {
            continue;
        }
        for j in 0..POINTS_PER_SIDE {
            let wjk = w[1][j] * w[2][k];
            if wjk == 0.0 {
                continue;
            }
            let row = l.idx(0, j, k);
            let mut s = 0.0;
            for i in 0..POINTS_PER_SIDE {
                s += w[0][i] * block[row + i];
            }
            acc += wjk * s;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lebedev::lebedev_rule;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::centered_cube(10.0), &t)
    }

    fn poly_field(mesh: &Mesh, f: impl Fn([f64; 3]) -> f64) -> Field {
        let mut fld = Field::zeros(1, mesh.n_octants());
        for oct in 0..mesh.n_octants() {
            let l = PatchLayout::octant();
            let vals: Vec<f64> =
                l.iter().map(|(i, j, k)| f(mesh.point_coords(oct, i, j, k))).collect();
            fld.block_mut(0, oct).copy_from_slice(&vals);
        }
        fld
    }

    #[test]
    fn interpolation_exact_on_degree6_polynomials() {
        let mesh = adaptive_mesh();
        let f = |p: [f64; 3]| {
            0.3 + p[0] - 2.0 * p[1] * p[2]
                + 0.05 * p[0].powi(3) * p[1].powi(2)
                + 0.001 * p[2].powi(6)
        };
        let fld = poly_field(&mesh, f);
        for p in [[0.3, -4.0, 2.2], [7.7, 7.7, 7.7], [-9.0, 3.0, -1.0], [0.01, 0.01, 0.01]] {
            let got = interpolate(&mesh, &fld, 0, p);
            let expect = f(p);
            assert!((got - expect).abs() < 1e-8 * (1.0 + expect.abs()), "{p:?}: {got} vs {expect}");
        }
    }

    #[test]
    fn interpolation_at_grid_points_is_identity() {
        let mesh = adaptive_mesh();
        let f = |p: [f64; 3]| (0.3 * p[0]).sin() + (0.2 * p[1] * p[2]).cos();
        let fld = poly_field(&mesh, f);
        // Sample interior grid points (not on octant boundaries) of a few
        // octants.
        for oct in [0usize, mesh.n_octants() / 2] {
            let p = mesh.point_coords(oct, 3, 2, 4);
            let got = interpolate(&mesh, &fld, 0, p);
            assert!((got - f(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn sphere_sampling_smooth_field() {
        let mesh = adaptive_mesh();
        let f = |p: [f64; 3]| p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
        let fld = poly_field(&mesh, f);
        let sph = ExtractionSphere::new(5.0, lebedev_rule(7));
        let vals = sph.sample(&mesh, &fld, 0);
        // r² is constant on the sphere.
        for v in vals {
            assert!((v - 25.0).abs() < 1e-8, "{v}");
        }
    }

    #[test]
    fn sphere_mode_content() {
        // A field equal to Re Y₂₂-like angular pattern integrates to zero
        // against Y₀₀ but not against itself.
        let mesh = adaptive_mesh();
        let fld = poly_field(&mesh, |p| {
            let r2 = p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
            if r2 < 1e-12 {
                return 0.0;
            }
            (p[0] * p[0] - p[1] * p[1]) / r2 // ∝ sin²θ cos 2φ
        });
        let sph = ExtractionSphere::new(6.0, crate::lebedev::product_rule(8, 16));
        let vals = sph.sample(&mesh, &fld, 0);
        let mean: f64 = sph.nodes.iter().zip(vals.iter()).map(|(n, v)| n.weight * v).sum::<f64>();
        assert!(mean.abs() < 1e-8, "monopole of quadrupole pattern: {mean}");
        let power: f64 =
            sph.nodes.iter().zip(vals.iter()).map(|(n, v)| n.weight * v * v).sum::<f64>();
        assert!(power > 0.1);
    }
}
