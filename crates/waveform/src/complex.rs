//! Minimal complex arithmetic (kept local to avoid an external dep).

/// A complex number.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let p = a * b;
        assert!((p.re - (1.0 * -3.0 - 2.0 * 0.5)).abs() < 1e-15);
        assert!((p.im - (1.0 * 0.5 + 2.0 * -3.0)).abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn conjugate_product_is_norm_squared() {
        let z = Complex::new(3.0, -4.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
        assert_eq!(z.norm(), 5.0);
    }
}
