//! Waveform time series.

use crate::complex::Complex;

/// A complex time series (one (l, m) mode at one extraction radius).
#[derive(Clone, Debug, Default)]
pub struct WaveformSeries {
    pub times: Vec<f64>,
    pub values: Vec<Complex>,
}

impl WaveformSeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, t: f64, v: Complex) {
        if let Some(&last) = self.times.last() {
            assert!(t > last, "time samples must be strictly increasing");
        }
        self.times.push(t);
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Amplitude |h(t)|.
    pub fn amplitude(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.norm()).collect()
    }

    /// Continuous (unwrapped) phase.
    pub fn phase(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        let mut offset = 0.0;
        let mut prev = 0.0f64;
        for (i, v) in self.values.iter().enumerate() {
            let mut p = v.arg();
            if i > 0 {
                while p + offset - prev > std::f64::consts::PI {
                    offset -= 2.0 * std::f64::consts::PI;
                }
                while p + offset - prev < -std::f64::consts::PI {
                    offset += 2.0 * std::f64::consts::PI;
                }
            }
            p += offset;
            out.push(p);
            prev = p;
        }
        out
    }

    /// Second time derivative by centered differences (endpoints dropped).
    pub fn second_derivative(&self) -> WaveformSeries {
        let n = self.len();
        let mut out = WaveformSeries::new();
        if n < 3 {
            return out;
        }
        for i in 1..n - 1 {
            let dt1 = self.times[i] - self.times[i - 1];
            let dt2 = self.times[i + 1] - self.times[i];
            // Nonuniform 3-point second derivative.
            let a = 2.0 / (dt1 * (dt1 + dt2));
            let b = -2.0 / (dt1 * dt2);
            let c = 2.0 / (dt2 * (dt1 + dt2));
            let v =
                self.values[i - 1].scale(a) + self.values[i].scale(b) + self.values[i + 1].scale(c);
            out.push(self.times[i], v);
        }
        out
    }

    /// Sample by linear interpolation (clamped at the ends).
    pub fn sample(&self, t: f64) -> Complex {
        assert!(!self.is_empty());
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.values.last().unwrap();
        }
        let i = self.times.partition_point(|&x| x < t);
        let (t0, t1) = (self.times[i - 1], self.times[i]);
        let w = (t - t0) / (t1 - t0);
        self.values[i - 1].scale(1.0 - w) + self.values[i].scale(w)
    }

    /// L∞ difference of the real parts against another series over their
    /// common time span (the Fig. 19 metric: |Re ψ₄ − Re ψ₄_ref|).
    pub fn linf_re_diff(&self, other: &WaveformSeries) -> f64 {
        let t0 = self.times[0].max(other.times[0]);
        let t1 = self.times.last().unwrap().min(*other.times.last().unwrap());
        assert!(t1 > t0, "series do not overlap in time");
        let mut m = 0.0f64;
        for (&t, v) in self.times.iter().zip(self.values.iter()) {
            if t < t0 || t > t1 {
                continue;
            }
            m = m.max((v.re - other.sample(t).re).abs());
        }
        m
    }

    /// RMS difference of the real parts over the common span.
    pub fn rms_re_diff(&self, other: &WaveformSeries) -> f64 {
        let t0 = self.times[0].max(other.times[0]);
        let t1 = self.times.last().unwrap().min(*other.times.last().unwrap());
        let mut acc = 0.0;
        let mut n = 0usize;
        for (&t, v) in self.times.iter().zip(self.values.iter()) {
            if t < t0 || t > t1 {
                continue;
            }
            let d = v.re - other.sample(t).re;
            acc += d * d;
            n += 1;
        }
        (acc / n.max(1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirpish(n: usize, dt: f64, f0: f64) -> WaveformSeries {
        let mut s = WaveformSeries::new();
        for i in 0..n {
            let t = i as f64 * dt;
            let phase = 2.0 * std::f64::consts::PI * f0 * t * (1.0 + 0.1 * t);
            s.push(t, Complex::from_polar(1.0 + 0.01 * t, phase));
        }
        s
    }

    #[test]
    fn phase_unwraps_monotonically() {
        let s = chirpish(200, 0.05, 1.0);
        let p = s.phase();
        // A positive-frequency chirp has increasing phase without 2π jumps.
        for w in p.windows(2) {
            let d = w[1] - w[0];
            assert!(d > 0.0 && d < std::f64::consts::PI, "jump {d}");
        }
    }

    #[test]
    fn second_derivative_of_quadratic() {
        let mut s = WaveformSeries::new();
        for i in 0..20 {
            let t = i as f64 * 0.1;
            s.push(t, Complex::new(3.0 * t * t, -t * t));
        }
        let dd = s.second_derivative();
        for v in &dd.values {
            assert!((v.re - 6.0).abs() < 1e-10);
            assert!((v.im + 2.0).abs() < 1e-10);
        }
        assert_eq!(dd.len(), 18);
    }

    #[test]
    fn sample_interpolates() {
        let mut s = WaveformSeries::new();
        s.push(0.0, Complex::new(0.0, 0.0));
        s.push(1.0, Complex::new(2.0, 4.0));
        let v = s.sample(0.25);
        assert!((v.re - 0.5).abs() < 1e-15);
        assert!((v.im - 1.0).abs() < 1e-15);
        // Clamping.
        assert_eq!(s.sample(-5.0), Complex::new(0.0, 0.0));
        assert_eq!(s.sample(9.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn diff_norms_zero_for_identical() {
        let s = chirpish(100, 0.1, 0.5);
        assert_eq!(s.linf_re_diff(&s), 0.0);
        assert_eq!(s.rms_re_diff(&s), 0.0);
    }

    #[test]
    fn diff_norms_detect_amplitude_error() {
        let a = chirpish(100, 0.1, 0.5);
        let mut b = a.clone();
        for v in b.values.iter_mut() {
            *v = v.scale(1.1);
        }
        assert!(a.linf_re_diff(&b) > 0.05);
        assert!(a.rms_re_diff(&b) > 0.01);
        assert!(a.rms_re_diff(&b) <= a.linf_re_diff(&b));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_nonmonotonic_times() {
        let mut s = WaveformSeries::new();
        s.push(1.0, Complex::ZERO);
        s.push(0.5, Complex::ZERO);
    }
}
