//! Strain-mode extraction and Ψ₄.
//!
//! **Substitution note (DESIGN.md):** the paper computes Ψ₄ from the Weyl
//! tensor. In the wave zone Ψ₄ = ḧ₊ − i ḧ× to leading order in 1/r, so we
//! extract the strain polarizations from the conformal metric on the
//! sphere, decompose into spin-−2 (l, m) modes, and differentiate the
//! recorded mode series twice in time. This preserves everything the
//! paper's accuracy experiments measure (mode time series, their
//! convergence and cross-code agreement) while avoiding a full
//! electric/magnetic Weyl decomposition.
//!
//! Strain from the metric: with γ̃_ij = δ_ij + h_ij (wave zone), in the
//! orthonormal transverse frame (ê_θ, ê_φ) at each node,
//! `h₊ = ½ (h_θθ − h_φφ)` and `h× = h_θφ`.

use crate::complex::Complex;
use crate::lebedev::QuadNode;
use crate::series::WaveformSeries;
use crate::sphere::ExtractionSphere;
use crate::swsh::swsh;
use gw_expr::symbols::var;
use gw_mesh::{Field, Mesh};

/// Extracts spin-−2 (l, m) modes of the strain `H = h₊ − i h×` on one
/// sphere and records their time series.
pub struct ModeExtractor {
    pub sphere: ExtractionSphere,
    /// Modes to project, e.g. [(2,2), (2,-2), (3,2)].
    pub modes: Vec<(i64, i64)>,
    /// One series per mode.
    pub series: Vec<WaveformSeries>,
    /// Precomputed conj(₋₂Yₗₘ) at each node for each mode.
    basis: Vec<Vec<Complex>>,
}

impl ModeExtractor {
    pub fn new(sphere: ExtractionSphere, modes: Vec<(i64, i64)>) -> Self {
        let basis = modes
            .iter()
            .map(|&(l, m)| {
                sphere.nodes.iter().map(|n| swsh(-2, l, m, n.theta, n.phi).conj()).collect()
            })
            .collect();
        let series = modes.iter().map(|_| WaveformSeries::new()).collect();
        Self { sphere, modes, series, basis }
    }

    /// Strain polarizations at every node from the mesh fields.
    pub fn strain_at_nodes(&self, mesh: &Mesh, field: &Field) -> Vec<Complex> {
        // Sample the 6 conformal metric components.
        let comps: Vec<Vec<f64>> = [
            var::gt(0, 0),
            var::gt(0, 1),
            var::gt(0, 2),
            var::gt(1, 1),
            var::gt(1, 2),
            var::gt(2, 2),
        ]
        .iter()
        .map(|&v| self.sphere.sample(mesh, field, v))
        .collect();
        self.sphere
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let h = [
                    [comps[0][i] - 1.0, comps[1][i], comps[2][i]],
                    [comps[1][i], comps[3][i] - 1.0, comps[4][i]],
                    [comps[2][i], comps[4][i], comps[5][i] - 1.0],
                ];
                strain_from_h(&h, n)
            })
            .collect()
    }

    /// Project strains onto the mode basis and record at time `t`.
    pub fn record(&mut self, t: f64, mesh: &Mesh, field: &Field) {
        let strains = self.strain_at_nodes(mesh, field);
        for (mi, basis) in self.basis.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for ((s, y), n) in strains.iter().zip(basis.iter()).zip(self.sphere.nodes.iter()) {
                acc += (*s * *y).scale(n.weight);
            }
            self.series[mi].push(t, acc);
        }
    }

    /// The recorded series of a mode.
    pub fn mode(&self, l: i64, m: i64) -> Option<&WaveformSeries> {
        self.modes.iter().position(|&lm| lm == (l, m)).map(|i| &self.series[i])
    }
}

/// `H = h₊ − i h×` at a node from the Cartesian metric perturbation.
pub fn strain_from_h(h: &[[f64; 3]; 3], n: &QuadNode) -> Complex {
    let (st, ct) = (n.theta.sin(), n.theta.cos());
    let (sp, cp) = (n.phi.sin(), n.phi.cos());
    // Orthonormal transverse basis.
    let eth = [ct * cp, ct * sp, -st];
    let eph = [-sp, cp, 0.0];
    let mut htt = 0.0;
    let mut hpp = 0.0;
    let mut htp = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            htt += eth[i] * h[i][j] * eth[j];
            hpp += eph[i] * h[i][j] * eph[j];
            htp += eth[i] * h[i][j] * eph[j];
        }
    }
    Complex::new(0.5 * (htt - hpp), -htp)
}

/// Ψ₄ mode series from a strain mode series: Ψ₄ ≈ Ḧ (second time
/// derivative of `h₊ − i h×`), wave-zone leading order.
pub fn psi4_from_strain(strain: &WaveformSeries) -> WaveformSeries {
    strain.second_derivative()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lebedev::product_rule;

    #[test]
    fn strain_of_plus_polarized_z_wave() {
        // h_xx = −h_yy = A, wave along z. At the north pole (θ=0, φ=0):
        // ê_θ = x̂, ê_φ = ŷ ⇒ h₊ = A, h× = 0.
        let h = [[0.01, 0.0, 0.0], [0.0, -0.01, 0.0], [0.0, 0.0, 0.0]];
        let n = QuadNode { theta: 1e-9, phi: 0.0, dir: [0.0, 0.0, 1.0], weight: 1.0 };
        let s = strain_from_h(&h, &n);
        assert!((s.re - 0.01).abs() < 1e-10);
        assert!(s.im.abs() < 1e-10);
    }

    #[test]
    fn strain_of_cross_polarized_z_wave() {
        // h_xy = A: at the pole h× = A ⇒ H = −iA.
        let h = [[0.0, 0.01, 0.0], [0.01, 0.0, 0.0], [0.0, 0.0, 0.0]];
        let n = QuadNode { theta: 1e-9, phi: 0.0, dir: [0.0, 0.0, 1.0], weight: 1.0 };
        let s = strain_from_h(&h, &n);
        assert!(s.re.abs() < 1e-10);
        assert!((s.im + 0.01).abs() < 1e-10);
    }

    #[test]
    fn plus_wave_has_pure_m_pm2_content() {
        // A uniform h₊ pattern h_xx = −h_yy = A over the sphere contains
        // only m = ±2 spin−2 modes (l = 2 dominant).
        let rule = product_rule(10, 20);
        let h = [[1.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, 0.0]];
        let project = |l: i64, m: i64| -> Complex {
            let mut acc = Complex::ZERO;
            for n in &rule {
                let s = strain_from_h(&h, n);
                let y = swsh(-2, l, m, n.theta, n.phi).conj();
                acc += (s * y).scale(n.weight);
            }
            acc
        };
        let c22 = project(2, 2);
        let c2m2 = project(2, -2);
        let c20 = project(2, 0);
        let c21 = project(2, 1);
        assert!(c22.norm() > 0.5, "22 mode must be strong: {c22:?}");
        assert!((c22.norm() - c2m2.norm()).abs() < 1e-10);
        assert!(c20.norm() < 1e-10);
        assert!(c21.norm() < 1e-10);
    }

    #[test]
    fn psi4_of_oscillating_strain() {
        // H(t) = e^{iωt} ⇒ Ψ₄ = −ω² e^{iωt}.
        let omega = 2.0;
        let mut s = WaveformSeries::new();
        for i in 0..200 {
            let t = i as f64 * 0.01;
            s.push(t, Complex::from_polar(1.0, omega * t));
        }
        let p4 = psi4_from_strain(&s);
        for (t, v) in p4.times.iter().zip(p4.values.iter()) {
            let expect = Complex::from_polar(omega * omega, omega * t + std::f64::consts::PI);
            assert!((v.re - expect.re).abs() < 1e-3, "t={t}");
            assert!((v.im - expect.im).abs() < 1e-3);
        }
    }
}
