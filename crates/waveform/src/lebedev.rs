//! Quadrature on the unit sphere.
//!
//! The paper integrates mode projections with Lebedev quadrature
//! (Lebedev 1977). We provide the classical low-order Lebedev rules with
//! exact rational weights (octahedrally symmetric; orders 3, 5, 7) and a
//! Gauss–Legendre × uniform-φ product rule for arbitrary band limits
//! (used when the integrand has l > 3 content; the mode projections in
//! `extract` default to it).
//!
//! All weights are normalized so Σ wᵢ = 4π (i.e. ∫ dΩ of 1 is exact).

use std::f64::consts::PI;

/// A quadrature node on S².
#[derive(Clone, Copy, Debug)]
pub struct QuadNode {
    pub theta: f64,
    pub phi: f64,
    /// Unit direction (redundant with θ, φ; avoids re-deriving).
    pub dir: [f64; 3],
    pub weight: f64,
}

fn node_from_dir(d: [f64; 3], weight: f64) -> QuadNode {
    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    let dir = [d[0] / r, d[1] / r, d[2] / r];
    QuadNode { theta: dir[2].clamp(-1.0, 1.0).acos(), phi: dir[1].atan2(dir[0]), dir, weight }
}

/// The 6 octahedron vertices.
fn octahedron() -> Vec<[f64; 3]> {
    vec![
        [1.0, 0.0, 0.0],
        [-1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, -1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 0.0, -1.0],
    ]
}

/// The 12 edge midpoints (±1, ±1, 0)/√2 and permutations.
fn edge_midpoints() -> Vec<[f64; 3]> {
    let mut v = Vec::with_capacity(12);
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
        for sa in [1.0f64, -1.0] {
            for sb in [1.0f64, -1.0] {
                let mut d = [0.0; 3];
                d[a] = sa;
                d[b] = sb;
                v.push(d);
            }
        }
    }
    v
}

/// The 8 cube corners (±1, ±1, ±1)/√3.
fn cube_corners() -> Vec<[f64; 3]> {
    let mut v = Vec::with_capacity(8);
    for sx in [1.0f64, -1.0] {
        for sy in [1.0f64, -1.0] {
            for sz in [1.0f64, -1.0] {
                v.push([sx, sy, sz]);
            }
        }
    }
    v
}

/// A Lebedev rule exact for spherical polynomials up to the given degree
/// (3, 5 or 7 — the classical 6-, 14- and 26-point rules).
pub fn lebedev_rule(degree: usize) -> Vec<QuadNode> {
    let four_pi = 4.0 * PI;
    match degree {
        0..=3 => octahedron().into_iter().map(|d| node_from_dir(d, four_pi / 6.0)).collect(),
        4..=5 => {
            // 14 points: vertices w = 1/15, corners w = 3/40.
            let mut nodes: Vec<QuadNode> =
                octahedron().into_iter().map(|d| node_from_dir(d, four_pi / 15.0)).collect();
            nodes
                .extend(cube_corners().into_iter().map(|d| node_from_dir(d, four_pi * 3.0 / 40.0)));
            nodes
        }
        6..=7 => {
            // 26 points: vertices 1/21, edge midpoints 4/105, corners 27/840.
            let mut nodes: Vec<QuadNode> =
                octahedron().into_iter().map(|d| node_from_dir(d, four_pi / 21.0)).collect();
            nodes.extend(
                edge_midpoints().into_iter().map(|d| node_from_dir(d, four_pi * 4.0 / 105.0)),
            );
            nodes.extend(
                cube_corners().into_iter().map(|d| node_from_dir(d, four_pi * 27.0 / 840.0)),
            );
            nodes
        }
        _ => panic!("Lebedev rules implemented for degree <= 7; use product_rule"),
    }
}

/// Gauss–Legendre nodes/weights on [-1, 1] by Newton iteration.
pub fn gauss_legendre(n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 1);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Initial guess (Chebyshev-like).
        let mut x = (PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            // Evaluate P_n and P_n' by recurrence.
            let (mut p0, mut p1) = (1.0f64, x);
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (mut p0, mut p1) = (1.0f64, x);
        for k in 2..=n {
            let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
            p0 = p1;
            p1 = p2;
        }
        let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        out.push((x, w));
    }
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    out
}

/// Product rule: `n_theta` Gauss–Legendre nodes in cos θ × `n_phi`
/// uniform nodes in φ. Exact for spherical harmonics with
/// l ≤ 2 n_theta − 1 and |m| < n_phi/…(trapezoid exactness).
pub fn product_rule(n_theta: usize, n_phi: usize) -> Vec<QuadNode> {
    let gl = gauss_legendre(n_theta);
    let dphi = 2.0 * PI / n_phi as f64;
    let mut out = Vec::with_capacity(n_theta * n_phi);
    for &(x, w) in &gl {
        let theta = x.clamp(-1.0, 1.0).acos();
        let st = theta.sin();
        for j in 0..n_phi {
            let phi = j as f64 * dphi;
            out.push(QuadNode {
                theta,
                phi,
                dir: [st * phi.cos(), st * phi.sin(), x],
                weight: w * dphi,
            });
        }
    }
    out
}

/// Integrate a scalar function over S² with the given rule.
pub fn integrate(nodes: &[QuadNode], mut f: impl FnMut(&QuadNode) -> f64) -> f64 {
    nodes.iter().map(|n| n.weight * f(n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_exactness(nodes: &[QuadNode], degree: usize) {
        // ∫ x^a y^b z^c dΩ closed forms: zero unless all even; else
        // 4π (a−1)!!(b−1)!!(c−1)!!/(a+b+c+1)!!.
        fn dfact(n: i64) -> f64 {
            if n <= 0 {
                1.0
            } else {
                (n as f64) * dfact(n - 2)
            }
        }
        for a in 0..=degree {
            for b in 0..=(degree - a) {
                for c in 0..=(degree - a - b) {
                    let got = integrate(nodes, |n| {
                        n.dir[0].powi(a as i32) * n.dir[1].powi(b as i32) * n.dir[2].powi(c as i32)
                    });
                    let expect = if a % 2 == 1 || b % 2 == 1 || c % 2 == 1 {
                        0.0
                    } else {
                        4.0 * PI * dfact(a as i64 - 1) * dfact(b as i64 - 1) * dfact(c as i64 - 1)
                            / dfact((a + b + c) as i64 + 1)
                    };
                    assert!((got - expect).abs() < 1e-12, "x^{a} y^{b} z^{c}: {got} vs {expect}");
                }
            }
        }
    }

    #[test]
    fn lebedev_6_exact_to_degree_3() {
        let r = lebedev_rule(3);
        assert_eq!(r.len(), 6);
        poly_exactness(&r, 3);
    }

    #[test]
    fn lebedev_14_exact_to_degree_5() {
        let r = lebedev_rule(5);
        assert_eq!(r.len(), 14);
        poly_exactness(&r, 5);
    }

    #[test]
    fn lebedev_26_exact_to_degree_7() {
        let r = lebedev_rule(7);
        assert_eq!(r.len(), 26);
        poly_exactness(&r, 7);
    }

    #[test]
    fn weights_sum_to_sphere_area() {
        for deg in [3, 5, 7] {
            let s: f64 = lebedev_rule(deg).iter().map(|n| n.weight).sum();
            assert!((s - 4.0 * PI).abs() < 1e-12);
        }
        let s: f64 = product_rule(8, 16).iter().map(|n| n.weight).sum();
        assert!((s - 4.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_nodes_match_known_values() {
        let gl2 = gauss_legendre(2);
        assert!((gl2[0].0 + 1.0 / 3f64.sqrt()).abs() < 1e-14);
        assert!((gl2[1].0 - 1.0 / 3f64.sqrt()).abs() < 1e-14);
        assert!((gl2[0].1 - 1.0).abs() < 1e-14);
        let gl3 = gauss_legendre(3);
        assert!(gl3[1].0.abs() < 1e-14);
        assert!((gl3[1].1 - 8.0 / 9.0).abs() < 1e-14);
    }

    #[test]
    fn product_rule_exact_for_high_degree() {
        poly_exactness(&product_rule(8, 17), 12);
    }

    #[test]
    fn node_angles_consistent_with_directions() {
        for n in lebedev_rule(7) {
            let d = [n.theta.sin() * n.phi.cos(), n.theta.sin() * n.phi.sin(), n.theta.cos()];
            for (a, b) in d.iter().zip(&n.dir) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
