//! Quadrupole inspiral–merger–ringdown toy waveform.
//!
//! Generates physically-shaped `h₂₂(t)` for a binary of mass ratio `q`:
//! Newtonian quadrupole chirp (frequency and amplitude from the
//! quadrupole-decay separation evolution) smoothly matched to a damped
//! ringdown sinusoid at merger. This supplies the "q = 1 / q = 2
//! waveform" shapes for the Fig. 21 substitution experiments, and the
//! time-dependent source for the wave-propagation examples.

use crate::complex::Complex;
use crate::series::WaveformSeries;

/// IMR toy-model parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChirpModel {
    /// Mass ratio q = m1/m2 ≥ 1 (total mass 1).
    pub q: f64,
    /// Initial separation (geometric units).
    pub d0: f64,
    /// Extraction distance scaling (amplitude ∝ 1/r).
    pub r_extract: f64,
    /// Ringdown quality factor.
    pub q_ring: f64,
    /// Ringdown frequency (≈ 0.5/M for the fundamental l=2 QNM of the
    /// remnant, weakly q-dependent here).
    pub f_ring: f64,
}

impl ChirpModel {
    pub fn new(q: f64, d0: f64) -> Self {
        assert!(q >= 1.0 && d0 > 2.0);
        Self { q, d0, r_extract: 1.0, q_ring: 3.0, f_ring: 0.08 }
    }

    fn masses(&self) -> (f64, f64, f64) {
        let m1 = self.q / (1.0 + self.q);
        let m2 = 1.0 / (1.0 + self.q);
        (m1, m2, m1 * m2)
    }

    /// Coordinate separation at time t under quadrupole decay:
    /// d(t) = d0 (1 − t/t_m)^{1/4}.
    pub fn separation(&self, t: f64) -> f64 {
        let tm = self.merger_time();
        if t >= tm {
            return 0.0;
        }
        self.d0 * (1.0 - t / tm).powf(0.25)
    }

    /// Quadrupole merger time 5 d₀⁴/(256 μ M³) with M = 1.
    pub fn merger_time(&self) -> f64 {
        let (_, _, mu) = self.masses();
        5.0 / 256.0 * self.d0.powi(4) / mu
    }

    /// Orbital angular frequency at separation d (Kepler, M = 1).
    pub fn orbital_omega(&self, d: f64) -> f64 {
        d.powf(-1.5)
    }

    /// Complex strain h₂₂ at time t.
    pub fn h22(&self, t: f64) -> Complex {
        let tm = self.merger_time();
        let (_, _, mu) = self.masses();
        // Cap the inspiral at the ISCO-ish separation where the ringdown
        // takes over.
        let d_cut = 3.0;
        let t_cut = tm * (1.0 - (d_cut / self.d0).powi(4));
        if t < t_cut {
            let d = self.separation(t);
            let omega_gw = 2.0 * self.orbital_omega(d);
            // GW phase = ∫ ω dt; closed form for d(t) ∝ (1−t/tm)^{1/4}:
            // Φ(t) = 2·(8 tm/5) d0^{-3/2} [1 − (1−t/tm)^{5/8}].
            let phase = 2.0
                * (8.0 * tm / 5.0)
                * self.d0.powf(-1.5)
                * (1.0 - (1.0 - t / tm).powf(5.0 / 8.0));
            let amp = 4.0 * mu / (self.r_extract * d);
            let _ = omega_gw;
            Complex::from_polar(amp, phase)
        } else {
            // Ringdown matched in amplitude and phase at t_cut.
            let d = d_cut;
            let omega_gw = 2.0 * self.orbital_omega(d);
            let phase_cut = 2.0
                * (8.0 * tm / 5.0)
                * self.d0.powf(-1.5)
                * (1.0 - (1.0 - t_cut / tm).powf(5.0 / 8.0));
            let amp_cut = 4.0 * mu / (self.r_extract * d);
            let w_ring = 2.0 * std::f64::consts::PI * self.f_ring;
            let tau = self.q_ring / w_ring;
            let dt = t - t_cut;
            // Blend the frequency from ω_gw to ω_ring over ~tau.
            let blend = 1.0 - (-dt / tau).exp();
            let omega = omega_gw * (1.0 - blend) + w_ring * blend;
            Complex::from_polar(amp_cut * (-dt / tau).exp(), phase_cut + omega * dt)
        }
    }

    /// Sample the full waveform at uniform spacing `dt` until the
    /// amplitude decays below `floor` × peak (after merger).
    pub fn waveform(&self, dt: f64, floor: f64) -> WaveformSeries {
        let mut s = WaveformSeries::new();
        let tm = self.merger_time();
        let mut t = 0.0;
        let mut peak = 0.0f64;
        loop {
            let v = self.h22(t);
            peak = peak.max(v.norm());
            s.push(t, v);
            if t > tm && v.norm() < floor * peak {
                break;
            }
            t += dt;
            if t > 3.0 * tm + 200.0 {
                break; // safety
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merger_time_matches_quadrupole_formula() {
        let m = ChirpModel::new(1.0, 8.0);
        // μ = 1/4: t = 5·4096/(256·0.25) = 320.
        assert!((m.merger_time() - 320.0).abs() < 1e-9);
        // Higher q merges later (smaller μ).
        assert!(ChirpModel::new(4.0, 8.0).merger_time() > m.merger_time());
    }

    #[test]
    fn frequency_chirps_upward() {
        let m = ChirpModel::new(1.0, 10.0);
        let s = m.waveform(0.5, 0.01);
        let phase = s.phase();
        // Instantaneous frequency increases during inspiral.
        let tm = m.merger_time();
        let n = s.times.iter().position(|&t| t > 0.95 * tm).unwrap();
        let f_early = (phase[20] - phase[10]) / (s.times[20] - s.times[10]);
        let f_late = (phase[n] - phase[n - 10]) / (s.times[n] - s.times[n - 10]);
        assert!(f_late > 2.0 * f_early, "chirp: {f_early} -> {f_late}");
    }

    #[test]
    fn amplitude_grows_then_rings_down() {
        let m = ChirpModel::new(2.0, 10.0);
        let s = m.waveform(0.5, 0.005);
        let amp = s.amplitude();
        let peak_idx =
            amp.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(amp[peak_idx] > 2.0 * amp[10], "inspiral must grow");
        // Exponential decay after the peak.
        let last = *amp.last().unwrap();
        assert!(last < 0.02 * amp[peak_idx]);
        // Peak near the merger time.
        let t_peak = s.times[peak_idx];
        let tm = m.merger_time();
        assert!(t_peak > 0.7 * tm && t_peak < 1.2 * tm, "peak at {t_peak}, tm={tm}");
    }

    #[test]
    fn q_dependence_of_amplitude() {
        // Higher q ⇒ smaller μ ⇒ weaker wave.
        let a1 = ChirpModel::new(1.0, 10.0).h22(10.0).norm();
        let a4 = ChirpModel::new(4.0, 10.0).h22(10.0).norm();
        assert!(a1 > a4);
        // Ratio ≈ μ₁/μ₄ = 0.25/0.16.
        assert!((a1 / a4 - 0.25 / 0.16).abs() < 0.05);
    }

    #[test]
    fn waveform_is_smooth_at_match() {
        // No amplitude discontinuity at the inspiral→ringdown handover.
        let m = ChirpModel::new(1.0, 9.0);
        let s = m.waveform(0.1, 0.01);
        let amp = s.amplitude();
        for w in amp.windows(2) {
            let rel = (w[1] - w[0]).abs() / w[0].max(1e-12);
            assert!(rel < 0.2, "amplitude jump {rel}");
        }
    }
}
