//! Spin-weighted spherical harmonics.
//!
//! Goldberg et al. (1967) closed form:
//!
//! ```text
//! ₛYₗₘ(θ,φ) = (−1)^{l+m−s} √((2l+1)/4π) √( (l+m)!(l−m)! / ((l+s)!(l−s)!) )
//!             sin^{2l}(θ/2) e^{imφ}
//!             Σ_r C(l−s, r) C(l+s, r+s−m) (−1)^r cot^{2r+s−m}(θ/2)
//! ```
//!
//! We implement the equivalent Wigner-d form, which is better conditioned
//! at the poles: `ₛYₗₘ = (−1)^s √((2l+1)/4π) d^l_{m,−s}(θ) e^{imφ}` with
//!
//! ```text
//! d^l_{m,k}(θ) = √((l+m)!(l−m)!(l+k)!(l−k)!) ·
//!   Σ_t (−1)^t / (t!(l+m−t)!(l−k−t)!(k−m+t)!) ·
//!   cos(θ/2)^{2l+m−k−2t} sin(θ/2)^{k−m+2t}
//! ```

use crate::complex::Complex;

fn factorial(n: i64) -> f64 {
    assert!(n >= 0);
    (1..=n).map(|k| k as f64).product()
}

/// Binomial-safe Wigner small-d matrix element `d^l_{m,k}(θ)`.
pub fn wigner_d(l: i64, m: i64, k: i64, theta: f64) -> f64 {
    assert!(m.abs() <= l && k.abs() <= l);
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    let pref = (factorial(l + m) * factorial(l - m) * factorial(l + k) * factorial(l - k)).sqrt();
    let t_min = 0.max(m - k);
    let t_max = (l + m).min(l - k);
    let mut sum = 0.0;
    for t in t_min..=t_max {
        let denom =
            factorial(t) * factorial(l + m - t) * factorial(l - k - t) * factorial(k - m + t);
        let sign = if t % 2 == 0 { 1.0 } else { -1.0 };
        let cp = 2 * l + m - k - 2 * t;
        let sp = k - m + 2 * t;
        sum += sign / denom * c.powi(cp as i32) * s.powi(sp as i32);
    }
    pref * sum
}

/// Spin-weighted spherical harmonic `ₛYₗₘ(θ, φ)`.
pub fn swsh(s: i64, l: i64, m: i64, theta: f64, phi: f64) -> Complex {
    assert!(l >= s.abs() && m.abs() <= l, "invalid (s,l,m) = ({s},{l},{m})");
    let sign = if s % 2 == 0 { 1.0 } else { -1.0 };
    let norm = ((2 * l + 1) as f64 / (4.0 * std::f64::consts::PI)).sqrt();
    let d = wigner_d(l, m, -s, theta);
    Complex::from_polar(1.0, m as f64 * phi).scale(sign * norm * d)
}

/// Ordinary spherical harmonic `Yₗₘ` (spin 0), for tests and scalars.
pub fn ylm(l: i64, m: i64, theta: f64, phi: f64) -> Complex {
    swsh(0, l, m, theta, phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn y00_is_constant() {
        let v = ylm(0, 0, 1.234, 2.345);
        assert!((v.re - 0.5 / PI.sqrt()).abs() < 1e-14);
        assert!(v.im.abs() < 1e-14);
    }

    #[test]
    fn y10_matches_closed_form() {
        for theta in [0.3, 1.2, 2.7] {
            let v = ylm(1, 0, theta, 0.0);
            let expect = (3.0 / (4.0 * PI)).sqrt() * theta.cos();
            assert!((v.re - expect).abs() < 1e-13, "θ={theta}");
        }
    }

    #[test]
    fn y22_matches_closed_form() {
        for (theta, phi) in [(0.7, 0.2), (1.5, 2.0), (2.5, 4.5)] {
            let v = ylm(2, 2, theta, phi);
            let amp = 0.25 * (15.0 / (2.0 * PI)).sqrt() * theta.sin().powi(2);
            let expect = Complex::from_polar(amp, 2.0 * phi);
            assert!((v.re - expect.re).abs() < 1e-13);
            assert!((v.im - expect.im).abs() < 1e-13);
        }
    }

    #[test]
    fn spin_m2_y22_matches_closed_form() {
        // ₋₂Y₂₂ = √(5/64π) (1 + cosθ)² e^{2iφ}.
        for (theta, phi) in [(0.4, 1.0), (1.3, 0.3), (2.9, 5.0)] {
            let v = swsh(-2, 2, 2, theta, phi);
            let amp = (5.0 / (64.0 * PI)).sqrt() * (1.0 + theta.cos()).powi(2);
            let expect = Complex::from_polar(amp, 2.0 * phi);
            assert!((v.re - expect.re).abs() < 1e-12, "θ={theta} φ={phi}: {v:?} vs {expect:?}");
            assert!((v.im - expect.im).abs() < 1e-12);
        }
    }

    #[test]
    fn spin_m2_y2m2_matches_closed_form() {
        // ₋₂Y₂₋₂ = √(5/64π) (1 − cosθ)² e^{−2iφ}.
        for (theta, phi) in [(0.4, 1.0), (2.0, 0.7)] {
            let v = swsh(-2, 2, -2, theta, phi);
            let amp = (5.0 / (64.0 * PI)).sqrt() * (1.0 - theta.cos()).powi(2);
            let expect = Complex::from_polar(amp, -2.0 * phi);
            assert!((v.re - expect.re).abs() < 1e-12);
            assert!((v.im - expect.im).abs() < 1e-12);
        }
    }

    #[test]
    fn orthonormality_under_product_quadrature() {
        // ∫ ₛYₗₘ conj(ₛYₗ'ₘ') dΩ = δ_{ll'} δ_{mm'} — the strongest
        // correctness check. Gauss–Legendre × uniform-φ (exact for the
        // band-limits involved).
        let rule = crate::lebedev::product_rule(12, 24);
        let s = -2;
        let modes = [(2i64, 2i64), (2, 0), (2, -1), (3, 2), (3, -3), (4, 0)];
        for &(l1, m1) in &modes {
            for &(l2, m2) in &modes {
                let mut acc = Complex::ZERO;
                for node in &rule {
                    let a = swsh(s, l1, m1, node.theta, node.phi);
                    let b = swsh(s, l2, m2, node.theta, node.phi).conj();
                    acc += (a * b).scale(node.weight);
                }
                let expect = if l1 == l2 && m1 == m2 { 1.0 } else { 0.0 };
                assert!(
                    (acc.re - expect).abs() < 1e-10 && acc.im.abs() < 1e-10,
                    "({l1},{m1})×({l2},{m2}): {acc:?}"
                );
            }
        }
    }

    #[test]
    fn wigner_d_at_zero_is_identity() {
        for l in 0..4 {
            for m in -l..=l {
                for k in -l..=l {
                    let d = wigner_d(l, m, k, 0.0);
                    let expect = if m == k { 1.0 } else { 0.0 };
                    assert!((d - expect).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn conjugation_symmetry() {
        // conj(ₛYₗₘ) = (−1)^{s+m} ₋ₛYₗ₋ₘ.
        let (s, l, m) = (-2i64, 3i64, 1i64);
        for (theta, phi) in [(0.9, 0.4), (2.2, 3.3)] {
            let a = swsh(s, l, m, theta, phi).conj();
            let b = swsh(-s, l, -m, theta, phi);
            let sign = if (s + m) % 2 == 0 { 1.0 } else { -1.0 };
            assert!((a.re - sign * b.re).abs() < 1e-12);
            assert!((a.im - sign * b.im).abs() < 1e-12);
        }
    }
}
