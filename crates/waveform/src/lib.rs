//! Gravitational-wave extraction.
//!
//! The paper extracts the Penrose scalar Ψ₄ on spheres at 50–100 M,
//! expanded in spin-weight −2 spherical harmonics with Lebedev quadrature
//! (section III-A, Fig. 4). This crate supplies:
//!
//! * [`complex`] — a minimal complex type (no external deps).
//! * [`swsh`] — spin-weighted spherical harmonics `ₛYₗₘ` (general s, l, m
//!   via the Goldberg sum), validated against closed forms and checked
//!   orthonormal under quadrature.
//! * [`lebedev`] — Lebedev quadrature rules on S² (orders 3/5/7 with
//!   exact rational weights) plus a Gauss–Legendre × uniform-φ product
//!   rule for arbitrary-order integration.
//! * [`sphere`] — extraction spheres: quadrature nodes at radius R,
//!   6th-order Lagrange interpolation of mesh fields onto the nodes.
//! * [`extract`] — strain-mode extraction: h₊, h× in the transverse
//!   orthonormal frame, (l, m) mode decomposition, and Ψ₄ ≈ ḧ₊ − i ḧ×
//!   by time differentiation of the recorded series (wave-zone
//!   equivalence; the substitution is documented in DESIGN.md).
//! * [`series`] — waveform time series: amplitude, phase, alignment and
//!   difference norms (the Fig. 19/21 comparisons).
//! * [`chirp`] — a quadrupole-driven inspiral–merger–ringdown toy model
//!   generating physically-shaped h(t) for the propagation experiments.

pub mod chirp;
pub mod complex;
pub mod extract;
pub mod lebedev;
pub mod series;
pub mod sphere;
pub mod swsh;
pub mod weyl;

pub use complex::Complex;
pub use extract::{psi4_from_strain, ModeExtractor};
pub use lebedev::{lebedev_rule, product_rule, QuadNode};
pub use series::WaveformSeries;
pub use sphere::ExtractionSphere;
pub use swsh::swsh;
pub use weyl::{psi4_point, Psi4Extractor};
