//! Ψ₄ from the electric/magnetic parts of the Weyl tensor.
//!
//! This is the paper-faithful extraction (section III-A references the
//! standard construction, Bishop & Rezzolla 2016): in vacuum,
//!
//! ```text
//! E_ij = R_ij + K K_ij − K_ik K^k_j
//! B_ij = ε_i^{kl} D_k K_lj            (symmetrized)
//! Ψ₄  = (E − iB)_jk  m̄^j m̄^k ,  m̄ = (ê_θ − i ê_φ)/√2
//!      = ½(E_θθ − E_φφ) − B_θφ  −  i( E_θφ + ½(B_θθ − B_φφ) )
//! ```
//!
//! where all quantities are *physical* (indices moved with γ_ij = γ̃_ij/χ)
//! and the inputs are the 234-entry BSSN vector (fields + derivatives).
//! For a linearized `+`-wave along z this reduces to `ḧ₊ − i ḧ×`, which
//! the tests verify against the closed form — and which justifies the
//! strain-based extractor as its wave-zone limit.

// Tensor-index loops (`for k in 0..3`) mirror the written math;
// enumerate() forms would obscure the index symmetry.
#![allow(clippy::needless_range_loop)]

use crate::complex::Complex;
use crate::series::WaveformSeries;
use crate::sphere::ExtractionSphere;
use crate::swsh::swsh;
use gw_expr::symbols::{input_d1, input_d2, input_value, var};
use gw_mesh::{Field, Mesh};
use gw_stencil::interp::lagrange_weights_d2;
use gw_stencil::patch::{PatchLayout, POINTS_PER_SIDE};

/// Ψ₄ at one point from the 234-entry BSSN input vector and the radial
/// direction (θ, φ).
pub fn psi4_point(u: &[f64], theta: f64, phi: f64) -> Complex {
    // ---- Load fields -----------------------------------------------------
    let chi = u[input_value(var::CHI)].max(1e-12);
    let kk = u[input_value(var::K)];
    let mut gt = [[0.0f64; 3]; 3];
    let mut at = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            gt[i][j] = u[input_value(var::gt(i, j))];
            at[i][j] = u[input_value(var::at(i, j))];
        }
    }
    let gamt =
        [u[input_value(var::gamt(0))], u[input_value(var::gamt(1))], u[input_value(var::gamt(2))]];
    let d = |v: usize, a: usize| u[input_d1(v, a)];
    let dd = |v: usize, a: usize, b: usize| u[input_d2(v, a, b)];
    let dchi = [d(var::CHI, 0), d(var::CHI, 1), d(var::CHI, 2)];
    let dk = [d(var::K, 0), d(var::K, 1), d(var::K, 2)];

    // ---- Conformal inverse and Christoffels --------------------------------
    let gti = inverse3(&gt);
    let mut c1 = [[[0.0f64; 3]; 3]; 3];
    for l in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                c1[l][i][j] =
                    0.5 * (d(var::gt(l, i), j) + d(var::gt(l, j), i) - d(var::gt(i, j), l));
            }
        }
    }
    let mut c2t = [[[0.0f64; 3]; 3]; 3]; // conformal Γ̃^k_ij
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for l in 0..3 {
                    s += gti[k][l] * c1[l][i][j];
                }
                c2t[k][i][j] = s;
            }
        }
    }
    // Full (physical) Christoffels, Eq. 13.
    let inv_chi = 1.0 / chi;
    let mut gti_dchi = [0.0f64; 3];
    for (k, o) in gti_dchi.iter_mut().enumerate() {
        let mut s = 0.0;
        for l in 0..3 {
            s += gti[k][l] * dchi[l];
        }
        *o = s;
    }
    let mut c2 = [[[0.0f64; 3]; 3]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let mut corr = 0.0;
                if k == i {
                    corr += dchi[j];
                }
                if k == j {
                    corr += dchi[i];
                }
                corr -= gt[i][j] * gti_dchi[k];
                c2[k][i][j] = c2t[k][i][j] - 0.5 * inv_chi * corr;
            }
        }
    }

    // ---- Physical Ricci (same assembly as the RHS) -------------------------
    let mut cal_gamt = [0.0f64; 3];
    for (m, cg) in cal_gamt.iter_mut().enumerate() {
        let mut s = 0.0;
        for k in 0..3 {
            for l in 0..3 {
                s += gti[k][l] * c2t[m][k][l];
            }
        }
        *cg = s;
    }
    let mut lap_chi = 0.0;
    let mut dchi2 = 0.0;
    for k in 0..3 {
        for l in 0..3 {
            lap_chi += gti[k][l] * dd(var::CHI, k, l);
            dchi2 += gti[k][l] * dchi[k] * dchi[l];
        }
    }
    let mut gamt_dchi = 0.0;
    for m in 0..3 {
        gamt_dchi += cal_gamt[m] * dchi[m];
    }
    let bracket = lap_chi - 1.5 * dchi2 * inv_chi - gamt_dchi;
    let mut ricci = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut rt = 0.0;
            for l in 0..3 {
                for m in 0..3 {
                    rt += -0.5 * gti[l][m] * dd(var::gt(i, j), l, m);
                }
            }
            for k in 0..3 {
                rt += 0.5 * (gt[k][i] * d(var::gamt(k), j) + gt[k][j] * d(var::gamt(k), i));
                rt += 0.5 * gamt[k] * (c1[i][j][k] + c1[j][i][k]);
            }
            for l in 0..3 {
                for m in 0..3 {
                    for k in 0..3 {
                        rt += gti[l][m]
                            * (c2t[k][l][i] * c1[j][k][m]
                                + c2t[k][l][j] * c1[i][k][m]
                                + c2t[k][i][m] * c1[k][l][j]);
                    }
                }
            }
            let mut cov = dd(var::CHI, i, j);
            for k in 0..3 {
                cov -= c2t[k][i][j] * dchi[k];
            }
            let rchi = 0.5 * inv_chi * cov - 0.25 * inv_chi * inv_chi * dchi[i] * dchi[j]
                + 0.5 * inv_chi * gt[i][j] * bracket;
            ricci[i][j] = rt + rchi;
        }
    }

    // ---- Physical extrinsic curvature and its covariant derivative ----------
    // K_ij = (Ã_ij + γ̃_ij K/3)/χ ; γ^ij = χ γ̃^ij.
    let mut kij = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            kij[i][j] = (at[i][j] + gt[i][j] * kk / 3.0) * inv_chi;
        }
    }
    // ∂_k K_ij from the product rule on the BSSN inputs.
    let mut dkij = [[[0.0f64; 3]; 3]; 3]; // dkij[k][i][j]
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let dat = d(var::at(i, j), k);
                let dgt = d(var::gt(i, j), k);
                dkij[k][i][j] = (dat + dgt * kk / 3.0 + gt[i][j] * dk[k] / 3.0) * inv_chi
                    - kij[i][j] * dchi[k] * inv_chi;
            }
        }
    }
    // D_k K_ij = ∂_k K_ij − Γ^m_ki K_mj − Γ^m_kj K_im (full Christoffels).
    let mut cov_k = [[[0.0f64; 3]; 3]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in 0..3 {
                let mut s = dkij[k][i][j];
                for m in 0..3 {
                    s -= c2[m][k][i] * kij[m][j] + c2[m][k][j] * kij[i][m];
                }
                cov_k[k][i][j] = s;
            }
        }
    }

    // ---- Electric and magnetic parts ----------------------------------------
    // Raise one index with γ^ = χ γ̃^.
    let mut k_up = [[0.0f64; 3]; 3]; // K^k_j
    for k in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            for l in 0..3 {
                s += chi * gti[k][l] * kij[l][j];
            }
            k_up[k][j] = s;
        }
    }
    let mut e = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut s = ricci[i][j] + kk * kij[i][j];
            for k in 0..3 {
                s -= kij[i][k] * k_up[k][j];
            }
            e[i][j] = s;
        }
    }
    // B_ij = ε_i^{kl} D_k K_lj, symmetrized. ε_i^{kl} = γ_im ε^{mkl} =
    // ε̂_mkl √γ γ^im … with γ = det(γ_ij) = χ⁻³ det(γ̃) and ε^{mkl} =
    // ε̂_mkl/√γ. So ε_i^{kl} = Σ_m γ_im ε̂_mkl / √γ.
    let detgt = det3(&gt);
    let sqrt_gamma = (detgt * inv_chi.powi(3)).max(0.0).sqrt();
    let mut b = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut s = 0.0;
            for m in 0..3 {
                for k in 0..3 {
                    for l in 0..3 {
                        let eps = levi_civita(m, k, l);
                        if eps == 0.0 {
                            continue;
                        }
                        // γ_im = γ̃_im/χ.
                        s += gt[i][m] * inv_chi * eps / sqrt_gamma * cov_k[k][l][j];
                    }
                }
            }
            b[i][j] = s;
        }
    }
    // Symmetrize B.
    let mut bs = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            bs[i][j] = 0.5 * (b[i][j] + b[j][i]);
        }
    }

    // ---- Project onto the transverse frame ----------------------------------
    let (st, ct) = (theta.sin(), theta.cos());
    let (sp, cp) = (phi.sin(), phi.cos());
    let eth = [ct * cp, ct * sp, -st];
    let eph = [-sp, cp, 0.0];
    let proj = |t: &[[f64; 3]; 3], a: &[f64; 3], bv: &[f64; 3]| -> f64 {
        let mut s = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                s += a[i] * t[i][j] * bv[j];
            }
        }
        s
    };
    let e_tt = proj(&e, &eth, &eth);
    let e_pp = proj(&e, &eph, &eph);
    let e_tp = proj(&e, &eth, &eph);
    let b_tt = proj(&bs, &eth, &eth);
    let b_pp = proj(&bs, &eph, &eph);
    let b_tp = proj(&bs, &eth, &eph);
    // Overall sign fixed to the wave-zone convention ψ₄ = ḧ₊ − i ḧ×
    // (validated against the linearized closed form in the tests).
    Complex::new(-(0.5 * (e_tt - e_pp) - b_tp), e_tp + 0.5 * (b_tt - b_pp))
}

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

fn inverse3(m: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let idet = 1.0 / det3(m);
    let mut g = [[0.0f64; 3]; 3];
    g[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * idet;
    g[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * idet;
    g[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * idet;
    g[1][0] = g[0][1];
    g[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * idet;
    g[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * idet;
    g[2][0] = g[0][2];
    g[2][1] = g[1][2];
    g[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * idet;
    g
}

fn levi_civita(i: usize, j: usize, k: usize) -> f64 {
    match (i, j, k) {
        (0, 1, 2) | (1, 2, 0) | (2, 0, 1) => 1.0,
        (0, 2, 1) | (2, 1, 0) | (1, 0, 2) => -1.0,
        _ => 0.0,
    }
}

/// Assemble the needed 234-entry inputs at an arbitrary point by
/// differentiating the Lagrange interpolant of each field inside its
/// containing octant (order-6 values, order-5 gradients).
pub fn inputs_at_point(mesh: &Mesh, field: &Field, p: [f64; 3]) -> Vec<f64> {
    let oct = mesh.locate(p).expect("point inside mesh");
    let info = &mesh.octants[oct];
    let nodes: Vec<f64> = (0..POINTS_PER_SIDE).map(|i| i as f64).collect();
    let mut w = Vec::with_capacity(3);
    for a in 0..3 {
        let xi = ((p[a] - info.origin[a]) / info.h).clamp(0.0, 6.0);
        w.push(lagrange_weights_d2(&nodes, xi));
    }
    let inv_h = 1.0 / info.h;
    let l = PatchLayout::octant();
    let mut u = vec![0.0f64; gw_expr::symbols::NUM_INPUTS];
    for v in 0..gw_expr::symbols::NUM_VARS {
        let block = field.block(v, oct);
        let mut val = 0.0;
        let mut grad = [0.0f64; 3];
        let mut hess = [[0.0f64; 3]; 3];
        for k in 0..POINTS_PER_SIDE {
            for j in 0..POINTS_PER_SIDE {
                for i in 0..POINTS_PER_SIDE {
                    let f = block[l.idx(i, j, k)];
                    let (w0, w1, w2) = (&w[0], &w[1], &w[2]);
                    val += f * w0.0[i] * w1.0[j] * w2.0[k];
                    grad[0] += f * w0.1[i] * w1.0[j] * w2.0[k];
                    grad[1] += f * w0.0[i] * w1.1[j] * w2.0[k];
                    grad[2] += f * w0.0[i] * w1.0[j] * w2.1[k];
                    hess[0][0] += f * w0.2[i] * w1.0[j] * w2.0[k];
                    hess[1][1] += f * w0.0[i] * w1.2[j] * w2.0[k];
                    hess[2][2] += f * w0.0[i] * w1.0[j] * w2.2[k];
                    hess[0][1] += f * w0.1[i] * w1.1[j] * w2.0[k];
                    hess[0][2] += f * w0.1[i] * w1.0[j] * w2.1[k];
                    hess[1][2] += f * w0.0[i] * w1.1[j] * w2.1[k];
                }
            }
        }
        u[input_value(v)] = val;
        for a in 0..3 {
            u[input_d1(v, a)] = grad[a] * inv_h;
        }
        if gw_expr::symbols::second_deriv_slot(v).is_some() {
            for a in 0..3 {
                for bx in a..3 {
                    u[input_d2(v, a, bx)] = hess[a][bx] * inv_h * inv_h;
                }
            }
        }
    }
    u
}

/// A Ψ₄ extractor: evaluates the Weyl scalar at sphere nodes and records
/// (l, m) mode series directly (no time differentiation needed).
pub struct Psi4Extractor {
    pub sphere: ExtractionSphere,
    pub modes: Vec<(i64, i64)>,
    pub series: Vec<WaveformSeries>,
    basis: Vec<Vec<Complex>>,
}

impl Psi4Extractor {
    pub fn new(sphere: ExtractionSphere, modes: Vec<(i64, i64)>) -> Self {
        let basis = modes
            .iter()
            .map(|&(l, m)| {
                sphere.nodes.iter().map(|n| swsh(-2, l, m, n.theta, n.phi).conj()).collect()
            })
            .collect();
        let series = modes.iter().map(|_| WaveformSeries::new()).collect();
        Self { sphere, modes, series, basis }
    }

    /// Ψ₄ at every node.
    pub fn psi4_at_nodes(&self, mesh: &Mesh, field: &Field) -> Vec<Complex> {
        self.sphere
            .nodes
            .iter()
            .zip(self.sphere.points.iter())
            .map(|(n, &p)| {
                let u = inputs_at_point(mesh, field, p);
                psi4_point(&u, n.theta, n.phi)
            })
            .collect()
    }

    /// Project Ψ₄ onto the mode basis and record at time `t`.
    pub fn record(&mut self, t: f64, mesh: &Mesh, field: &Field) {
        let vals = self.psi4_at_nodes(mesh, field);
        for (mi, basis) in self.basis.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for ((v, y), n) in vals.iter().zip(basis.iter()).zip(self.sphere.nodes.iter()) {
                acc += (*v * *y).scale(n.weight);
            }
            self.series[mi].push(t, acc);
        }
    }

    pub fn mode(&self, l: i64, m: i64) -> Option<&WaveformSeries> {
        self.modes.iter().position(|&lm| lm == (l, m)).map(|i| &self.series[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_expr::symbols::NUM_INPUTS;

    fn flat_inputs() -> Vec<f64> {
        let mut u = vec![0.0; NUM_INPUTS];
        u[input_value(var::ALPHA)] = 1.0;
        u[input_value(var::CHI)] = 1.0;
        u[input_value(var::gt(0, 0))] = 1.0;
        u[input_value(var::gt(1, 1))] = 1.0;
        u[input_value(var::gt(2, 2))] = 1.0;
        u
    }

    #[test]
    fn flat_space_psi4_is_zero() {
        let u = flat_inputs();
        for (theta, phi) in [(0.3, 0.0), (1.2, 2.0), (2.8, 4.4)] {
            let p = psi4_point(&u, theta, phi);
            assert!(p.norm() < 1e-14, "ψ₄ must vanish in flat space: {p:?}");
        }
    }

    /// Linearized plane wave along z: analytic ψ₄.
    ///
    /// For γ̃_xx = 1 + h, γ̃_yy = 1 − h, Ã from ḣ: at the north pole the
    /// Weyl construction must give ψ₄ = ḧ₊ = h″ (since ḧ = h″ for
    /// h(z − t)) to linear order.
    #[test]
    fn linear_wave_psi4_matches_second_derivative() {
        let amp: f64 = 1e-6; // deep linear regime
        let k: f64 = 1.3;
        // At z = z0: h = amp sin(k z), ḣ = −amp k cos(k z) (right-mover),
        // h″ = −amp k² sin(k z).
        let z0: f64 = 0.4;
        let h = amp * (k * z0).sin();
        let hp = amp * k * (k * z0).cos();
        let hpp = -amp * k * k * (k * z0).sin();
        let mut u = flat_inputs();
        u[input_value(var::gt(0, 0))] = 1.0 + h;
        u[input_value(var::gt(1, 1))] = 1.0 - h;
        u[input_d1(var::gt(0, 0), 2)] = hp;
        u[input_d1(var::gt(1, 1), 2)] = -hp;
        u[input_d2(var::gt(0, 0), 2, 2)] = hpp;
        u[input_d2(var::gt(1, 1), 2, 2)] = -hpp;
        // Ã_xx = −ḣ/2 = +h′/2 (right-mover: ∂_t h = −h′).
        u[input_value(var::at(0, 0))] = 0.5 * hp;
        u[input_value(var::at(1, 1))] = -0.5 * hp;
        u[input_d1(var::at(0, 0), 2)] = 0.5 * hpp;
        u[input_d1(var::at(1, 1), 2)] = -0.5 * hpp;
        // North pole: ê_θ = x̂, ê_φ = ŷ.
        let p4 = psi4_point(&u, 1e-9, 0.0);
        // ψ₄ = ḧ₊ = h″ to linear order.
        assert!(
            (p4.re - hpp).abs() < 1e-3 * hpp.abs().max(amp * k * k),
            "Re ψ₄ = {} vs ḧ₊ = {hpp}",
            p4.re
        );
        assert!(p4.im.abs() < 1e-3 * amp * k * k, "Im ψ₄ = {}", p4.im);
    }

    #[test]
    fn cross_polarized_wave_lands_in_imaginary_part() {
        let amp: f64 = 1e-6;
        let k: f64 = 0.9;
        let z0: f64 = -0.2;
        let h = amp * (k * z0).sin();
        let hp = amp * k * (k * z0).cos();
        let hpp = -amp * k * k * (k * z0).sin();
        let mut u = flat_inputs();
        // h_xy = h× wave.
        u[input_value(var::gt(0, 1))] = h;
        u[input_d1(var::gt(0, 1), 2)] = hp;
        u[input_d2(var::gt(0, 1), 2, 2)] = hpp;
        u[input_value(var::at(0, 1))] = 0.5 * hp;
        u[input_d1(var::at(0, 1), 2)] = 0.5 * hpp;
        let p4 = psi4_point(&u, 1e-9, 0.0);
        // ψ₄ = ḧ₊ − iḧ× = −i h×″.
        assert!(p4.re.abs() < 1e-3 * amp * k * k, "Re {}", p4.re);
        assert!((p4.im + hpp).abs() < 1e-3 * amp * k * k, "Im {} vs {}", p4.im, -hpp);
    }

    #[test]
    fn inputs_at_point_differentiates_polynomials() {
        use gw_octree::{Domain, MortonKey};
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..2 {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        let mesh = Mesh::build(Domain::centered_cube(4.0), &leaves);
        let f = |p: [f64; 3]| 0.5 + p[0] * p[0] - p[1] * p[2] + 0.1 * p[2].powi(3);
        let mut field = Field::zeros(gw_expr::symbols::NUM_VARS, mesh.n_octants());
        let l = PatchLayout::octant();
        for oct in 0..mesh.n_octants() {
            let vals: Vec<f64> =
                l.iter().map(|(i, j, k)| f(mesh.point_coords(oct, i, j, k))).collect();
            field.block_mut(var::CHI, oct).copy_from_slice(&vals);
        }
        let p = [0.37, -1.2, 2.05];
        let u = inputs_at_point(&mesh, &field, p);
        assert!((u[input_value(var::CHI)] - f(p)).abs() < 1e-10);
        assert!((u[input_d1(var::CHI, 0)] - 2.0 * p[0]).abs() < 1e-8);
        assert!((u[input_d1(var::CHI, 1)] + p[2]).abs() < 1e-8);
        assert!((u[input_d1(var::CHI, 2)] - (-p[1] + 0.3 * p[2] * p[2])).abs() < 1e-8);
        assert!((u[input_d2(var::CHI, 0, 0)] - 2.0).abs() < 1e-7);
        assert!((u[input_d2(var::CHI, 1, 2)] + 1.0).abs() < 1e-7);
        assert!((u[input_d2(var::CHI, 2, 2)] - 0.6 * p[2]).abs() < 1e-7);
    }
}
