//! One entry point for every kind of evolution run.
//!
//! Historically the crate grew three parallel drivers — plain
//! [`GwSolver::evolve_steps`](crate::solver::GwSolver::evolve_steps),
//! the supervised loop in [`crate::supervisor::Supervisor`], and the
//! distributed-resilient driver in [`crate::multi`] — each with its own
//! calling convention. The [`Run`] builder unifies them:
//!
//! ```no_run
//! use gw_core::run::Run;
//! use gw_core::solver::{GwSolver, SolverConfig};
//! # let refiner = gw_octree::PunctureRefiner::new(vec![], 2);
//! # let mesh = GwSolver::build_mesh(gw_octree::Domain::centered_cube(8.0), &refiner, 4);
//! let outcome = Run::new(SolverConfig::default())
//!     .mesh(mesh)
//!     .init(|_p, out| out.iter_mut().for_each(|v| *v = 0.0))
//!     .steps(8)
//!     .supervised(Default::default())      // optional: health + rollback
//!     .profile("results/trace.json")       // optional: obs trace sink
//!     .execute()
//!     .unwrap();
//! ```
//!
//! Adding `.distributed(ranks)` switches to the multi-rank resilient
//! driver (coordinated snapshots, rollback/replay); the old entry points
//! remain as thin deprecated wrappers over the same implementations.
//!
//! Profiling (`.profile(path)`) enables a [`Probe`], threads it through
//! the solver/backend/device (or the comm world in distributed mode),
//! and writes a Chrome-trace JSON file on completion. Instrumentation is
//! timing/counting only: a profiled run is bit-identical to an
//! unprofiled one (asserted in `tests/determinism_matrix.rs`).

use crate::multi::{self, DistributedError, ResilienceConfig, ResilientOutcome};
use crate::solver::{fill_field, ConfigError, GwSolver, SolverConfig};
use crate::supervisor::{RunSummary, Supervisor, SupervisorConfig, SupervisorError};
use gw_comm::world::WorldConfig;
use gw_mesh::{Field, Mesh};
use gw_obs::json::Value;
use gw_obs::Probe;
use gw_octree::Refiner;

/// Pointwise initial-data closure (all 24 variables).
pub type InitFn<'a> = Box<dyn Fn([f64; 3], &mut [f64]) + 'a>;

/// Why a [`Run`] could not complete.
#[derive(Debug)]
pub enum RunError {
    /// The solver configuration is invalid.
    Config(ConfigError),
    /// The builder is missing a mesh or initial data.
    Incomplete(&'static str),
    /// The supervised run failed terminally.
    Supervisor(SupervisorError),
    /// The distributed run failed terminally.
    Distributed(DistributedError),
    /// The profile trace could not be produced or written.
    Trace { path: String, error: String },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Incomplete(what) => write!(f, "incomplete run description: missing {what}"),
            RunError::Supervisor(e) => write!(f, "{e}"),
            RunError::Distributed(e) => write!(f, "{e}"),
            RunError::Trace { path, error } => write!(f, "profile trace {path}: {error}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl From<SupervisorError> for RunError {
    fn from(e: SupervisorError) -> Self {
        RunError::Supervisor(e)
    }
}

impl From<DistributedError> for RunError {
    fn from(e: DistributedError) -> Self {
        RunError::Distributed(e)
    }
}

/// A completed run.
pub struct RunOutcome {
    /// Final evolved state.
    pub state: Field,
    /// Final solver time.
    pub time: f64,
    pub steps_completed: u64,
    /// Rollback/replay retries performed (0 = clean run).
    pub retries: u32,
    /// The solver, for callers that want extractors or further stepping
    /// (`None` for distributed runs, which have no single-rank solver).
    pub solver: Option<GwSolver>,
    /// The supervised-run decision log, when `.supervised(..)` was set.
    pub supervised: Option<RunSummary>,
    /// The distributed outcome (traffic/work meters, recovery events),
    /// when `.distributed(..)` was set.
    pub distributed: Option<ResilientOutcome>,
    /// Where the profile trace was written, when `.profile(..)` was set.
    pub trace_path: Option<String>,
}

/// Builder for plain, supervised, and distributed evolution runs.
pub struct Run<'a> {
    config: SolverConfig,
    steps: usize,
    mesh: Option<Mesh>,
    init: Option<InitFn<'a>>,
    solver: Option<GwSolver>,
    refiner: Option<&'a dyn Refiner>,
    supervised: Option<SupervisorConfig>,
    ranks: Option<usize>,
    world: Option<WorldConfig>,
    resilience: Option<ResilienceConfig>,
    profile: Option<String>,
    probe: Option<Probe>,
}

impl<'a> Run<'a> {
    /// Start describing a run with this solver configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self {
            config,
            steps: 0,
            mesh: None,
            init: None,
            solver: None,
            refiner: None,
            supervised: None,
            ranks: None,
            world: None,
            resilience: None,
            profile: None,
            probe: None,
        }
    }

    /// Adopt a pre-built solver (e.g. with extractors already attached)
    /// instead of `config` + [`Run::mesh`] + [`Run::init`]. Not usable
    /// with [`Run::distributed`], which owns its rank-local state.
    pub fn from_solver(solver: GwSolver) -> Self {
        let config = solver.config;
        let mut run = Self::new(config);
        run.solver = Some(solver);
        run
    }

    /// The grid to evolve on.
    pub fn mesh(mut self, mesh: Mesh) -> Self {
        self.mesh = Some(mesh);
        self
    }

    /// Pointwise initial data filling all 24 variables.
    pub fn init(mut self, init: impl Fn([f64; 3], &mut [f64]) + 'a) -> Self {
        self.init = Some(Box::new(init));
        self
    }

    /// How many RK4 steps to take.
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Regrid with this refiner every `config.regrid_every` steps
    /// (plain, unsupervised runs only).
    pub fn refiner(mut self, refiner: &'a dyn Refiner) -> Self {
        self.refiner = Some(refiner);
        self
    }

    /// Run under the fault-tolerant supervisor (health checks,
    /// checkpoints, rollback + degraded retries).
    pub fn supervised(mut self, config: SupervisorConfig) -> Self {
        self.supervised = Some(config);
        self
    }

    /// Partition the grid over this many simulated ranks and run the
    /// resilient distributed driver.
    pub fn distributed(mut self, ranks: usize) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// Comm-world configuration for a distributed run (fault plan,
    /// retransmit budget, timeouts).
    pub fn world(mut self, world: WorldConfig) -> Self {
        self.world = Some(world);
        self
    }

    /// Checkpoint/rollback policy for a distributed run. When unset it
    /// is derived from the `.supervised(..)` config (checkpoint dir and
    /// degradation policy), matching the old driver wiring.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Enable observability and write a Chrome-trace JSON profile of the
    /// run to `path` on completion.
    pub fn profile(mut self, path: impl Into<String>) -> Self {
        self.profile = Some(path.into());
        self
    }

    /// Use this probe instead of creating one. The caller keeps a handle
    /// on the spans/counters (tests use this to inspect attribution
    /// without file I/O); combine with [`Run::profile`] to also write
    /// the trace file.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Execute the described run.
    pub fn execute(mut self) -> Result<RunOutcome, RunError> {
        let probe = match (&self.probe, &self.profile) {
            (Some(p), _) => p.clone(),
            (None, Some(_)) => Probe::enabled(),
            (None, None) => Probe::disabled(),
        };
        if let Some(ranks) = self.ranks {
            return self.execute_distributed(ranks, probe);
        }
        let mut solver = match self.solver.take() {
            Some(s) => s,
            None => {
                let mesh = self.mesh.take().ok_or(RunError::Incomplete("mesh"))?;
                let init = self.init.take().ok_or(RunError::Incomplete("init"))?;
                GwSolver::try_new(self.config, mesh, init)?
            }
        };
        solver.set_probe(probe.clone());
        let mut retries = 0;
        let mut summary = None;
        if let Some(sup_cfg) = self.supervised.clone() {
            let mut sup = Supervisor::new(sup_cfg);
            let s = sup.run_inner(&mut solver, self.steps as u64).inspect_err(|_| {
                // Even a failed run leaves a useful trace behind.
                self.try_write_trace(&probe, &[]);
            })?;
            retries = s.retries;
            summary = Some(s);
        } else {
            solver.evolve_steps_inner(self.steps, self.refiner);
        }
        let extra = device_sections(&solver);
        let trace_path = self.write_trace(&probe, &extra)?;
        Ok(RunOutcome {
            state: solver.state(),
            time: solver.time,
            steps_completed: solver.steps_taken,
            retries,
            solver: Some(solver),
            supervised: summary,
            distributed: None,
            trace_path,
        })
    }

    fn execute_distributed(mut self, ranks: usize, probe: Probe) -> Result<RunOutcome, RunError> {
        self.config.validate()?;
        let mesh = self.mesh.take().ok_or(RunError::Incomplete("mesh"))?;
        let init = self.init.take().ok_or(RunError::Incomplete("init"))?;
        let u0 = fill_field(&mesh, &init);
        let mut world = self.world.clone().unwrap_or_default();
        world.probe = probe.clone();
        // One thread setting drives both drivers: unless the caller
        // pinned an explicit overlap pool size in the WorldConfig, the
        // overlapped path sizes its workers from `config.threads`,
        // exactly like the single-rank backend.
        if world.overlap_threads == 0 {
            world.overlap_threads = self.config.threads;
        }
        let resilience = self.resilience.clone().unwrap_or_else(|| match &self.supervised {
            Some(sup) => ResilienceConfig {
                checkpoint_dir: sup.checkpoint_dir.clone(),
                checkpoint_every: sup.checkpoint_every.max(1),
                degradation: sup.degradation,
                kill_once: None,
            },
            None => ResilienceConfig::default(),
        });
        let out = multi::evolve_distributed_resilient_impl(
            &mesh,
            &u0,
            ranks,
            self.steps,
            self.config.courant,
            self.config.params,
            world,
            &resilience,
        )
        .inspect_err(|_| {
            self.try_write_trace(&probe, &[]);
        })?;
        let h_min = mesh.octants.iter().map(|o| o.h).fold(f64::INFINITY, f64::min);
        let trace_path = self.write_trace(&probe, &[])?;
        Ok(RunOutcome {
            state: out.result.state.clone(),
            time: self.steps as f64 * self.config.courant * h_min,
            steps_completed: self.steps as u64,
            retries: out.retries,
            solver: None,
            supervised: None,
            distributed: Some(out),
            trace_path,
        })
    }

    /// Write the trace if a sink was requested; hard error if profiling
    /// was requested but the obs layer is compiled out.
    fn write_trace(
        &self,
        probe: &Probe,
        extra: &[(&str, Value)],
    ) -> Result<Option<String>, RunError> {
        let Some(path) = &self.profile else { return Ok(None) };
        let trace = probe.report().ok_or_else(|| RunError::Trace {
            path: path.clone(),
            error: "observability is disabled (probe off or the `obs` feature compiled out)"
                .to_string(),
        })?;
        trace
            .write_to(std::path::Path::new(path), extra)
            .map_err(|e| RunError::Trace { path: path.clone(), error: e.to_string() })?;
        Ok(Some(path.clone()))
    }

    /// Best-effort trace write on the failure path (the primary error is
    /// the run failure, not the sink).
    fn try_write_trace(&self, probe: &Probe, extra: &[(&str, Value)]) {
        let _ = self.write_trace(probe, extra);
    }
}

/// Device-counter and performance-model summary sections: the emitted
/// trace carries the gpu-sim [`CounterSnapshot`](gw_gpu_sim::CounterSnapshot)
/// verbatim plus the RAM-model / roofline projection for the same
/// counters, so a profile can be cross-checked against the paper's
/// performance model without re-running.
fn device_sections(solver: &GwSolver) -> Vec<(&'static str, Value)> {
    let Some(c) = solver.backend.counters() else { return Vec::new() };
    let obj = |pairs: Vec<(&str, f64)>| {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), Value::Num(v))).collect())
    };
    let ram = gw_perfmodel::RamModel::a100();
    let roofline = gw_perfmodel::Roofline::new(gw_gpu_sim::MachineSpec::a100());
    let point = roofline.point("run", &c, None);
    vec![
        (
            "device_counters",
            obj(vec![
                ("launches", c.launches as f64),
                ("flops", c.flops as f64),
                ("global_load_bytes", c.global_load_bytes as f64),
                ("global_store_bytes", c.global_store_bytes as f64),
                ("shared_bytes", c.shared_bytes as f64),
                ("h2d_bytes", c.h2d_bytes as f64),
                ("d2h_bytes", c.d2h_bytes as f64),
                ("spill_load_bytes", c.spill_load_bytes as f64),
                ("spill_store_bytes", c.spill_store_bytes as f64),
            ]),
        ),
        (
            "perfmodel",
            obj(vec![
                ("ram_kernel_time_ms", ram.kernel_time(&c) * 1e3),
                ("arithmetic_intensity", point.ai),
                ("projected_gflops", point.gflops),
                ("roofline_efficiency", roofline.efficiency(&point)),
                ("ridge_ai", roofline.ridge_ai()),
            ]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_bssn::init::LinearWaveData;
    use gw_octree::{Domain, MortonKey};

    fn small_mesh() -> Mesh {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..2 {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        Mesh::build(Domain::centered_cube(8.0), &leaves)
    }

    fn wave_init() -> impl Fn([f64; 3], &mut [f64]) {
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        move |p, out: &mut [f64]| wave.evaluate(p, out)
    }

    #[test]
    fn plain_run_matches_deprecated_evolve_steps() {
        let mut reference = GwSolver::new(SolverConfig::default(), small_mesh(), wave_init());
        reference.evolve_steps_inner(3, None);
        let out = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(3)
            .execute()
            .unwrap();
        assert_eq!(out.steps_completed, 3);
        assert_eq!(out.retries, 0);
        assert_eq!(out.state.as_slice(), reference.state().as_slice());
    }

    #[test]
    fn supervised_run_reports_summary() {
        let out = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(2)
            .supervised(SupervisorConfig::default())
            .execute()
            .unwrap();
        let summary = out.supervised.expect("supervised summary");
        assert_eq!(summary.steps_completed, 2);
        assert!(summary.failures.is_empty());
    }

    #[test]
    fn distributed_run_matches_plain_bitwise() {
        let plain = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(2)
            .execute()
            .unwrap();
        let dist = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(2)
            .distributed(2)
            .execute()
            .unwrap();
        assert!(dist.distributed.is_some());
        assert_eq!(plain.state.as_slice(), dist.state.as_slice());
    }

    #[test]
    fn distributed_builder_matches_deprecated_wrapper_wiring() {
        // Config-drift guard: threads (the overlap pool size), the
        // supervised checkpoint keys, and the obs probe must reach the
        // unified driver exactly as the deprecated entry point passed
        // them — spelled out by hand here on the wrapper side.
        let dir = std::env::temp_dir().join("gw_run_parity_test");
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = dir.join("ckpt").to_str().unwrap().to_string();
        let sup = SupervisorConfig {
            checkpoint_dir: Some(ckpt.clone()),
            checkpoint_every: 1,
            ..SupervisorConfig::default()
        };
        let resilience = ResilienceConfig {
            checkpoint_dir: sup.checkpoint_dir.clone(),
            checkpoint_every: sup.checkpoint_every.max(1),
            degradation: sup.degradation,
            kill_once: None,
        };
        let config = SolverConfig { threads: 2, ..SolverConfig::default() };
        let mesh = small_mesh();
        let wave = wave_init();
        let u0 = fill_field(&mesh, &wave);
        let world = WorldConfig {
            overlap: true,
            overlap_threads: config.threads, // what the builder must derive
            ..WorldConfig::default()
        };
        #[allow(deprecated)]
        let reference = crate::multi::evolve_distributed_resilient(
            &mesh,
            &u0,
            2,
            2,
            config.courant,
            config.params,
            world,
            &resilience,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let probe = Probe::enabled();
        let path = dir.join("trace.json").to_str().unwrap().to_string();
        let out = Run::new(config)
            .mesh(small_mesh())
            .init(wave_init())
            .steps(2)
            .distributed(2)
            // overlap_threads left 0: the builder must fill it from
            // config.threads, matching the hand wiring above.
            .world(WorldConfig { overlap: true, ..WorldConfig::default() })
            .supervised(sup)
            .probe(probe.clone())
            .profile(path.clone())
            .execute()
            .unwrap();
        assert_eq!(
            out.state.as_slice(),
            reference.result.state.as_slice(),
            "builder and deprecated wrapper must drive the evolution identically"
        );
        assert_eq!(out.retries, reference.retries);
        if probe.is_enabled() {
            let text = std::fs::read_to_string(&path).unwrap();
            let stats = gw_obs::json::validate_trace(&text).expect("builder trace is schema-valid");
            assert!(stats.overlap_ratio() > 0.0, "overlapped run must meter hidden halo time");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incomplete_run_is_a_typed_error() {
        match Run::new(SolverConfig::default()).steps(1).execute() {
            Err(RunError::Incomplete("mesh")) => {}
            Err(other) => panic!("expected Incomplete(mesh), got {other:?}"),
            Ok(_) => panic!("meshless run must not succeed"),
        }
    }

    #[test]
    fn invalid_config_surfaces_as_config_error() {
        let bad = SolverConfig { courant: 2.0, ..Default::default() };
        match Run::new(bad).mesh(small_mesh()).init(wave_init()).steps(1).execute() {
            Err(RunError::Config(ConfigError::Courant(v))) => assert_eq!(v, 2.0),
            Err(other) => panic!("expected Config(Courant), got {other:?}"),
            Ok(_) => panic!("invalid config must not succeed"),
        }
    }

    #[test]
    fn profiled_run_writes_a_valid_trace_and_leaves_state_untouched() {
        let dir = std::env::temp_dir().join("gw_run_profile_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("trace.json");
        let path = path.to_str().unwrap().to_string();
        let plain = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(2)
            .execute()
            .unwrap();
        let probe = Probe::enabled();
        let profiled = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(2)
            .probe(probe.clone())
            .profile(path.clone())
            .execute()
            .unwrap();
        assert_eq!(
            plain.state.as_slice(),
            profiled.state.as_slice(),
            "profiling must not perturb the evolution"
        );
        if !probe.is_enabled() {
            // obs compiled out: .profile() must fail loudly instead —
            // covered by the error branch below, nothing more to check.
            return;
        }
        assert_eq!(profiled.trace_path.as_deref(), Some(path.as_str()));
        let text = std::fs::read_to_string(&path).unwrap();
        let stats = gw_obs::json::validate_trace(&text).expect("trace must be schema-valid");
        assert!(stats.step_coverage >= 0.9, "phases cover steps: {}", stats.step_coverage);
        assert_eq!(stats.counters.get("steps"), Some(&2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_with_disabled_probe_is_a_trace_error() {
        let out = Run::new(SolverConfig::default())
            .mesh(small_mesh())
            .init(wave_init())
            .steps(1)
            .probe(Probe::disabled())
            .profile("/nonexistent-dir-for-sure/trace.json")
            .execute();
        match out {
            Err(RunError::Trace { .. }) => {}
            other => panic!("expected Trace error, got {:?}", other.map(|o| o.steps_completed)),
        }
    }
}
