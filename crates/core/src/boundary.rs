//! Physical-boundary handling: face masks and the Sommerfeld
//! (radiative) RHS override.
//!
//! Shared by both execution backends (`crate::backend`) and the
//! distributed driver (`crate::multi`): every RHS evaluation finishes
//! by overwriting the freshly computed time derivatives on outer-domain
//! faces with the outgoing-wave condition (paper §III-A).

use gw_bssn::rhs::RhsWorkspace;
use gw_bssn::sommerfeld::sommerfeld_rhs_point;
use gw_expr::symbols::{NUM_INPUTS, NUM_VARS};
use gw_mesh::Mesh;
use gw_stencil::patch::{PatchLayout, POINTS_PER_SIDE};

/// Per-octant boundary-face mask: bit `2a` = low face on axis `a`, bit
/// `2a+1` = high face. Sommerfeld conditions are applied at points on
/// these faces.
pub fn boundary_face_masks(mesh: &Mesh) -> Vec<u8> {
    let mut masks = vec![0u8; mesh.n_octants()];
    for &(oct, delta) in &mesh.boundary_regions {
        for a in 0..3 {
            if delta[a] == -1 && delta[(a + 1) % 3] == 0 && delta[(a + 2) % 3] == 0 {
                masks[oct as usize] |= 1 << (2 * a);
            }
            if delta[a] == 1 && delta[(a + 1) % 3] == 0 && delta[(a + 2) % 3] == 0 {
                masks[oct as usize] |= 1 << (2 * a + 1);
            }
        }
    }
    masks
}

/// True if local point (i, j, k) lies on a masked boundary face.
#[inline]
pub fn on_masked_face(mask: u8, i: usize, j: usize, k: usize) -> bool {
    let r = POINTS_PER_SIDE - 1;
    (mask & 0b000001 != 0 && i == 0)
        || (mask & 0b000010 != 0 && i == r)
        || (mask & 0b000100 != 0 && j == 0)
        || (mask & 0b001000 != 0 && j == r)
        || (mask & 0b010000 != 0 && k == 0)
        || (mask & 0b100000 != 0 && k == r)
}

/// Apply the Sommerfeld override to an octant's freshly computed RHS
/// blocks. Reuses the derivative workspace filled by `bssn_rhs_patch`.
#[allow(clippy::too_many_arguments)]
pub fn sommerfeld_fix(
    mesh: &Mesh,
    oct: usize,
    mask: u8,
    patches: &[&[f64]],
    ws: &RhsWorkspace,
    inputs_buf: &mut [f64],
    point_out: &mut [f64],
    out: &mut [&mut [f64]],
) {
    if mask == 0 {
        return;
    }
    debug_assert!(inputs_buf.len() >= NUM_INPUTS && point_out.len() >= NUM_VARS);
    let o = PatchLayout::octant();
    for (i, j, k) in o.iter() {
        if !on_masked_face(mask, i, j, k) {
            continue;
        }
        let pt = o.idx(i, j, k);
        let fields = gw_bssn::derivs::fields_at(patches, i, j, k);
        ws.derivs.assemble_inputs(&fields, pt, inputs_buf);
        let pos = mesh.point_coords(oct, i, j, k);
        sommerfeld_rhs_point(inputs_buf, pos, point_out);
        for v in 0..NUM_VARS {
            out[v][pt] = point_out[v];
        }
    }
}
