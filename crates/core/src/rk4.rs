//! Classical RK4 time integration over a backend.
//!
//! The paper integrates with explicit RK4 at Courant factor λ = 0.25
//! (section III-A) with global timestepping: one Δt for the whole grid,
//! set by the finest level.

use crate::backend::{Backend, Buf};
use gw_mesh::Mesh;

/// RK4 driver. Stateless apart from the Courant factor.
#[derive(Clone, Copy, Debug)]
pub struct Rk4 {
    /// Courant factor λ (paper: 0.25).
    pub courant: f64,
}

impl Default for Rk4 {
    fn default() -> Self {
        Self { courant: 0.25 }
    }
}

impl Rk4 {
    /// Global timestep for a mesh: `λ · h_min`.
    pub fn timestep(&self, mesh: &Mesh) -> f64 {
        let h_min = mesh.octants.iter().map(|o| o.h).fold(f64::INFINITY, f64::min);
        self.courant * h_min
    }

    /// Advance one RK4 step of size `dt` (classic Butcher tableau),
    /// using the backend's four resident buffers:
    ///
    /// ```text
    /// k1 = F(u)          acc  = u + dt/6 k1      s = u + dt/2 k1
    /// k2 = F(s)          acc += dt/3 k2          s = u + dt/2 k2
    /// k3 = F(s)          acc += dt/3 k3          s = u + dt   k3
    /// k4 = F(s)          u    = acc + dt/6 k4
    /// ```
    pub fn step(&self, backend: &mut dyn Backend, mesh: &Mesh, dt: f64) {
        // k1.
        backend.eval_rhs(mesh, Buf::U, Buf::K);
        backend.assign_axpy(Buf::Acc, Buf::U, dt / 6.0, Buf::K);
        backend.assign_axpy(Buf::Stage, Buf::U, dt / 2.0, Buf::K);
        // k2.
        backend.eval_rhs(mesh, Buf::Stage, Buf::K);
        backend.axpy(Buf::Acc, dt / 3.0, Buf::K);
        backend.assign_axpy(Buf::Stage, Buf::U, dt / 2.0, Buf::K);
        // k3.
        backend.eval_rhs(mesh, Buf::Stage, Buf::K);
        backend.axpy(Buf::Acc, dt / 3.0, Buf::K);
        backend.assign_axpy(Buf::Stage, Buf::U, dt, Buf::K);
        // k4.
        backend.eval_rhs(mesh, Buf::Stage, Buf::K);
        backend.axpy(Buf::Acc, dt / 6.0, Buf::K);
        backend.copy(Buf::U, Buf::Acc);
        // Keep coarse–fine duplicated points consistent.
        backend.sync_interfaces(mesh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CpuBackend, RhsKind};
    use gw_bssn::BssnParams;
    use gw_expr::symbols::{var, NUM_VARS};
    use gw_mesh::Field;
    use gw_octree::{Domain, MortonKey};
    use gw_stencil::patch::PatchLayout;

    fn uniform_mesh(levels: u8, half: f64) -> Mesh {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..levels {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        Mesh::build(Domain::centered_cube(half), &leaves)
    }

    fn flat_state(mesh: &Mesh) -> Field {
        let mut f = Field::zeros(NUM_VARS, mesh.n_octants());
        for oct in 0..mesh.n_octants() {
            for v in [var::ALPHA, var::CHI, var::gt(0, 0), var::gt(1, 1), var::gt(2, 2)] {
                f.block_mut(v, oct).iter_mut().for_each(|x| *x = 1.0);
            }
        }
        f
    }

    #[test]
    fn timestep_tracks_finest_level() {
        let m1 = uniform_mesh(2, 8.0);
        let m2 = uniform_mesh(3, 8.0);
        let rk = Rk4::default();
        assert!((rk.timestep(&m1) / rk.timestep(&m2) - 2.0).abs() < 1e-12);
        // λ = 0.25 × h: for level 2, h = 16/4/6.
        let h = 16.0 / 4.0 / 6.0;
        assert!((rk.timestep(&m1) - 0.25 * h).abs() < 1e-12);
    }

    #[test]
    fn flat_space_is_preserved_exactly() {
        let mesh = uniform_mesh(1, 8.0);
        let u0 = flat_state(&mesh);
        let mut backend = CpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise);
        backend.upload(&u0);
        let rk = Rk4::default();
        let dt = rk.timestep(&mesh);
        for _ in 0..3 {
            rk.step(&mut backend, &mesh, dt);
        }
        let u = backend.download();
        for (a, b) in u.as_slice().iter().zip(u0.as_slice().iter()) {
            assert!((a - b).abs() < 1e-13, "flat space must stay flat: {a} vs {b}");
        }
    }

    #[test]
    fn gauge_wave_evolves_stably() {
        // A small lapse perturbation on flat space: the 1+log gauge
        // propagates it without blowing up over a handful of steps.
        let mesh = uniform_mesh(2, 8.0);
        let mut u0 = flat_state(&mesh);
        for oct in 0..mesh.n_octants() {
            let l = PatchLayout::octant();
            for (i, j, k) in l.iter() {
                let p = mesh.point_coords(oct, i, j, k);
                let r2 = p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
                u0.block_mut(var::ALPHA, oct)[l.idx(i, j, k)] = 1.0 + 1e-3 * (-r2 / 4.0).exp();
            }
        }
        let mut backend = CpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise);
        backend.upload(&u0);
        let rk = Rk4::default();
        let dt = rk.timestep(&mesh);
        for _ in 0..5 {
            rk.step(&mut backend, &mesh, dt);
        }
        let u = backend.download();
        // Bounded and changed.
        assert!(u.linf_all() < 2.0);
        let mut changed = false;
        for (a, b) in u.as_slice().iter().zip(u0.as_slice().iter()) {
            if (a - b).abs() > 1e-10 {
                changed = true;
                break;
            }
        }
        assert!(changed, "the gauge pulse must evolve");
        // K must have been excited (∂_t K ⊃ −∇²α).
        assert!(u.linf(var::K) > 1e-8);
    }

    #[test]
    fn rk4_convergence_order_on_lapse_ode() {
        // With homogeneous data (no spatial dependence) the system
        // reduces to the ODE α' = −2αK, K' = αK²/3. Verify 4th-order
        // convergence of the integrator against a tiny-step reference.
        let mesh = uniform_mesh(0, 8.0);
        let make = |k0: f64| {
            let mut f = flat_state(&mesh);
            f.block_mut(var::K, 0).iter_mut().for_each(|x| *x = k0);
            f
        };
        let run = |dt: f64, steps: usize| -> f64 {
            let mut backend = CpuBackend::new(
                &mesh,
                BssnParams { eta: 2.0, ko_sigma: 0.0, chi_floor: 1e-4 },
                RhsKind::Pointwise,
            );
            backend.upload(&make(0.1));
            let rk = Rk4::default();
            for _ in 0..steps {
                rk.step(&mut backend, &mesh, dt);
            }
            backend.download().block(var::ALPHA, 0)[0]
        };
        let t_final = 0.4;
        let reference = run(t_final / 256.0, 256);
        let e1 = (run(t_final / 4.0, 4) - reference).abs();
        let e2 = (run(t_final / 8.0, 8) - reference).abs();
        let order = (e1 / e2).log2();
        assert!(order > 3.5, "observed RK order {order} (e1={e1:.3e}, e2={e2:.3e})");
    }
}
