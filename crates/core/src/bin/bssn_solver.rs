//! `bssn_solver` — the artifact-style solver driver.
//!
//! Mirrors the paper's `bssnSolverCtx` / `bssnSolverCUDA` workflow:
//!
//! ```text
//! bssn_solver [--profile trace.json] pars/q1.par.json
//! ```
//!
//! reads a parameter file, builds puncture initial data and the
//! puncture-refined grid, evolves on the chosen backend via the
//! [`Run`] builder, extracts the (2,2) mode at the requested radius,
//! and prints run diagnostics. `--profile <path>` (or the `obs.profile`
//! par key — the flag wins) writes a Chrome-trace JSON profile of the
//! run; open it in `about:tracing` / Perfetto or feed it to
//! `trace_check`.

//! Exit codes (so batch schedulers and CI distinguish failure modes):
//! `0` success, `1` bad parameter file, `2` usage, `3` retries exhausted
//! (supervised or distributed — the message names the dead rank if one
//! died), `4` checkpoint I/O failure, `5` invalid solver configuration.

use gw_bssn::init::PunctureData;
use gw_core::multi::{DistributedError, ResilienceConfig};
use gw_core::params::{ParamError, RunParams};
use gw_core::run::{Run, RunError};
use gw_core::solver::GwSolver;
use gw_core::supervisor::{SupervisorError, SupervisorEvent};
use gw_expr::symbols::var;
use gw_octree::{Puncture, PunctureRefiner};
use gw_waveform::{lebedev::product_rule, ExtractionSphere, ModeExtractor};

const EXIT_RETRIES_EXHAUSTED: i32 = 3;
const EXIT_CHECKPOINT_IO: i32 = 4;
const EXIT_BAD_CONFIG: i32 = 5;

fn usage() -> ! {
    eprintln!(
        "usage: bssn_solver [--profile <trace.json>] <par-file.json>   (see pars/q1.par.json)"
    );
    std::process::exit(2);
}

fn exit_code(e: &RunError) -> i32 {
    match e {
        RunError::Config(_) => EXIT_BAD_CONFIG,
        RunError::Supervisor(SupervisorError::RetriesExhausted { .. }) => EXIT_RETRIES_EXHAUSTED,
        RunError::Supervisor(SupervisorError::CheckpointIo { .. }) => EXIT_CHECKPOINT_IO,
        RunError::Distributed(DistributedError::RetriesExhausted { .. }) => EXIT_RETRIES_EXHAUSTED,
        RunError::Distributed(DistributedError::Checkpoint(_)) => EXIT_CHECKPOINT_IO,
        RunError::Incomplete(_) | RunError::Trace { .. } => 1,
    }
}

fn main() {
    let mut par_path: Option<String> = None;
    let mut profile_flag: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => match args.next() {
                Some(p) => profile_flag = Some(p),
                None => usage(),
            },
            _ if arg.starts_with('-') => usage(),
            _ if par_path.is_none() => par_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = par_path else { usage() };
    let params = match RunParams::from_file(&path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            std::process::exit(match e {
                ParamError::Config(_) => EXIT_BAD_CONFIG,
                _ => 1,
            });
        }
    };
    // The CLI flag overrides the `obs.profile` par key.
    let profile = profile_flag.or_else(|| params.profile.clone());
    println!(
        "bssn_solver: q = {}, d = {}, domain ±{}, levels {}..{}, backend = {}",
        params.q,
        params.separation,
        params.domain_half,
        params.base_level,
        params.finest_level,
        if params.config.use_gpu { "gpu-sim" } else { "cpu" }
    );

    // Initial data (the tpid substitute) and puncture-refined grid.
    let data = PunctureData::binary(params.q, params.separation);
    let domain = gw_octree::Domain::centered_cube(params.domain_half);
    let punctures: Vec<Puncture> = data
        .punctures
        .iter()
        .map(|b| Puncture {
            pos: b.pos,
            finest_level: params.finest_level,
            inner_radius: (b.mass * 1.5).max(0.3),
        })
        .collect();
    let refiner = PunctureRefiner::new(punctures, params.base_level);
    let mesh = GwSolver::build_mesh(domain, &refiner, 20);
    println!("grid: {} octants, {} unknowns", mesh.n_octants(), mesh.unknowns(24));

    // Distributed mode: partition the grid over simulated ranks and run
    // under the resilience layer (reliable halo delivery + coordinated
    // snapshots + rollback/replay).
    if params.ranks > 1 {
        let resilience = ResilienceConfig {
            checkpoint_dir: if params.checkpoint_distributed {
                params.supervisor.checkpoint_dir.clone()
            } else {
                None
            },
            checkpoint_every: params.supervisor.checkpoint_every.max(1),
            degradation: params.supervisor.degradation,
            kill_once: None,
        };
        println!(
            "evolving {} steps on {} ranks (snapshots: {}) ...",
            params.steps,
            params.ranks,
            resilience.checkpoint_dir.as_deref().unwrap_or("off")
        );
        let mut run = Run::new(params.config)
            .mesh(mesh)
            .init(|p, out: &mut [f64]| data.evaluate(p, out))
            .steps(params.steps)
            .distributed(params.ranks)
            .world(params.world_config())
            .resilience(resilience);
        if let Some(p) = &profile {
            run = run.profile(p.clone());
        }
        match run.execute() {
            Ok(out) => {
                let dist = out.distributed.expect("distributed run reports an outcome");
                for ev in &dist.events {
                    let gw_core::multi::RecoveryEvent::RolledBack { to_step, cause } = ev;
                    println!("  [roll]  back to step {to_step} after: {cause}");
                }
                let (msgs, bytes) =
                    dist.result.traffic.iter().fold((0u64, 0u64), |a, t| (a.0 + t.0, a.1 + t.1));
                println!(
                    "distributed run complete: {} steps on {} ranks, {} retries, \
                     {msgs} messages / {bytes} bytes exchanged",
                    params.steps, params.ranks, out.retries
                );
                if let Some(p) = &out.trace_path {
                    println!("profile trace written to {p}");
                }
            }
            Err(e) => {
                eprintln!("distributed run failed: {e}");
                std::process::exit(exit_code(&e));
            }
        }
        return;
    }

    let d2 = data.clone();
    let mut solver = GwSolver::new(params.config, mesh, move |p, out| d2.evaluate(p, out));
    if params.extract_every > 0 {
        let sphere = ExtractionSphere::new(params.extract_radius, product_rule(6, 12));
        solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2)]));
    }

    println!("evolving {} steps, dt = {:.5} ...", params.steps, solver.dt());
    let mut run = Run::from_solver(solver).steps(params.steps);
    if params.supervised {
        run = run.supervised(params.supervisor.clone());
    }
    if let Some(p) = &profile {
        run = run.profile(p.clone());
    }
    let out = match run.execute() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(exit_code(&e));
        }
    };
    if let Some(summary) = &out.supervised {
        println!(
            "supervised run complete: {} steps, {} retries, {} fault(s) recovered",
            summary.steps_completed,
            summary.retries,
            summary.failures.len()
        );
        for ev in &summary.events {
            match ev {
                SupervisorEvent::CheckpointWritten { step, path } => {
                    println!("  [ckpt]  step {step}: {path}");
                }
                SupervisorEvent::FaultDetected { step, report } => {
                    for issue in &report.issues {
                        println!("  [fault] step {step}: {issue}");
                    }
                }
                SupervisorEvent::RolledBack { from_step, to_step } => {
                    println!("  [roll]  step {from_step} -> {to_step}");
                }
                SupervisorEvent::RetryStarted { attempt, courant, ko_sigma } => {
                    println!(
                        "  [retry] attempt {attempt}: courant = {courant}, \
                         ko_sigma = {ko_sigma}"
                    );
                }
                SupervisorEvent::Completed { .. } => {}
            }
        }
    }
    let solver = out.solver.expect("single-process run returns its solver");
    println!(
        "final state: max|K| = {:.3e}  max|At| = {:.3e}",
        out.state.linf(var::K),
        out.state.linf(var::at(0, 1))
    );
    if let Some(e) = solver.extractors.first() {
        if let Some(m22) = e.mode(2, 2) {
            println!("\nextracted h22 samples (t, Re, Im):");
            for i in 0..m22.len() {
                println!(
                    "  {:8.4}  {:+.6e}  {:+.6e}",
                    m22.times[i], m22.values[i].re, m22.values[i].im
                );
            }
        }
    }
    if let Some(c) = solver.backend.counters() {
        println!(
            "\ndevice: {} launches, {:.1} MB global traffic, {:.2} GFlop",
            c.launches,
            c.global_bytes() as f64 / 1e6,
            c.flops as f64 / 1e9
        );
    }
    if let Some(p) = &out.trace_path {
        println!("profile trace written to {p}");
    }
    println!("done: t = {:.4} after {} steps", out.time, out.steps_completed);
}
