//! Supervised evolution: health monitoring, automatic checkpointing,
//! and rollback-based fault recovery.
//!
//! Production campaigns (Table IV: hundreds of node-hours per
//! configuration) die to soft errors, lost messages, and occasional
//! gauge pathologies. The supervisor wraps [`GwSolver`] with the three
//! mechanisms that keep such a run alive:
//!
//! 1. **Health monitoring** ([`HealthMonitor`]): every `check_every`
//!    steps the evolved state is scanned for non-finite values, loss of
//!    χ/α positivity (the moving-puncture gauge requires both strictly
//!    positive), and Hamiltonian-constraint blowup (reusing
//!    `gw_bssn::constraints`). Violations produce a structured
//!    [`HealthReport`].
//! 2. **Automatic checkpointing**: an in-memory snapshot is refreshed at
//!    every *verified-healthy* check (the rollback target), and disk
//!    checkpoints are written through the atomic, CRC-protected
//!    [`crate::checkpoint::save_to_file`] on a configurable cadence with
//!    keep-last-K rotation.
//! 3. **Auto-recovery**: on a failed check the solver is rolled back to
//!    the last good snapshot and retried under a [`DegradationPolicy`]
//!    — optionally reducing the Courant factor and/or raising the
//!    Kreiss–Oliger dissipation, compounding per retry (the
//!    deterministic analog of retry backoff; wall-clock delays would
//!    break reproducibility). Retries are bounded; exhausting them
//!    surfaces [`SupervisorError::RetriesExhausted`] with the final
//!    report attached.
//!
//! Every decision is recorded in an event log ([`SupervisorEvent`]) so a
//! post-mortem can reconstruct what was detected, where the run rolled
//! back to, and which policy was applied.

use crate::checkpoint;
use crate::solver::GwSolver;
use bytes::Bytes;
use gw_expr::symbols::{var, NUM_INPUTS, NUM_VARS};
use gw_mesh::Field;
use gw_obs::{Counter, Phase};
use gw_stencil::patch::PatchLayout;

/// Limits separating a healthy state from a corrupted or diverging one.
#[derive(Clone, Copy, Debug)]
pub struct HealthThresholds {
    /// χ must stay strictly above this (positivity of the conformal
    /// factor; the default 0 means "any positive value is fine").
    pub chi_min: f64,
    /// α (lapse) must stay strictly above this.
    pub alpha_min: f64,
    /// Max allowed |Hamiltonian| over the sampled points.
    pub hamiltonian_max: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        Self { chi_min: 0.0, alpha_min: 0.0, hamiltonian_max: 1.0e3 }
    }
}

/// One detected violation, with enough location info for a post-mortem.
#[derive(Clone, Debug, PartialEq)]
pub enum HealthIssue {
    /// NaN or ±Inf in the evolved state.
    NonFinite { var: usize, octant: usize },
    /// χ at or below its floor somewhere.
    ChiNotPositive { octant: usize, value: f64 },
    /// α at or below its floor somewhere.
    AlphaNotPositive { octant: usize, value: f64 },
    /// Sampled |Hamiltonian| exceeded the threshold.
    ConstraintBlowup { value: f64, threshold: f64 },
}

impl std::fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthIssue::NonFinite { var, octant } => {
                write!(f, "non-finite value in variable {var} of octant {octant}")
            }
            HealthIssue::ChiNotPositive { octant, value } => {
                write!(f, "chi lost positivity in octant {octant}: {value}")
            }
            HealthIssue::AlphaNotPositive { octant, value } => {
                write!(f, "lapse lost positivity in octant {octant}: {value}")
            }
            HealthIssue::ConstraintBlowup { value, threshold } => {
                write!(f, "Hamiltonian constraint {value:.3e} exceeds threshold {threshold:.3e}")
            }
        }
    }
}

/// Outcome of one health check.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Solver step count when the check ran.
    pub step: u64,
    /// Solver time when the check ran.
    pub time: f64,
    /// Issues found (empty ⇒ healthy).
    pub issues: Vec<HealthIssue>,
    /// Max sampled |Hamiltonian| (NaN-free; non-finite states are
    /// reported via [`HealthIssue::NonFinite`] instead).
    pub max_hamiltonian: f64,
}

impl HealthReport {
    pub fn healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Scans the evolved state for the failure modes above.
#[derive(Clone, Copy, Debug, Default)]
pub struct HealthMonitor {
    pub thresholds: HealthThresholds,
}

impl HealthMonitor {
    pub fn new(thresholds: HealthThresholds) -> Self {
        Self { thresholds }
    }

    /// Run all checks against the solver's current state (one download).
    pub fn check(&self, solver: &GwSolver) -> HealthReport {
        let u = solver.state();
        self.check_field(&u, solver.steps_taken, solver.time)
    }

    /// Run all checks against an already-downloaded state.
    pub fn check_field(&self, u: &Field, step: u64, time: f64) -> HealthReport {
        let mut issues = Vec::new();
        let n_oct = u.n_oct;
        // Non-finite scan over everything; positivity over χ and α.
        for v in 0..u.dof {
            for oct in 0..n_oct {
                let block = u.block(v, oct);
                if let Some(&bad) = block.iter().find(|x| !x.is_finite()) {
                    let _ = bad;
                    issues.push(HealthIssue::NonFinite { var: v, octant: oct });
                    continue; // one issue per (var, octant) is enough
                }
                if v == var::CHI {
                    let m = block.iter().cloned().fold(f64::INFINITY, f64::min);
                    if m <= self.thresholds.chi_min {
                        issues.push(HealthIssue::ChiNotPositive { octant: oct, value: m });
                    }
                } else if v == var::ALPHA {
                    let m = block.iter().cloned().fold(f64::INFINITY, f64::min);
                    if m <= self.thresholds.alpha_min {
                        issues.push(HealthIssue::AlphaNotPositive { octant: oct, value: m });
                    }
                }
            }
        }
        // Constraint sample (algebraic part, one interior point per
        // octant — same sampling as GwSolver::constraint_sample). Only
        // meaningful on finite data.
        let mut max_h = 0.0f64;
        if issues.is_empty() {
            let l = PatchLayout::octant();
            let mut inputs = vec![0.0; NUM_INPUTS];
            for oct in 0..n_oct {
                for (slot, inp) in inputs.iter_mut().take(NUM_VARS).enumerate() {
                    *inp = u.block(slot, oct)[l.idx(3, 3, 3)];
                }
                max_h = max_h.max(gw_bssn::constraints::hamiltonian(&inputs).abs());
            }
            if max_h > self.thresholds.hamiltonian_max {
                issues.push(HealthIssue::ConstraintBlowup {
                    value: max_h,
                    threshold: self.thresholds.hamiltonian_max,
                });
            }
        }
        HealthReport { step, time, issues, max_hamiltonian: max_h }
    }
}

/// How to degrade parameters on each retry. The adjustments compound:
/// retry `n` runs with `courant * courant_factor^n` and
/// `ko_sigma + n * ko_boost` — escalation instead of wall-clock backoff,
/// which would break determinism.
#[derive(Clone, Copy, Debug)]
pub struct DegradationPolicy {
    /// Multiply the Courant factor by this on each retry (1.0 = retry
    /// with identical parameters, which is bit-reproducible).
    pub courant_factor: f64,
    /// Add this to the Kreiss–Oliger dissipation σ on each retry.
    pub ko_boost: f64,
    /// Give up after this many rollbacks.
    pub max_retries: u32,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self { courant_factor: 0.5, ko_boost: 0.1, max_retries: 3 }
    }
}

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Health-check cadence in steps (≥ 1).
    pub check_every: u64,
    pub thresholds: HealthThresholds,
    /// Disk-checkpoint cadence in steps (0 = in-memory snapshots only).
    pub checkpoint_every: u64,
    /// Directory for disk checkpoints (`ckpt_<step>.gwcp`).
    pub checkpoint_dir: Option<String>,
    /// Keep at most this many disk checkpoints (oldest deleted first).
    pub keep_checkpoints: usize,
    pub degradation: DegradationPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            check_every: 1,
            thresholds: HealthThresholds::default(),
            checkpoint_every: 0,
            checkpoint_dir: None,
            keep_checkpoints: 3,
            degradation: DegradationPolicy::default(),
        }
    }
}

/// One entry of the supervisor's decision log.
#[derive(Clone, Debug)]
pub enum SupervisorEvent {
    /// A disk checkpoint was written.
    CheckpointWritten { step: u64, path: String },
    /// A health check failed; the report is preserved verbatim.
    FaultDetected { step: u64, report: HealthReport },
    /// The solver was rolled back to the last good snapshot.
    RolledBack { from_step: u64, to_step: u64 },
    /// A retry began with (possibly degraded) parameters.
    RetryStarted { attempt: u32, courant: f64, ko_sigma: f64 },
    /// The run reached its target step count.
    Completed { steps: u64, retries: u32 },
}

/// Terminal supervisor failures.
#[derive(Debug)]
pub enum SupervisorError {
    /// Every allowed retry also failed its health check.
    RetriesExhausted { attempts: u32, last_report: HealthReport },
    /// A disk checkpoint could not be written.
    CheckpointIo { step: u64, error: String },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::RetriesExhausted { attempts, last_report } => write!(
                f,
                "run failed after {attempts} retries; last failure at step {}: {}",
                last_report.step,
                last_report
                    .issues
                    .first()
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "unknown".into())
            ),
            SupervisorError::CheckpointIo { step, error } => {
                write!(f, "checkpoint at step {step} failed: {error}")
            }
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Result of a completed supervised run.
#[derive(Debug)]
pub struct RunSummary {
    pub steps_completed: u64,
    pub retries: u32,
    /// Reports of every *failed* check (healthy checks are not kept —
    /// a long run would accumulate thousands).
    pub failures: Vec<HealthReport>,
    pub events: Vec<SupervisorEvent>,
}

/// Fault-injection hook: called after every step with the solver, the
/// step just completed, and the current retry attempt. Test harnesses
/// use it to corrupt the state on a deterministic schedule.
pub type FaultHook<'a> = Box<dyn FnMut(&mut GwSolver, u64, u32) + 'a>;

/// The supervisor itself. Construct, optionally install a fault hook,
/// then [`Supervisor::run`].
pub struct Supervisor<'a> {
    pub config: SupervisorConfig,
    monitor: HealthMonitor,
    fault_hook: Option<FaultHook<'a>>,
    written: Vec<String>,
}

impl<'a> Supervisor<'a> {
    pub fn new(config: SupervisorConfig) -> Self {
        assert!(config.check_every >= 1, "check_every must be >= 1");
        let monitor = HealthMonitor::new(config.thresholds);
        Self { config, monitor, fault_hook: None, written: Vec::new() }
    }

    /// Install a deterministic fault-injection hook (test harness use).
    pub fn set_fault_hook(&mut self, hook: FaultHook<'a>) {
        self.fault_hook = Some(hook);
    }

    /// Evolve `solver` until `steps_taken == target_steps` under
    /// supervision. On success the solver holds the final state; on
    /// [`SupervisorError::RetriesExhausted`] it holds the last rollback
    /// point.
    #[deprecated(
        since = "0.4.0",
        note = "use crate::run::Run::new(config).supervised(policy).execute() — one builder \
                covers plain, supervised, and distributed evolution"
    )]
    pub fn run(
        &mut self,
        solver: &mut GwSolver,
        target_steps: u64,
    ) -> Result<RunSummary, SupervisorError> {
        self.run_inner(solver, target_steps)
    }

    /// Non-deprecated implementation behind [`Supervisor::run`]; the
    /// [`crate::run::Run`] builder drives this directly.
    pub(crate) fn run_inner(
        &mut self,
        solver: &mut GwSolver,
        target_steps: u64,
    ) -> Result<RunSummary, SupervisorError> {
        let mut events = Vec::new();
        let mut failures = Vec::new();
        let mut retries = 0u32;
        // The rollback target: last verified-good state (v2 bytes, so a
        // corrupted snapshot would be caught by its CRC on restore).
        let mut good: Bytes = checkpoint::save(solver);
        let mut good_step = solver.steps_taken;
        let base_config = solver.config;

        while solver.steps_taken < target_steps {
            solver.step();
            let step = solver.steps_taken;
            if let Some(hook) = self.fault_hook.as_mut() {
                hook(solver, step, retries);
            }
            let due = step.is_multiple_of(self.config.check_every) || step == target_steps;
            if !due {
                continue;
            }
            let report = {
                let _s = solver.probe().start(Phase::Health);
                solver.probe().add(Counter::HealthChecks, 1);
                self.monitor.check(solver)
            };
            if report.healthy() {
                good = checkpoint::save(solver);
                good_step = step;
                if self.config.checkpoint_every > 0
                    && step.is_multiple_of(self.config.checkpoint_every)
                {
                    if let Some(dir) = self.config.checkpoint_dir.clone() {
                        let path = self.write_checkpoint(solver, &dir, step)?;
                        events.push(SupervisorEvent::CheckpointWritten { step, path });
                    }
                }
                continue;
            }
            // Unhealthy: log, roll back, degrade, retry (bounded).
            solver.probe().add(Counter::FaultsDetected, 1);
            events.push(SupervisorEvent::FaultDetected { step, report: report.clone() });
            failures.push(report.clone());
            if retries >= self.config.degradation.max_retries {
                // Leave the solver at the last good state for inspection.
                self.rollback(solver, &good, good_step, retries, &base_config, &mut events);
                return Err(SupervisorError::RetriesExhausted {
                    attempts: retries,
                    last_report: report,
                });
            }
            retries += 1;
            events.push(SupervisorEvent::RolledBack { from_step: step, to_step: good_step });
            self.rollback(solver, &good, good_step, retries, &base_config, &mut events);
        }
        events.push(SupervisorEvent::Completed { steps: solver.steps_taken, retries });
        Ok(RunSummary { steps_completed: solver.steps_taken, retries, failures, events })
    }

    /// Restore `solver` from the snapshot with retry-`n` degraded
    /// parameters, carrying the wave extractors over.
    fn rollback(
        &self,
        solver: &mut GwSolver,
        snapshot: &Bytes,
        to_step: u64,
        attempt: u32,
        base: &crate::solver::SolverConfig,
        events: &mut Vec<SupervisorEvent>,
    ) {
        let cp = checkpoint::load(snapshot.clone())
            .expect("in-memory snapshot is CRC-protected and must load");
        let mut cfg = *base;
        let d = &self.config.degradation;
        cfg.courant = base.courant * d.courant_factor.powi(attempt as i32);
        cfg.params.ko_sigma = base.params.ko_sigma + d.ko_boost * attempt as f64;
        let extractors = std::mem::take(&mut solver.extractors);
        let psi4 = std::mem::take(&mut solver.psi4_extractors);
        let probe = solver.probe().clone();
        probe.add(Counter::Rollbacks, 1);
        *solver = checkpoint::restore(cfg, cp);
        solver.extractors = extractors;
        solver.psi4_extractors = psi4;
        solver.set_probe(probe);
        debug_assert_eq!(solver.steps_taken, to_step);
        if attempt > 0 {
            events.push(SupervisorEvent::RetryStarted {
                attempt,
                courant: cfg.courant,
                ko_sigma: cfg.params.ko_sigma,
            });
        }
    }

    /// Atomic disk checkpoint + keep-last-K rotation.
    fn write_checkpoint(
        &mut self,
        solver: &GwSolver,
        dir: &str,
        step: u64,
    ) -> Result<String, SupervisorError> {
        let io = |e: String| SupervisorError::CheckpointIo { step, error: e };
        let _s = solver.probe().start(Phase::Checkpoint);
        solver.probe().add(Counter::Checkpoints, 1);
        std::fs::create_dir_all(dir).map_err(|e| io(e.to_string()))?;
        let path = format!("{dir}/ckpt_{step:08}.gwcp");
        checkpoint::save_to_file(solver, &path).map_err(|e| io(e.to_string()))?;
        self.written.push(path.clone());
        while self.written.len() > self.config.keep_checkpoints.max(1) {
            let old = self.written.remove(0);
            let _ = std::fs::remove_file(&old);
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `Supervisor::run` wrapper is exercised on purpose:
    // it must keep delegating faithfully until removal.
    #![allow(deprecated)]
    use super::*;
    use crate::solver::SolverConfig;
    use gw_bssn::init::LinearWaveData;
    use gw_mesh::Mesh;
    use gw_octree::{Domain, MortonKey};

    fn demo_solver(config: SolverConfig) -> GwSolver {
        let domain = Domain::centered_cube(8.0);
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..2 {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        GwSolver::new(config, Mesh::build(domain, &leaves), move |p, out| wave.evaluate(p, out))
    }

    #[test]
    fn healthy_run_has_no_retries() {
        let mut solver = demo_solver(SolverConfig::default());
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let summary = sup.run(&mut solver, 3).unwrap();
        assert_eq!(summary.steps_completed, 3);
        assert_eq!(summary.retries, 0);
        assert!(summary.failures.is_empty());
        assert!(matches!(summary.events.last(), Some(SupervisorEvent::Completed { .. })));
    }

    #[test]
    fn monitor_flags_nan_and_positivity() {
        let solver = demo_solver(SolverConfig::default());
        let mon = HealthMonitor::default();
        let mut u = solver.state();
        u.block_mut(var::K, 5)[10] = f64::NAN;
        u.block_mut(var::CHI, 2)[0] = -1.0;
        u.block_mut(var::ALPHA, 3)[0] = 0.0;
        let report = mon.check_field(&u, 7, 0.5);
        assert!(!report.healthy());
        assert!(report.issues.contains(&HealthIssue::NonFinite { var: var::K, octant: 5 }));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, HealthIssue::ChiNotPositive { octant: 2, .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, HealthIssue::AlphaNotPositive { octant: 3, .. })));
    }

    #[test]
    fn poisoned_step_recovers_bit_exact_with_identity_policy() {
        // Reference: unfaulted run.
        let mut reference = demo_solver(SolverConfig::default());
        for _ in 0..4 {
            reference.step();
        }
        // Faulted run: NaN poison after step 2 on the first attempt only;
        // identity degradation (courant_factor 1.0) ⇒ the retry replays
        // the same arithmetic ⇒ bit-exact final state.
        let mut solver = demo_solver(SolverConfig::default());
        let cfg = SupervisorConfig {
            degradation: DegradationPolicy { courant_factor: 1.0, ko_boost: 0.0, max_retries: 2 },
            ..Default::default()
        };
        let mut sup = Supervisor::new(cfg);
        sup.set_fault_hook(Box::new(|s: &mut GwSolver, step: u64, attempt: u32| {
            if step == 2 && attempt == 0 {
                let mut u = s.state();
                u.block_mut(var::CHI, 7)[11] = f64::NAN;
                s.backend.upload(&u);
            }
        }));
        let summary = sup.run(&mut solver, 4).unwrap();
        assert_eq!(summary.retries, 1);
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].step, 2);
        assert!(summary
            .events
            .iter()
            .any(|e| matches!(e, SupervisorEvent::RolledBack { from_step: 2, to_step: 1 })));
        for (a, b) in reference.state().as_slice().iter().zip(solver.state().as_slice().iter()) {
            assert_eq!(a, b, "identity-policy recovery must be bit-exact");
        }
    }

    #[test]
    fn persistent_fault_exhausts_retries() {
        let mut solver = demo_solver(SolverConfig::default());
        let cfg = SupervisorConfig {
            degradation: DegradationPolicy { courant_factor: 0.5, ko_boost: 0.1, max_retries: 2 },
            ..Default::default()
        };
        let mut sup = Supervisor::new(cfg);
        // Poison every attempt: unrecoverable.
        sup.set_fault_hook(Box::new(|s: &mut GwSolver, step: u64, _attempt: u32| {
            if step == 2 {
                let mut u = s.state();
                u.block_mut(0, 0)[0] = f64::INFINITY;
                s.backend.upload(&u);
            }
        }));
        match sup.run(&mut solver, 4) {
            Err(SupervisorError::RetriesExhausted { attempts, last_report }) => {
                assert_eq!(attempts, 2);
                assert_eq!(last_report.step, 2);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // Solver left at the last good state (step 1), not the poisoned one.
        assert_eq!(solver.steps_taken, 1);
        assert!(solver.state().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn degradation_compounds_per_retry() {
        let mut solver = demo_solver(SolverConfig::default());
        let base_courant = solver.config.courant;
        let cfg = SupervisorConfig {
            degradation: DegradationPolicy { courant_factor: 0.5, ko_boost: 0.1, max_retries: 3 },
            ..Default::default()
        };
        let mut sup = Supervisor::new(cfg);
        // Fault the first two attempts; the third (attempt == 2) runs clean.
        sup.set_fault_hook(Box::new(|s: &mut GwSolver, step: u64, attempt: u32| {
            if step == 1 && attempt < 2 {
                let mut u = s.state();
                u.block_mut(var::ALPHA, 0)[0] = f64::NAN;
                s.backend.upload(&u);
            }
        }));
        let summary = sup.run(&mut solver, 2).unwrap();
        assert_eq!(summary.retries, 2);
        assert!((solver.config.courant - base_courant * 0.25).abs() < 1e-15);
        assert!(
            (solver.config.params.ko_sigma - (SolverConfig::default().params.ko_sigma + 0.2)).abs()
                < 1e-15
        );
        let retry_events: Vec<_> = summary
            .events
            .iter()
            .filter(|e| matches!(e, SupervisorEvent::RetryStarted { .. }))
            .collect();
        assert_eq!(retry_events.len(), 2);
    }

    #[test]
    fn disk_checkpoints_rotate() {
        let dir = std::env::temp_dir().join("gw_sup_ckpts");
        let dir = dir.to_str().unwrap().to_string();
        let _ = std::fs::remove_dir_all(&dir);
        let mut solver = demo_solver(SolverConfig::default());
        let cfg = SupervisorConfig {
            checkpoint_every: 1,
            checkpoint_dir: Some(dir.clone()),
            keep_checkpoints: 2,
            ..Default::default()
        };
        let mut sup = Supervisor::new(cfg);
        let summary = sup.run(&mut solver, 5).unwrap();
        let written = summary
            .events
            .iter()
            .filter(|e| matches!(e, SupervisorEvent::CheckpointWritten { .. }))
            .count();
        assert_eq!(written, 5);
        let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        on_disk.sort();
        assert_eq!(on_disk, vec!["ckpt_00000004.gwcp", "ckpt_00000005.gwcp"]);
        // The newest checkpoint restores and continues.
        let cp = checkpoint::load_from_file(&format!("{dir}/ckpt_00000005.gwcp")).unwrap();
        assert_eq!(cp.steps_taken, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
