//! Execution backends: host (CPU) and simulated-device (GPU).
//!
//! Both backends hold the evolved state *resident* (the GPU backend in
//! device buffers), expose RK4's primitive operations over named buffer
//! slots, and produce bit-identical results — the property behind the
//! paper's Fig. 21 CPU-vs-GPU waveform overlay.
//!
//! There is exactly **one** method surface: the [`Backend`] trait. Each
//! backend implements only the uninstrumented `*_raw` primitives; the
//! public operations (`upload`, `eval_rhs`, `axpy`, …) are provided
//! methods defined once on the trait, which wrap the primitives in
//! gw-obs phase spans (`o2p`, `rhs`, `axpy`, `p2o`) and counters. The
//! instrumentation is timing/counting only — it never touches buffer
//! contents — so enabling a probe cannot perturb the evolution.

use crate::boundary::{boundary_face_masks, sommerfeld_fix};
use gw_bssn::rhs::{bssn_rhs_patch, RhsMode, RhsWorkspace};
use gw_bssn::BssnParams;
use gw_expr::bssn::build_bssn_rhs;
use gw_expr::schedule::{schedule, ScheduleStrategy};
use gw_expr::symbols::{NUM_INPUTS, NUM_VARS};
use gw_expr::tape::Tape;
use gw_gpu_sim::{CounterSnapshot, Device, LaunchConfig};
use gw_mesh::scatter::{fill_boundary_padding_par, fill_patches_scatter_par};
use gw_mesh::sync_interfaces_par;
use gw_mesh::{Field, Mesh, PatchField};
use gw_obs::{Counter, Phase, Probe};
use gw_par::{tree_reduce, ThreadPool, UnsafeSlice};
use gw_stencil::patch::{PatchLayout, BLOCK_VOLUME, PADDING, PATCH_VOLUME, POINTS_PER_SIDE};
use std::sync::Arc;

/// Resident buffer slots used by the RK4 driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Buf {
    /// The solution.
    U,
    /// RK stage input.
    Stage,
    /// RHS output.
    K,
    /// RK accumulator.
    Acc,
}

const NUM_BUFS: usize = 4;

fn buf_index(b: Buf) -> usize {
    match b {
        Buf::U => 0,
        Buf::Stage => 1,
        Buf::K => 2,
        Buf::Acc => 3,
    }
}

/// Which `A`-component implementation the RHS uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RhsKind {
    /// Handwritten pointwise code.
    Pointwise,
    /// Generated tape with the given scheduling strategy (Table II).
    Generated(ScheduleStrategy),
}

fn build_tape(kind: RhsKind, params: BssnParams) -> Option<Tape> {
    match kind {
        RhsKind::Pointwise => None,
        RhsKind::Generated(strategy) => {
            let rhs = build_bssn_rhs(params);
            let sch = schedule(&rhs.graph, &rhs.outputs, strategy);
            Some(Tape::compile(&rhs.graph, &sch, 56))
        }
    }
}

/// The uniform backend surface the solver drives.
///
/// Implementors provide the `*_raw` primitives plus identity/metadata;
/// callers use the provided instrumented operations. The split keeps
/// the obs hooks defined in exactly one place.
pub trait Backend: Send {
    /// Short backend identifier ("cpu", "gpu-sim").
    fn name(&self) -> &'static str;

    /// The attached observability probe (disabled by default).
    fn probe(&self) -> &Probe;

    /// Attach an observability probe (also propagated to the device on
    /// the GPU backend, so kernel launches record spans).
    fn set_probe(&mut self, probe: Probe);

    /// Device traffic counters, when the backend meters them.
    fn counters(&self) -> Option<CounterSnapshot> {
        None
    }

    /// Host worker threads driving this backend (1 when the backend
    /// manages its own launch parallelism).
    fn n_threads(&self) -> usize {
        1
    }

    /// Per-`eval_rhs` scatter volume: (octant patches assembled, patch
    /// points written). Used for counter attribution only.
    fn scatter_stats(&self) -> (u64, u64);

    /// Host→resident state transfer (solution slot).
    fn upload_raw(&mut self, u: &Field);

    /// Resident→host state transfer (solution slot).
    fn download_raw(&self) -> Field;

    /// Octant-to-patch scatter (+ boundary padding fill) of `input`.
    fn o2p_raw(&mut self, mesh: &Mesh, input: Buf);

    /// BSSN RHS over the current patches into `output`.
    fn rhs_raw(&mut self, mesh: &Mesh, output: Buf);

    /// `y += a·x`.
    fn axpy_raw(&mut self, y: Buf, a: f64, x: Buf);

    /// `y = base + a·x`.
    fn assign_axpy_raw(&mut self, y: Buf, base: Buf, a: f64, x: Buf);

    /// `dst = src`.
    fn copy_raw(&mut self, dst: Buf, src: Buf);

    /// Coarse–fine duplicated-point consistency on the solution slot.
    fn sync_interfaces_raw(&mut self, mesh: &Mesh);

    // ------------------------------------------------------------------
    // Instrumented operations (defined once; do not override).
    // ------------------------------------------------------------------

    /// Upload the solution (metered as `bytes_moved`).
    fn upload(&mut self, u: &Field) {
        self.probe().add(Counter::BytesMoved, 8 * u.as_slice().len() as u64);
        self.upload_raw(u);
    }

    /// Download the solution (metered as `bytes_moved`).
    fn download(&self) -> Field {
        let f = self.download_raw();
        self.probe().add(Counter::BytesMoved, 8 * f.as_slice().len() as u64);
        f
    }

    /// Full RHS evaluation: o2p scatter then RHS kernel, as two phase
    /// spans.
    fn eval_rhs(&mut self, mesh: &Mesh, input: Buf, output: Buf) {
        assert_ne!(buf_index(input), buf_index(output));
        let probe = self.probe().clone();
        let (patches, points) = self.scatter_stats();
        probe.add(Counter::PatchesProcessed, patches);
        probe.add(Counter::PointsScattered, points);
        {
            let _span = probe.start(Phase::O2p);
            self.o2p_raw(mesh, input);
        }
        let _span = probe.start(Phase::Rhs);
        self.rhs_raw(mesh, output);
    }

    /// `y += a·x` under the `axpy` phase.
    fn axpy(&mut self, y: Buf, a: f64, x: Buf) {
        let _span = self.probe().start(Phase::Axpy);
        self.axpy_raw(y, a, x);
    }

    /// `y = base + a·x` under the `axpy` phase.
    fn assign_axpy(&mut self, y: Buf, base: Buf, a: f64, x: Buf) {
        let _span = self.probe().start(Phase::Axpy);
        self.assign_axpy_raw(y, base, a, x);
    }

    /// `dst = src` under the `axpy` phase (same bandwidth class).
    fn copy(&mut self, dst: Buf, src: Buf) {
        let _span = self.probe().start(Phase::Axpy);
        self.copy_raw(dst, src);
    }

    /// Interface sync under the `p2o` phase (the fused RHS kernels
    /// write octant blocks directly, so patch-to-octant consistency
    /// reduces to this sync — see DESIGN.md §10).
    fn sync_interfaces(&mut self, mesh: &Mesh) {
        let _span = self.probe().start(Phase::P2o);
        self.sync_interfaces_raw(mesh);
    }
}

/// Host (CPU) backend: patch-parallel loops over octants on a shared
/// thread pool — the "CPU node" side of the paper's comparisons. With
/// `threads = 1` it degenerates to the original sequential reference;
/// results are bit-identical at every thread count (every output slot has
/// exactly one writer, and reductions are fixed-order — see DESIGN.md).
pub struct CpuBackend {
    params: BssnParams,
    tape: Option<Tape>,
    bufs: [Field; NUM_BUFS],
    patches: PatchField,
    masks: Vec<u8>,
    pool: Arc<ThreadPool>,
    probe: Probe,
    n_oct: usize,
    /// Accumulated (derivative flops, A flops) across eval_rhs calls.
    pub flops: (u64, u64),
}

impl CpuBackend {
    /// Backend with the default thread count (`threads = 0` → auto).
    pub fn new(mesh: &Mesh, params: BssnParams, kind: RhsKind) -> Self {
        Self::with_threads(mesh, params, kind, 0)
    }

    /// Backend with an explicit worker count (`0` = `GW_THREADS` env or
    /// available parallelism).
    pub fn with_threads(mesh: &Mesh, params: BssnParams, kind: RhsKind, threads: usize) -> Self {
        let tape = build_tape(kind, params);
        let n = mesh.n_octants();
        Self {
            params,
            tape,
            bufs: std::array::from_fn(|_| Field::zeros(NUM_VARS, n)),
            patches: PatchField::zeros(NUM_VARS, n),
            masks: boundary_face_masks(mesh),
            pool: ThreadPool::shared(threads),
            probe: Probe::disabled(),
            n_oct: n,
            flops: (0, 0),
        }
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn probe(&self) -> &Probe {
        &self.probe
    }

    fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    fn n_threads(&self) -> usize {
        self.pool.n_threads()
    }

    fn scatter_stats(&self) -> (u64, u64) {
        (self.n_oct as u64, (NUM_VARS * self.n_oct * PATCH_VOLUME) as u64)
    }

    fn upload_raw(&mut self, u: &Field) {
        self.bufs[0] = u.clone();
    }

    fn download_raw(&self) -> Field {
        self.bufs[0].clone()
    }

    fn o2p_raw(&mut self, mesh: &Mesh, input: Buf) {
        fill_patches_scatter_par(mesh, &self.bufs[buf_index(input)], &mut self.patches, &self.pool);
        fill_boundary_padding_par(mesh, &mut self.patches, NUM_VARS, &self.pool);
    }

    fn rhs_raw(&mut self, mesh: &Mesh, output: Buf) {
        let n = mesh.n_octants();
        let patches = &self.patches;
        let masks = &self.masks;
        let params = self.params;
        let tape = &self.tape;
        let probe = self.probe.clone();
        let out = UnsafeSlice::new(self.bufs[buf_index(output)].as_mut_slice());
        // One task per octant, as in the GPU backend's `grid1(n)` RHS
        // launch. Pool workers persist across backends, so the cached
        // workspace (and the Sommerfeld staging buffers riding with it)
        // is rebuilt whenever the tape slot count changes — never per
        // octant, which `Counter::WorkspaceAllocs` asserts.
        let per_oct: Vec<(u64, u64)> = self.pool.map(n, |e| {
            type Cached = (usize, RhsWorkspace, Vec<f64>, Vec<f64>);
            thread_local! {
                static WS: std::cell::RefCell<Option<Cached>> =
                    const { std::cell::RefCell::new(None) };
            }
            let h = mesh.octants[e].h;
            let patch_refs: [&[f64]; NUM_VARS] = std::array::from_fn(|v| patches.patch(v, e));
            WS.with(|cell| {
                let mut borrow = cell.borrow_mut();
                let slots = tape.as_ref().map(|t| t.n_slots).unwrap_or(1);
                if borrow.as_ref().map(|e| e.0 != slots).unwrap_or(true) {
                    probe.add(Counter::WorkspaceAllocs, 1);
                    *borrow = Some((
                        slots,
                        RhsWorkspace::new(slots),
                        vec![0.0; NUM_INPUTS],
                        vec![0.0; NUM_VARS],
                    ));
                }
                let (_, ws, inputs_buf, point_out) =
                    borrow.as_mut().expect("workspace just initialized");
                let mode = match tape {
                    Some(t) => RhsMode::Tape(t),
                    None => RhsMode::Pointwise,
                };
                let mut out_blocks: [&mut [f64]; NUM_VARS] = std::array::from_fn(|v| {
                    // Safety: task e exclusively owns octant e's output
                    // blocks for all variables.
                    unsafe { out.slice_mut((v * n + e) * BLOCK_VOLUME, BLOCK_VOLUME) }
                });
                let (df, af) = bssn_rhs_patch(&patch_refs, h, &params, &mode, ws, &mut out_blocks);
                sommerfeld_fix(
                    mesh,
                    e,
                    masks[e],
                    &patch_refs,
                    ws,
                    inputs_buf,
                    point_out,
                    &mut out_blocks,
                );
                (df, af)
            })
        });
        // Fixed-order reduction (u64 sums are order-independent anyway;
        // kept tree-shaped for policy uniformity).
        let (df, af) = tree_reduce(&per_oct, (0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
        self.flops.0 += df;
        self.flops.1 += af;
    }

    fn axpy_raw(&mut self, y: Buf, a: f64, x: Buf) {
        let (yi, xi) = (buf_index(y), buf_index(x));
        assert_ne!(yi, xi);
        let pool = self.pool.clone();
        let (ys, xs) = two_mut(&mut self.bufs, yi, xi);
        ys.axpy_par(a, xs, &pool);
    }

    fn assign_axpy_raw(&mut self, y: Buf, base: Buf, a: f64, x: Buf) {
        let yi = buf_index(y);
        let (bi, xi) = (buf_index(base), buf_index(x));
        assert!(yi != bi && yi != xi);
        // Clone-free triple borrow via raw split.
        let ptr = self.bufs.as_mut_ptr();
        // Safety: indices are pairwise distinct.
        unsafe {
            let ys = &mut *ptr.add(yi);
            let bs = &*ptr.add(bi);
            let xs = &*ptr.add(xi);
            ys.assign_axpy_par(bs, a, xs, &self.pool);
        }
    }

    fn copy_raw(&mut self, dst: Buf, src: Buf) {
        let (di, si) = (buf_index(dst), buf_index(src));
        assert_ne!(di, si);
        let pool = self.pool.clone();
        let (d, s) = two_mut(&mut self.bufs, di, si);
        d.copy_from_par(s, &pool);
    }

    fn sync_interfaces_raw(&mut self, mesh: &Mesh) {
        let pool = self.pool.clone();
        sync_interfaces_par(mesh, &mut self.bufs[0], &pool);
    }
}

fn two_mut(bufs: &mut [Field; NUM_BUFS], a: usize, b: usize) -> (&mut Field, &Field) {
    assert_ne!(a, b);
    let ptr = bufs.as_mut_ptr();
    // Safety: a != b.
    unsafe { (&mut *ptr.add(a), &*ptr.add(b)) }
}

/// Simulated-GPU backend: block-per-octant kernels on a `gw-gpu-sim`
/// device with full traffic metering (Algorithm 1's device side).
pub struct GpuBackend {
    pub device: Device,
    params: BssnParams,
    tape: Option<Tape>,
    bufs: [gw_gpu_sim::DeviceBuffer<f64>; NUM_BUFS],
    patches: gw_gpu_sim::DeviceBuffer<f64>,
    masks: Vec<u8>,
    probe: Probe,
    n_oct: usize,
}

impl GpuBackend {
    pub fn new(mesh: &Mesh, params: BssnParams, kind: RhsKind, device: Device) -> Self {
        let tape = build_tape(kind, params);
        let n = mesh.n_octants();
        let bufs = std::array::from_fn(|_| device.alloc::<f64>(NUM_VARS * n * BLOCK_VOLUME));
        let patches = device.alloc::<f64>(NUM_VARS * n * PATCH_VOLUME);
        Self {
            device,
            params,
            tape,
            bufs,
            patches,
            masks: boundary_face_masks(mesh),
            probe: Probe::disabled(),
            n_oct: n,
        }
    }

    /// Snapshot of the device traffic counters (benchmarks use this
    /// directly; the trait exposes it as `Option` via
    /// [`Backend::counters`]).
    pub fn counters(&self) -> CounterSnapshot {
        self.device.counters().snapshot()
    }

    /// Octant-to-patch kernel: grid `(|E|, dof)`, one block per
    /// octant×variable (the paper's launch geometry).
    fn o2p_kernel(&mut self, mesh: &Mesh, input: Buf) {
        let n = self.n_oct;
        let inp = self.device.kernel_view(&self.bufs[buf_index(input)]);
        let patches = self.device.kernel_view_mut(&mut self.patches);
        let prolong = gw_stencil::interp::Prolongation::new();
        let table_len = prolong.table_len();
        self.device.launch(LaunchConfig::grid2(n, NUM_VARS, "octant-to-patch"), |ctx| {
            let e = ctx.bx;
            let var = ctx.by;
            // Global → shared: the octant's nodal values (Algorithm 2
            // line 2) plus the interpolation table (line 3).
            let src = &inp[(var * n + e) * BLOCK_VOLUME..(var * n + e + 1) * BLOCK_VOLUME];
            ctx.global_load(BLOCK_VOLUME);
            let mut shared = ctx.shared_alloc(BLOCK_VOLUME);
            shared.copy_from_slice(src);
            ctx.global_load(table_len);
            // Own interior (shared → global).
            let patch_off = (var * n + e) * PATCH_VOLUME;
            {
                // Safety: each (e, var) block owns its own patch interior.
                let dst = unsafe { patches.slice_mut(patch_off, PATCH_VOLUME) };
                gw_stencil::patch::octant_to_patch_interior(&shared, dst);
                ctx.global_store(BLOCK_VOLUME);
            }
            let ops = mesh.scatter_of(e);
            let needs_prolong = ops.iter().any(|op| op.kind == gw_mesh::ScatterKind::Prolong);
            let mut fine13 = Vec::new();
            if needs_prolong {
                fine13 = ctx.shared_alloc(gw_stencil::interp::FINE_SIDE.pow(3));
                let fl = prolong.prolong3d(&shared, &mut fine13);
                ctx.flops(fl);
            }
            for op in ops {
                let dst_off = (var * n + op.dst as usize) * PATCH_VOLUME;
                // Safety: (dst, delta, ownership) regions are disjoint
                // across blocks by construction (see gw-mesh::grid).
                let dst = unsafe { patches.slice_mut(dst_off, PATCH_VOLUME) };
                let (written, _) = gw_mesh::scatter::apply_scatter_op(op, &shared, &fine13, dst);
                ctx.global_store(written as usize);
            }
        });
        // Boundary padding fill (host-trivial: a tiny clamped-copy kernel).
        let patches2 = self.device.kernel_view_mut(&mut self.patches);
        let regions = &mesh.boundary_regions;
        self.device.launch(LaunchConfig::grid2(regions.len(), NUM_VARS, "boundary-fill"), |ctx| {
            let (oct, delta) = regions[ctx.bx];
            let var = ctx.by;
            let off = (var * n + oct as usize) * PATCH_VOLUME;
            // Safety: each (region, var) block writes its own padding
            // region of one patch.
            let patch = unsafe { patches2.slice_mut(off, PATCH_VOLUME) };
            let p = PatchLayout::padded();
            let mut cnt = 0usize;
            for pz in gw_mesh::scatter::region_range(delta[2]) {
                for py in gw_mesh::scatter::region_range(delta[1]) {
                    for px in gw_mesh::scatter::region_range(delta[0]) {
                        let cx = px.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        let cy = py.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        let cz = pz.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                        patch[p.idx(px, py, pz)] = patch[p.idx(cx, cy, cz)];
                        cnt += 1;
                    }
                }
            }
            ctx.global_load(cnt);
            ctx.global_store(cnt);
        });
    }

    /// Fused RHS kernel: grid `(|E|)`, one block per octant patch.
    fn rhs_kernel(&mut self, mesh: &Mesh, output: Buf) {
        let n = self.n_oct;
        let patches = self.device.kernel_view(&self.patches);
        let out = self.device.kernel_view_mut(&mut self.bufs[buf_index(output)]);
        let params = self.params;
        let tape = &self.tape;
        let masks = &self.masks;
        let spill_per_point = tape
            .as_ref()
            .map(|t| (t.spill_stats.spill_load_bytes, t.spill_stats.spill_store_bytes))
            .unwrap_or((0, 0));
        let probe = self.probe.clone();
        self.device.launch(LaunchConfig::grid1(n, "bssn-rhs"), |ctx| {
            let e = ctx.bx;
            let h = mesh.octants[e].h;
            let patch_refs: [&[f64]; NUM_VARS] = std::array::from_fn(|v| {
                &patches[(v * n + e) * PATCH_VOLUME..(v * n + e + 1) * PATCH_VOLUME]
            });
            ctx.global_load(NUM_VARS * PATCH_VOLUME);
            type Cached = (RhsWorkspace, Vec<f64>, Vec<f64>);
            thread_local! {
                static WS: std::cell::RefCell<Option<Cached>> =
                    const { std::cell::RefCell::new(None) };
            }
            WS.with(|cell| {
                let mut borrow = cell.borrow_mut();
                let slots = tape.as_ref().map(|t| t.n_slots).unwrap_or(1);
                let (ws, inputs_buf, point_out) = borrow.get_or_insert_with(|| {
                    probe.add(Counter::WorkspaceAllocs, 1);
                    (RhsWorkspace::new(slots), vec![0.0; NUM_INPUTS], vec![0.0; NUM_VARS])
                });
                let mode = match tape {
                    Some(t) => RhsMode::Tape(t),
                    None => RhsMode::Pointwise,
                };
                let mut out_blocks: [&mut [f64]; NUM_VARS] = std::array::from_fn(|v| {
                    let off = (v * n + e) * BLOCK_VOLUME;
                    // Safety: block (e) exclusively owns octant e's
                    // output blocks for all variables.
                    unsafe { out.slice_mut(off, BLOCK_VOLUME) }
                });
                let (df, af) = bssn_rhs_patch(&patch_refs, h, &params, &mode, ws, &mut out_blocks);
                ctx.flops(df + af);
                // Derivative staging traffic (thread-local stores+loads of
                // the 210 blocks, the paper's register-pressure source).
                ctx.shared_traffic(2 * 210 * BLOCK_VOLUME);
                ctx.spill(
                    spill_per_point.0 * BLOCK_VOLUME as u64,
                    spill_per_point.1 * BLOCK_VOLUME as u64,
                );
                sommerfeld_fix(
                    mesh,
                    e,
                    masks[e],
                    &patch_refs,
                    ws,
                    inputs_buf,
                    point_out,
                    &mut out_blocks,
                );
            });
            ctx.global_store(NUM_VARS * BLOCK_VOLUME);
        });
    }

    /// Run only the octant-to-patch (+ boundary fill) kernel — used by
    /// the Table III / Fig. 14 kernel-level measurements.
    pub fn o2p_only(&mut self, mesh: &Mesh, input: Buf) {
        self.o2p_kernel(mesh, input);
    }

    /// Run only the fused RHS kernel (patches must be current) — used by
    /// the Fig. 11/14/15 kernel-level measurements.
    pub fn rhs_only(&mut self, mesh: &Mesh, output: Buf) {
        self.rhs_kernel(mesh, output);
    }
}

impl Backend for GpuBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn probe(&self) -> &Probe {
        &self.probe
    }

    fn set_probe(&mut self, probe: Probe) {
        self.device.set_probe(probe.clone());
        self.probe = probe;
    }

    fn counters(&self) -> Option<CounterSnapshot> {
        Some(GpuBackend::counters(self))
    }

    fn scatter_stats(&self) -> (u64, u64) {
        (self.n_oct as u64, (NUM_VARS * self.n_oct * PATCH_VOLUME) as u64)
    }

    fn upload_raw(&mut self, u: &Field) {
        self.device.htod_into(u.as_slice(), &mut self.bufs[0]);
    }

    fn download_raw(&self) -> Field {
        Field::from_vec(NUM_VARS, self.n_oct, self.device.dtoh(&self.bufs[0]))
    }

    fn o2p_raw(&mut self, mesh: &Mesh, input: Buf) {
        self.o2p_kernel(mesh, input);
    }

    fn rhs_raw(&mut self, mesh: &Mesh, output: Buf) {
        self.rhs_kernel(mesh, output);
    }

    fn axpy_raw(&mut self, y: Buf, a: f64, x: Buf) {
        let (yi, xi) = (buf_index(y), buf_index(x));
        assert_ne!(yi, xi);
        let len = self.bufs[yi].len();
        let ptr = self.bufs.as_mut_ptr();
        // Safety: distinct indices.
        let (yb, xb) = unsafe { (&mut *ptr.add(yi), &*ptr.add(xi)) };
        let xs = self.device.kernel_view(xb);
        let ys = self.device.kernel_view_mut(yb);
        let blocks = len.div_ceil(4096);
        self.device.launch(LaunchConfig::grid1(blocks, "axpy"), |ctx| {
            let s = ctx.bx * 4096;
            let e = (s + 4096).min(len);
            // Safety: disjoint chunks.
            let yv = unsafe { ys.slice_mut(s, e - s) };
            for (yy, &xx) in yv.iter_mut().zip(xs[s..e].iter()) {
                *yy += a * xx;
            }
            ctx.global_load(2 * (e - s));
            ctx.global_store(e - s);
            ctx.flops(2 * (e - s) as u64);
        });
    }

    fn assign_axpy_raw(&mut self, y: Buf, base: Buf, a: f64, x: Buf) {
        let (yi, bi, xi) = (buf_index(y), buf_index(base), buf_index(x));
        assert!(yi != bi && yi != xi);
        let len = self.bufs[yi].len();
        let ptr = self.bufs.as_mut_ptr();
        // Safety: pairwise distinct.
        let (yb, bb, xb) = unsafe { (&mut *ptr.add(yi), &*ptr.add(bi), &*ptr.add(xi)) };
        let bs = self.device.kernel_view(bb);
        let xs = self.device.kernel_view(xb);
        let ys = self.device.kernel_view_mut(yb);
        let blocks = len.div_ceil(4096);
        self.device.launch(LaunchConfig::grid1(blocks, "assign-axpy"), |ctx| {
            let s = ctx.bx * 4096;
            let e = (s + 4096).min(len);
            // Safety: disjoint chunks.
            let yv = unsafe { ys.slice_mut(s, e - s) };
            for i in 0..(e - s) {
                yv[i] = bs[s + i] + a * xs[s + i];
            }
            ctx.global_load(2 * (e - s));
            ctx.global_store(e - s);
            ctx.flops(2 * (e - s) as u64);
        });
    }

    fn copy_raw(&mut self, dst: Buf, src: Buf) {
        let (di, si) = (buf_index(dst), buf_index(src));
        assert_ne!(di, si);
        let ptr = self.bufs.as_mut_ptr();
        // Safety: distinct.
        let (db, sb) = unsafe { (&mut *ptr.add(di), &*ptr.add(si)) };
        self.device.d2d(sb, db);
    }

    fn sync_interfaces_raw(&mut self, mesh: &Mesh) {
        let n = self.n_oct;
        let buf = self.device.kernel_view_mut(&mut self.bufs[0]);
        let syncs = &mesh.syncs;
        self.device.launch(LaunchConfig::grid1(NUM_VARS, "iface-sync"), |ctx| {
            let var = ctx.bx;
            for c in syncs {
                let sv = unsafe {
                    buf.read((var * n + c.src_oct as usize) * BLOCK_VOLUME + c.src_idx as usize)
                };
                // Safety: sync targets are unique (deduplicated at grid
                // build) and vars are per-block.
                unsafe {
                    buf.write(
                        (var * n + c.dst_oct as usize) * BLOCK_VOLUME + c.dst_idx as usize,
                        sv,
                    )
                };
            }
            ctx.global_load(syncs.len());
            ctx.global_store(syncs.len());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

    fn small_mesh() -> Mesh {
        let mut leaves = vec![];
        for c in MortonKey::root().children() {
            leaves.extend(c.children());
        }
        leaves.sort();
        Mesh::build(Domain::centered_cube(8.0), &leaves)
    }

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::centered_cube(8.0), &t)
    }

    fn wavey_state(mesh: &Mesh) -> Field {
        let w = gw_bssn::init::LinearWaveData::new(1e-2, 0.0, 2.0, 1.0);
        let mut f = Field::zeros(NUM_VARS, mesh.n_octants());
        let mut vals = vec![0.0; NUM_VARS];
        for oct in 0..mesh.n_octants() {
            let l = PatchLayout::octant();
            for (i, j, k) in l.iter() {
                w.evaluate(mesh.point_coords(oct, i, j, k), &mut vals);
                for (v, &val) in vals.iter().enumerate() {
                    f.block_mut(v, oct)[l.idx(i, j, k)] = val;
                }
            }
        }
        f
    }

    #[test]
    fn cpu_and_gpu_rhs_agree_bitwise() {
        for mesh in [small_mesh(), adaptive_mesh()] {
            let u = wavey_state(&mesh);
            let params = BssnParams::default();
            let mut cpu = CpuBackend::new(&mesh, params, RhsKind::Pointwise);
            let mut gpu = GpuBackend::new(&mesh, params, RhsKind::Pointwise, Device::a100());
            cpu.upload(&u);
            gpu.upload(&u);
            cpu.eval_rhs(&mesh, Buf::U, Buf::K);
            gpu.eval_rhs(&mesh, Buf::U, Buf::K);
            // Compare the K buffers.
            let ck = cpu.bufs[buf_index(Buf::K)].clone();
            let gk = Field::from_vec(
                NUM_VARS,
                mesh.n_octants(),
                gpu.device.dtoh(&gpu.bufs[buf_index(Buf::K)]),
            );
            for (a, b) in ck.as_slice().iter().zip(gk.as_slice().iter()) {
                assert_eq!(a, b, "CPU and GPU RHS must agree bitwise");
            }
        }
    }

    #[test]
    fn generated_tape_matches_pointwise_on_backend() {
        let mesh = small_mesh();
        let u = wavey_state(&mesh);
        let params = BssnParams::default();
        let mut a = CpuBackend::new(&mesh, params, RhsKind::Pointwise);
        let mut b =
            CpuBackend::new(&mesh, params, RhsKind::Generated(ScheduleStrategy::BinaryReduce));
        a.upload(&u);
        b.upload(&u);
        a.eval_rhs(&mesh, Buf::U, Buf::K);
        b.eval_rhs(&mesh, Buf::U, Buf::K);
        for (x, y) in a.bufs[2].as_slice().iter().zip(b.bufs[2].as_slice().iter()) {
            assert!((x - y).abs() < 1e-10 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn gpu_counters_meter_traffic() {
        let mesh = small_mesh();
        let u = wavey_state(&mesh);
        let mut gpu = GpuBackend::new(
            &mesh,
            BssnParams::default(),
            RhsKind::Generated(ScheduleStrategy::StagedCse),
            Device::a100(),
        );
        gpu.upload(&u);
        let before = gpu.counters();
        gpu.eval_rhs(&mesh, Buf::U, Buf::K);
        let after = gpu.counters();
        let d = after.delta_since(&before);
        assert!(d.flops > 0);
        assert!(d.global_load_bytes > 0);
        assert!(d.global_store_bytes > 0);
        assert!(d.launches >= 2); // o2p + boundary + rhs
        assert!(d.spill_load_bytes > 0, "generated kernel must report spills");
        // The RHS is bandwidth bound: AI well below the A100 ridge.
        assert!(d.arithmetic_intensity() < 10.0);
    }

    #[test]
    fn axpy_ops_work_on_both_backends() {
        let mesh = small_mesh();
        let u = wavey_state(&mesh);
        let params = BssnParams::default();
        let mut cpu = CpuBackend::new(&mesh, params, RhsKind::Pointwise);
        let mut gpu = GpuBackend::new(&mesh, params, RhsKind::Pointwise, Device::a100());
        cpu.upload(&u);
        gpu.upload(&u);
        // Stage = U + 0.5*U = 1.5 U (using copy to set up K := U first).
        cpu.copy(Buf::K, Buf::U);
        gpu.copy(Buf::K, Buf::U);
        cpu.assign_axpy(Buf::Stage, Buf::U, 0.5, Buf::K);
        gpu.assign_axpy(Buf::Stage, Buf::U, 0.5, Buf::K);
        cpu.axpy(Buf::Stage, 1.0, Buf::K);
        gpu.axpy(Buf::Stage, 1.0, Buf::K);
        let c = cpu.bufs[1].clone();
        let g = gpu.device.dtoh(&gpu.bufs[1]);
        for ((a, b), &orig) in c.as_slice().iter().zip(g.iter()).zip(u.as_slice().iter()) {
            assert_eq!(a, b);
            assert!((a - 2.5 * orig).abs() < 1e-14);
        }
    }

    #[test]
    fn upload_download_roundtrip() {
        let mesh = small_mesh();
        let u = wavey_state(&mesh);
        let mut gpu =
            GpuBackend::new(&mesh, BssnParams::default(), RhsKind::Pointwise, Device::a100());
        gpu.upload(&u);
        let back = gpu.download();
        assert_eq!(u.as_slice(), back.as_slice());
    }

    #[test]
    fn steady_state_rhs_reuses_per_worker_workspaces() {
        // The RHS hot loop must stage through per-worker cached buffers:
        // workspace (re)builds are counted, and the count is bounded by
        // the worker set — never by octants × steps.
        let mesh = adaptive_mesh();
        let u = wavey_state(&mesh);
        let params = BssnParams::default();
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(CpuBackend::new(&mesh, params, RhsKind::Pointwise)),
            Box::new(GpuBackend::new(&mesh, params, RhsKind::Pointwise, Device::a100())),
        ];
        for b in &mut backends {
            let probe = Probe::enabled();
            b.set_probe(probe.clone());
            b.upload(&u);
            for _ in 0..3 {
                b.eval_rhs(&mesh, Buf::U, Buf::K);
            }
            if !probe.is_enabled() {
                continue; // obs compiled out: the counter is a no-op
            }
            let evals = 3 * mesh.n_octants() as u64;
            let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let bound = match b.name() {
                // Persistent pool: one workspace per worker (+ the
                // submitter), for the life of the process.
                "cpu" => (b.n_threads() + 1) as u64,
                // gpu-sim scopes its block executors to each launch
                // (kernel-launch semantics), so the cache lives
                // per launch per executor — still never per octant.
                _ => 3 * (workers + 1) as u64,
            };
            let allocs = probe.counter(Counter::WorkspaceAllocs);
            assert!(
                (1..=bound).contains(&allocs),
                "{}: {allocs} workspace allocs for {evals} octant evals (worker bound {bound})",
                b.name()
            );
        }
    }

    #[test]
    fn trait_dispatch_is_uniform_and_probed() {
        // One code path drives either backend through `dyn Backend`,
        // and the provided methods attribute phases/counters.
        let mesh = small_mesh();
        let u = wavey_state(&mesh);
        let params = BssnParams::default();
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(CpuBackend::new(&mesh, params, RhsKind::Pointwise)),
            Box::new(GpuBackend::new(&mesh, params, RhsKind::Pointwise, Device::a100())),
        ];
        for b in &mut backends {
            let probe = Probe::enabled();
            b.set_probe(probe.clone());
            b.upload(&u);
            b.eval_rhs(&mesh, Buf::U, Buf::K);
            b.sync_interfaces(&mesh);
            let _ = b.download();
            assert_eq!(probe.counter(Counter::PatchesProcessed), mesh.n_octants() as u64);
            assert!(probe.counter(Counter::BytesMoved) > 0);
            if !probe.is_enabled() {
                continue; // obs compiled out: nothing further to check
            }
            let trace = probe.report().expect("enabled probe");
            let phases = trace.phase_totals();
            for ph in ["o2p", "rhs", "p2o"] {
                assert!(phases.contains_key(ph), "{} missing phase {ph}", b.name());
            }
            match b.name() {
                "gpu-sim" => {
                    assert!(
                        probe.counter(Counter::KernelLaunches)
                            >= b.counters().expect("gpu meters").launches
                    );
                    // Kernel spans are attributed to their phase parents.
                    let kernels = trace.kernel_totals();
                    assert!(kernels.contains_key("bssn-rhs"));
                    assert!(trace
                        .events
                        .iter()
                        .any(|e| e.name == "bssn-rhs" && e.parent == Some("rhs")));
                }
                "cpu" => assert!(b.counters().is_none(), "cpu backend meters no device traffic"),
                other => panic!("unexpected backend {other}"),
            }
        }
    }
}
