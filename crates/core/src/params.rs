//! Solver parameter files.
//!
//! The paper's artifact drives runs with JSON parameter files
//! (`BSSN_GR/pars/q1.par.json`). We support the same workflow with a
//! small built-in parser for the flat JSON subset those files use
//! (string/number/bool values, no nesting) — kept dependency-free on
//! purpose (see DESIGN.md's dependency policy).

use crate::backend::RhsKind;
use crate::solver::{ConfigError, SolverConfig};
use crate::supervisor::SupervisorConfig;
use gw_bssn::BssnParams;
use gw_expr::schedule::ScheduleStrategy;
use std::collections::HashMap;

/// A typed parameter-file failure, so callers (notably the
/// `bssn_solver` binary's exit codes) can distinguish an unreadable file
/// from a malformed one from a validly-parsed-but-invalid configuration.
#[derive(Clone, Debug)]
pub enum ParamError {
    /// The file could not be read.
    Io { path: String, error: String },
    /// The text is not the supported flat-JSON subset.
    Parse(String),
    /// A run parameter is out of range or inconsistent.
    Invalid(String),
    /// The embedded [`SolverConfig`] is invalid.
    Config(ConfigError),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::Io { path, error } => write!(f, "{path}: {error}"),
            ParamError::Parse(e) => write!(f, "parse error: {e}"),
            ParamError::Invalid(e) => write!(f, "{e}"),
            ParamError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParamError {}

impl From<ConfigError> for ParamError {
    fn from(e: ConfigError) -> Self {
        ParamError::Config(e)
    }
}

/// A parsed flat JSON object.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Number(f64),
    Bool(bool),
    Str(String),
}

/// Parse a flat JSON object (`{"key": value, ...}` with scalar values).
pub fn parse_flat_json(text: &str) -> Result<HashMap<String, JsonValue>, String> {
    let mut out = HashMap::new();
    let s = text.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.trim_end().strip_suffix('}'))
        .ok_or("expected a JSON object {...}")?;
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        rest =
            rest.strip_prefix('"').ok_or_else(|| format!("expected quoted key at: {rest:.20}"))?;
        let kq = rest.find('"').ok_or("unterminated key")?;
        let key = rest[..kq].to_string();
        rest = rest[kq + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or("expected ':' after key")?.trim_start();
        // Value.
        let (value, consumed) = if let Some(r2) = rest.strip_prefix('"') {
            let vq = r2.find('"').ok_or("unterminated string value")?;
            (JsonValue::Str(r2[..vq].to_string()), vq + 2)
        } else if rest.starts_with("true") {
            (JsonValue::Bool(true), 4)
        } else if rest.starts_with("false") {
            (JsonValue::Bool(false), 5)
        } else {
            let end = rest
                .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
                .unwrap_or(rest.len());
            let num: f64 =
                rest[..end].parse().map_err(|e| format!("bad number '{}': {e}", &rest[..end]))?;
            (JsonValue::Number(num), end)
        };
        out.insert(key, value);
        rest = rest[consumed..].trim_start();
        if let Some(r2) = rest.strip_prefix(',') {
            rest = r2.trim_start();
        } else {
            break;
        }
    }
    Ok(out)
}

/// Full run description parsed from a par file.
#[derive(Clone, Debug)]
pub struct RunParams {
    /// Mass ratio of the binary (puncture initial data).
    pub q: f64,
    /// Coordinate separation.
    pub separation: f64,
    /// Domain half-width.
    pub domain_half: f64,
    pub base_level: u8,
    pub finest_level: u8,
    pub steps: usize,
    pub extract_every: usize,
    pub extract_radius: f64,
    pub config: SolverConfig,
    /// Run under the fault-tolerant supervisor (`"supervised": true`).
    pub supervised: bool,
    /// Supervisor settings (health cadence, checkpoints, degradation).
    pub supervisor: SupervisorConfig,
    /// Simulated ranks for a distributed run (`"ranks"`; 1 = single-rank).
    pub ranks: usize,
    /// Reliable-delivery retransmit budget (`"comm.max_retransmits"`).
    pub max_retransmits: u32,
    /// Liveness-poll cadence in milliseconds (`"comm.heartbeat_interval"`).
    pub heartbeat_interval_ms: f64,
    /// Receive deadline in milliseconds (`"comm.recv_timeout"`).
    pub recv_timeout_ms: f64,
    /// Overlap interior RHS compute with the halo exchange
    /// (`"comm.overlap"`); bit-identical to the blocking schedule.
    pub overlap: bool,
    /// Coordinated multi-rank snapshots (`"checkpoint.distributed"`);
    /// shards + manifest go under the supervisor's `checkpoint_dir`.
    pub checkpoint_distributed: bool,
    /// Observability trace sink (`"obs.profile"`): write a Chrome-trace
    /// JSON profile of the run to this path. `None` (the default) leaves
    /// instrumentation disabled. The `--profile <path>` CLI flag
    /// overrides this key.
    pub profile: Option<String>,
}

impl Default for RunParams {
    fn default() -> Self {
        Self {
            q: 1.0,
            separation: 6.0,
            domain_half: 16.0,
            base_level: 2,
            finest_level: 5,
            steps: 8,
            extract_every: 2,
            extract_radius: 8.0,
            config: SolverConfig::default(),
            supervised: false,
            supervisor: SupervisorConfig::default(),
            ranks: 1,
            max_retransmits: 8,
            heartbeat_interval_ms: 50.0,
            recv_timeout_ms: 10_000.0,
            overlap: false,
            checkpoint_distributed: false,
            profile: None,
        }
    }
}

impl RunParams {
    /// Parse a par file's text.
    pub fn from_json(text: &str) -> Result<RunParams, ParamError> {
        let map = parse_flat_json(text).map_err(ParamError::Parse)?;
        let mut p = RunParams::default();
        let num = |m: &HashMap<String, JsonValue>, k: &str, d: f64| -> Result<f64, ParamError> {
            match m.get(k) {
                None => Ok(d),
                Some(JsonValue::Number(v)) => Ok(*v),
                Some(other) => {
                    Err(ParamError::Invalid(format!("{k}: expected number, got {other:?}")))
                }
            }
        };
        p.q = num(&map, "q", p.q)?;
        p.separation = num(&map, "separation", p.separation)?;
        p.domain_half = num(&map, "domain_half", p.domain_half)?;
        p.base_level = num(&map, "base_level", p.base_level as f64)? as u8;
        p.finest_level = num(&map, "finest_level", p.finest_level as f64)? as u8;
        p.steps = num(&map, "steps", p.steps as f64)? as usize;
        p.extract_every = num(&map, "extract_every", p.extract_every as f64)? as usize;
        p.extract_radius = num(&map, "extract_radius", p.extract_radius)?;
        let mut bssn = BssnParams::default();
        bssn.eta = num(&map, "eta", bssn.eta)?;
        bssn.ko_sigma = num(&map, "ko_sigma", bssn.ko_sigma)?;
        bssn.chi_floor = num(&map, "chi_floor", bssn.chi_floor)?;
        p.config.params = bssn;
        p.config.courant = num(&map, "courant", p.config.courant)?;
        p.config.threads = num(&map, "threads", p.config.threads as f64)? as usize;
        p.config.extract_every = p.extract_every;
        if let Some(JsonValue::Bool(g)) = map.get("use_gpu") {
            p.config.use_gpu = *g;
        }
        if let Some(JsonValue::Str(r)) = map.get("rhs") {
            p.config.rhs_kind = match r.as_str() {
                "pointwise" => RhsKind::Pointwise,
                "sympygr" => RhsKind::Generated(ScheduleStrategy::CseTopo),
                "binary-reduce" => RhsKind::Generated(ScheduleStrategy::BinaryReduce),
                "staged" | "staged+cse" => RhsKind::Generated(ScheduleStrategy::StagedCse),
                other => return Err(ParamError::Invalid(format!("unknown rhs kind '{other}'"))),
            };
        }
        if let Some(JsonValue::Bool(s)) = map.get("supervised") {
            p.supervised = *s;
        }
        let sup = &mut p.supervisor;
        sup.check_every = num(&map, "check_every", sup.check_every as f64)? as u64;
        sup.checkpoint_every = num(&map, "checkpoint_every", sup.checkpoint_every as f64)? as u64;
        sup.keep_checkpoints = num(&map, "keep_checkpoints", sup.keep_checkpoints as f64)? as usize;
        if let Some(JsonValue::Str(d)) = map.get("checkpoint_dir") {
            sup.checkpoint_dir = Some(d.clone());
        }
        sup.thresholds.hamiltonian_max =
            num(&map, "hamiltonian_max", sup.thresholds.hamiltonian_max)?;
        // Puncture runs legitimately let chi dip slightly negative (the
        // RHS applies chi_floor pointwise); par files can widen the band.
        sup.thresholds.chi_min = num(&map, "chi_min", sup.thresholds.chi_min)?;
        sup.thresholds.alpha_min = num(&map, "alpha_min", sup.thresholds.alpha_min)?;
        sup.degradation.max_retries =
            num(&map, "max_retries", sup.degradation.max_retries as f64)? as u32;
        sup.degradation.courant_factor =
            num(&map, "retry_courant_factor", sup.degradation.courant_factor)?;
        sup.degradation.ko_boost = num(&map, "retry_ko_boost", sup.degradation.ko_boost)?;
        p.ranks = num(&map, "ranks", p.ranks as f64)? as usize;
        p.max_retransmits = num(&map, "comm.max_retransmits", p.max_retransmits as f64)? as u32;
        p.heartbeat_interval_ms = num(&map, "comm.heartbeat_interval", p.heartbeat_interval_ms)?;
        p.recv_timeout_ms = num(&map, "comm.recv_timeout", p.recv_timeout_ms)?;
        if let Some(JsonValue::Bool(b)) = map.get("comm.overlap") {
            p.overlap = *b;
        }
        if let Some(JsonValue::Bool(b)) = map.get("checkpoint.distributed") {
            p.checkpoint_distributed = *b;
        }
        if let Some(JsonValue::Str(path)) = map.get("obs.profile") {
            p.profile = Some(path.clone());
        }
        p.validate()?;
        Ok(p)
    }

    /// The comm-layer configuration these parameters describe. The
    /// overlapped path sizes its worker pool from the solver's
    /// `threads` so both drivers see one thread setting.
    pub fn world_config(&self) -> gw_comm::world::WorldConfig {
        gw_comm::world::WorldConfig {
            max_retransmits: self.max_retransmits,
            heartbeat_interval: std::time::Duration::from_secs_f64(
                self.heartbeat_interval_ms / 1e3,
            ),
            recv_timeout: std::time::Duration::from_secs_f64(self.recv_timeout_ms / 1e3),
            overlap: self.overlap,
            overlap_threads: self.config.threads,
            ..gw_comm::world::WorldConfig::default()
        }
    }

    /// Reject parameter combinations that cannot run: levels out of
    /// range, non-positive geometry, extraction sphere outside the
    /// domain, or an invalid [`SolverConfig`].
    pub fn validate(&self) -> Result<(), ParamError> {
        let invalid = |msg: String| Err(ParamError::Invalid(msg));
        if !(self.q > 0.0 && self.q.is_finite()) {
            return invalid(format!("mass ratio q must be positive and finite, got {}", self.q));
        }
        if !(self.separation > 0.0 && self.separation.is_finite()) {
            return invalid(format!("separation must be positive, got {}", self.separation));
        }
        if !(self.domain_half > 0.0 && self.domain_half.is_finite()) {
            return invalid(format!("domain_half must be positive, got {}", self.domain_half));
        }
        if self.base_level > self.finest_level {
            return invalid(format!(
                "base_level ({}) must not exceed finest_level ({})",
                self.base_level, self.finest_level
            ));
        }
        if self.finest_level as u32 > gw_octree::MAX_LEVEL as u32 {
            return invalid(format!(
                "finest_level ({}) exceeds the octree MAX_LEVEL ({})",
                self.finest_level,
                gw_octree::MAX_LEVEL
            ));
        }
        if !(self.extract_radius > 0.0 && self.extract_radius < self.domain_half) {
            return invalid(format!(
                "extract_radius ({}) must lie strictly inside the domain (half-width {})",
                self.extract_radius, self.domain_half
            ));
        }
        if self.supervisor.check_every == 0 {
            return invalid("check_every must be >= 1 (steps between health checks)".into());
        }
        let d = &self.supervisor.degradation;
        if !(d.courant_factor > 0.0 && d.courant_factor <= 1.0) {
            return invalid(format!(
                "retry_courant_factor must be in (0, 1], got {}",
                d.courant_factor
            ));
        }
        if !d.ko_boost.is_finite() || d.ko_boost < 0.0 {
            return invalid(format!("retry_ko_boost must be finite and >= 0, got {}", d.ko_boost));
        }
        let t = &self.supervisor.thresholds;
        if !t.chi_min.is_finite() || !t.alpha_min.is_finite() {
            return invalid(format!(
                "chi_min / alpha_min must be finite, got {} / {}",
                t.chi_min, t.alpha_min
            ));
        }
        if self.supervisor.thresholds.hamiltonian_max <= 0.0
            || self.supervisor.thresholds.hamiltonian_max.is_nan()
        {
            return invalid(format!(
                "hamiltonian_max must be positive, got {}",
                self.supervisor.thresholds.hamiltonian_max
            ));
        }
        if self.ranks == 0 {
            return invalid("ranks must be >= 1".into());
        }
        if !(self.heartbeat_interval_ms > 0.0 && self.heartbeat_interval_ms.is_finite()) {
            return invalid(format!(
                "comm.heartbeat_interval must be positive milliseconds, got {}",
                self.heartbeat_interval_ms
            ));
        }
        if !(self.recv_timeout_ms > 0.0 && self.recv_timeout_ms.is_finite()) {
            return invalid(format!(
                "comm.recv_timeout must be positive milliseconds, got {}",
                self.recv_timeout_ms
            ));
        }
        if self.checkpoint_distributed && self.supervisor.checkpoint_dir.is_none() {
            return invalid(
                "checkpoint.distributed requires checkpoint_dir (the snapshot root)".into(),
            );
        }
        self.config.validate()?;
        Ok(())
    }

    /// Load from a file path.
    pub fn from_file(path: &str) -> Result<RunParams, ParamError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ParamError::Io { path: path.to_string(), error: e.to_string() })?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_json() {
        let m = parse_flat_json(r#"{ "q": 2.0, "use_gpu": true, "rhs": "staged", "steps": 16 }"#)
            .unwrap();
        assert_eq!(m["q"], JsonValue::Number(2.0));
        assert_eq!(m["use_gpu"], JsonValue::Bool(true));
        assert_eq!(m["rhs"], JsonValue::Str("staged".into()));
        assert_eq!(m["steps"], JsonValue::Number(16.0));
    }

    #[test]
    fn run_params_from_json() {
        let p = RunParams::from_json(
            r#"{
                "q": 4.0,
                "separation": 8.0,
                "domain_half": 32.0,
                "finest_level": 6,
                "eta": 1.5,
                "ko_sigma": 0.3,
                "courant": 0.2,
                "use_gpu": true,
                "rhs": "binary-reduce",
                "threads": 4,
                "steps": 4
            }"#,
        )
        .unwrap();
        assert_eq!(p.q, 4.0);
        assert_eq!(p.separation, 8.0);
        assert_eq!(p.finest_level, 6);
        assert!(p.config.use_gpu);
        assert_eq!(p.config.courant, 0.2);
        assert_eq!(p.config.threads, 4);
        assert_eq!(p.config.params.eta, 1.5);
        assert!(matches!(p.config.rhs_kind, RhsKind::Generated(ScheduleStrategy::BinaryReduce)));
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let p = RunParams::from_json(r#"{ "q": 2.0 }"#).unwrap();
        assert_eq!(p.q, 2.0);
        assert_eq!(p.domain_half, 16.0);
        assert!(!p.config.use_gpu);
        assert_eq!(p.ranks, 1);
        assert_eq!(p.max_retransmits, 8);
        assert!(!p.checkpoint_distributed);
    }

    #[test]
    fn distributed_comm_keys_parse() {
        let p = RunParams::from_json(
            r#"{
                "ranks": 4,
                "comm.max_retransmits": 5,
                "comm.heartbeat_interval": 10.0,
                "comm.recv_timeout": 2000.0,
                "comm.overlap": true,
                "threads": 2,
                "checkpoint.distributed": true,
                "checkpoint_dir": "/tmp/gw_snapshots",
                "checkpoint_every": 2
            }"#,
        )
        .unwrap();
        assert_eq!(p.ranks, 4);
        assert_eq!(p.max_retransmits, 5);
        assert!(p.checkpoint_distributed);
        assert!(p.overlap);
        let wc = p.world_config();
        assert_eq!(wc.max_retransmits, 5);
        assert_eq!(wc.heartbeat_interval, std::time::Duration::from_millis(10));
        assert_eq!(wc.recv_timeout, std::time::Duration::from_secs(2));
        assert!(wc.overlap);
        assert_eq!(wc.overlap_threads, 2, "overlap pool follows the solver thread count");
        assert!(!RunParams::from_json("{}").unwrap().world_config().overlap);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(RunParams::from_json("not json").is_err());
        assert!(RunParams::from_json(r#"{ "rhs": "quantum" }"#).is_err());
        assert!(RunParams::from_json(r#"{ "q": "abc" }"#).is_err());
    }

    #[test]
    fn rejects_out_of_range_values() {
        // Each error message must name the offending parameter.
        let cases = [
            (r#"{ "courant": 0.0 }"#, "courant"),
            (r#"{ "courant": 1.5 }"#, "courant"),
            (r#"{ "q": -1.0 }"#, "q"),
            (r#"{ "ko_sigma": -0.1 }"#, "ko_sigma"),
            (r#"{ "chi_floor": 0.0 }"#, "chi_floor"),
            (r#"{ "base_level": 7, "finest_level": 3 }"#, "base_level"),
            (r#"{ "extract_radius": 99.0 }"#, "extract_radius"),
            (r#"{ "ranks": 0 }"#, "ranks"),
            (r#"{ "comm.heartbeat_interval": 0.0 }"#, "comm.heartbeat_interval"),
            (r#"{ "comm.recv_timeout": -1.0 }"#, "comm.recv_timeout"),
            (r#"{ "checkpoint.distributed": true }"#, "checkpoint_dir"),
            (r#"{ "threads": 100000 }"#, "threads"),
        ];
        for (json, needle) in cases {
            match RunParams::from_json(json) {
                Err(e) => {
                    let msg = e.to_string();
                    assert!(msg.contains(needle), "{json}: error '{msg}' lacks '{needle}'");
                }
                Ok(_) => panic!("{json}: expected validation error"),
            }
        }
    }

    #[test]
    fn typed_errors_distinguish_failure_classes() {
        assert!(matches!(RunParams::from_json("not json"), Err(ParamError::Parse(_))));
        assert!(matches!(RunParams::from_json(r#"{ "ranks": 0 }"#), Err(ParamError::Invalid(_))));
        assert!(matches!(
            RunParams::from_json(r#"{ "courant": 1.5 }"#),
            Err(ParamError::Config(crate::solver::ConfigError::Courant(_)))
        ));
        assert!(matches!(
            RunParams::from_file("/nonexistent/gw.par.json"),
            Err(ParamError::Io { .. })
        ));
    }

    #[test]
    fn obs_profile_key_parses() {
        let p = RunParams::from_json(r#"{ "obs.profile": "results/trace.json" }"#).unwrap();
        assert_eq!(p.profile.as_deref(), Some("results/trace.json"));
        assert_eq!(RunParams::from_json("{}").unwrap().profile, None);
    }
}
