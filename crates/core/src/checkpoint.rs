//! Checkpoint / restart.
//!
//! Production NR runs last days (Table IV: up to 388 hours), so restart
//! capability is table stakes. A checkpoint captures the grid (leaf
//! keys), the solver time/step counters and the full state vector in a
//! self-describing little-endian binary format built on the `bytes`
//! crate.
//!
//! Format v2 appends a CRC-32 of the entire body so bit rot and
//! truncated writes are detected at load time; v1 checkpoints (no
//! trailer) remain readable. [`save_to_file`] writes atomically
//! (temp file + fsync + rename), so a crash mid-write never clobbers
//! the previous good checkpoint.

use crate::solver::{GwSolver, SolverConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gw_comm::crc::crc32;
use gw_expr::symbols::NUM_VARS;
use gw_mesh::{Field, Mesh};
use gw_octree::{Domain, MortonKey};

const MAGIC: u32 = 0x6777_6370; // "gwcp"
/// Current write version. v2 = v1 body + trailing CRC-32 of the body.
const VERSION: u32 = 2;

/// A deserialized checkpoint.
pub struct Checkpoint {
    pub domain: Domain,
    pub leaves: Vec<MortonKey>,
    pub time: f64,
    pub steps_taken: u64,
    pub state: Field,
}

/// Serialize the solver's restartable state (format v2: body + CRC-32).
pub fn save(solver: &GwSolver) -> Bytes {
    let u = solver.state();
    let n = solver.mesh.n_octants();
    let mut buf = BytesMut::with_capacity(64 + n * 16 + u.as_slice().len() * 8 + 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    for a in 0..3 {
        buf.put_f64_le(solver.mesh.domain.min[a]);
    }
    for a in 0..3 {
        buf.put_f64_le(solver.mesh.domain.max[a]);
    }
    buf.put_f64_le(solver.time);
    buf.put_u64_le(solver.steps_taken);
    buf.put_u64_le(n as u64);
    for o in &solver.mesh.octants {
        buf.put_u32_le(o.key.x());
        buf.put_u32_le(o.key.y());
        buf.put_u32_le(o.key.z());
        buf.put_u8(o.key.level());
    }
    buf.put_u64_le(u.as_slice().len() as u64);
    for &v in u.as_slice() {
        buf.put_f64_le(v);
    }
    let body = buf.freeze();
    let mut out = BytesMut::with_capacity(body.len() + 4);
    out.put_slice(body.as_slice());
    out.put_u32_le(crc32(body.as_slice()));
    out.freeze()
}

/// Deserialize a checkpoint (v1 or v2).
pub fn load(data: Bytes) -> Result<Checkpoint, String> {
    let need = |data: &Bytes, n: usize| -> Result<(), String> {
        if data.remaining() < n {
            Err("truncated checkpoint".into())
        } else {
            Ok(())
        }
    };
    need(&data, 8)?;
    // Peek the version from the raw prefix to know whether a CRC
    // trailer is present before consuming anything.
    let version = u32::from_le_bytes(data.as_slice()[4..8].try_into().unwrap());
    let mut data = data;
    if version >= 2 {
        need(&data, 12)?; // header + trailer at minimum
        let body_len = data.remaining() - 4;
        let stored =
            u32::from_le_bytes(data.as_slice()[body_len..body_len + 4].try_into().unwrap());
        let actual = crc32(&data.as_slice()[..body_len]);
        if stored != actual {
            return Err(format!(
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {actual:#010x}) \
                 — file is corrupt or truncated"
            ));
        }
        data = data.slice(..body_len);
    }
    if data.get_u32_le() != MAGIC {
        return Err("not a gw-amr checkpoint (bad magic)".into());
    }
    let v = data.get_u32_le();
    if v != 1 && v != 2 {
        return Err(format!("unsupported checkpoint version {v} (supported: 1, 2)"));
    }
    need(&data, 6 * 8 + 8 + 8 + 8)?;
    let mut min = [0.0; 3];
    let mut max = [0.0; 3];
    for m in min.iter_mut() {
        *m = data.get_f64_le();
    }
    for m in max.iter_mut() {
        *m = data.get_f64_le();
    }
    let time = data.get_f64_le();
    let steps_taken = data.get_u64_le();
    let n = data.get_u64_le() as usize;
    need(&data, n * 13)?;
    let mut leaves = Vec::with_capacity(n);
    for _ in 0..n {
        let x = data.get_u32_le();
        let y = data.get_u32_le();
        let z = data.get_u32_le();
        let l = data.get_u8();
        leaves.push(MortonKey::new(x, y, z, l));
    }
    need(&data, 8)?;
    let len = data.get_u64_le() as usize;
    need(&data, len * 8)?;
    let mut vals = Vec::with_capacity(len);
    for _ in 0..len {
        vals.push(data.get_f64_le());
    }
    if len != n * NUM_VARS * gw_stencil::patch::BLOCK_VOLUME {
        return Err("state length inconsistent with grid".into());
    }
    let state = Field::from_vec(NUM_VARS, n, vals);
    Ok(Checkpoint { domain: Domain { min, max }, leaves, time, steps_taken, state })
}

/// Rebuild a solver from a checkpoint.
pub fn restore(config: SolverConfig, cp: Checkpoint) -> GwSolver {
    let mesh = Mesh::build(cp.domain, &cp.leaves);
    let mut solver = GwSolver::new(config, mesh, |_p, out| {
        out.iter_mut().for_each(|v| *v = 0.0);
    });
    solver.backend.upload(&cp.state);
    solver.time = cp.time;
    solver.steps_taken = cp.steps_taken;
    solver
}

/// Save to a file atomically: write a sibling temp file, fsync it, then
/// rename over the target. A crash at any point leaves either the old
/// checkpoint or the new one — never a half-written file.
pub fn save_to_file(solver: &GwSolver, path: &str) -> std::io::Result<()> {
    use std::io::Write;
    let bytes = save(solver);
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes.as_slice())?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// Load from a file.
pub fn load_from_file(path: &str) -> Result<Checkpoint, String> {
    let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    load(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_bssn::init::LinearWaveData;

    fn demo_solver() -> GwSolver {
        let domain = Domain::centered_cube(8.0);
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..2 {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        GwSolver::new(SolverConfig::default(), Mesh::build(domain, &leaves), move |p, out| {
            wave.evaluate(p, out)
        })
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut s = demo_solver();
        s.step();
        s.step();
        let bytes = save(&s);
        let cp = load(bytes).unwrap();
        assert_eq!(cp.time, s.time);
        assert_eq!(cp.steps_taken, 2);
        assert_eq!(cp.leaves.len(), s.mesh.n_octants());
        assert_eq!(cp.state.as_slice(), s.state().as_slice());
    }

    #[test]
    fn restored_solver_continues_identically() {
        // Evolve 4 steps straight vs 2 steps + checkpoint/restore + 2
        // steps: bit-identical results.
        let mut a = demo_solver();
        for _ in 0..4 {
            a.step();
        }
        let mut b = demo_solver();
        b.step();
        b.step();
        let cp = load(save(&b)).unwrap();
        let mut c = restore(SolverConfig::default(), cp);
        c.step();
        c.step();
        assert_eq!(c.steps_taken, 4);
        assert!((c.time - a.time).abs() < 1e-14);
        for (x, y) in a.state().as_slice().iter().zip(c.state().as_slice().iter()) {
            assert_eq!(x, y, "restart must be bit-exact");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(Bytes::from_static(b"nonsense")).is_err());
        let mut s = demo_solver();
        s.step();
        let good = save(&s);
        let truncated = good.slice(..good.len() / 2);
        assert!(load(truncated).is_err());
    }

    #[test]
    fn detects_bit_rot() {
        let mut s = demo_solver();
        s.step();
        let good = save(&s);
        // Flip one bit in the middle of the state vector.
        let mut corrupt = good.as_slice().to_vec();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        let err = match load(Bytes::from(corrupt)) {
            Err(e) => e,
            Ok(_) => panic!("corrupt checkpoint must not load"),
        };
        assert!(err.contains("checksum"), "got: {err}");
    }

    #[test]
    fn loads_v1_checkpoints() {
        // A v1 file is the v2 body minus the CRC trailer, with the
        // version field rewritten to 1.
        let mut s = demo_solver();
        s.step();
        let v2 = save(&s);
        let mut v1 = v2.as_slice()[..v2.len() - 4].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let cp = load(Bytes::from(v1)).expect("v1 checkpoint must load");
        assert_eq!(cp.steps_taken, 1);
        assert_eq!(cp.state.as_slice(), s.state().as_slice());
    }

    #[test]
    fn file_roundtrip() {
        let s = demo_solver();
        let path = std::env::temp_dir().join("gw_amr_test.ckpt");
        let path = path.to_str().unwrap();
        save_to_file(&s, path).unwrap();
        let cp = load_from_file(path).unwrap();
        assert_eq!(cp.state.as_slice(), s.state().as_slice());
        // No temp file left behind.
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        let _ = std::fs::remove_file(path);
    }
}
