//! Checkpoint / restart — single-rank files and coordinated
//! multi-rank snapshots.
//!
//! Production NR runs last days (Table IV: up to 388 hours), so restart
//! capability is table stakes. A checkpoint captures the grid (leaf
//! keys), the solver time/step counters and the full state vector in a
//! self-describing little-endian binary format built on the `bytes`
//! crate.
//!
//! Format v2 appends a CRC-32 of the entire body so bit rot and
//! truncated writes are detected at load time; the CRC-less v1 format is
//! rejected with a typed error (a trailer-less file cannot be
//! distinguished from a torn write). [`save_to_file`] writes atomically
//! (temp file + fsync + rename), so a crash mid-write never clobbers
//! the previous good checkpoint.
//!
//! # Distributed snapshots
//!
//! A multi-rank world checkpoints with a two-phase commit: every rank
//! first writes its own SFC-contiguous octant shard (same CRC-trailer
//! discipline, [`encode_shard`]), then — only after all shards are
//! durably on disk — the coordinator atomically renames a global
//! *manifest* into place recording the step, the partition map and every
//! shard's CRC ([`commit_manifest`]). The manifest is the commit point:
//! a snapshot missing it is invisible, and [`load_distributed`] verifies
//! each shard against the manifest CRCs, so a restart sees a globally
//! consistent state or a typed error — never a mixed-step mosaic.

use crate::solver::{GwSolver, SolverConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gw_comm::crc::crc32;
use gw_expr::symbols::NUM_VARS;
use gw_mesh::{Field, Mesh};
use gw_octree::{Domain, MortonKey};
use gw_stencil::patch::BLOCK_VOLUME;

const MAGIC: u32 = 0x6777_6370; // "gwcp"
/// Current write version. v2 = v1 body + trailing CRC-32 of the body.
const VERSION: u32 = 2;
const SHARD_MAGIC: u32 = 0x6777_7368; // "gwsh"
const SHARD_VERSION: u32 = 1;
const MANIFEST_MAGIC: u32 = 0x6777_6d66; // "gwmf"
const MANIFEST_VERSION: u32 = 1;

/// A typed checkpoint failure. Loads fail atomically: on any error no
/// partial state escapes (the decoder owns everything until it returns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// File ends before the structure it declares.
    Truncated { what: &'static str },
    /// Not a checkpoint of this kind.
    BadMagic { expected: u32, got: u32 },
    /// A format version this build cannot read (v1 lacks the CRC
    /// trailer and is rejected: integrity cannot be verified).
    UnsupportedVersion { got: u32, supported: u32 },
    /// Body does not match the CRC-32 trailer (bit rot / torn write).
    ChecksumMismatch { stored: u32, computed: u32 },
    /// Structurally valid but self-inconsistent (e.g. state length vs
    /// grid size, shard range vs partition map).
    Inconsistent { what: String },
    /// Filesystem error, with the path.
    Io { path: String, error: String },
    /// The distributed snapshot has no committed manifest.
    ManifestMissing { dir: String },
    /// A shard disagrees with the manifest that committed it.
    ShardMismatch { rank: usize, what: String },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated { what } => write!(f, "truncated checkpoint ({what})"),
            CheckpointError::BadMagic { expected, got } => {
                write!(f, "bad magic {got:#010x} (expected {expected:#010x})")
            }
            CheckpointError::UnsupportedVersion { got, supported } => write!(
                f,
                "unsupported checkpoint version {got} (supported: {supported}; \
                 v1 has no integrity trailer and cannot be verified)"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) \
                 — file is corrupt or truncated"
            ),
            CheckpointError::Inconsistent { what } => write!(f, "inconsistent checkpoint: {what}"),
            CheckpointError::Io { path, error } => write!(f, "{path}: {error}"),
            CheckpointError::ManifestMissing { dir } => {
                write!(f, "no committed snapshot manifest in {dir}")
            }
            CheckpointError::ShardMismatch { rank, what } => {
                write!(f, "shard {rank} disagrees with manifest: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A deserialized checkpoint.
pub struct Checkpoint {
    pub domain: Domain,
    pub leaves: Vec<MortonKey>,
    pub time: f64,
    pub steps_taken: u64,
    pub state: Field,
}

fn need(data: &Bytes, n: usize, what: &'static str) -> Result<(), CheckpointError> {
    if data.remaining() < n {
        Err(CheckpointError::Truncated { what })
    } else {
        Ok(())
    }
}

/// Append a CRC-32 trailer over `body`.
fn seal(body: Bytes) -> Bytes {
    let mut out = BytesMut::with_capacity(body.len() + 4);
    out.put_slice(body.as_slice());
    out.put_u32_le(crc32(body.as_slice()));
    out.freeze()
}

/// Verify and strip a CRC-32 trailer.
fn unseal(data: Bytes) -> Result<Bytes, CheckpointError> {
    need(&data, 12, "header + CRC trailer")?;
    let body_len = data.remaining() - 4;
    let stored = u32::from_le_bytes(data.as_slice()[body_len..body_len + 4].try_into().unwrap());
    let computed = crc32(&data.as_slice()[..body_len]);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    Ok(data.slice(..body_len))
}

/// Serialize the solver's restartable state (format v2: body + CRC-32).
pub fn save(solver: &GwSolver) -> Bytes {
    let u = solver.state();
    let n = solver.mesh.n_octants();
    let mut buf = BytesMut::with_capacity(64 + n * 16 + u.as_slice().len() * 8 + 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    for a in 0..3 {
        buf.put_f64_le(solver.mesh.domain.min[a]);
    }
    for a in 0..3 {
        buf.put_f64_le(solver.mesh.domain.max[a]);
    }
    buf.put_f64_le(solver.time);
    buf.put_u64_le(solver.steps_taken);
    buf.put_u64_le(n as u64);
    for o in &solver.mesh.octants {
        buf.put_u32_le(o.key.x());
        buf.put_u32_le(o.key.y());
        buf.put_u32_le(o.key.z());
        buf.put_u8(o.key.level());
    }
    buf.put_u64_le(u.as_slice().len() as u64);
    for &v in u.as_slice() {
        buf.put_f64_le(v);
    }
    seal(buf.freeze())
}

/// Deserialize a checkpoint (format v2 only; v1 is rejected as
/// unverifiable). Fails atomically — an error never leaves partial
/// state behind.
pub fn load(data: Bytes) -> Result<Checkpoint, CheckpointError> {
    need(&data, 8, "magic + version")?;
    // Peek the version from the raw prefix: v1 files carry no CRC
    // trailer, and verifying one over the whole file would mask the
    // real (version) problem with a checksum error.
    let version = u32::from_le_bytes(data.as_slice()[4..8].try_into().unwrap());
    let magic = u32::from_le_bytes(data.as_slice()[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic { expected: MAGIC, got: magic });
    }
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion { got: version, supported: VERSION });
    }
    let mut data = unseal(data)?;
    data.advance(8); // magic + version, already validated
    need(&data, 6 * 8 + 8 + 8 + 8, "domain + counters")?;
    let mut min = [0.0; 3];
    let mut max = [0.0; 3];
    for m in min.iter_mut() {
        *m = data.get_f64_le();
    }
    for m in max.iter_mut() {
        *m = data.get_f64_le();
    }
    let time = data.get_f64_le();
    let steps_taken = data.get_u64_le();
    let n = data.get_u64_le() as usize;
    need(&data, n * 13, "leaf keys")?;
    let mut leaves = Vec::with_capacity(n);
    for _ in 0..n {
        let x = data.get_u32_le();
        let y = data.get_u32_le();
        let z = data.get_u32_le();
        let l = data.get_u8();
        leaves.push(MortonKey::new(x, y, z, l));
    }
    need(&data, 8, "state length")?;
    let len = data.get_u64_le() as usize;
    need(&data, len * 8, "state vector")?;
    let mut vals = Vec::with_capacity(len);
    for _ in 0..len {
        vals.push(data.get_f64_le());
    }
    if len != n * NUM_VARS * BLOCK_VOLUME {
        return Err(CheckpointError::Inconsistent {
            what: format!("state length {len} does not match {n} octants"),
        });
    }
    let state = Field::from_vec(NUM_VARS, n, vals);
    Ok(Checkpoint { domain: Domain { min, max }, leaves, time, steps_taken, state })
}

/// Rebuild a solver from a checkpoint.
pub fn restore(config: SolverConfig, cp: Checkpoint) -> GwSolver {
    let mesh = Mesh::build(cp.domain, &cp.leaves);
    let mut solver = GwSolver::new(config, mesh, |_p, out| {
        out.iter_mut().for_each(|v| *v = 0.0);
    });
    solver.backend.upload(&cp.state);
    solver.time = cp.time;
    solver.steps_taken = cp.steps_taken;
    solver
}

/// Write `bytes` to `path` atomically: sibling temp file, fsync, rename.
/// A crash at any point leaves either the old file or the new one —
/// never a half-written hybrid.
pub fn write_atomic(path: &str, bytes: &[u8]) -> Result<(), CheckpointError> {
    use std::io::Write;
    let io = |e: std::io::Error| CheckpointError::Io { path: path.into(), error: e.to_string() };
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io(e));
    }
    Ok(())
}

/// Save to a file atomically (temp + fsync + rename).
pub fn save_to_file(solver: &GwSolver, path: &str) -> std::io::Result<()> {
    let bytes = save(solver);
    write_atomic(path, bytes.as_slice()).map_err(|e| std::io::Error::other(e.to_string()))
}

/// Load from a file.
pub fn load_from_file(path: &str) -> Result<Checkpoint, CheckpointError> {
    let data = std::fs::read(path)
        .map_err(|e| CheckpointError::Io { path: path.into(), error: e.to_string() })?;
    load(Bytes::from(data))
}

// ---------------------------------------------------------------------
// Distributed snapshots: per-rank shards + committed global manifest.
// ---------------------------------------------------------------------

/// One rank's slice of a distributed snapshot: its SFC-contiguous octant
/// range with values in `[octant][var][point]` order (the halo-message
/// layout).
#[derive(Clone, Debug, PartialEq)]
pub struct Shard {
    pub rank: usize,
    pub start_octant: usize,
    pub n_octants: usize,
    pub time: f64,
    pub steps_taken: u64,
    pub values: Vec<f64>,
}

/// Serialize a shard (CRC-sealed like the single-rank format).
pub fn encode_shard(shard: &Shard) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + shard.values.len() * 8);
    buf.put_u32_le(SHARD_MAGIC);
    buf.put_u32_le(SHARD_VERSION);
    buf.put_u64_le(shard.rank as u64);
    buf.put_u64_le(shard.start_octant as u64);
    buf.put_u64_le(shard.n_octants as u64);
    buf.put_f64_le(shard.time);
    buf.put_u64_le(shard.steps_taken);
    buf.put_u64_le(shard.values.len() as u64);
    for &v in &shard.values {
        buf.put_f64_le(v);
    }
    seal(buf.freeze())
}

/// Deserialize and verify a shard.
pub fn decode_shard(data: Bytes) -> Result<Shard, CheckpointError> {
    need(&data, 8, "shard magic + version")?;
    let magic = u32::from_le_bytes(data.as_slice()[0..4].try_into().unwrap());
    if magic != SHARD_MAGIC {
        return Err(CheckpointError::BadMagic { expected: SHARD_MAGIC, got: magic });
    }
    let version = u32::from_le_bytes(data.as_slice()[4..8].try_into().unwrap());
    if version != SHARD_VERSION {
        return Err(CheckpointError::UnsupportedVersion { got: version, supported: SHARD_VERSION });
    }
    let mut data = unseal(data)?;
    data.advance(8);
    need(&data, 8 * 5, "shard header")?;
    let rank = data.get_u64_le() as usize;
    let start_octant = data.get_u64_le() as usize;
    let n_octants = data.get_u64_le() as usize;
    let time = data.get_f64_le();
    let steps_taken = data.get_u64_le();
    let len = data.get_u64_le() as usize;
    need(&data, len * 8, "shard values")?;
    if len != n_octants * NUM_VARS * BLOCK_VOLUME {
        return Err(CheckpointError::Inconsistent {
            what: format!("shard value count {len} does not match {n_octants} octants"),
        });
    }
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(data.get_f64_le());
    }
    Ok(Shard { rank, start_octant, n_octants, time, steps_taken, values })
}

/// The global manifest of a distributed snapshot: grid, partition map,
/// counters, and the CRC + length of every shard. Written last,
/// atomically — its presence *is* the commit.
#[derive(Clone, Debug, PartialEq)]
pub struct DistManifest {
    pub domain: Domain,
    pub leaves: Vec<MortonKey>,
    /// Partition offsets: rank `r` owns octants `offsets[r]..offsets[r+1]`.
    pub offsets: Vec<usize>,
    pub time: f64,
    pub steps_taken: u64,
    /// CRC-32 of each rank's encoded shard file.
    pub shard_crcs: Vec<u32>,
    /// Byte length of each rank's encoded shard file.
    pub shard_lens: Vec<u64>,
}

impl DistManifest {
    pub fn ranks(&self) -> usize {
        self.shard_crcs.len()
    }
}

/// Serialize a manifest (CRC-sealed).
pub fn encode_manifest(m: &DistManifest) -> Bytes {
    assert_eq!(m.offsets.len(), m.ranks() + 1);
    assert_eq!(m.shard_lens.len(), m.ranks());
    let mut buf = BytesMut::with_capacity(128 + m.leaves.len() * 13 + m.ranks() * 12);
    buf.put_u32_le(MANIFEST_MAGIC);
    buf.put_u32_le(MANIFEST_VERSION);
    for a in 0..3 {
        buf.put_f64_le(m.domain.min[a]);
    }
    for a in 0..3 {
        buf.put_f64_le(m.domain.max[a]);
    }
    buf.put_f64_le(m.time);
    buf.put_u64_le(m.steps_taken);
    buf.put_u64_le(m.leaves.len() as u64);
    for k in &m.leaves {
        buf.put_u32_le(k.x());
        buf.put_u32_le(k.y());
        buf.put_u32_le(k.z());
        buf.put_u8(k.level());
    }
    buf.put_u64_le(m.ranks() as u64);
    for &o in &m.offsets {
        buf.put_u64_le(o as u64);
    }
    for r in 0..m.ranks() {
        buf.put_u32_le(m.shard_crcs[r]);
        buf.put_u64_le(m.shard_lens[r]);
    }
    seal(buf.freeze())
}

/// Deserialize and verify a manifest.
pub fn decode_manifest(data: Bytes) -> Result<DistManifest, CheckpointError> {
    need(&data, 8, "manifest magic + version")?;
    let magic = u32::from_le_bytes(data.as_slice()[0..4].try_into().unwrap());
    if magic != MANIFEST_MAGIC {
        return Err(CheckpointError::BadMagic { expected: MANIFEST_MAGIC, got: magic });
    }
    let version = u32::from_le_bytes(data.as_slice()[4..8].try_into().unwrap());
    if version != MANIFEST_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            got: version,
            supported: MANIFEST_VERSION,
        });
    }
    let mut data = unseal(data)?;
    data.advance(8);
    need(&data, 8 * 8 + 8, "manifest header")?;
    let mut min = [0.0; 3];
    let mut max = [0.0; 3];
    for m in min.iter_mut() {
        *m = data.get_f64_le();
    }
    for m in max.iter_mut() {
        *m = data.get_f64_le();
    }
    let time = data.get_f64_le();
    let steps_taken = data.get_u64_le();
    let n_leaves = data.get_u64_le() as usize;
    need(&data, n_leaves * 13, "manifest leaf keys")?;
    let mut leaves = Vec::with_capacity(n_leaves);
    for _ in 0..n_leaves {
        let x = data.get_u32_le();
        let y = data.get_u32_le();
        let z = data.get_u32_le();
        let l = data.get_u8();
        leaves.push(MortonKey::new(x, y, z, l));
    }
    need(&data, 8, "rank count")?;
    let ranks = data.get_u64_le() as usize;
    need(&data, (ranks + 1) * 8 + ranks * 12, "partition map + shard table")?;
    let offsets: Vec<usize> = (0..=ranks).map(|_| data.get_u64_le() as usize).collect();
    let mut shard_crcs = Vec::with_capacity(ranks);
    let mut shard_lens = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        shard_crcs.push(data.get_u32_le());
        shard_lens.push(data.get_u64_le());
    }
    if offsets.last() != Some(&n_leaves) {
        return Err(CheckpointError::Inconsistent {
            what: format!(
                "partition map covers {:?} octants but the grid has {n_leaves}",
                offsets.last()
            ),
        });
    }
    Ok(DistManifest {
        domain: Domain { min, max },
        leaves,
        offsets,
        time,
        steps_taken,
        shard_crcs,
        shard_lens,
    })
}

/// Path of rank `r`'s shard inside a snapshot directory.
pub fn shard_path(dir: &str, rank: usize) -> String {
    format!("{dir}/shard_{rank:04}.gwsh")
}

/// Path of the snapshot manifest (the commit marker).
pub fn manifest_path(dir: &str) -> String {
    format!("{dir}/manifest.gwmf")
}

/// Phase 1 of the distributed commit: write one rank's shard atomically.
/// Returns `(crc, byte length)` of the encoded shard for the manifest.
pub fn write_shard(dir: &str, shard: &Shard) -> Result<(u32, u64), CheckpointError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CheckpointError::Io { path: dir.into(), error: e.to_string() })?;
    let bytes = encode_shard(shard);
    write_atomic(&shard_path(dir, shard.rank), bytes.as_slice())?;
    Ok((crc32(bytes.as_slice()), bytes.len() as u64))
}

/// Phase 2 of the distributed commit: atomically rename the manifest
/// into place. Call only after every shard of this snapshot is durable —
/// the rename is the commit point.
pub fn commit_manifest(dir: &str, m: &DistManifest) -> Result<(), CheckpointError> {
    write_atomic(&manifest_path(dir), encode_manifest(m).as_slice())
}

/// Directory of the snapshot taken at `step`, under the snapshot root.
pub fn snapshot_dir(root: &str, step: u64) -> String {
    format!("{root}/step_{step:08}")
}

/// Find the newest *committed* snapshot under `root` (the one with the
/// highest step whose manifest exists). Snapshots are per-step
/// subdirectories, so a half-written newer snapshot never shadows or
/// clobbers the last committed one. Returns `None` when nothing has been
/// committed yet.
pub fn latest_snapshot(root: &str) -> Result<Option<String>, CheckpointError> {
    let rd = match std::fs::read_dir(root) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io { path: root.into(), error: e.to_string() }),
    };
    let mut best: Option<(u64, String)> = None;
    for entry in rd.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(step) = name.strip_prefix("step_").and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        let sub = format!("{root}/{name}");
        if std::path::Path::new(&manifest_path(&sub)).exists()
            && best.as_ref().is_none_or(|(b, _)| step > *b)
        {
            best = Some((step, sub));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// A verified, reassembled distributed snapshot.
pub struct DistCheckpoint {
    pub manifest: DistManifest,
    /// The global state vector, reassembled from all shards.
    pub state: Field,
}

/// Load a distributed snapshot: read the manifest (absence ⇒ nothing was
/// committed), then verify every shard byte-for-byte against the
/// manifest's CRCs before reassembling the global state. Any error is
/// returned before partial state can escape.
pub fn load_distributed(dir: &str) -> Result<DistCheckpoint, CheckpointError> {
    let mpath = manifest_path(dir);
    let mbytes = match std::fs::read(&mpath) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CheckpointError::ManifestMissing { dir: dir.into() })
        }
        Err(e) => return Err(CheckpointError::Io { path: mpath, error: e.to_string() }),
    };
    let manifest = decode_manifest(Bytes::from(mbytes))?;
    let n = manifest.leaves.len();
    let mut state = Field::zeros(NUM_VARS, n);
    for rank in 0..manifest.ranks() {
        let spath = shard_path(dir, rank);
        let sbytes = std::fs::read(&spath)
            .map_err(|e| CheckpointError::Io { path: spath.clone(), error: e.to_string() })?;
        if sbytes.len() as u64 != manifest.shard_lens[rank] {
            return Err(CheckpointError::ShardMismatch {
                rank,
                what: format!(
                    "byte length {} (manifest says {})",
                    sbytes.len(),
                    manifest.shard_lens[rank]
                ),
            });
        }
        let actual_crc = crc32(&sbytes);
        if actual_crc != manifest.shard_crcs[rank] {
            return Err(CheckpointError::ShardMismatch {
                rank,
                what: format!(
                    "CRC {actual_crc:#010x} (manifest says {:#010x})",
                    manifest.shard_crcs[rank]
                ),
            });
        }
        let shard = decode_shard(Bytes::from(sbytes))?;
        let (lo, hi) = (manifest.offsets[rank], manifest.offsets[rank + 1]);
        if shard.rank != rank || shard.start_octant != lo || shard.n_octants != hi - lo {
            return Err(CheckpointError::ShardMismatch {
                rank,
                what: format!(
                    "owns octants {}..{} (manifest says {lo}..{hi})",
                    shard.start_octant,
                    shard.start_octant + shard.n_octants
                ),
            });
        }
        if shard.steps_taken != manifest.steps_taken {
            return Err(CheckpointError::ShardMismatch {
                rank,
                what: format!(
                    "step {} (manifest says {})",
                    shard.steps_taken, manifest.steps_taken
                ),
            });
        }
        let mut it = shard.values.iter();
        for oct in lo..hi {
            for var in 0..NUM_VARS {
                for p in state.block_mut(var, oct) {
                    *p = *it.next().unwrap();
                }
            }
        }
    }
    Ok(DistCheckpoint { manifest, state })
}

/// Extract rank `r`'s shard values (`[octant][var][point]` order) from a
/// global field.
pub fn shard_values(state: &Field, lo: usize, hi: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity((hi - lo) * NUM_VARS * BLOCK_VOLUME);
    for oct in lo..hi {
        for var in 0..NUM_VARS {
            out.extend_from_slice(state.block(var, oct));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_bssn::init::LinearWaveData;

    fn demo_solver() -> GwSolver {
        let domain = Domain::centered_cube(8.0);
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..2 {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        GwSolver::new(SolverConfig::default(), Mesh::build(domain, &leaves), move |p, out| {
            wave.evaluate(p, out)
        })
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut s = demo_solver();
        s.step();
        s.step();
        let bytes = save(&s);
        let cp = load(bytes).unwrap();
        assert_eq!(cp.time, s.time);
        assert_eq!(cp.steps_taken, 2);
        assert_eq!(cp.leaves.len(), s.mesh.n_octants());
        assert_eq!(cp.state.as_slice(), s.state().as_slice());
    }

    #[test]
    fn restored_solver_continues_identically() {
        // Evolve 4 steps straight vs 2 steps + checkpoint/restore + 2
        // steps: bit-identical results.
        let mut a = demo_solver();
        for _ in 0..4 {
            a.step();
        }
        let mut b = demo_solver();
        b.step();
        b.step();
        let cp = load(save(&b)).unwrap();
        let mut c = restore(SolverConfig::default(), cp);
        c.step();
        c.step();
        assert_eq!(c.steps_taken, 4);
        assert!((c.time - a.time).abs() < 1e-14);
        for (x, y) in a.state().as_slice().iter().zip(c.state().as_slice().iter()) {
            assert_eq!(x, y, "restart must be bit-exact");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(Bytes::from_static(b"nonsense")).is_err());
        assert!(load(Bytes::from_static(b"xy")).is_err());
    }

    #[test]
    fn truncated_body_is_a_typed_error() {
        let mut s = demo_solver();
        s.step();
        let good = save(&s);
        // Cutting the file invalidates the CRC trailer (the last 4 bytes
        // of the cut are mid-body garbage): a checksum error, never a
        // partially-loaded checkpoint.
        let truncated = good.slice(..good.len() / 2);
        match load(truncated) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}", other = other.err()),
        }
        // Cut so short not even the header survives.
        match load(good.slice(..6)) {
            Err(CheckpointError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn flipped_crc_trailer_is_a_typed_error() {
        let mut s = demo_solver();
        s.step();
        let good = save(&s);
        let mut bad = good.as_slice().to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        match load(Bytes::from(bad)) {
            Err(CheckpointError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn detects_bit_rot() {
        let mut s = demo_solver();
        s.step();
        let good = save(&s);
        // Flip one bit in the middle of the state vector.
        let mut corrupt = good.as_slice().to_vec();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        match load(Bytes::from(corrupt)) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("corrupt checkpoint must not load: {other:?}", other = other.err()),
        }
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        // Valid CRC over a body whose magic is wrong: the magic check
        // must fire, not the checksum.
        let mut s = demo_solver();
        s.step();
        let good = save(&s);
        let mut bad = good.as_slice()[..good.len() - 4].to_vec();
        bad[0] ^= 0x01;
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        match load(Bytes::from(bad)) {
            Err(CheckpointError::BadMagic { expected, got }) => {
                assert_eq!(expected, MAGIC);
                assert_ne!(got, MAGIC);
            }
            other => panic!("expected BadMagic, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn v1_format_is_rejected_with_typed_error() {
        // A v1 file is the v2 body minus the CRC trailer, version field
        // rewritten to 1. It carries no integrity trailer, so it is
        // rejected — corruption in it would be undetectable.
        let mut s = demo_solver();
        s.step();
        let v2 = save(&s);
        let mut v1 = v2.as_slice()[..v2.len() - 4].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        match load(Bytes::from(v1)) {
            Err(CheckpointError::UnsupportedVersion { got: 1, supported: 2 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn file_roundtrip() {
        let s = demo_solver();
        let path = std::env::temp_dir().join("gw_amr_test.ckpt");
        let path = path.to_str().unwrap();
        save_to_file(&s, path).unwrap();
        let cp = load_from_file(path).unwrap();
        assert_eq!(cp.state.as_slice(), s.state().as_slice());
        // No temp file left behind.
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn shard_roundtrip() {
        let shard = Shard {
            rank: 2,
            start_octant: 10,
            n_octants: 1,
            time: 0.5,
            steps_taken: 7,
            values: (0..NUM_VARS * BLOCK_VOLUME).map(|i| i as f64 * 0.25).collect(),
        };
        let back = decode_shard(encode_shard(&shard)).unwrap();
        assert_eq!(back, shard);
    }

    #[test]
    fn distributed_snapshot_commit_and_reload() {
        let mut s = demo_solver();
        s.step();
        let state = s.state();
        let n = s.mesh.n_octants();
        let dir = std::env::temp_dir().join("gw_amr_dist_ckpt_test");
        let dir = dir.to_str().unwrap().to_string();
        let _ = std::fs::remove_dir_all(&dir);
        let offsets = vec![0, n / 2, n];
        let mut crcs = Vec::new();
        let mut lens = Vec::new();
        for r in 0..2 {
            let (lo, hi) = (offsets[r], offsets[r + 1]);
            let shard = Shard {
                rank: r,
                start_octant: lo,
                n_octants: hi - lo,
                time: s.time,
                steps_taken: s.steps_taken,
                values: shard_values(&state, lo, hi),
            };
            let (crc, len) = write_shard(&dir, &shard).unwrap();
            crcs.push(crc);
            lens.push(len);
        }
        // Before the manifest exists the snapshot is invisible.
        assert!(matches!(load_distributed(&dir), Err(CheckpointError::ManifestMissing { .. })));
        let manifest = DistManifest {
            domain: s.mesh.domain,
            leaves: s.mesh.octants.iter().map(|o| o.key).collect(),
            offsets: offsets.clone(),
            time: s.time,
            steps_taken: s.steps_taken,
            shard_crcs: crcs,
            shard_lens: lens,
        };
        commit_manifest(&dir, &manifest).unwrap();
        let cp = load_distributed(&dir).unwrap();
        assert_eq!(cp.manifest.steps_taken, 1);
        assert_eq!(cp.state.as_slice(), state.as_slice());
        // A corrupted shard is caught against the manifest CRC.
        let spath = shard_path(&dir, 1);
        let mut bytes = std::fs::read(&spath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&spath, &bytes).unwrap();
        assert!(matches!(
            load_distributed(&dir),
            Err(CheckpointError::ShardMismatch { rank: 1, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
