//! `gw-core` — the paper's contribution: a GPU-accelerated octree-AMR
//! solver for the BSSN formulation of the Einstein equations.
//!
//! The solver implements Algorithm 1 of the paper:
//!
//! ```text
//! for each regrid window:
//!     M ← construct_grid(u)          (host; gw-octree + gw-mesh)
//!     v ← host_to_device(u)
//!     for each of f_r timesteps:     (device)
//!         v̂ ← octant-to-patch(v)     (scatter + interpolation)
//!         ŵ ← RHS(v̂)                 (fused 210-derivative + A kernel)
//!         w ← patch-to-octant(ŵ)
//!         v ← AXPY(w, v, Δt)         (RK4 stages)
//!     u ← device_to_host(v)
//! ```
//!
//! * [`backend`] — the two execution backends: [`backend::CpuBackend`]
//!   (host loops; the Dendro-GR-like CPU path) and
//!   [`backend::GpuBackend`] (kernels on the `gw-gpu-sim` device with
//!   block-per-octant mapping and full traffic metering).
//! * [`rk4`] — RK4 time integration over a backend.
//! * [`solver`] — [`solver::GwSolver`]: grid management, evolution,
//!   Sommerfeld boundaries, wave extraction hooks, regridding.
//! * [`regrid`] — intergrid state transfer (copy / prolong / inject).
//! * [`unigrid`] — a uniform-grid reference solver (the convergence
//!   reference standing in for LAZEV in Fig. 19; see DESIGN.md).
//! * [`multi`] — multi-rank (simulated multi-GPU) evolution with ghost
//!   exchange over `gw-comm`, feeding the scaling studies.
//! * [`checkpoint`] — atomic, CRC-protected checkpoint/restart.
//! * [`supervisor`] — supervised evolution: health monitoring (NaN /
//!   positivity / constraint checks), automatic checkpoint rotation,
//!   and rollback-based fault recovery with a degradation policy.

pub mod backend;
pub mod boundary;
pub mod checkpoint;
pub mod multi;
pub mod params;
pub mod regrid;
pub mod rk4;
pub mod run;
pub mod solver;
pub mod supervisor;
pub mod unigrid;

pub use backend::{Backend, CpuBackend, GpuBackend};
pub use rk4::Rk4;
pub use run::{Run, RunError, RunOutcome};
pub use solver::{ConfigError, GwSolver, SolverConfig};
pub use supervisor::{
    DegradationPolicy, HealthMonitor, HealthReport, HealthThresholds, RunSummary, Supervisor,
    SupervisorConfig, SupervisorError, SupervisorEvent,
};
