//! Distributed (multi-rank / multi-GPU) evolution.
//!
//! Octants are partitioned across ranks along the space-filling curve;
//! each rank evolves its contiguous range, exchanging ghost octant blocks
//! with neighbor ranks before every RHS evaluation (the `halo_exchange`
//! of Algorithm 1). The distributed result is bit-identical to the
//! single-rank run — the per-point arithmetic is unchanged — which the
//! tests assert; the value of this module for the paper's experiments is
//! the *metered traffic* feeding the scaling models (Figs. 17/18/20).
//!
//! With [`WorldConfig::overlap`] set, each RK stage runs the
//! dependency-aware overlapped schedule instead of the blocking one:
//! sends are posted first, the rank's *interior* octants (those whose
//! gather stencil reads only owned blocks) are evaluated on a worker
//! pool while the ghosts are in flight, and the *boundary* octants
//! finish after the nonblocking receives complete. The classification
//! is static per partition, every output slot keeps exactly one writer,
//! and reductions stay fixed-order, so the overlapped result is
//! bit-identical to the blocking one (see DESIGN.md §11).

use crate::checkpoint::{self, CheckpointError, DistManifest, Shard};
use gw_bssn::rhs::{bssn_rhs_patch, RhsMode, RhsWorkspace};
use gw_bssn::BssnParams;
use gw_comm::world::WorldConfig;
use gw_comm::{CommError, GhostPlan, GhostSchedule, RankCtx, RecvHandle, World};
use gw_expr::symbols::{NUM_INPUTS, NUM_VARS};
use gw_mesh::gather::fill_patches_gather;
use gw_mesh::{Field, Mesh, PatchField};
use gw_obs::{Counter, Phase, Probe};
use gw_octree::partition::{partition_uniform, PartitionMap};
use gw_par::{ThreadPool, UnsafeSlice};
use gw_stencil::interp::{ProlongWorkspace, Prolongation, FINE_SIDE};
use gw_stencil::patch::{PatchLayout, BLOCK_VOLUME, PADDING, PATCH_VOLUME, POINTS_PER_SIDE};
use std::time::Instant;

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistributedResult {
    pub state: Field,
    /// Per-rank (messages, bytes) sent.
    pub traffic: Vec<(u64, u64)>,
    /// Per-rank owned-octant × step work counts.
    pub work: Vec<u64>,
    /// The ghost plan used (for the scaling models).
    pub plan: GhostPlan,
}

/// All cross-octant data dependencies of one RHS + sync step.
pub fn dependencies(mesh: &Mesh) -> Vec<(u32, u32)> {
    let mut deps: Vec<(u32, u32)> = mesh.scatter.iter().map(|op| (op.src, op.dst)).collect();
    deps.extend(mesh.syncs.iter().map(|c| (c.src_oct, c.dst_oct)));
    deps.sort_unstable();
    deps.dedup();
    deps
}

/// Exchange ghost blocks of `field` according to the plan (all 24 vars of
/// each listed octant). Receives are checked: a dropped, truncated, or
/// corrupted message surfaces as a [`CommError`] — the field is never
/// partially updated from a bad payload.
fn exchange(
    ctx: &RankCtx<'_>,
    plan: &GhostPlan,
    part: &PartitionMap,
    field: &mut Field,
    tag: u64,
) -> Result<(), CommError> {
    let r = ctx.rank();
    let n = field.n_oct;
    // Post sends.
    for q in 0..ctx.size() {
        let list = &plan.sends[r][q];
        if list.is_empty() {
            continue;
        }
        let mut payload = Vec::with_capacity(list.len() * NUM_VARS * BLOCK_VOLUME);
        for &oct in list {
            for v in 0..NUM_VARS {
                payload.extend_from_slice(field.block(v, oct as usize));
            }
        }
        ctx.send(q, tag, &payload);
    }
    // Receive.
    for q in 0..ctx.size() {
        let list = &plan.recvs[r][q];
        if list.is_empty() {
            continue;
        }
        let payload = ctx.try_recv(q, tag)?;
        // The CRC header guarantees integrity; this checks the *schedule*
        // agreed with the sender.
        if payload.len() != list.len() * NUM_VARS * BLOCK_VOLUME {
            return Err(CommError::Truncated {
                src: q,
                dst: r,
                tag,
                declared: list.len() * NUM_VARS * BLOCK_VOLUME * 8,
                got: payload.len() * 8,
            });
        }
        let mut off = 0;
        for &oct in list {
            for v in 0..NUM_VARS {
                field.block_mut(v, oct as usize).copy_from_slice(&payload[off..off + BLOCK_VOLUME]);
                off += BLOCK_VOLUME;
            }
        }
    }
    let _ = (n, part);
    Ok(())
}

/// Message tag for RK stage `stage` (0..=3) or the interface sync
/// (`STAGE_SYNC`) of global step `step`. Qualifying tags with the stage
/// *and* step keeps a retransmitted straggler from one stage from ever
/// matching the next stage's receive, on both the blocking and the
/// overlapped path, and stays well below the collective tag space
/// (`1 << 63`).
fn stage_tag(step: usize, stage: u64) -> u64 {
    debug_assert!(stage <= STAGE_SYNC);
    ((step as u64) << 3) | stage
}

/// The post-update interface-sync exchange slot of [`stage_tag`].
const STAGE_SYNC: u64 = 4;

/// Post the sends and nonblocking receives of one halo exchange and
/// return the in-flight receive handles (one per neighbor, in rank
/// order). The payload schedule is exactly [`exchange`]'s.
fn post_exchange<'c>(
    ctx: &'c RankCtx<'c>,
    plan: &GhostPlan,
    field: &Field,
    tag: u64,
) -> Vec<RecvHandle<'c, 'c>> {
    let r = ctx.rank();
    for q in 0..ctx.size() {
        let list = &plan.sends[r][q];
        if list.is_empty() {
            continue;
        }
        let mut payload = Vec::with_capacity(list.len() * NUM_VARS * BLOCK_VOLUME);
        for &oct in list {
            for v in 0..NUM_VARS {
                payload.extend_from_slice(field.block(v, oct as usize));
            }
        }
        ctx.isend(q, tag, &payload);
    }
    (0..ctx.size()).filter(|&q| !plan.recvs[r][q].is_empty()).map(|q| ctx.irecv(q, tag)).collect()
}

/// Complete the receives posted by [`post_exchange`], copying ghost
/// blocks into `field` with the same checks as the blocking
/// [`exchange`] — a bad payload never partially updates the field.
fn finish_exchange(
    ctx: &RankCtx<'_>,
    plan: &GhostPlan,
    field: &mut Field,
    tag: u64,
    handles: Vec<RecvHandle<'_, '_>>,
) -> Result<(), CommError> {
    let r = ctx.rank();
    for mut h in handles {
        let q = h.src();
        let list = &plan.recvs[r][q];
        let payload = h.wait()?;
        if payload.len() != list.len() * NUM_VARS * BLOCK_VOLUME {
            return Err(CommError::Truncated {
                src: q,
                dst: r,
                tag,
                declared: list.len() * NUM_VARS * BLOCK_VOLUME * 8,
                got: payload.len() * 8,
            });
        }
        let mut off = 0;
        for &oct in list {
            for v in 0..NUM_VARS {
                field.block_mut(v, oct as usize).copy_from_slice(&payload[off..off + BLOCK_VOLUME]);
                off += BLOCK_VOLUME;
            }
        }
    }
    Ok(())
}

/// Static dependency classification of one rank's owned octants,
/// built once per partition for the overlapped exchange path.
struct OwnedSplit {
    /// Owned octants whose gather stencil reads only owned blocks —
    /// safe to evaluate while ghosts are still in flight.
    interior: Vec<usize>,
    /// Owned octants with at least one ghost gather source — must wait
    /// for the exchange to complete.
    boundary: Vec<usize>,
    /// Indices into `mesh.syncs` (owned dst) whose source is owned —
    /// applicable before ghost arrival. Empty when the owned sync set
    /// chains or duplicates destinations (then order matters and
    /// everything stays in `syncs_ghost`, in original order).
    syncs_local: Vec<usize>,
    /// Indices into `mesh.syncs` (owned dst) applied after the
    /// exchange completes, in original `mesh.syncs` order.
    syncs_ghost: Vec<usize>,
    /// Physical-boundary padding regions per octant id (from
    /// `mesh.boundary_regions`), so the per-octant pipeline can pad
    /// without a second sweep.
    regions_of: Vec<Vec<[i8; 3]>>,
}

fn classify_owned(mesh: &Mesh, owned: &std::ops::Range<usize>) -> OwnedSplit {
    let is_owned = |o: u32| owned.contains(&(o as usize));
    let mut interior = Vec::new();
    let mut boundary = Vec::new();
    for e in owned.clone() {
        if mesh.gather_of(e).iter().all(|op| is_owned(op.src)) {
            interior.push(e);
        } else {
            boundary.push(e);
        }
    }
    let mut regions_of = vec![Vec::new(); mesh.n_octants()];
    for &(b, delta) in &mesh.boundary_regions {
        regions_of[b as usize].push(delta);
    }
    // Interface syncs may chain (a sync destination read as a later
    // sync's source — possible at ≥ 3 refinement levels) or duplicate a
    // destination; either makes application order observable, so the
    // split is only taken when the owned sync set is provably
    // order-free. Otherwise all owned syncs run post-arrival in the
    // blocking path's original order — bit-identical by construction.
    let owned_syncs: Vec<usize> = (0..mesh.syncs.len())
        .filter(|&i| owned.contains(&(mesh.syncs[i].dst_oct as usize)))
        .collect();
    let mut written = std::collections::HashSet::new();
    let mut order_sensitive = false;
    for &i in &owned_syncs {
        let c = &mesh.syncs[i];
        if !written.insert((c.dst_oct, c.dst_idx)) {
            order_sensitive = true;
            break;
        }
    }
    if !order_sensitive {
        order_sensitive = owned_syncs
            .iter()
            .any(|&i| written.contains(&(mesh.syncs[i].src_oct, mesh.syncs[i].src_idx)));
    }
    let (syncs_local, syncs_ghost) = if order_sensitive {
        (Vec::new(), owned_syncs)
    } else {
        owned_syncs.into_iter().partition(|&i| is_owned(mesh.syncs[i].src_oct))
    };
    OwnedSplit { interior, boundary, syncs_local, syncs_ghost, regions_of }
}

/// Apply the listed `mesh.syncs` entries (same copy as the blocking
/// path's sync loop: sync-outer, variable-inner).
fn apply_syncs(mesh: &Mesh, indices: &[usize], u: &mut Field) {
    for &i in indices {
        let c = &mesh.syncs[i];
        for v in 0..NUM_VARS {
            let sv = u.block(v, c.src_oct as usize)[c.src_idx as usize];
            u.block_mut(v, c.dst_oct as usize)[c.dst_idx as usize] = sv;
        }
    }
}

/// Reusable per-evaluator scratch: the gather/prolongation buffers plus
/// the per-point input/output staging of the Sommerfeld fix. Allocated
/// once per rank (serial path) or once per worker thread (overlapped
/// path) and counted in [`Counter::WorkspaceAllocs`] — the hot loop
/// itself never allocates.
struct EvalScratch {
    inputs: Vec<f64>,
    point: Vec<f64>,
    prolong: Prolongation,
    pws: ProlongWorkspace,
    fine13: Vec<f64>,
}

impl EvalScratch {
    fn new() -> Self {
        Self {
            inputs: vec![0.0; NUM_INPUTS],
            point: vec![0.0; NUM_VARS],
            prolong: Prolongation::new(),
            pws: ProlongWorkspace::new(),
            fine13: vec![0.0f64; FINE_SIDE * FINE_SIDE * FINE_SIDE],
        }
    }
}

/// Parallel octant→patch + RHS pipeline over an explicit octant list, on
/// the shared worker pool. Per octant: interior copy, gather (with
/// prolongation), physical-boundary padding, fused RHS, Sommerfeld fix.
/// Each octant's patch and output blocks have exactly one writer and the
/// per-point arithmetic matches [`eval_rhs_local`] exactly, so the
/// result is bit-identical to the serial sweep at any thread count and
/// any list order.
#[allow(clippy::too_many_arguments)]
fn eval_rhs_list(
    mesh: &Mesh,
    list: &[usize],
    regions_of: &[Vec<[i8; 3]>],
    params: &BssnParams,
    input: &Field,
    patches: &mut PatchField,
    masks: &[u8],
    out: &mut Field,
    pool: &ThreadPool,
    probe: &Probe,
) {
    let n_oct = mesh.n_octants();
    let patches_s = UnsafeSlice::new(patches.as_mut_slice());
    let out_s = UnsafeSlice::new(out.as_mut_slice());
    pool.for_each(list.len(), |i| {
        let e = list[i];
        let h = mesh.octants[e].h;
        thread_local! {
            static WS: std::cell::RefCell<Option<(RhsWorkspace, EvalScratch)>> =
                const { std::cell::RefCell::new(None) };
        }
        WS.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let (ws, scratch) = borrow.get_or_insert_with(|| {
                probe.add(Counter::WorkspaceAllocs, 1);
                (RhsWorkspace::new(1), EvalScratch::new())
            });
            let p = PatchLayout::padded();
            for v in 0..NUM_VARS {
                // Safety: octants in `list` are distinct and slot
                // (v, e) belongs to this iteration alone.
                let patch =
                    unsafe { patches_s.slice_mut((v * n_oct + e) * PATCH_VOLUME, PATCH_VOLUME) };
                gw_stencil::patch::octant_to_patch_interior(input.block(v, e), patch);
                for op in mesh.gather_of(e) {
                    let src = input.block(v, op.src as usize);
                    if op.kind == gw_mesh::ScatterKind::Prolong {
                        scratch.prolong.prolong3d_ws(src, &mut scratch.fine13, &mut scratch.pws);
                    }
                    gw_mesh::scatter::apply_scatter_op(op, src, &scratch.fine13, patch);
                }
                // Physical-boundary padding: clamp-copy from the
                // interior, same as fill_boundary_padding_range.
                for delta in &regions_of[e] {
                    for pz in gw_mesh::scatter::region_range(delta[2]) {
                        for py in gw_mesh::scatter::region_range(delta[1]) {
                            for px in gw_mesh::scatter::region_range(delta[0]) {
                                let cx = px.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                                let cy = py.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                                let cz = pz.clamp(PADDING, PADDING + POINTS_PER_SIDE - 1);
                                patch[p.idx(px, py, pz)] = patch[p.idx(cx, cy, cz)];
                            }
                        }
                    }
                }
            }
            // Safety: the (v, e) patch slots were fully written above and
            // no other iteration touches them; output blocks (v, e) are
            // disjoint per octant.
            let patch_refs: [&[f64]; NUM_VARS] = std::array::from_fn(|v| unsafe {
                patches_s.slice((v * n_oct + e) * PATCH_VOLUME, PATCH_VOLUME)
            });
            let mut out_blocks: [&mut [f64]; NUM_VARS] = std::array::from_fn(|v| unsafe {
                out_s.slice_mut((v * n_oct + e) * BLOCK_VOLUME, BLOCK_VOLUME)
            });
            bssn_rhs_patch(&patch_refs, h, params, &RhsMode::Pointwise, ws, &mut out_blocks);
            crate::boundary::sommerfeld_fix(
                mesh,
                e,
                masks[e],
                &patch_refs,
                ws,
                &mut scratch.inputs,
                &mut scratch.point,
                &mut out_blocks,
            );
        });
    });
}

/// Local RHS evaluation over owned octants (gather-based padding so only
/// owned patches are touched).
#[allow(clippy::too_many_arguments)]
fn eval_rhs_local(
    mesh: &Mesh,
    owned: std::ops::Range<usize>,
    params: &BssnParams,
    input: &Field,
    patches: &mut PatchField,
    ws: &mut RhsWorkspace,
    scratch: &mut EvalScratch,
    masks: &[u8],
    out: &mut Field,
) {
    // Padding for owned patches (gather touches exactly dst ∈ owned).
    // We reuse the full-mesh gather but restrict to the owned range.
    fill_patches_gather_range(mesh, input, patches, owned.clone(), scratch);
    gw_mesh::scatter::fill_boundary_padding_range(mesh, patches, NUM_VARS, owned.clone());
    let n = mesh.n_octants();
    for e in owned {
        let h = mesh.octants[e].h;
        let patch_refs: [&[f64]; NUM_VARS] = std::array::from_fn(|v| patches.patch(v, e));
        let base = out.as_mut_slice().as_mut_ptr();
        // Safety: blocks (v, e) are disjoint slices.
        let mut out_blocks: [&mut [f64]; NUM_VARS] = std::array::from_fn(|v| unsafe {
            std::slice::from_raw_parts_mut(base.add((v * n + e) * BLOCK_VOLUME), BLOCK_VOLUME)
        });
        bssn_rhs_patch(&patch_refs, h, params, &RhsMode::Pointwise, ws, &mut out_blocks);
        crate::boundary::sommerfeld_fix(
            mesh,
            e,
            masks[e],
            &patch_refs,
            ws,
            &mut scratch.inputs,
            &mut scratch.point,
            &mut out_blocks,
        );
    }
}

/// Gather-based padding restricted to a destination range.
fn fill_patches_gather_range(
    mesh: &Mesh,
    field: &Field,
    patches: &mut PatchField,
    range: std::ops::Range<usize>,
    scratch: &mut EvalScratch,
) {
    // Equivalent to gw_mesh::gather::fill_patches_gather but only for
    // dst ∈ range.
    for var in 0..field.dof {
        for b in range.clone() {
            gw_stencil::patch::octant_to_patch_interior(
                field.block(var, b),
                patches.patch_mut(var, b),
            );
            for op in mesh.gather_of(b) {
                let src = field.block(var, op.src as usize);
                if op.kind == gw_mesh::ScatterKind::Prolong {
                    scratch.prolong.prolong3d_ws(src, &mut scratch.fine13, &mut scratch.pws);
                }
                let dst = patches.patch_mut(var, op.dst as usize);
                gw_mesh::scatter::apply_scatter_op(op, src, &scratch.fine13, dst);
            }
        }
    }
    let _ = fill_patches_gather; // same algorithm, range-restricted
}

/// Everything one RK stage needs besides the fields: the exchange plan,
/// the evaluator state, and (when overlapping) the static classification
/// plus the worker pool.
struct StageCtx<'a, 'w> {
    ctx: &'a RankCtx<'w>,
    plan: &'a GhostPlan,
    part: &'a PartitionMap,
    mesh: &'a Mesh,
    params: &'a BssnParams,
    owned: std::ops::Range<usize>,
    masks: &'a [u8],
    probe: &'a Probe,
    /// `Some` = overlapped path (classification + pool).
    ov: Option<(&'a OwnedSplit, &'a ThreadPool)>,
}

/// One halo exchange + RHS evaluation: `out = rhs(field)` over the owned
/// octants, with ghosts of `field` refreshed under `tag`. Dispatches to
/// the blocking schedule or the overlapped one; both produce bit-identical
/// `out` (single-writer slots, unchanged per-point arithmetic).
fn rhs_stage(
    st: &StageCtx<'_, '_>,
    field: &mut Field,
    patches: &mut PatchField,
    ws: &mut RhsWorkspace,
    scratch: &mut EvalScratch,
    out: &mut Field,
    tag: u64,
) -> Result<(), CommError> {
    match st.ov {
        None => {
            {
                let _s = st.probe.start(Phase::Halo);
                exchange(st.ctx, st.plan, st.part, field, tag)?;
            }
            let _s = st.probe.start(Phase::Rhs);
            eval_rhs_local(
                st.mesh,
                st.owned.clone(),
                st.params,
                field,
                patches,
                ws,
                scratch,
                st.masks,
                out,
            );
        }
        Some((split, pool)) => {
            let handles = post_exchange(st.ctx, st.plan, field, tag);
            let t0 = Instant::now();
            {
                let _s = st.probe.start(Phase::HaloOverlap);
                eval_rhs_list(
                    st.mesh,
                    &split.interior,
                    &split.regions_of,
                    st.params,
                    field,
                    patches,
                    st.masks,
                    out,
                    pool,
                    st.probe,
                );
            }
            st.probe.add(Counter::HaloOverlapUs, t0.elapsed().as_micros() as u64);
            let t1 = Instant::now();
            {
                let _s = st.probe.start(Phase::Halo);
                finish_exchange(st.ctx, st.plan, field, tag, handles)?;
            }
            st.probe.add(Counter::HaloWaitUs, t1.elapsed().as_micros() as u64);
            let _s = st.probe.start(Phase::Rhs);
            eval_rhs_list(
                st.mesh,
                &split.boundary,
                &split.regions_of,
                st.params,
                field,
                patches,
                st.masks,
                out,
                pool,
                st.probe,
            );
        }
    }
    Ok(())
}

/// The post-update ghost refresh + interface sync closing each step.
/// Overlapped: owned-source syncs run while the ghosts travel, the rest
/// after arrival (or, if the sync set is order-sensitive, everything
/// runs post-arrival in original order — see [`classify_owned`]).
fn sync_stage(st: &StageCtx<'_, '_>, u: &mut Field, tag: u64) -> Result<(), CommError> {
    match st.ov {
        None => {
            {
                let _s = st.probe.start(Phase::Halo);
                exchange(st.ctx, st.plan, st.part, u, tag)?;
            }
            for c in &st.mesh.syncs {
                if !st.owned.contains(&(c.dst_oct as usize)) {
                    continue;
                }
                for v in 0..NUM_VARS {
                    let sv = u.block(v, c.src_oct as usize)[c.src_idx as usize];
                    u.block_mut(v, c.dst_oct as usize)[c.dst_idx as usize] = sv;
                }
            }
        }
        Some((split, _)) => {
            let handles = post_exchange(st.ctx, st.plan, u, tag);
            let t0 = Instant::now();
            {
                let _s = st.probe.start(Phase::HaloOverlap);
                apply_syncs(st.mesh, &split.syncs_local, u);
            }
            st.probe.add(Counter::HaloOverlapUs, t0.elapsed().as_micros() as u64);
            let t1 = Instant::now();
            {
                let _s = st.probe.start(Phase::Halo);
                finish_exchange(st.ctx, st.plan, u, tag, handles)?;
            }
            st.probe.add(Counter::HaloWaitUs, t1.elapsed().as_micros() as u64);
            apply_syncs(st.mesh, &split.syncs_ghost, u);
        }
    }
    Ok(())
}

/// Evolve `steps` RK4 steps on `ranks` simulated ranks. Panics on a
/// communication fault — with the default fault-free [`WorldConfig`] the
/// in-process channels cannot fault, so this is the convenient entry
/// point; supervised runs use [`evolve_distributed_cfg`].
pub fn evolve_distributed(
    mesh: &Mesh,
    u0: &Field,
    ranks: usize,
    steps: usize,
    courant: f64,
    params: BssnParams,
) -> DistributedResult {
    evolve_distributed_cfg(mesh, u0, ranks, steps, courant, params, WorldConfig::default())
        .unwrap_or_else(|e| panic!("fault-free distributed run failed: {e}"))
}

/// [`evolve_distributed`] with an explicit world configuration (fault
/// plan, receive timeout). Bounded message faults are recovered
/// transparently by the reliable delivery layer; any rank detecting an
/// *unrecoverable* fault aborts its evolution and the most telling error
/// is returned (a dead rank is named in preference to the secondary
/// timeouts it causes) — a faulted exchange never silently yields a
/// wrong state.
pub fn evolve_distributed_cfg(
    mesh: &Mesh,
    u0: &Field,
    ranks: usize,
    steps: usize,
    courant: f64,
    params: BssnParams,
    world_cfg: WorldConfig,
) -> Result<DistributedResult, CommError> {
    let h_min = mesh.octants.iter().map(|o| o.h).fold(f64::INFINITY, f64::min);
    let opts = SpanOpts { start_step: 0, steps, dt: courant * h_min, snapshot: None, kill: None };
    evolve_span(mesh, u0, ranks, params, world_cfg, opts).map_err(|f| match f {
        SpanFailure::Comm(e) => e,
        SpanFailure::Ckpt(e) => unreachable!("no checkpointing configured: {e}"),
    })
}

/// Why one span of distributed evolution stopped.
#[derive(Clone, Debug)]
enum SpanFailure {
    Comm(CommError),
    Ckpt(CheckpointError),
}

impl From<CommError> for SpanFailure {
    fn from(e: CommError) -> Self {
        SpanFailure::Comm(e)
    }
}

impl From<CheckpointError> for SpanFailure {
    fn from(e: CheckpointError) -> Self {
        SpanFailure::Ckpt(e)
    }
}

/// One contiguous stretch of distributed evolution: global steps
/// `start_step..steps` from the state `u0` (authoritative at
/// `start_step`), optionally taking coordinated snapshots and optionally
/// fail-stopping one rank (fault injection).
struct SpanOpts {
    start_step: usize,
    steps: usize,
    dt: f64,
    /// `(snapshot root, cadence in steps)`.
    snapshot: Option<(String, u64)>,
    kill: Option<KillSpec>,
}

fn evolve_span(
    mesh: &Mesh,
    u0: &Field,
    ranks: usize,
    params: BssnParams,
    world_cfg: WorldConfig,
    opts: SpanOpts,
) -> Result<DistributedResult, SpanFailure> {
    let n = mesh.n_octants();
    let part = partition_uniform(n, ranks);
    let plan = GhostSchedule::build(&part, dependencies(mesh).into_iter());
    let dt = opts.dt;
    let masks = crate::boundary::boundary_face_masks(mesh);
    // One probe handle per rank thread: spans carry per-thread ids, and
    // counters are shared atomics, so concurrent ranks attribute cleanly.
    let probe = world_cfg.probe.clone();

    let plan_ref = &plan;
    let part_ref = &part;
    let masks_ref = &masks;
    let start_step = opts.start_step;
    let steps = opts.steps;
    let snapshot = opts.snapshot;
    let kill = opts.kill;
    let snapshot_ref = &snapshot;
    let overlap = world_cfg.overlap;
    let overlap_threads = world_cfg.overlap_threads;
    let (mut results, traffic) = World::run_cfg(ranks, world_cfg, move |ctx| {
        let r = ctx.rank();
        let owned = part_ref.range(r);
        let mut u = u0.clone();
        let mut stage = Field::zeros(NUM_VARS, n);
        let mut k = Field::zeros(NUM_VARS, n);
        let mut acc = Field::zeros(NUM_VARS, n);
        let mut patches = PatchField::zeros(NUM_VARS, n);
        let mut ws = RhsWorkspace::new(1);
        let mut scratch = EvalScratch::new();
        probe.add(Counter::WorkspaceAllocs, 1);
        // Overlapped path: static interior/boundary classification plus
        // the shared worker pool, both built once per span.
        let split = overlap.then(|| classify_owned(mesh, &owned));
        let pool = overlap.then(|| ThreadPool::shared(overlap_threads));
        let st = StageCtx {
            ctx: &ctx,
            plan: plan_ref,
            part: part_ref,
            mesh,
            params: &params,
            owned: owned.clone(),
            masks: masks_ref,
            probe: &probe,
            ov: split.as_ref().zip(pool.as_deref()),
        };
        let mut work = 0u64;
        for s in start_step..steps {
            // Injected fail-stop: the rank dies here, visibly to the
            // liveness view, exactly as if its process were killed.
            if let Some(k) = kill {
                if r == k.rank && s == k.at_step {
                    ctx.declare_dead();
                    return Err(SpanFailure::Comm(CommError::RankDead { rank: r, dst: r }));
                }
            }
            // k1.
            rhs_stage(&st, &mut u, &mut patches, &mut ws, &mut scratch, &mut k, stage_tag(s, 0))?;
            for e in owned.clone() {
                for v in 0..NUM_VARS {
                    for (a, (b, kk)) in acc
                        .block_mut(v, e)
                        .iter_mut()
                        .zip(u.block(v, e).iter().zip(k.block(v, e).iter()))
                    {
                        *a = b + dt / 6.0 * kk;
                    }
                    for (s, (b, kk)) in stage
                        .block_mut(v, e)
                        .iter_mut()
                        .zip(u.block(v, e).iter().zip(k.block(v, e).iter()))
                    {
                        *s = b + dt / 2.0 * kk;
                    }
                }
            }
            // k2, k3.
            for (si, (w_acc, w_stage)) in
                [(dt / 3.0, dt / 2.0), (dt / 3.0, dt)].into_iter().enumerate()
            {
                rhs_stage(
                    &st,
                    &mut stage,
                    &mut patches,
                    &mut ws,
                    &mut scratch,
                    &mut k,
                    stage_tag(s, 1 + si as u64),
                )?;
                for e in owned.clone() {
                    for v in 0..NUM_VARS {
                        for (a, kk) in acc.block_mut(v, e).iter_mut().zip(k.block(v, e).iter()) {
                            *a += w_acc * kk;
                        }
                        for (s, (b, kk)) in stage
                            .block_mut(v, e)
                            .iter_mut()
                            .zip(u.block(v, e).iter().zip(k.block(v, e).iter()))
                        {
                            *s = b + w_stage * kk;
                        }
                    }
                }
            }
            // k4.
            rhs_stage(
                &st,
                &mut stage,
                &mut patches,
                &mut ws,
                &mut scratch,
                &mut k,
                stage_tag(s, 3),
            )?;
            for e in owned.clone() {
                for v in 0..NUM_VARS {
                    for (uu, (a, kk)) in u
                        .block_mut(v, e)
                        .iter_mut()
                        .zip(acc.block(v, e).iter().zip(k.block(v, e).iter()))
                    {
                        *uu = a + dt / 6.0 * kk;
                    }
                }
            }
            // Interface sync needs updated ghosts.
            sync_stage(&st, &mut u, stage_tag(s, STAGE_SYNC))?;
            work += owned.len() as u64;
            // Coordinated snapshot: two-phase commit. Every rank writes
            // its shard atomically, the allgather proves all shards are
            // durable, then rank 0 renames the manifest into place (the
            // commit point) and the barrier keeps every rank behind it.
            if let Some((root, every)) = snapshot_ref {
                let s1 = (s + 1) as u64;
                if s1.is_multiple_of(*every) {
                    let _s = probe.start(Phase::Checkpoint);
                    probe.add(Counter::Checkpoints, 1);
                    let sub = checkpoint::snapshot_dir(root, s1);
                    let shard = Shard {
                        rank: r,
                        start_octant: owned.start,
                        n_octants: owned.len(),
                        time: s1 as f64 * dt,
                        steps_taken: s1,
                        values: checkpoint::shard_values(&u, owned.start, owned.end),
                    };
                    let (crc, len) = checkpoint::write_shard(&sub, &shard)?;
                    let metas = ctx.try_allgatherv(&[crc as f64, len as f64])?;
                    if r == 0 {
                        let manifest = DistManifest {
                            domain: mesh.domain,
                            leaves: mesh.octants.iter().map(|o| o.key).collect(),
                            offsets: (0..=ctx.size())
                                .map(|q| if q == ctx.size() { n } else { part_ref.range(q).start })
                                .collect(),
                            time: s1 as f64 * dt,
                            steps_taken: s1,
                            shard_crcs: metas.iter().map(|m| m[0] as u32).collect(),
                            shard_lens: metas.iter().map(|m| m[1] as u64).collect(),
                        };
                        checkpoint::commit_manifest(&sub, &manifest)?;
                    }
                    ctx.try_barrier()?;
                }
            }
        }
        // Return owned blocks.
        let mut owned_data = Vec::with_capacity(owned.len() * NUM_VARS * BLOCK_VOLUME);
        for e in owned.clone() {
            for v in 0..NUM_VARS {
                owned_data.extend_from_slice(u.block(v, e));
            }
        }
        Ok((owned_data, work))
    });

    // If any rank failed, surface the most telling error instead of a
    // state missing that rank's contribution: a checkpoint-commit
    // failure beats a dead rank beats the secondary timeouts a death
    // cascades into on its peers.
    let severity = |f: &SpanFailure| match f {
        SpanFailure::Ckpt(_) => 0u8,
        SpanFailure::Comm(CommError::RankDead { .. }) => 1,
        SpanFailure::Comm(_) => 2,
    };
    if let Some(err) = results.iter().filter_map(|r| r.as_ref().err()).min_by_key(|f| severity(f)) {
        return Err(err.clone());
    }
    // Reassemble the global state from per-rank owned blocks.
    let mut state = Field::zeros(NUM_VARS, n);
    let mut work = Vec::with_capacity(ranks);
    for (r, res) in results.drain(..).enumerate() {
        let (data, w) = res.expect("error case handled above");
        work.push(w);
        let mut off = 0;
        for e in part.range(r) {
            for v in 0..NUM_VARS {
                state.block_mut(v, e).copy_from_slice(&data[off..off + BLOCK_VOLUME]);
                off += BLOCK_VOLUME;
            }
        }
    }
    Ok(DistributedResult { state, traffic, work, plan })
}

/// Fail-stop fault injection: `rank` dies at the top of global step
/// `at_step` on the first attempt of a resilient run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    pub rank: usize,
    pub at_step: usize,
}

/// How a resilient distributed run checkpoints and recovers.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Snapshot root directory; `None` disables coordinated
    /// checkpointing (a failure then rolls back to the initial state).
    pub checkpoint_dir: Option<String>,
    /// Steps between coordinated snapshots (≥ 1).
    pub checkpoint_every: u64,
    /// Degradation applied on each rollback + replay, and the retry
    /// budget (`max_retries`). `courant_factor: 1.0, ko_boost: 0.0`
    /// replays bit-identically.
    pub degradation: crate::supervisor::DegradationPolicy,
    /// Injected fail-stop for chaos tests (first attempt only).
    pub kill_once: Option<KillSpec>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            checkpoint_every: 1,
            degradation: crate::supervisor::DegradationPolicy::default(),
            kill_once: None,
        }
    }
}

/// One entry of the resilient driver's decision log.
#[derive(Clone, Debug)]
pub enum RecoveryEvent {
    /// All survivors were rolled back to the last committed manifest
    /// (`to_step` 0 = initial state) after `cause`.
    RolledBack { to_step: u64, cause: CommError },
}

/// A completed resilient run: the result plus how it got there.
#[derive(Debug)]
pub struct ResilientOutcome {
    pub result: DistributedResult,
    /// World restarts performed (0 = clean first attempt).
    pub retries: u32,
    pub events: Vec<RecoveryEvent>,
}

/// Terminal failure of a resilient distributed run.
#[derive(Clone, Debug)]
pub enum DistributedError {
    /// Every allowed rollback + replay also failed; `last` is the final
    /// communication error (it names the dead rank if one died).
    RetriesExhausted { attempts: u32, last: CommError },
    /// The coordinated snapshot layer itself failed (cannot commit or
    /// cannot reload) — retrying would lose data, so this is immediate.
    Checkpoint(CheckpointError),
}

impl DistributedError {
    /// The dead rank this failure names, if one died.
    pub fn dead_rank(&self) -> Option<usize> {
        match self {
            DistributedError::RetriesExhausted { last, .. } => last.dead_rank(),
            DistributedError::Checkpoint(_) => None,
        }
    }
}

impl std::fmt::Display for DistributedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributedError::RetriesExhausted { attempts, last } => {
                write!(f, "distributed run failed after {attempts} rollbacks: {last}")
            }
            DistributedError::Checkpoint(e) => write!(f, "distributed checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for DistributedError {}

/// Resilient distributed evolution: run `steps` RK4 steps with
/// coordinated snapshots; on an unrecoverable exchange or a dead peer,
/// roll every survivor back to the last committed manifest, replay under
/// the [`crate::supervisor::DegradationPolicy`], and escalate to a typed
/// abort once `max_retries` world restarts are spent. The returned
/// traffic/work meters describe the final (successful) attempt.
#[allow(clippy::too_many_arguments)]
#[deprecated(
    since = "0.4.0",
    note = "use crate::run::Run::new(config).distributed(ranks).execute() — one builder \
            covers plain, supervised, and distributed evolution"
)]
pub fn evolve_distributed_resilient(
    mesh: &Mesh,
    u0: &Field,
    ranks: usize,
    steps: usize,
    courant: f64,
    params: BssnParams,
    world_cfg: WorldConfig,
    resilience: &ResilienceConfig,
) -> Result<ResilientOutcome, DistributedError> {
    evolve_distributed_resilient_impl(
        mesh, u0, ranks, steps, courant, params, world_cfg, resilience,
    )
}

/// Non-deprecated implementation behind [`evolve_distributed_resilient`];
/// the [`crate::run::Run`] builder drives this directly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evolve_distributed_resilient_impl(
    mesh: &Mesh,
    u0: &Field,
    ranks: usize,
    steps: usize,
    courant: f64,
    params: BssnParams,
    world_cfg: WorldConfig,
    resilience: &ResilienceConfig,
) -> Result<ResilientOutcome, DistributedError> {
    let h_min = mesh.octants.iter().map(|o| o.h).fold(f64::INFINITY, f64::min);
    let mut courant_now = courant;
    let mut params_now = params;
    let mut retries = 0u32;
    let mut kill = resilience.kill_once;
    let mut start_step = 0usize;
    let mut state = u0.clone();
    let mut events = Vec::new();
    loop {
        let opts = SpanOpts {
            start_step,
            steps,
            dt: courant_now * h_min,
            snapshot: resilience
                .checkpoint_dir
                .clone()
                .map(|d| (d, resilience.checkpoint_every.max(1))),
            kill,
        };
        let failure = match evolve_span(mesh, &state, ranks, params_now, world_cfg.clone(), opts) {
            Ok(result) => return Ok(ResilientOutcome { result, retries, events }),
            Err(f) => f,
        };
        let cause = match failure {
            SpanFailure::Comm(e) => e,
            SpanFailure::Ckpt(e) => return Err(DistributedError::Checkpoint(e)),
        };
        kill = None; // an injected fail-stop fires once
        retries += 1;
        if retries > resilience.degradation.max_retries {
            return Err(DistributedError::RetriesExhausted { attempts: retries - 1, last: cause });
        }
        // Roll back: reload the last committed manifest (or the initial
        // state when nothing was committed) and replay from there.
        let committed = match &resilience.checkpoint_dir {
            Some(root) => {
                checkpoint::latest_snapshot(root).map_err(DistributedError::Checkpoint)?
            }
            None => None,
        };
        match committed {
            Some(dir) => {
                let cp =
                    checkpoint::load_distributed(&dir).map_err(DistributedError::Checkpoint)?;
                start_step = cp.manifest.steps_taken as usize;
                state = cp.state;
            }
            None => {
                start_step = 0;
                state = u0.clone();
            }
        }
        events.push(RecoveryEvent::RolledBack { to_step: start_step as u64, cause });
        courant_now *= resilience.degradation.courant_factor;
        params_now.ko_sigma += resilience.degradation.ko_boost;
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `evolve_distributed_resilient` wrapper is exercised
    // on purpose: it must keep delegating faithfully until removal.
    #![allow(deprecated)]
    use super::*;
    use crate::backend::{Backend, CpuBackend, RhsKind};
    use crate::rk4::Rk4;
    use crate::solver::fill_field;
    use gw_bssn::init::LinearWaveData;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::centered_cube(8.0), &t)
    }

    #[test]
    fn distributed_matches_single_rank_bitwise() {
        let mesh = adaptive_mesh();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        let params = BssnParams::default();
        // Reference: single-rank backend.
        let mut backend = CpuBackend::new(&mesh, params, RhsKind::Pointwise);
        backend.upload(&u0);
        let rk = Rk4::default();
        let dt = rk.timestep(&mesh);
        let steps = 2;
        for _ in 0..steps {
            rk.step(&mut backend, &mesh, dt);
        }
        let reference = backend.download();
        for ranks in [1usize, 2, 3] {
            let result = evolve_distributed(&mesh, &u0, ranks, steps, 0.25, params);
            for (a, b) in reference.as_slice().iter().zip(result.state.as_slice().iter()) {
                assert_eq!(a, b, "rank count {ranks} must not change results");
            }
            if ranks > 1 {
                let total_msgs: u64 = result.traffic.iter().map(|t| t.0).sum();
                assert!(total_msgs > 0, "multi-rank must exchange ghosts");
            }
        }
    }

    #[test]
    fn overlapped_exchange_is_bit_identical_and_counts_messages_identically() {
        let mesh = adaptive_mesh();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        let params = BssnParams::default();
        let steps = 2;
        for ranks in [1usize, 2, 3] {
            let blocking = evolve_distributed(&mesh, &u0, ranks, steps, 0.25, params);
            for threads in [1usize, 4] {
                let cfg = WorldConfig {
                    overlap: true,
                    overlap_threads: threads,
                    ..WorldConfig::default()
                };
                let overlapped =
                    evolve_distributed_cfg(&mesh, &u0, ranks, steps, 0.25, params, cfg).unwrap();
                assert_eq!(
                    blocking.state.as_slice(),
                    overlapped.state.as_slice(),
                    "overlap must not change results (ranks {ranks}, threads {threads})"
                );
                assert_eq!(
                    blocking.traffic, overlapped.traffic,
                    "overlap must not change the message schedule"
                );
            }
        }
    }

    #[test]
    fn interior_boundary_classification_covers_owned_range() {
        let mesh = adaptive_mesh();
        let part = partition_uniform(mesh.n_octants(), 3);
        for r in 0..3 {
            let owned = part.range(r);
            let split = classify_owned(&mesh, &owned);
            let mut all: Vec<usize> =
                split.interior.iter().chain(split.boundary.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(all, owned.clone().collect::<Vec<_>>(), "rank {r} split is a partition");
            for &e in &split.interior {
                assert!(
                    mesh.gather_of(e).iter().all(|op| owned.contains(&(op.src as usize))),
                    "interior octant {e} must not read ghosts"
                );
            }
            let mut syncs: Vec<usize> =
                split.syncs_local.iter().chain(split.syncs_ghost.iter()).copied().collect();
            syncs.sort_unstable();
            let expected: Vec<usize> = (0..mesh.syncs.len())
                .filter(|&i| owned.contains(&(mesh.syncs[i].dst_oct as usize)))
                .collect();
            assert_eq!(syncs, expected, "rank {r} sync split covers exactly the owned-dst syncs");
        }
    }

    #[test]
    fn traffic_scales_with_cut_surface() {
        let mesh = adaptive_mesh();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        let params = BssnParams::default();
        let t2 = evolve_distributed(&mesh, &u0, 2, 1, 0.25, params);
        let t4 = evolve_distributed(&mesh, &u0, 4, 1, 0.25, params);
        let bytes2: u64 = t2.traffic.iter().map(|t| t.1).sum();
        let bytes4: u64 = t4.traffic.iter().map(|t| t.1).sum();
        assert!(bytes4 > bytes2, "more ranks ⇒ more cut surface ({bytes2} vs {bytes4})");
    }

    #[test]
    fn resilient_fault_free_run_is_the_plain_run() {
        let mesh = adaptive_mesh();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        let params = BssnParams::default();
        let reference = evolve_distributed(&mesh, &u0, 2, 2, 0.25, params);
        let out = evolve_distributed_resilient(
            &mesh,
            &u0,
            2,
            2,
            0.25,
            params,
            WorldConfig::default(),
            &ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(out.retries, 0);
        assert!(out.events.is_empty());
        assert_eq!(out.result.state.as_slice(), reference.state.as_slice());
    }

    #[test]
    fn killed_rank_rolls_back_to_manifest_and_replays_bit_exact() {
        let mesh = adaptive_mesh();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        let params = BssnParams::default();
        let reference = evolve_distributed(&mesh, &u0, 3, 3, 0.25, params);
        let dir = std::env::temp_dir().join("gw_amr_multi_resilient_test");
        let dir = dir.to_str().unwrap().to_string();
        let _ = std::fs::remove_dir_all(&dir);
        let resilience = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            // Identity degradation: the replay is bit-reproducible.
            degradation: crate::supervisor::DegradationPolicy {
                courant_factor: 1.0,
                ko_boost: 0.0,
                max_retries: 2,
            },
            kill_once: Some(KillSpec { rank: 1, at_step: 2 }),
        };
        let cfg = WorldConfig {
            heartbeat_interval: std::time::Duration::from_millis(5),
            ..WorldConfig::default()
        };
        let out =
            evolve_distributed_resilient(&mesh, &u0, 3, 3, 0.25, params, cfg, &resilience).unwrap();
        assert_eq!(out.retries, 1, "one rollback must suffice");
        match &out.events[..] {
            [RecoveryEvent::RolledBack { to_step: 2, cause }] => {
                assert_eq!(cause.dead_rank(), Some(1), "the dead rank is named");
            }
            other => panic!("expected one rollback to step 2, got {other:?}"),
        }
        for (a, b) in reference.state.as_slice().iter().zip(out.result.state.as_slice().iter()) {
            assert_eq!(a, b, "resume from the manifest must be bit-exact");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn work_counts_match_partition() {
        let mesh = adaptive_mesh();
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let u0 = fill_field(&mesh, &|p, out: &mut [f64]| wave.evaluate(p, out));
        let r = evolve_distributed(&mesh, &u0, 3, 2, 0.25, BssnParams::default());
        let total: u64 = r.work.iter().sum();
        assert_eq!(total, 2 * mesh.n_octants() as u64);
    }
}
