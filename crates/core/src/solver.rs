//! The top-level solver.

use crate::backend::{Backend, CpuBackend, GpuBackend, RhsKind};
use crate::regrid::transfer_state;
use crate::rk4::Rk4;
use gw_bssn::BssnParams;
use gw_expr::symbols::NUM_VARS;
use gw_gpu_sim::Device;
use gw_mesh::{Field, Mesh};
use gw_obs::{Counter, Phase, Probe};
use gw_octree::{refine_loop, BalanceMode, Domain, MortonKey, Refiner};
use gw_stencil::patch::PatchLayout;
use gw_waveform::ModeExtractor;

/// A specific way a [`SolverConfig`] can be invalid.
///
/// Typed so callers can branch on the failure (the `bssn_solver` binary
/// maps any variant to a dedicated exit code); `Display` preserves the
/// full human-readable diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// Courant factor outside (0, 1].
    Courant(f64),
    /// Kreiss–Oliger dissipation strength non-finite or negative.
    KoSigma(f64),
    /// χ floor non-finite or non-positive.
    ChiFloor(f64),
    /// Gamma-driver damping non-finite or negative.
    Eta(f64),
    /// Worker-thread request above the pool's hard cap.
    Threads(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Courant(v) => write!(
                f,
                "courant factor must be in (0, 1], got {v} (RK4 with 6th-order stencils \
                 is unstable beyond 1)"
            ),
            ConfigError::KoSigma(v) => {
                write!(f, "ko_sigma (Kreiss–Oliger dissipation) must be finite and >= 0, got {v}")
            }
            ConfigError::ChiFloor(v) => {
                write!(f, "chi_floor must be finite and > 0 (it guards 1/chi terms), got {v}")
            }
            ConfigError::Eta(v) => {
                write!(f, "eta (gamma-driver damping) must be finite and >= 0, got {v}")
            }
            ConfigError::Threads(v) => {
                write!(f, "threads must be <= {} (got {v}); use 0 for auto", gw_par::MAX_THREADS)
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    pub params: BssnParams,
    pub rhs_kind: RhsKind,
    /// Courant factor λ.
    pub courant: f64,
    /// Regrid window f_r (steps between host-side re-discretizations;
    /// 0 disables regridding).
    pub regrid_every: usize,
    /// Extract waves every this many steps (0 disables).
    pub extract_every: usize,
    /// Run on the simulated GPU device instead of host loops.
    pub use_gpu: bool,
    /// CPU worker threads for the patch pipeline (0 = auto: `GW_THREADS`
    /// env, else available parallelism). Results are bit-identical for
    /// every thread count (see DESIGN.md, threading model).
    pub threads: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            params: BssnParams::default(),
            rhs_kind: RhsKind::Pointwise,
            courant: 0.25,
            regrid_every: 0,
            extract_every: 0,
            use_gpu: false,
            threads: 0,
        }
    }
}

impl SolverConfig {
    /// Check the configuration for values that would produce an unstable
    /// or nonsensical run. Called by [`GwSolver::try_new`] and the
    /// parameter-file loader, so a typo in a par file fails loudly at
    /// construction instead of as NaNs a thousand steps in.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.courant > 0.0 && self.courant <= 1.0) {
            return Err(ConfigError::Courant(self.courant));
        }
        if !self.params.ko_sigma.is_finite() || self.params.ko_sigma < 0.0 {
            return Err(ConfigError::KoSigma(self.params.ko_sigma));
        }
        if !self.params.chi_floor.is_finite() || self.params.chi_floor <= 0.0 {
            return Err(ConfigError::ChiFloor(self.params.chi_floor));
        }
        if !self.params.eta.is_finite() || self.params.eta < 0.0 {
            return Err(ConfigError::Eta(self.params.eta));
        }
        if self.threads > gw_par::MAX_THREADS {
            return Err(ConfigError::Threads(self.threads));
        }
        Ok(())
    }
}

/// The GPU-accelerated AMR BSSN solver (Algorithm 1).
pub struct GwSolver {
    pub config: SolverConfig,
    pub mesh: Mesh,
    pub backend: Box<dyn Backend>,
    pub rk4: Rk4,
    pub time: f64,
    pub steps_taken: u64,
    /// Strain-mode wave extractors (mode recorders on extraction
    /// spheres).
    pub extractors: Vec<ModeExtractor>,
    /// Weyl-scalar extractors (direct Ψ₄; see `gw_waveform::weyl`).
    pub psi4_extractors: Vec<gw_waveform::Psi4Extractor>,
    /// Number of regrids performed.
    pub regrids: u64,
    /// Observability probe (disabled by default; see [`GwSolver::set_probe`]).
    probe: Probe,
}

impl GwSolver {
    /// Create a solver from a mesh and a pointwise initial-data function
    /// filling all 24 variables. Panics on an invalid configuration; use
    /// [`GwSolver::try_new`] to handle that as an error.
    pub fn new(config: SolverConfig, mesh: Mesh, init: impl Fn([f64; 3], &mut [f64])) -> Self {
        Self::try_new(config, mesh, init)
            .unwrap_or_else(|e| panic!("invalid solver configuration: {e}"))
    }

    /// Fallible constructor: validates `config` before building any
    /// backend state.
    pub fn try_new(
        config: SolverConfig,
        mesh: Mesh,
        init: impl Fn([f64; 3], &mut [f64]),
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let u0 = fill_field(&mesh, &init);
        let backend = make_backend(&config, &mesh);
        let mut s = Self {
            config,
            mesh,
            backend,
            rk4: Rk4 { courant: config.courant },
            time: 0.0,
            steps_taken: 0,
            extractors: Vec::new(),
            psi4_extractors: Vec::new(),
            regrids: 0,
            probe: Probe::disabled(),
        };
        s.backend.upload(&u0);
        Ok(s)
    }

    /// Attach an observability probe. Propagated into the backend (and,
    /// on the GPU backend, the device) so phase spans and counters are
    /// attributed; survives regrids. Instrumentation is timing/counting
    /// only and never perturbs the evolved state.
    pub fn set_probe(&mut self, probe: Probe) {
        self.backend.set_probe(probe.clone());
        self.probe = probe;
    }

    /// The solver's observability probe (disabled by default).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Build a complete, balanced mesh for a domain with a refiner.
    pub fn build_mesh(domain: Domain, refiner: &dyn Refiner, max_sweeps: usize) -> Mesh {
        let leaves =
            refine_loop(&[MortonKey::root()], &domain, refiner, BalanceMode::Full, max_sweeps);
        Mesh::build(domain, &leaves)
    }

    /// Current timestep.
    pub fn dt(&self) -> f64 {
        self.rk4.timestep(&self.mesh)
    }

    /// Attach a strain-mode wave extractor.
    pub fn add_extractor(&mut self, e: ModeExtractor) {
        self.extractors.push(e);
    }

    /// Attach a Weyl-scalar (Ψ₄) extractor.
    pub fn add_psi4_extractor(&mut self, e: gw_waveform::Psi4Extractor) {
        self.psi4_extractors.push(e);
    }

    /// Take one RK4 step; extract waves when due.
    pub fn step(&mut self) {
        let dt = self.dt();
        {
            let _span = self.probe.start(Phase::Step);
            self.rk4.step(self.backend.as_mut(), &self.mesh, dt);
        }
        self.probe.add(Counter::Steps, 1);
        self.time += dt;
        self.steps_taken += 1;
        if self.config.extract_every > 0
            && self.steps_taken.is_multiple_of(self.config.extract_every as u64)
            && (!self.extractors.is_empty() || !self.psi4_extractors.is_empty())
        {
            self.extract_now();
        }
    }

    /// Sample all extractors at the current time. (In the paper this is
    /// an asynchronous-stream device read; here it is an explicit
    /// metered device→host transfer.)
    pub fn extract_now(&mut self) {
        let _span = self.probe.start(Phase::Extract);
        let u = self.backend.download();
        for e in &mut self.extractors {
            e.record(self.time, &self.mesh, &u);
        }
        for e in &mut self.psi4_extractors {
            e.record(self.time, &self.mesh, &u);
        }
    }

    /// Take `n` steps with regridding every `config.regrid_every` steps.
    #[deprecated(
        since = "0.4.0",
        note = "use crate::run::Run::new(config).steps(n).execute() — one builder covers \
                plain, supervised, and distributed evolution"
    )]
    pub fn evolve_steps(&mut self, n: usize, refiner: Option<&dyn Refiner>) {
        self.evolve_steps_inner(n, refiner);
    }

    /// Non-deprecated implementation behind [`GwSolver::evolve_steps`];
    /// the [`crate::run::Run`] builder drives this directly.
    pub(crate) fn evolve_steps_inner(&mut self, n: usize, refiner: Option<&dyn Refiner>) {
        for i in 0..n {
            if let Some(r) = refiner {
                let fr = self.config.regrid_every;
                if fr > 0 && i > 0 && i % fr == 0 {
                    self.regrid(r);
                }
            }
            self.step();
        }
    }

    /// Host-side re-discretization: build a new grid, transfer state,
    /// rebuild the backend (the only synchronous host↔device data
    /// movement, as in Algorithm 1).
    pub fn regrid(&mut self, refiner: &dyn Refiner) {
        let _span = self.probe.start(Phase::Regrid);
        let old_keys: Vec<MortonKey> = self.mesh.octants.iter().map(|o| o.key).collect();
        let new_leaves = refine_loop(&old_keys, &self.mesh.domain, refiner, BalanceMode::Full, 8);
        if new_leaves == old_keys {
            return; // grid unchanged
        }
        let u = self.backend.download();
        let new_mesh = Mesh::build(self.mesh.domain, &new_leaves);
        let new_u =
            transfer_state(&self.mesh, &u, &new_mesh).unwrap_or_else(|e| panic!("regrid: {e}"));
        self.mesh = new_mesh;
        self.backend = make_backend(&self.config, &self.mesh);
        self.backend.set_probe(self.probe.clone());
        self.backend.upload(&new_u);
        self.regrids += 1;
        self.probe.add(Counter::Regrids, 1);
    }

    /// Download the current state.
    pub fn state(&self) -> Field {
        self.backend.download()
    }

    /// Worker threads driving the CPU patch pipeline (the simulated GPU
    /// backend manages its own launch parallelism and reports 1 here).
    pub fn n_threads(&self) -> usize {
        self.backend.n_threads()
    }

    /// Regrid driven by the **evolved solution**: refine where the
    /// interpolation detail of variable `var` of the current state
    /// exceeds `eps` (the paper's re-discretization to capture the
    /// evolving fields, Algorithm 1 line 3).
    pub fn regrid_on_state(&mut self, var: usize, eps: f64, base_level: u8, cap_level: u8) {
        let _span = self.probe.start(Phase::Regrid);
        let u = self.backend.download();
        let old_keys: Vec<MortonKey> = self.mesh.octants.iter().map(|o| o.key).collect();
        let new_leaves = {
            let mesh_ref = &self.mesh;
            let field_ref = &u;
            let refiner = gw_octree::InterpErrorRefiner::new(
                move |p: [f64; 3]| gw_waveform::sphere::interpolate(mesh_ref, field_ref, var, p),
                eps,
                base_level,
                cap_level,
            );
            refine_loop(&old_keys, &self.mesh.domain, &refiner, BalanceMode::Full, 8)
        };
        if new_leaves == old_keys {
            return;
        }
        let new_mesh = Mesh::build(self.mesh.domain, &new_leaves);
        let new_u =
            transfer_state(&self.mesh, &u, &new_mesh).unwrap_or_else(|e| panic!("regrid: {e}"));
        self.mesh = new_mesh;
        self.backend = make_backend(&self.config, &self.mesh);
        self.backend.set_probe(self.probe.clone());
        self.backend.upload(&new_u);
        self.regrids += 1;
        self.probe.add(Counter::Regrids, 1);
    }

    /// Max Hamiltonian-constraint residual over a sample of points
    /// (diagnostic; full-field monitoring is in the constraints example).
    ///
    /// Octant-parallel with a fixed-order tree reduction: the max is
    /// combined in index order, so the result (including which NaN/sign
    /// quirks of `f64::max` win) is bit-identical at any thread count.
    pub fn constraint_sample(&self) -> f64 {
        let u = self.state();
        let l = PatchLayout::octant();
        let pool = gw_par::ThreadPool::shared(self.config.threads);
        // One interior point per octant is enough for a monitor. The
        // input staging buffer is per-worker, not per-octant.
        let probe = &self.probe;
        let per_oct = pool.map(self.mesh.n_octants(), |oct| {
            thread_local! {
                static INPUTS: std::cell::RefCell<Option<Vec<f64>>> =
                    const { std::cell::RefCell::new(None) };
            }
            INPUTS.with(|cell| {
                let mut borrow = cell.borrow_mut();
                let inputs = borrow.get_or_insert_with(|| {
                    probe.add(Counter::WorkspaceAllocs, 1);
                    vec![0.0; gw_expr::symbols::NUM_INPUTS]
                });
                inputs.fill(0.0);
                for (v, slot) in inputs.iter_mut().enumerate().take(NUM_VARS) {
                    *slot = u.block(v, oct)[l.idx(3, 3, 3)];
                }
                // Derivative slots left zero — this monitors only the
                // algebraic part; the examples do the full job.
                gw_bssn::constraints::hamiltonian(inputs).abs()
            })
        });
        gw_par::tree_reduce(&per_oct, 0.0f64, f64::max)
    }
}

fn make_backend(config: &SolverConfig, mesh: &Mesh) -> Box<dyn Backend> {
    if config.use_gpu {
        Box::new(GpuBackend::new(mesh, config.params, config.rhs_kind, Device::a100()))
    } else {
        Box::new(CpuBackend::with_threads(mesh, config.params, config.rhs_kind, config.threads))
    }
}

/// Fill a 24-variable field from a pointwise function.
pub fn fill_field(mesh: &Mesh, init: &impl Fn([f64; 3], &mut [f64])) -> Field {
    let mut f = Field::zeros(NUM_VARS, mesh.n_octants());
    let l = PatchLayout::octant();
    let mut vals = [0.0; NUM_VARS];
    for oct in 0..mesh.n_octants() {
        for (i, j, k) in l.iter() {
            init(mesh.point_coords(oct, i, j, k), &mut vals);
            for (v, &val) in vals.iter().enumerate() {
                f.block_mut(v, oct)[l.idx(i, j, k)] = val;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_bssn::init::LinearWaveData;

    fn uniform_leaves(level: u8) -> Vec<MortonKey> {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..level {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        leaves
    }

    #[test]
    fn wave_evolution_cpu_vs_gpu_identical() {
        let domain = Domain::centered_cube(8.0);
        let mesh = Mesh::build(domain, &uniform_leaves(2));
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let init = |p: [f64; 3], out: &mut [f64]| wave.evaluate(p, out);
        let mut cpu =
            GwSolver::new(SolverConfig::default(), Mesh::build(domain, &uniform_leaves(2)), init);
        let mut gpu =
            GwSolver::new(SolverConfig { use_gpu: true, ..Default::default() }, mesh, init);
        for _ in 0..2 {
            cpu.step();
            gpu.step();
        }
        let uc = cpu.state();
        let ug = gpu.state();
        for (a, b) in uc.as_slice().iter().zip(ug.as_slice().iter()) {
            assert_eq!(a, b, "Fig-21 property: backends agree bitwise");
        }
    }

    #[test]
    fn linear_wave_stays_linear_and_propagates() {
        let domain = Domain::centered_cube(8.0);
        let mesh = Mesh::build(domain, &uniform_leaves(2));
        let amp = 1e-4;
        // Long-wavelength packet: well resolved by the level-2 grid
        // (h ≈ 0.67, ~13 points per carrier wavelength).
        let wave = LinearWaveData::new(amp, 0.0, 3.0, 0.7);
        let mut solver =
            GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
        let steps = 6;
        for _ in 0..steps {
            solver.step();
        }
        let u = solver.state();
        // Metric perturbation stays O(amp) (no blow-up) and the gt_xx
        // profile has moved: compare against the analytic translation.
        let t = solver.time;
        let l = PatchLayout::octant();
        let mut max_err = 0.0f64;
        let mut max_dev = 0.0f64;
        for oct in 0..solver.mesh.n_octants() {
            for (i, j, k) in l.iter() {
                let p = solver.mesh.point_coords(oct, i, j, k);
                // The Sommerfeld boundary assumes radially-outgoing waves;
                // a plane wave violates that at the tangential boundaries,
                // so compare only in the causally-clean interior.
                if p.iter().any(|c| c.abs() > 5.0) {
                    continue;
                }
                let got = u.block(gw_expr::symbols::var::gt(0, 0), oct)[l.idx(i, j, k)];
                let expect = 1.0 + wave.h_plus(p[2], t);
                max_err = max_err.max((got - expect).abs());
                max_dev = max_dev.max((got - 1.0).abs());
            }
        }
        assert!(max_dev > 0.2 * amp, "wave must be present, dev {max_dev}");
        assert!(
            max_err < 0.5 * amp,
            "wave must track the analytic solution: err {max_err} vs amp {amp}"
        );
    }

    #[test]
    fn extraction_records_series() {
        let domain = Domain::centered_cube(8.0);
        let mesh = Mesh::build(domain, &uniform_leaves(2));
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let mut solver = GwSolver::new(
            SolverConfig { extract_every: 1, ..Default::default() },
            mesh,
            |p, out| wave.evaluate(p, out),
        );
        let sphere =
            gw_waveform::ExtractionSphere::new(4.0, gw_waveform::lebedev::product_rule(6, 12));
        solver.add_extractor(ModeExtractor::new(sphere, vec![(2, 2), (2, 0)]));
        for _ in 0..3 {
            solver.step();
        }
        let m22 = solver.extractors[0].mode(2, 2).unwrap();
        assert_eq!(m22.len(), 3);
        // A +-polarized z-wave has (2, ±2) content and no (2,0).
        let m20 = solver.extractors[0].mode(2, 0).unwrap();
        let a22: f64 = m22.values.iter().map(|v| v.norm()).sum();
        let a20: f64 = m20.values.iter().map(|v| v.norm()).sum();
        assert!(a22 > 10.0 * a20, "22 mode {a22} must dominate 20 mode {a20}");
    }

    #[test]
    fn regrid_transfers_state_and_counts() {
        let domain = Domain::centered_cube(8.0);
        let mesh = Mesh::build(domain, &uniform_leaves(1));
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let mut solver =
            GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
        // Refine everything one level.
        struct OneDeeper;
        impl Refiner for OneDeeper {
            fn decide(&self, _d: &Domain, leaf: &MortonKey) -> gw_octree::RefineDecision {
                if leaf.level() < 2 {
                    gw_octree::RefineDecision::Refine
                } else {
                    gw_octree::RefineDecision::Keep
                }
            }
        }
        let before = solver.mesh.n_octants();
        solver.regrid(&OneDeeper);
        assert_eq!(solver.regrids, 1);
        assert_eq!(solver.mesh.n_octants(), 8 * before);
        // State survived (amplitude preserved).
        let u = solver.state();
        assert!(u.linf(gw_expr::symbols::var::gt(0, 0)) > 1.0);
        // And evolution continues.
        solver.step();
        assert!(solver.state().linf_all() < 2.0);
    }

    #[test]
    fn state_driven_regrid_tracks_the_packet() {
        // Evolve a travelling packet with periodic solution-driven
        // regrids: the refined region must follow the packet along +z.
        let domain = Domain::centered_cube(8.0);
        let wave = LinearWaveData::new(1e-3, -3.0, 1.5, 1.0);
        let refiner = gw_octree::InterpErrorRefiner::new(
            move |p: [f64; 3]| wave.h_plus(p[2], 0.0),
            1e-4,
            2,
            3,
        );
        let mesh = GwSolver::build_mesh(domain, &refiner, 8);
        let mut solver =
            GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
        let fine_center_z = |s: &GwSolver| -> f64 {
            let mut acc = 0.0;
            let mut cnt = 0.0;
            let lmax = s.mesh.octants.iter().map(|o| o.level).max().unwrap();
            for o in &s.mesh.octants {
                if o.level == lmax {
                    acc += o.origin[2] + 3.0 * o.h;
                    cnt += 1.0;
                }
            }
            acc / cnt
        };
        let z0 = fine_center_z(&solver);
        assert!(z0 < -1.0, "initial refinement near the packet at z=-3 (got {z0})");
        // Evolve ~t=2 and regrid on the evolved gt_xx deviation... use
        // At_xx, which is localized on the packet (gt_xx - 1 also works
        // but interpolating around 1.0 needs the eps on the deviation).
        for _ in 0..12 {
            solver.step();
        }
        solver.regrid_on_state(gw_expr::symbols::var::at(0, 0), 2e-5, 2, 3);
        assert_eq!(solver.regrids, 1);
        let z1 = fine_center_z(&solver);
        assert!(z1 > z0 + 0.5, "refined region must follow the packet: {z0:.2} -> {z1:.2}");
        // And evolution continues stably on the new grid.
        solver.step();
        assert!(solver.state().linf_all() < 2.0);
    }

    #[test]
    fn dt_shrinks_immediately_after_midrun_refinement() {
        // CFL guard: a regrid that deepens the finest level must shrink
        // the very next step — no stale-dt window. `GwSolver::step`
        // recomputes dt from the current mesh each call; this test locks
        // that in.
        let domain = Domain::centered_cube(8.0);
        let mesh = Mesh::build(domain, &uniform_leaves(1));
        let wave = LinearWaveData::new(1e-3, 0.0, 2.0, 1.0);
        let mut solver =
            GwSolver::new(SolverConfig::default(), mesh, |p, out| wave.evaluate(p, out));
        solver.step();
        let dt_coarse = solver.dt();
        struct ToLevel2;
        impl Refiner for ToLevel2 {
            fn decide(&self, _d: &Domain, leaf: &MortonKey) -> gw_octree::RefineDecision {
                if leaf.level() < 2 {
                    gw_octree::RefineDecision::Refine
                } else {
                    gw_octree::RefineDecision::Keep
                }
            }
        }
        solver.regrid(&ToLevel2);
        // `dt()` reads the post-regrid mesh immediately — no stale cache.
        // Halving h exactly halves dt (exponent-only change).
        assert_eq!(solver.dt(), 0.5 * dt_coarse, "deeper finest level must halve the step");
        let t_before = solver.time;
        solver.step();
        let dt_taken = solver.time - t_before;
        // `time += dt` rounds, so compare with a one-ulp-scale tolerance.
        assert!(
            (dt_taken - solver.dt()).abs() < 1e-15,
            "step must use the post-regrid CFL dt (took {dt_taken}, dt() = {})",
            solver.dt()
        );
    }

    #[test]
    fn solver_timestep_and_time_bookkeeping() {
        let domain = Domain::centered_cube(8.0);
        let mesh = Mesh::build(domain, &uniform_leaves(1));
        let mut solver = GwSolver::new(SolverConfig::default(), mesh, |_p, out| {
            out.iter_mut().for_each(|v| *v = 0.0);
            out[gw_expr::symbols::var::ALPHA] = 1.0;
            out[gw_expr::symbols::var::CHI] = 1.0;
            out[gw_expr::symbols::var::gt(0, 0)] = 1.0;
            out[gw_expr::symbols::var::gt(1, 1)] = 1.0;
            out[gw_expr::symbols::var::gt(2, 2)] = 1.0;
        });
        let dt = solver.dt();
        solver.evolve_steps_inner(3, None);
        assert_eq!(solver.steps_taken, 3);
        assert!((solver.time - 3.0 * dt).abs() < 1e-14);
    }
}
