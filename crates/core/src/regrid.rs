//! Intergrid state transfer for regridding.
//!
//! When the grid changes (host-side re-discretization, the only
//! synchronous host↔device operation in Algorithm 1), the state is
//! transferred old-mesh → new-mesh octant by octant: direct copy where
//! the octant is unchanged, prolongation where the new octant is finer,
//! injection(s) where it is coarser.

use gw_mesh::{Field, Mesh};
use gw_octree::MortonKey;
use gw_stencil::interp::{ProlongWorkspace, Prolongation, FINE_SIDE};
use gw_stencil::patch::{PatchLayout, BLOCK_VOLUME, POINTS_PER_SIDE};

/// State transfer failed: the new mesh asks for data the old mesh does
/// not cover. Carries the offending key so the error message can say
/// exactly which octant broke the invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferError {
    /// An octant of the new mesh has neither a matching old octant, an
    /// old ancestor, nor old descendants — the old grid has a hole.
    Uncovered { new_key: MortonKey },
    /// An ancestor key was identified but then vanished from the sorted
    /// old-key list (internal inconsistency in the old mesh ordering).
    AncestorLookup { anc_key: MortonKey, new_key: MortonKey },
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Uncovered { new_key } => write!(
                f,
                "state transfer: new octant {new_key:?} is not covered by the old grid \
                 (no matching octant, ancestor, or descendants)"
            ),
            TransferError::AncestorLookup { anc_key, new_key } => write!(
                f,
                "state transfer: ancestor {anc_key:?} of new octant {new_key:?} \
                 not found in old key list (old mesh keys unsorted or inconsistent?)"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

/// Transfer `old_state` on `old_mesh` to a new field on `new_mesh`.
///
/// Requires the two meshes to share the domain; refinement may differ by
/// any number of levels (multi-level prolongation is applied recursively).
/// Fails with [`TransferError`] (naming the offending octant key) if the
/// old grid does not cover part of the new grid.
pub fn transfer_state(
    old_mesh: &Mesh,
    old_state: &Field,
    new_mesh: &Mesh,
) -> Result<Field, TransferError> {
    assert_eq!(old_mesh.domain, new_mesh.domain);
    let dof = old_state.dof;
    let mut out = Field::zeros(dof, new_mesh.n_octants());
    let prolong = Prolongation::new();
    let mut ws = ProlongWorkspace::new();
    let old_keys: Vec<MortonKey> = old_mesh.octants.iter().map(|o| o.key).collect();

    for (ni, ninfo) in new_mesh.octants.iter().enumerate() {
        let nk = ninfo.key;
        // Find the old octant covering nk, or the old descendants of nk.
        match old_keys.binary_search(&nk) {
            Ok(oi) => {
                // Same octant: copy.
                for v in 0..dof {
                    out.block_mut(v, ni).copy_from_slice(old_state.block(v, oi));
                }
            }
            Err(pos) => {
                // Either an old ancestor (coarser old grid here) or old
                // descendants (finer old grid here).
                let anc = pos.checked_sub(1).map(|i| old_keys[i]).filter(|c| c.is_ancestor_of(&nk));
                if let Some(anc_key) = anc {
                    let oi = old_keys
                        .binary_search(&anc_key)
                        .map_err(|_| TransferError::AncestorLookup { anc_key, new_key: nk })?;
                    // Prolong the ancestor down to nk (possibly several
                    // levels).
                    for v in 0..dof {
                        let mut cur = old_state.block(v, oi).to_vec();
                        let mut cur_key = anc_key;
                        while cur_key.level() < nk.level() {
                            let child = nk.ancestor_at(cur_key.level() + 1);
                            let idx = child.child_index();
                            let mut next = vec![0.0; BLOCK_VOLUME];
                            prolong_to_child_ws(&prolong, &mut ws, &cur, idx, &mut next);
                            cur = next;
                            cur_key = child;
                        }
                        out.block_mut(v, ni).copy_from_slice(&cur);
                    }
                } else {
                    // New octant is coarser: inject from old descendants.
                    // With a 2:1-limited regrid the descendants are the 8
                    // children; handle deeper nesting recursively via the
                    // coincident-point map.
                    inject_descendants(old_mesh, old_state, &old_keys, new_mesh, ni, &mut out)?;
                }
            }
        }
    }
    Ok(out)
}

fn prolong_to_child_ws(
    prolong: &Prolongation,
    ws: &mut ProlongWorkspace,
    coarse: &[f64],
    child: usize,
    out: &mut [f64],
) {
    let mut fine = vec![0.0f64; FINE_SIDE * FINE_SIDE * FINE_SIDE];
    prolong.prolong3d_ws(coarse, &mut fine, ws);
    let r = POINTS_PER_SIDE;
    let ox = (child & 1) * (r - 1);
    let oy = ((child >> 1) & 1) * (r - 1);
    let oz = ((child >> 2) & 1) * (r - 1);
    let l = PatchLayout::octant();
    for (i, j, k) in l.iter() {
        out[l.idx(i, j, k)] = fine[((k + oz) * FINE_SIDE + (j + oy)) * FINE_SIDE + (i + ox)];
    }
}

/// Fill a new (coarser) octant by sampling coincident points of old
/// descendants at any depth. Fails if any point of the new octant lies
/// outside every old leaf (a hole in the old grid).
fn inject_descendants(
    old_mesh: &Mesh,
    old_state: &Field,
    old_keys: &[MortonKey],
    new_mesh: &Mesh,
    ni: usize,
    out: &mut Field,
) -> Result<(), TransferError> {
    let dof = old_state.dof;
    let ninfo = &new_mesh.octants[ni];
    let l = PatchLayout::octant();
    for (i, j, k) in l.iter() {
        let p = new_mesh.point_coords(ni, i, j, k);
        // Locate the old leaf containing p.
        let probe = old_mesh.domain.locate(p, gw_octree::MAX_LEVEL);
        let oi = match old_keys.binary_search(&probe) {
            Ok(x) => x,
            Err(0) => return Err(TransferError::Uncovered { new_key: ninfo.key }),
            Err(x) => x - 1,
        };
        if !old_keys[oi].contains(&probe) {
            return Err(TransferError::Uncovered { new_key: ninfo.key });
        }
        let oinfo = &old_mesh.octants[oi];
        // Coincident (or nearest) old grid point.
        let mut idx = [0usize; 3];
        for a in 0..3 {
            let xi = ((p[a] - oinfo.origin[a]) / oinfo.h).round();
            idx[a] = (xi.max(0.0) as usize).min(POINTS_PER_SIDE - 1);
        }
        let pt = l.idx(idx[0], idx[1], idx[2]);
        for v in 0..dof {
            out.block_mut(v, ni)[l.idx(i, j, k)] = old_state.block(v, oi)[pt];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_octree::{balance_octree, complete_octree, BalanceMode, Domain, MortonKey};

    fn uniform_mesh(level: u8) -> Mesh {
        let mut leaves = vec![MortonKey::root()];
        for _ in 0..level {
            leaves = leaves.iter().flat_map(|k| k.children()).collect();
        }
        leaves.sort();
        Mesh::build(Domain::centered_cube(4.0), &leaves)
    }

    fn adaptive_mesh() -> Mesh {
        let c0 = MortonKey::root().children()[0];
        let fine: Vec<MortonKey> = c0.children()[7].children().to_vec();
        let t = complete_octree(fine);
        let t = balance_octree(&t, BalanceMode::Full);
        Mesh::build(Domain::centered_cube(4.0), &t)
    }

    fn poly_field(mesh: &Mesh) -> Field {
        let f = |p: [f64; 3]| 1.0 + p[0] + 0.5 * p[1] * p[2] - 0.1 * p[0] * p[0] * p[2];
        let mut fld = Field::zeros(2, mesh.n_octants());
        for oct in 0..mesh.n_octants() {
            let l = PatchLayout::octant();
            for (i, j, k) in l.iter() {
                let v = f(mesh.point_coords(oct, i, j, k));
                fld.block_mut(0, oct)[l.idx(i, j, k)] = v;
                fld.block_mut(1, oct)[l.idx(i, j, k)] = 2.0 * v - 1.0;
            }
        }
        fld
    }

    fn check_poly(mesh: &Mesh, fld: &Field, tol: f64) {
        let f = |p: [f64; 3]| 1.0 + p[0] + 0.5 * p[1] * p[2] - 0.1 * p[0] * p[0] * p[2];
        for oct in 0..mesh.n_octants() {
            let l = PatchLayout::octant();
            for (i, j, k) in l.iter() {
                let p = mesh.point_coords(oct, i, j, k);
                let got = fld.block(0, oct)[l.idx(i, j, k)];
                assert!((got - f(p)).abs() < tol, "oct {oct} ({i},{j},{k}): {got} vs {}", f(p));
                let got1 = fld.block(1, oct)[l.idx(i, j, k)];
                assert!((got1 - (2.0 * f(p) - 1.0)).abs() < tol);
            }
        }
    }

    #[test]
    fn identity_transfer() {
        let mesh = adaptive_mesh();
        let fld = poly_field(&mesh);
        let out = transfer_state(&mesh, &fld, &mesh).unwrap();
        assert_eq!(fld.as_slice(), out.as_slice());
    }

    #[test]
    fn refine_transfer_exact_on_polynomials() {
        let coarse = uniform_mesh(1);
        let fine = uniform_mesh(2);
        let fld = poly_field(&coarse);
        let out = transfer_state(&coarse, &fld, &fine).unwrap();
        check_poly(&fine, &out, 1e-10);
    }

    #[test]
    fn coarsen_transfer_exact_at_coincident_points() {
        let fine = uniform_mesh(2);
        let coarse = uniform_mesh(1);
        let fld = poly_field(&fine);
        let out = transfer_state(&fine, &fld, &coarse).unwrap();
        check_poly(&coarse, &out, 1e-10);
    }

    #[test]
    fn uniform_to_adaptive_and_back() {
        let uni = uniform_mesh(2);
        let ada = adaptive_mesh();
        let fld = poly_field(&uni);
        let there = transfer_state(&uni, &fld, &ada).unwrap();
        check_poly(&ada, &there, 1e-9);
        let back = transfer_state(&ada, &there, &uni).unwrap();
        check_poly(&uni, &back, 1e-9);
    }

    #[test]
    fn hole_in_old_grid_is_an_error_naming_the_key() {
        // Simulate an old grid with a hole by hiding its first leaf from
        // the key list: injecting the root from such descendants must
        // fail loudly (naming the new octant), not silently leave zeros.
        let old = uniform_mesh(1);
        let new = uniform_mesh(0);
        let fld = poly_field(&old);
        let full_keys: Vec<MortonKey> = old.octants.iter().map(|o| o.key).collect();
        let holey = &full_keys[1..];
        let mut out = Field::zeros(fld.dof, new.n_octants());
        match inject_descendants(&old, &fld, holey, &new, 0, &mut out) {
            Err(TransferError::Uncovered { new_key }) => {
                assert_eq!(new_key, MortonKey::root());
            }
            other => panic!("expected Uncovered error, got {other:?}"),
        }
    }

    #[test]
    fn two_level_prolongation() {
        let coarse = uniform_mesh(0);
        let fine = uniform_mesh(2);
        let fld = poly_field(&coarse);
        let out = transfer_state(&coarse, &fld, &fine).unwrap();
        check_poly(&fine, &out, 1e-9);
    }
}
