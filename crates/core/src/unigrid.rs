//! Uniform-grid reference solver.
//!
//! Fig. 19 of the paper compares AMR waveforms against the LAZEV code as
//! an independent trusted reference. Our substitution (DESIGN.md) is a
//! **unigrid** run of the same physics at high resolution: it shares the
//! PDE implementation but exercises none of the AMR machinery
//! (no 2:1 interfaces, no interpolation, no scatter cases beyond
//! same-level copy), so AMR-specific errors show up against it.

use crate::solver::{GwSolver, SolverConfig};
use gw_mesh::Mesh;
use gw_octree::{Domain, MortonKey};

/// Build a uniform mesh at the given refinement level.
pub fn uniform_mesh(domain: Domain, level: u8) -> Mesh {
    let mut leaves = vec![MortonKey::root()];
    for _ in 0..level {
        leaves = leaves.iter().flat_map(|k| k.children()).collect();
    }
    leaves.sort();
    Mesh::build(domain, &leaves)
}

/// Create a unigrid solver (no regridding).
pub fn unigrid_solver(
    mut config: SolverConfig,
    domain: Domain,
    level: u8,
    init: impl Fn([f64; 3], &mut [f64]),
) -> GwSolver {
    config.regrid_every = 0;
    GwSolver::new(config, uniform_mesh(domain, level), init)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_has_no_interfaces() {
        let m = uniform_mesh(Domain::centered_cube(4.0), 2);
        assert_eq!(m.n_octants(), 64);
        assert!(m.syncs.is_empty());
        assert_eq!(m.adaptivity_ratio(), 0.0);
    }

    #[test]
    fn unigrid_solver_runs() {
        let wave = gw_bssn::init::LinearWaveData::new(1e-4, 0.0, 1.5, 1.0);
        let mut s =
            unigrid_solver(SolverConfig::default(), Domain::centered_cube(6.0), 2, |p, out| {
                wave.evaluate(p, out)
            });
        s.step();
        assert!(s.state().linf_all() < 2.0);
    }
}
