//! The full BSSN right-hand side, built symbolically.
//!
//! Transcribes Eqs. (1)–(19) of the paper into the expression DAG: the 24
//! evolution equations for `α, β^i, B^i, χ, K, γ̃_ij, Ã_ij, Γ̃^i` with
//! 1+log slicing and Gamma-driver shift, Kreiss–Oliger dissipation folded
//! in as the 72 KO input symbols.
//!
//! One deliberate correction: Eq. (17) as printed carries `+½ γ̃^lm ∂_lm
//! γ̃_ij`; the standard BSSN Ricci tensor (Baumgarte & Shapiro, Eq. 11.52)
//! has `−½`, which is what every production code (including Dendro-GR's
//! generator) implements — we use `−½`.
//!
//! The construction deliberately mirrors how SymPyGR writes the equations:
//! tensorial loops over free indices with implicit sums expanded, leaning
//! on hash-consing to discover the shared subexpressions.

// Tensor-index loops (`for k in 0..3`) mirror the written math;
// enumerate() forms would obscure the index symmetry.
#![allow(clippy::needless_range_loop)]

use crate::graph::{ExprGraph, NodeId};
use crate::symbols::{var, SymbolTable as S, NUM_OUTPUTS};
use crate::tensor::{contract2, inv_sym3, Sym3, Vec3};

/// Physical/gauge parameters baked into the generated RHS.
#[derive(Clone, Copy, Debug)]
pub struct BssnParams {
    /// Gamma-driver damping η (Eq. 3).
    pub eta: f64,
    /// Kreiss–Oliger dissipation strength σ.
    pub ko_sigma: f64,
    /// Floor applied to χ before the `1/χ` terms (moving-puncture
    /// regularization; Dendro-GR's `CHI_FLOOR`). Applied at input
    /// assembly so the handwritten and generated paths see identical
    /// values.
    pub chi_floor: f64,
}

impl Default for BssnParams {
    fn default() -> Self {
        Self { eta: 2.0, ko_sigma: 0.4, chi_floor: 1e-4 }
    }
}

/// The generated RHS: the DAG plus the 24 output roots (ordered like the
/// variable table) and the per-equation root groups used by the staged
/// scheduler.
pub struct BssnRhs {
    pub graph: ExprGraph,
    pub outputs: Vec<NodeId>,
    pub params: BssnParams,
}

/// Build the complete symbolic BSSN RHS.
pub fn build_bssn_rhs(params: BssnParams) -> BssnRhs {
    let mut g = ExprGraph::new();
    let gr = &mut g;

    // ---- Field symbols -------------------------------------------------
    let alpha = S::value(gr, var::ALPHA);
    let beta =
        Vec3([S::value(gr, var::beta(0)), S::value(gr, var::beta(1)), S::value(gr, var::beta(2))]);
    let bvec = Vec3([
        S::value(gr, var::b_var(0)),
        S::value(gr, var::b_var(1)),
        S::value(gr, var::b_var(2)),
    ]);
    let chi = S::value(gr, var::CHI);
    let kk = S::value(gr, var::K);
    let gt = Sym3::from_fn(|i, j| S::value(gr, var::gt(i, j)));
    let at = Sym3::from_fn(|i, j| S::value(gr, var::at(i, j)));
    let gamt =
        Vec3([S::value(gr, var::gamt(0)), S::value(gr, var::gamt(1)), S::value(gr, var::gamt(2))]);

    // ---- Derivative symbols --------------------------------------------
    let d_alpha =
        Vec3([S::d1(gr, var::ALPHA, 0), S::d1(gr, var::ALPHA, 1), S::d1(gr, var::ALPHA, 2)]);
    let dd_alpha = Sym3::from_fn(|i, j| S::d2(gr, var::ALPHA, i, j));
    let d_chi = Vec3([S::d1(gr, var::CHI, 0), S::d1(gr, var::CHI, 1), S::d1(gr, var::CHI, 2)]);
    let dd_chi = Sym3::from_fn(|i, j| S::d2(gr, var::CHI, i, j));
    let d_k = Vec3([S::d1(gr, var::K, 0), S::d1(gr, var::K, 1), S::d1(gr, var::K, 2)]);
    // ∂_j β^i
    let db = |gr: &mut ExprGraph, i: usize, j: usize| S::d1(gr, var::beta(i), j);
    // ∂_j ∂_k β^i
    let ddb = |gr: &mut ExprGraph, i: usize, j: usize, k: usize| S::d2(gr, var::beta(i), j, k);
    // ∂_j B^i
    let d_bv = |gr: &mut ExprGraph, i: usize, j: usize| S::d1(gr, var::b_var(i), j);
    // ∂_k γ̃_ij
    let d_gt = |gr: &mut ExprGraph, k: usize, i: usize, j: usize| S::d1(gr, var::gt(i, j), k);
    // ∂_k ∂_l γ̃_ij
    let dd_gt =
        |gr: &mut ExprGraph, k: usize, l: usize, i: usize, j: usize| S::d2(gr, var::gt(i, j), k, l);
    // ∂_k Ã_ij
    let d_at = |gr: &mut ExprGraph, k: usize, i: usize, j: usize| S::d1(gr, var::at(i, j), k);
    // ∂_j Γ̃^i
    let d_gamt = |gr: &mut ExprGraph, i: usize, j: usize| S::d1(gr, var::gamt(i), j);

    // ---- Common intermediates -------------------------------------------
    let gtinv = inv_sym3(gr, &gt);
    // div β = ∂_k β^k
    let divbeta = {
        let terms: Vec<NodeId> = (0..3).map(|i| db(gr, i, i)).collect();
        gr.sum(&terms)
    };
    let inv_chi = gr.pow(chi, -1);

    // Lowered Christoffel symbols Γ̃_lij = ½(∂_j γ̃_li + ∂_i γ̃_lj − ∂_l γ̃_ij).
    let half = gr.constant(0.5);
    let mut c1 = [[NodeId(0); 6]; 3]; // c1[l][sym(i,j)]
    for l in 0..3 {
        for i in 0..3 {
            for j in i..3 {
                let t1 = d_gt(gr, j, l, i);
                let t2 = d_gt(gr, i, l, j);
                let t3 = d_gt(gr, l, i, j);
                let s = gr.add(t1, t2);
                let s = gr.sub(s, t3);
                c1[l][crate::symbols::sym_pair(i, j)] = gr.mul(half, s);
            }
        }
    }
    let c1 = c1.map(Sym3);
    // Raised Christoffels Γ̃^k_ij = γ̃^kl Γ̃_lij.
    let mut c2 = [[NodeId(0); 6]; 3];
    for k in 0..3 {
        for i in 0..3 {
            for j in i..3 {
                let mut acc = gr.constant(0.0);
                for l in 0..3 {
                    let p = gr.mul(gtinv.get(k, l), c1[l].get(i, j));
                    acc = gr.add(acc, p);
                }
                c2[k][crate::symbols::sym_pair(i, j)] = acc;
            }
        }
    }
    let c2 = c2.map(Sym3);
    // Metric-derived Γ̃^m = γ̃^kl Γ̃^m_kl (used in R^χ).
    let cal_gamt = Vec3([
        contract2(gr, &gtinv, &c2[0]),
        contract2(gr, &gtinv, &c2[1]),
        contract2(gr, &gtinv, &c2[2]),
    ]);

    // Ã with one index up: Ã^k_j = γ̃^kl Ã_lj (full matrix, not symmetric).
    let mut at_up1 = [[NodeId(0); 3]; 3]; // at_up1[k][j]
    for k in 0..3 {
        for j in 0..3 {
            let mut acc = gr.constant(0.0);
            for l in 0..3 {
                let p = gr.mul(gtinv.get(k, l), at.get(l, j));
                acc = gr.add(acc, p);
            }
            at_up1[k][j] = acc;
        }
    }
    // Ã with both indices up: Ã^ij = γ̃^ik Ã^j_k... = γ̃^ik γ̃^jl Ã_kl (symmetric).
    let at_up2 = Sym3::from_fn(|i, j| {
        let mut acc = gr.constant(0.0);
        for k in 0..3 {
            let p = gr.mul(gtinv.get(j, k), at_up1[i][k]);
            // at_up1[i][k] = γ̃^il Ã_lk; times γ̃^jk sums over k.
            acc = gr.add(acc, p);
        }
        acc
    });

    // ---- Ricci tensor ----------------------------------------------------
    // R̃_ij (Eq. 17, standard sign).
    let rt = Sym3::from_fn(|i, j| {
        let mut terms: Vec<NodeId> = Vec::new();
        // −½ γ̃^lm ∂_l∂_m γ̃_ij
        for l in 0..3 {
            for m in 0..3 {
                let dd = dd_gt(gr, l, m, i, j);
                let p = gr.mul(gtinv.get(l, m), dd);
                let p = gr.scale(-0.5, p);
                terms.push(p);
            }
        }
        // ½ (γ̃_ki ∂_j Γ̃^k + γ̃_kj ∂_i Γ̃^k)
        for k in 0..3 {
            let dj = d_gamt(gr, k, j);
            let di = d_gamt(gr, k, i);
            let p1 = gr.mul(gt.get(k, i), dj);
            let p2 = gr.mul(gt.get(k, j), di);
            let s = gr.add(p1, p2);
            terms.push(gr.scale(0.5, s));
        }
        // ½ Γ̃^k (Γ̃_ijk + Γ̃_jik)   [Γ̃_ijk = Γ̃ lowered-first-index i, pair (j,k)]
        for k in 0..3 {
            let s = gr.add(c1[i].get(j, k), c1[j].get(i, k));
            let p = gr.mul(gamt.get(k), s);
            terms.push(gr.scale(0.5, p));
        }
        // γ̃^lm (Γ̃^k_li Γ̃_jkm + Γ̃^k_lj Γ̃_ikm + Γ̃^k_im Γ̃_klj)
        for l in 0..3 {
            for m in 0..3 {
                for k in 0..3 {
                    let t1 = gr.mul(c2[k].get(l, i), c1[j].get(k, m));
                    let t2 = gr.mul(c2[k].get(l, j), c1[i].get(k, m));
                    let t3 = gr.mul(c2[k].get(i, m), c1[k].get(l, j));
                    let s = gr.add(t1, t2);
                    let s = gr.add(s, t3);
                    terms.push(gr.mul(gtinv.get(l, m), s));
                }
            }
        }
        gr.sum(&terms)
    });

    // R^χ_ij (Eqs. 18–19).
    let half_inv_chi = gr.scale(0.5, inv_chi);
    // γ̃^kl ∂_k∂_l χ, γ̃^kl ∂_kχ ∂_lχ, Γ̃(cal)^m ∂_mχ
    let lap_chi = contract2(gr, &gtinv, &dd_chi);
    let dchi2 = {
        let mut acc = gr.constant(0.0);
        for k in 0..3 {
            for l in 0..3 {
                let p = gr.mul(d_chi.get(k), d_chi.get(l));
                let p = gr.mul(gtinv.get(k, l), p);
                acc = gr.add(acc, p);
            }
        }
        acc
    };
    let gamt_dchi = {
        let mut acc = gr.constant(0.0);
        for m in 0..3 {
            let p = gr.mul(cal_gamt.get(m), d_chi.get(m));
            acc = gr.add(acc, p);
        }
        acc
    };
    // bracket = γ̃^kl ∂_kl χ − (3/(2χ)) γ̃^kl ∂_kχ∂_lχ − Γ̃^m ∂_mχ
    let bracket = {
        let t = gr.scale(1.5, dchi2);
        let t = gr.mul(t, inv_chi);
        let s = gr.sub(lap_chi, t);
        gr.sub(s, gamt_dchi)
    };
    let rchi = Sym3::from_fn(|i, j| {
        // M_ij = 1/(2χ)(∂_ij χ − Γ̃^k_ij ∂_kχ) − 1/(4χ²) ∂_iχ ∂_jχ
        let mut cov = dd_chi.get(i, j);
        for k in 0..3 {
            let p = gr.mul(c2[k].get(i, j), d_chi.get(k));
            cov = gr.sub(cov, p);
        }
        let m1 = gr.mul(half_inv_chi, cov);
        let dd = gr.mul(d_chi.get(i), d_chi.get(j));
        let q = gr.mul(inv_chi, inv_chi);
        let m2 = gr.scale(0.25, q);
        let m2 = gr.mul(m2, dd);
        let mij = gr.sub(m1, m2);
        // + 1/(2χ) γ̃_ij · bracket
        let t = gr.mul(half_inv_chi, gt.get(i, j));
        let t = gr.mul(t, bracket);
        gr.add(mij, t)
    });

    let ricci = Sym3::from_fn(|i, j| {
        let a = rt.get(i, j);
        let b = rchi.get(i, j);
        gr.add(a, b)
    });

    // ---- Covariant second derivatives of the lapse -----------------------
    // Full Christoffel (Eq. 13): Γ^k_ij = Γ̃^k_ij − 1/(2χ)(δ^k_i ∂_jχ +
    // δ^k_j ∂_iχ − γ̃_ij γ̃^kl ∂_lχ).
    let gtinv_dchi = {
        // γ̃^kl ∂_l χ for each k.
        let mut v = [NodeId(0); 3];
        for (k, o) in v.iter_mut().enumerate() {
            let mut acc = gr.constant(0.0);
            for l in 0..3 {
                let p = gr.mul(gtinv.get(k, l), d_chi.get(l));
                acc = gr.add(acc, p);
            }
            *o = acc;
        }
        Vec3(v)
    };
    // D_iD_jα (Eq. 15) per symmetric pair.
    let dd_alpha_cov = Sym3::from_fn(|i, j| {
        let mut acc = dd_alpha.get(i, j);
        for k in 0..3 {
            // Full Christoffel contribution assembled inline.
            let mut corr = gr.constant(0.0);
            if k == i {
                corr = gr.add(corr, d_chi.get(j));
            }
            if k == j {
                corr = gr.add(corr, d_chi.get(i));
            }
            let t = gr.mul(gt.get(i, j), gtinv_dchi.get(k));
            let corr = gr.sub(corr, t);
            let corr = gr.mul(half_inv_chi, corr);
            let full_c = gr.sub(c2[k].get(i, j), corr);
            let p = gr.mul(full_c, d_alpha.get(k));
            acc = gr.sub(acc, p);
        }
        acc
    });
    // D^iD_iα (Eq. 14) = χ γ̃^ij D_iD_jα.
    let lap_alpha = {
        let t = contract2(gr, &gtinv, &dd_alpha_cov);
        gr.mul(chi, t)
    };

    // ---- Equation (1): ∂_t α = β^i ∂_i α − 2αK --------------------------
    let advect = |gr: &mut ExprGraph, dvar: &dyn Fn(&mut ExprGraph, usize) -> NodeId| {
        let mut acc = gr.constant(0.0);
        for i in 0..3 {
            let d = dvar(gr, i);
            let p = gr.mul(beta.get(i), d);
            acc = gr.add(acc, p);
        }
        acc
    };
    let a_rhs = {
        let adv = advect(gr, &|gr, i| S::d1(gr, var::ALPHA, i));
        let ak = gr.mul(alpha, kk);
        let t = gr.scale(2.0, ak);
        gr.sub(adv, t)
    };

    // ---- Equation (8): ∂_t Γ̃^i (needed also by Eq. 3) --------------------
    let mut gamt_rhs = [NodeId(0); 3];
    for i in 0..3 {
        let mut terms: Vec<NodeId> = Vec::new();
        // γ̃^jk ∂_j∂_k β^i
        for j in 0..3 {
            for k in 0..3 {
                let dd = ddb(gr, i, j, k);
                terms.push(gr.mul(gtinv.get(j, k), dd));
            }
        }
        // ⅓ γ̃^ij ∂_j ∂_k β^k
        for j in 0..3 {
            let mut acc = gr.constant(0.0);
            for k in 0..3 {
                let dd = ddb(gr, k, j, k);
                acc = gr.add(acc, dd);
            }
            let p = gr.mul(gtinv.get(i, j), acc);
            terms.push(gr.scale(1.0 / 3.0, p));
        }
        // β^j ∂_j Γ̃^i
        terms.push(advect(gr, &|gr, j| d_gamt(gr, i, j)));
        // − Γ̃^j ∂_j β^i
        for j in 0..3 {
            let d = db(gr, i, j);
            let p = gr.mul(gamt.get(j), d);
            terms.push(gr.neg(p));
        }
        // + ⅔ Γ̃^i ∂_j β^j
        {
            let p = gr.mul(gamt.get(i), divbeta);
            terms.push(gr.scale(2.0 / 3.0, p));
        }
        // − 2 Ã^ij ∂_j α
        for j in 0..3 {
            let p = gr.mul(at_up2.get(i, j), d_alpha.get(j));
            terms.push(gr.scale(-2.0, p));
        }
        // + 2α (Γ̃^i_jk Ã^jk − (3/(2χ)) Ã^ij ∂_jχ − ⅔ γ̃^ij ∂_jK)
        {
            let mut inner: Vec<NodeId> = Vec::new();
            let cdota = contract2(gr, &c2[i], &at_up2);
            inner.push(cdota);
            for j in 0..3 {
                let p = gr.mul(at_up2.get(i, j), d_chi.get(j));
                let p = gr.mul(p, inv_chi);
                inner.push(gr.scale(-1.5, p));
                let q = gr.mul(gtinv.get(i, j), d_k.get(j));
                inner.push(gr.scale(-2.0 / 3.0, q));
            }
            let s = gr.sum(&inner);
            let s = gr.mul(alpha, s);
            terms.push(gr.scale(2.0, s));
        }
        gamt_rhs[i] = gr.sum(&terms);
    }

    // ---- Equation (2): ∂_t β^i = β^j ∂_j β^i + ¾ B^i ---------------------
    let mut beta_rhs = [NodeId(0); 3];
    for i in 0..3 {
        let adv = advect(gr, &|gr, j| db(gr, i, j));
        let p = gr.scale(0.75, bvec.get(i));
        beta_rhs[i] = gr.add(adv, p);
    }

    // ---- Equation (3): ∂_t B^i ------------------------------------------
    let mut b_rhs = [NodeId(0); 3];
    for i in 0..3 {
        let adv_b = advect(gr, &|gr, j| d_bv(gr, i, j));
        let adv_g = advect(gr, &|gr, j| d_gamt(gr, i, j));
        let damp = gr.scale(params.eta, bvec.get(i));
        let t = gr.sub(gamt_rhs[i], damp);
        let t = gr.add(t, adv_b);
        b_rhs[i] = gr.sub(t, adv_g);
    }

    // ---- Equation (4): ∂_t γ̃_ij ------------------------------------------
    let gt_rhs = Sym3::from_fn(|i, j| {
        let mut terms: Vec<NodeId> = Vec::new();
        terms.push(advect(gr, &|gr, k| d_gt(gr, k, i, j)));
        for k in 0..3 {
            let dj = db(gr, k, j);
            let di = db(gr, k, i);
            let p1 = gr.mul(gt.get(i, k), dj);
            let p2 = gr.mul(gt.get(k, j), di);
            terms.push(p1);
            terms.push(p2);
        }
        let w = gr.mul(gt.get(i, j), divbeta);
        terms.push(gr.scale(-2.0 / 3.0, w));
        let aa = gr.mul(alpha, at.get(i, j));
        terms.push(gr.scale(-2.0, aa));
        gr.sum(&terms)
    });

    // ---- Equation (5): ∂_t χ ----------------------------------------------
    let chi_rhs = {
        let adv = advect(gr, &|gr, k| S::d1(gr, var::CHI, k));
        let ak = gr.mul(alpha, kk);
        let inner = gr.sub(ak, divbeta);
        let p = gr.mul(chi, inner);
        let p = gr.scale(2.0 / 3.0, p);
        gr.add(adv, p)
    };

    // ---- Equation (6): ∂_t Ã_ij --------------------------------------------
    // S_ij = −D_iD_jα + α R_ij; trace-free part with γ̃.
    let s_tensor = Sym3::from_fn(|i, j| {
        let ar = gr.mul(alpha, ricci.get(i, j));
        gr.sub(ar, dd_alpha_cov.get(i, j))
    });
    let s_trace = contract2(gr, &gtinv, &s_tensor);
    let at_rhs = Sym3::from_fn(|i, j| {
        let mut terms: Vec<NodeId> = Vec::new();
        // Lie derivative, weight −2/3.
        terms.push(advect(gr, &|gr, k| d_at(gr, k, i, j)));
        for k in 0..3 {
            let dj = db(gr, k, j);
            let di = db(gr, k, i);
            terms.push(gr.mul(at.get(i, k), dj));
            terms.push(gr.mul(at.get(k, j), di));
        }
        let w = gr.mul(at.get(i, j), divbeta);
        terms.push(gr.scale(-2.0 / 3.0, w));
        // χ (S_ij)^TF
        {
            let tr_part = gr.mul(gt.get(i, j), s_trace);
            let tr_part = gr.scale(1.0 / 3.0, tr_part);
            let tf = gr.sub(s_tensor.get(i, j), tr_part);
            terms.push(gr.mul(chi, tf));
        }
        // α (K Ã_ij − 2 Ã_ik Ã^k_j)
        {
            let ka = gr.mul(kk, at.get(i, j));
            let mut aa = gr.constant(0.0);
            for k in 0..3 {
                let p = gr.mul(at.get(i, k), at_up1[k][j]);
                aa = gr.add(aa, p);
            }
            let aa = gr.scale(2.0, aa);
            let inner = gr.sub(ka, aa);
            terms.push(gr.mul(alpha, inner));
        }
        gr.sum(&terms)
    });

    // ---- Equation (7): ∂_t K ------------------------------------------------
    let k_rhs = {
        let adv = advect(gr, &|gr, k| S::d1(gr, var::K, k));
        let asq = contract2(gr, &at_up2, &at);
        let k2 = gr.mul(kk, kk);
        let k2 = gr.scale(1.0 / 3.0, k2);
        let inner = gr.add(asq, k2);
        let p = gr.mul(alpha, inner);
        let t = gr.sub(adv, lap_alpha);
        gr.add(t, p)
    };

    // ---- Assemble outputs in variable order, adding KO dissipation ---------
    let mut outputs = vec![NodeId(0); NUM_OUTPUTS];
    outputs[var::ALPHA] = a_rhs;
    for i in 0..3 {
        outputs[var::beta(i)] = beta_rhs[i];
        outputs[var::b_var(i)] = b_rhs[i];
        outputs[var::gamt(i)] = gamt_rhs[i];
    }
    outputs[var::CHI] = chi_rhs;
    outputs[var::K] = k_rhs;
    for i in 0..3 {
        for j in i..3 {
            outputs[var::gt(i, j)] = gt_rhs.get(i, j);
            outputs[var::at(i, j)] = at_rhs.get(i, j);
        }
    }
    // KO dissipation: rhs_v += σ Σ_d ko_d(v). The ko symbols carry the
    // (1/64h)-normalized 6th difference (see gw-stencil::ko).
    for (v, out) in outputs.iter_mut().enumerate() {
        let mut acc = gr.constant(0.0);
        for d in 0..3 {
            let s = S::ko(gr, v, d);
            acc = gr.add(acc, s);
        }
        let damp = gr.scale(params.ko_sigma, acc);
        *out = gr.add(*out, damp);
    }

    BssnRhs { graph: g, outputs, params }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{input_d1, input_ko, input_value, NUM_INPUTS};

    /// Flat-space inputs: α=1, β=B=0, χ=1, K=0, γ̃=δ, Ã=0, Γ̃=0, all
    /// derivatives zero.
    fn flat_inputs() -> Vec<f64> {
        let mut u = vec![0.0; NUM_INPUTS];
        u[input_value(var::ALPHA)] = 1.0;
        u[input_value(var::CHI)] = 1.0;
        u[input_value(var::gt(0, 0))] = 1.0;
        u[input_value(var::gt(1, 1))] = 1.0;
        u[input_value(var::gt(2, 2))] = 1.0;
        u
    }

    #[test]
    fn flat_space_is_stationary() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let out = rhs.graph.eval(&rhs.outputs, &flat_inputs());
        for (v, o) in out.iter().enumerate() {
            assert!(
                o.abs() < 1e-14,
                "flat space must be a fixed point; rhs[{}] = {o}",
                crate::symbols::VAR_NAMES[v]
            );
        }
    }

    #[test]
    fn graph_size_in_paper_ballpark() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let (nodes, edges) = rhs.graph.graph_stats(&rhs.outputs);
        // Paper: 2516 nodes, 6708 edges (different CSE granularity shifts
        // the counts; same order of magnitude is the check).
        assert!(nodes > 800 && nodes < 10_000, "nodes = {nodes}");
        assert!(edges > 2_000 && edges < 25_000, "edges = {edges}");
        let temps = rhs.graph.interior_count(&rhs.outputs);
        assert!(temps > 500 && temps < 8_000, "CSE temporaries = {temps}");
    }

    #[test]
    fn constant_lapse_k_coupling() {
        // With only α=1, K=k0 nonzero (flat metric), ∂_t α = −2αK = −2k0
        // and ∂_t K = α K²/3.
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[input_value(var::K)] = 0.3;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        assert!((out[var::ALPHA] + 2.0 * 0.3).abs() < 1e-14, "alpha rhs {}", out[var::ALPHA]);
        assert!((out[var::K] - 0.3 * 0.3 / 3.0).abs() < 1e-14, "K rhs {}", out[var::K]);
    }

    #[test]
    fn shift_advects_lapse() {
        // β^x = b, ∂_x α = s (flat otherwise, K = 0): ∂_t α = b·s.
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[input_value(var::beta(0))] = 0.7;
        u[input_d1(var::ALPHA, 0)] = 0.2;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        assert!((out[var::ALPHA] - 0.14).abs() < 1e-14);
    }

    #[test]
    fn gamma_driver_shift_follows_b() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[input_value(var::b_var(1))] = 0.4;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        assert!((out[var::beta(1)] - 0.3).abs() < 1e-14);
        // And B damps itself: ∂_t B^1 = −η B^1 (flat, static Γ̃).
        assert!((out[var::b_var(1)] + 2.0 * 0.4).abs() < 1e-14);
    }

    #[test]
    fn at_drives_metric() {
        // ∂_t γ̃_ij = −2α Ã_ij at zero shift.
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[input_value(var::at(0, 1))] = 0.05;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        assert!((out[var::gt(0, 1)] + 2.0 * 0.05).abs() < 1e-14);
        // Trace part: ∂_t K gains α Ã_ij Ã^ij = 2·(0.05)² (off-diagonal
        // counted twice, indices raised with δ).
        assert!((out[var::K] - 2.0 * 0.05 * 0.05).abs() < 1e-13, "K rhs {}", out[var::K]);
    }

    #[test]
    fn ko_terms_enter_every_equation() {
        let p = BssnParams { eta: 2.0, ko_sigma: 0.7, chi_floor: 1e-4 };
        let rhs = build_bssn_rhs(p);
        for v in 0..NUM_OUTPUTS {
            let mut u = flat_inputs();
            u[input_ko(v, 0)] = 1.0;
            u[input_ko(v, 2)] = 0.5;
            let out = rhs.graph.eval(&rhs.outputs, &u);
            assert!(
                (out[v] - 0.7 * 1.5).abs() < 1e-13,
                "KO missing or mis-scaled in eq {v}: {}",
                out[v]
            );
        }
    }

    #[test]
    fn chi_equation_couples_to_divergence_of_shift() {
        // ∂_t χ = ⅔ χ(αK − div β): set ∂_x β^x = 0.3, χ=1, α=1, K=0.2.
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[input_d1(var::beta(0), 0)] = 0.3;
        u[input_value(var::K)] = 0.2;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        let expect = 2.0 / 3.0 * (0.2 - 0.3);
        assert!((out[var::CHI] - expect).abs() < 1e-14);
    }

    #[test]
    fn lapse_second_derivative_enters_k() {
        // ∂_t K ⊃ −D^iD_iα = −χ γ̃^ij ∂_ij α in flat background.
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[crate::symbols::input_d2(var::ALPHA, 0, 0)] = 0.11;
        u[crate::symbols::input_d2(var::ALPHA, 1, 1)] = 0.07;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        assert!((out[var::K] + 0.18).abs() < 1e-14, "K rhs {}", out[var::K]);
    }

    #[test]
    fn ricci_from_metric_perturbation_enters_at() {
        // A pure ∂²γ̃ perturbation: R̃_ij ⊃ −½ γ̃^lm ∂_lm γ̃_ij. With
        // Ã=0, K=0, α=1, χ=1 the Ã_ij RHS is χ(αR_ij)^TF. Set
        // ∂_xx γ̃_12 = c: R_12 = −c/2 (trace-free already off-diagonal).
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut u = flat_inputs();
        u[crate::symbols::input_d2(var::gt(0, 1), 0, 0)] = 0.08;
        let out = rhs.graph.eval(&rhs.outputs, &u);
        assert!((out[var::at(0, 1)] + 0.04).abs() < 1e-13, "At12 rhs {}", out[var::at(0, 1)]);
    }
}
