//! Register-pressure / spill modelling.
//!
//! The paper reads spill statistics off `ptxas` for a 56-registers-per-
//! thread budget (`__launch_bounds__(343, 3)`, Table II). We model the same
//! quantity directly: walk a [`Schedule`], keep temporaries in a simulated
//! register file with Belady (furthest-next-use) eviction, and count the
//! spill stores (evicting a still-live value to local memory) and spill
//! loads (bringing it back for a use). Counts are in bytes (8 per f64),
//! matching the units of Table II.
//!
//! Input symbols (field values and derivatives) are treated as resident in
//! shared/global memory — their loads are part of the kernel's streaming
//! traffic, not spills — so the register file holds only the CSE
//! temporaries, exactly the population the paper's code generator
//! manipulates.

use crate::graph::{ExprGraph, NodeId};
use crate::schedule::Schedule;
use std::collections::HashMap;

/// Result of a spill simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillStats {
    /// Bytes stored to local memory on eviction of live values.
    pub spill_store_bytes: u64,
    /// Bytes loaded back from local memory for spilled operands.
    pub spill_load_bytes: u64,
    /// Peak live temporaries (register demand with infinite registers).
    pub max_live: usize,
    /// Scheduled operation count.
    pub ops: usize,
}

impl SpillStats {
    pub fn total_spill_bytes(&self) -> u64 {
        self.spill_store_bytes + self.spill_load_bytes
    }
}

/// Simulate a register file of `registers` slots executing `schedule`.
pub fn simulate_spills(g: &ExprGraph, schedule: &Schedule, registers: usize) -> SpillStats {
    assert!(registers >= 2, "need at least two registers");
    let order = &schedule.order;
    // Precompute, for each temporary, the positions where it is used.
    let mut use_positions: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (pos, &n) in order.iter().enumerate() {
        for c in g.op(n).operands() {
            if !g.op(c).is_leaf() {
                use_positions.entry(c).or_default().push(pos);
            }
        }
    }
    let is_output: std::collections::HashSet<NodeId> = schedule.outputs.iter().copied().collect();

    // Register file state.
    let mut file: Vec<RegEntry> = Vec::with_capacity(registers);
    let mut in_reg: HashMap<NodeId, usize> = HashMap::new(); // node -> file idx
    let mut spilled: std::collections::HashSet<NodeId> = Default::default();
    let mut remaining: HashMap<NodeId, usize> =
        use_positions.iter().map(|(k, v)| (*k, v.len())).collect();

    let mut stats =
        SpillStats { spill_store_bytes: 0, spill_load_bytes: 0, max_live: 0, ops: order.len() };
    let mut live_now = 0usize;

    // Next-use position of a node strictly after `pos`.
    let next_use_after = |node: NodeId, pos: usize, use_positions: &HashMap<NodeId, Vec<usize>>| {
        use_positions
            .get(&node)
            .and_then(|v| v.iter().find(|&&p| p > pos).copied())
            .unwrap_or(usize::MAX)
    };

    for (pos, &n) in order.iter().enumerate() {
        // 1. Bring spilled operands back.
        let operands: Vec<NodeId> = g.op(n).operands().filter(|c| !g.op(*c).is_leaf()).collect();
        for &c in &operands {
            if !in_reg.contains_key(&c) {
                // Must have been spilled earlier (or this is a bug).
                assert!(spilled.contains(&c), "operand {c:?} neither in regs nor spilled");
                stats.spill_load_bytes += 8;
                // Allocate a register for the reload.
                alloc_register(
                    c,
                    pos,
                    registers,
                    &mut file,
                    &mut in_reg,
                    &mut spilled,
                    &mut stats,
                    &use_positions,
                    &remaining,
                    &is_output,
                    next_use_after,
                    &operands,
                );
            }
        }
        // 2. Consume operand uses; free dead registers.
        for &c in &operands {
            let r = remaining.get_mut(&c).expect("tracked");
            *r -= 1;
            if *r == 0 {
                if let Some(idx) = in_reg.remove(&c) {
                    file.swap_remove(idx);
                    // Fix moved entry's index.
                    if idx < file.len() {
                        let moved = file[idx].node;
                        in_reg.insert(moved, idx);
                    }
                    live_now -= 1;
                }
                spilled.remove(&c);
            }
        }
        // 3. Produce the result. Outputs with no later uses go straight to
        // global memory — no register occupancy.
        let later_uses = remaining.get(&n).copied().unwrap_or(0);
        if later_uses > 0 || !is_output.contains(&n) {
            if later_uses == 0 {
                // Dead non-output node (possible only in odd graphs): skip.
                continue;
            }
            alloc_register(
                n,
                pos,
                registers,
                &mut file,
                &mut in_reg,
                &mut spilled,
                &mut stats,
                &use_positions,
                &remaining,
                &is_output,
                next_use_after,
                &[],
            );
            live_now += 1;
            stats.max_live = stats.max_live.max(live_now.max(file.len()));
        }
    }
    stats
}

/// Place `node` into the register file, evicting by Belady if full.
#[allow(clippy::too_many_arguments)]
fn alloc_register(
    node: NodeId,
    pos: usize,
    registers: usize,
    file: &mut Vec<RegEntry>,
    in_reg: &mut HashMap<NodeId, usize>,
    spilled: &mut std::collections::HashSet<NodeId>,
    stats: &mut SpillStats,
    use_positions: &HashMap<NodeId, Vec<usize>>,
    remaining: &HashMap<NodeId, usize>,
    _is_output: &std::collections::HashSet<NodeId>,
    next_use_after: impl Fn(NodeId, usize, &HashMap<NodeId, Vec<usize>>) -> usize,
    pinned: &[NodeId],
) {
    if file.len() >= registers {
        // Evict the entry with the furthest next use that is not pinned
        // (operands of the current op must stay resident).
        let victim_idx = file
            .iter()
            .enumerate()
            .filter(|(_, e)| !pinned.contains(&e.node))
            .max_by_key(|(_, e)| next_use_after(e.node, pos, use_positions))
            .map(|(i, _)| i)
            .expect("register file cannot be entirely pinned");
        let victim = file.swap_remove(victim_idx);
        in_reg.remove(&victim.node);
        if victim_idx < file.len() {
            let moved = file[victim_idx].node;
            in_reg.insert(moved, victim_idx);
        }
        // Spill store only if the victim still has pending uses.
        if remaining.get(&victim.node).copied().unwrap_or(0) > 0 {
            stats.spill_store_bytes += 8;
            spilled.insert(victim.node);
        }
    }
    let idx = file.len();
    file.push(RegEntry { node, next_use_idx: 0 });
    in_reg.insert(node, idx);
    spilled.remove(&node);
}

struct RegEntry {
    node: NodeId,
    #[allow(dead_code)]
    next_use_idx: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssn::{build_bssn_rhs, BssnParams};
    use crate::schedule::{schedule, ScheduleStrategy};

    #[test]
    fn no_spills_with_ample_registers() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::BinaryReduce);
        let live = sch.max_live(&rhs.graph);
        let stats = simulate_spills(&rhs.graph, &sch, live + 8);
        assert_eq!(stats.total_spill_bytes(), 0, "live={live}, stats={stats:?}");
    }

    #[test]
    fn tight_budget_forces_spills() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::CseTopo);
        let stats = simulate_spills(&rhs.graph, &sch, 56);
        assert!(stats.spill_store_bytes > 0);
        assert!(stats.spill_load_bytes > 0);
        // Loads >= stores: every spilled value is loaded at least once,
        // possibly many times.
        assert!(stats.spill_load_bytes >= stats.spill_store_bytes);
    }

    #[test]
    fn paper_ordering_of_strategies_at_56_registers() {
        // Table II: the baseline spills far more than binary-reduce and
        // staged+CSE.
        let rhs = build_bssn_rhs(BssnParams::default());
        let spills = |s: ScheduleStrategy| {
            let sch = schedule(&rhs.graph, &rhs.outputs, s);
            simulate_spills(&rhs.graph, &sch, 56)
        };
        let base = spills(ScheduleStrategy::CseTopo);
        let br = spills(ScheduleStrategy::BinaryReduce);
        let st = spills(ScheduleStrategy::StagedCse);
        assert!(
            br.total_spill_bytes() < base.total_spill_bytes(),
            "binary-reduce {br:?} must spill less than baseline {base:?}"
        );
        assert!(
            st.total_spill_bytes() < base.total_spill_bytes(),
            "staged {st:?} must spill less than baseline {base:?}"
        );
    }

    #[test]
    fn more_registers_never_more_spills() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::StagedCse);
        let mut prev = u64::MAX;
        for r in [16usize, 32, 56, 96, 160, 256] {
            let s = simulate_spills(&rhs.graph, &sch, r);
            assert!(
                s.total_spill_bytes() <= prev,
                "spills must be monotone in registers: {r} -> {s:?}"
            );
            prev = s.total_spill_bytes();
        }
    }

    #[test]
    fn small_graph_exact_counts() {
        // Chain: t1 = x+y; t2 = t1*x; t3 = t2+t1; with 2 registers no
        // spills are needed (t1, t2 live at once, t1 dies at t3).
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        let t1 = g.add(x, y);
        let t2 = g.mul(t1, x);
        let t3 = g.add(t2, t1);
        let sch = schedule(&g, &[t3], ScheduleStrategy::CseTopo);
        let stats = simulate_spills(&g, &sch, 2);
        assert_eq!(stats.total_spill_bytes(), 0);
        assert_eq!(stats.max_live, 2);
    }
}
