//! Evaluation-order strategies for the `A` kernel.
//!
//! Three schedulers corresponding to the paper's Table II rows:
//!
//! * [`ScheduleStrategy::CseTopo`] — the SymPyGR baseline: every shared
//!   subexpression is materialized as a temporary *before* any final
//!   expression is emitted. This maximizes the live ranges of the ~900
//!   CSE temporaries and is what causes the heavy register spilling the
//!   paper measures.
//! * [`ScheduleStrategy::BinaryReduce`] — the paper's Algorithm 3: a
//!   traversal (topological order of the line graph of the DAG) chosen to
//!   *reduce* as soon as possible, evicting temporaries the moment their
//!   out-degree reaches zero. We implement it as greedy list scheduling
//!   that always picks the ready node freeing the most live temporaries.
//! * [`ScheduleStrategy::StagedCse`] — compute each of the 24 equations as
//!   soon as its inputs are ready: outputs are processed one at a time and
//!   each pulls in only its not-yet-computed subexpressions.
//!
//! A schedule is a linear order over the reachable *interior* nodes; every
//! node appears exactly once (shared subexpressions are still shared — the
//! strategies change order, not work).

// Tensor-index loops (`for k in 0..3`) mirror the written math;
// enumerate() forms would obscure the index symmetry.
#![allow(clippy::needless_range_loop)]

use crate::graph::{ExprGraph, NodeId};
use std::collections::HashMap;

/// Which Table-II code-generation strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScheduleStrategy {
    /// SymPyGR-style CSE order (all temporaries, then all outputs).
    CseTopo,
    /// Algorithm 3 binary-reduction order (live-range minimizing).
    BinaryReduce,
    /// Per-equation staging.
    StagedCse,
}

impl ScheduleStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleStrategy::CseTopo => "SymPyGR",
            ScheduleStrategy::BinaryReduce => "binary-reduce",
            ScheduleStrategy::StagedCse => "staged + CSE",
        }
    }

    pub fn all() -> [ScheduleStrategy; 3] {
        [ScheduleStrategy::CseTopo, ScheduleStrategy::BinaryReduce, ScheduleStrategy::StagedCse]
    }
}

/// A linear evaluation order over interior nodes.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Interior (non-leaf) nodes in evaluation order; every reachable
    /// interior node exactly once.
    pub order: Vec<NodeId>,
    /// The roots (outputs), in output order.
    pub outputs: Vec<NodeId>,
    pub strategy: ScheduleStrategy,
}

impl Schedule {
    /// Peak number of simultaneously live temporaries under
    /// evict-at-last-use semantics (outputs stored to global on
    /// computation, so they do not occupy a slot afterwards). This is the
    /// quantity the paper reports as "675 live allocated temporary
    /// variables" for binary-reduce.
    pub fn max_live(&self, g: &ExprGraph) -> usize {
        let mut remaining_uses: HashMap<NodeId, usize> = HashMap::new();
        for &n in &self.order {
            for c in g.op(n).operands() {
                if !g.op(c).is_leaf() {
                    *remaining_uses.entry(c).or_insert(0) += 1;
                }
            }
        }
        let is_output: std::collections::HashSet<NodeId> = self.outputs.iter().copied().collect();
        let mut live = 0usize;
        let mut peak = 0usize;
        let mut live_set: std::collections::HashSet<NodeId> = Default::default();
        for &n in &self.order {
            // Consume operands.
            for c in g.op(n).operands() {
                if g.op(c).is_leaf() {
                    continue;
                }
                let u = remaining_uses.get_mut(&c).expect("operand scheduled before use");
                *u -= 1;
                if *u == 0 && live_set.remove(&c) {
                    live -= 1;
                }
            }
            // Produce: outputs go straight to global memory; a node that is
            // *also* used as an operand later (e.g. Γ̃-rhs feeding B-rhs)
            // still occupies a slot.
            let used_later = remaining_uses.get(&n).copied().unwrap_or(0) > 0;
            if used_later || !is_output.contains(&n) {
                if live_set.insert(n) {
                    live += 1;
                    peak = peak.max(live);
                }
                // Immediately drop never-used non-output nodes (shouldn't
                // exist for reachable graphs, but be safe).
                if !used_later && !is_output.contains(&n) && live_set.remove(&n) {
                    live -= 1;
                }
            }
        }
        peak
    }
}

/// Build a schedule for the given outputs under a strategy.
pub fn schedule(g: &ExprGraph, outputs: &[NodeId], strategy: ScheduleStrategy) -> Schedule {
    let order = match strategy {
        ScheduleStrategy::CseTopo => cse_topo(g, outputs),
        ScheduleStrategy::BinaryReduce => binary_reduce(g, outputs),
        ScheduleStrategy::StagedCse => staged(g, outputs),
    };
    debug_assert!(validate_order(g, outputs, &order));
    Schedule { order, outputs: outputs.to_vec(), strategy }
}

/// SymPyGR-style CSE order: **all shared temporaries first** (with their
/// dependency closures), then the final expressions.
///
/// This is what `sympy.cse` + sequential code emission produces: every
/// multiply-used subexpression is materialized as `DENDRO_t` before any
/// final expression is written, so the temporaries' live ranges stretch
/// across the whole kernel — the register-pressure pathology the paper's
/// Table II quantifies.
fn cse_topo(g: &ExprGraph, outputs: &[NodeId]) -> Vec<NodeId> {
    let mask = g.reachable(outputs);
    let out_set: std::collections::HashSet<NodeId> = outputs.iter().copied().collect();
    // Use counts within the reachable subgraph.
    let mut uses: Vec<u32> = vec![0; g.len()];
    for i in 0..g.len() {
        if !mask[i] {
            continue;
        }
        for c in g.op(NodeId(i as u32)).operands() {
            uses[c.0 as usize] += 1;
        }
    }
    // Phase 1: the dependency closure of every shared (use count >= 2)
    // non-output interior node, in ascending (topological) id order.
    let shared: Vec<NodeId> = (0..g.len())
        .map(|i| NodeId(i as u32))
        .filter(|id| {
            mask[id.0 as usize]
                && !g.op(*id).is_leaf()
                && uses[id.0 as usize] >= 2
                && !out_set.contains(id)
        })
        .collect();
    let closure = g.reachable(&shared);
    let mut order: Vec<NodeId> = Vec::new();
    let mut emitted = vec![false; g.len()];
    for i in 0..g.len() {
        let id = NodeId(i as u32);
        if closure[i] && !g.op(id).is_leaf() {
            order.push(id);
            emitted[i] = true;
        }
    }
    // Phase 2: everything else (single-use glue and the final
    // expressions), ascending — which respects dependencies.
    for i in 0..g.len() {
        let id = NodeId(i as u32);
        if mask[i] && !g.op(id).is_leaf() && !emitted[i] {
            order.push(id);
            emitted[i] = true;
        }
    }
    order
}

/// Per-output staging: for each output emit its missing dependencies in
/// depth-first postorder.
fn staged(g: &ExprGraph, outputs: &[NodeId]) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut done = vec![false; g.len()];
    for &out in outputs {
        emit_postorder(g, out, &mut done, &mut order);
    }
    order
}

fn emit_postorder(g: &ExprGraph, n: NodeId, done: &mut [bool], order: &mut Vec<NodeId>) {
    if done[n.0 as usize] || g.op(n).is_leaf() {
        return;
    }
    // Iterative postorder to avoid deep recursion on big DAGs.
    let mut stack: Vec<(NodeId, bool)> = vec![(n, false)];
    while let Some((id, expanded)) = stack.pop() {
        if done[id.0 as usize] || g.op(id).is_leaf() {
            continue;
        }
        if expanded {
            if !done[id.0 as usize] {
                done[id.0 as usize] = true;
                order.push(id);
            }
        } else {
            stack.push((id, true));
            for c in g.op(id).operands() {
                if !done[c.0 as usize] && !g.op(c).is_leaf() {
                    stack.push((c, false));
                }
            }
        }
    }
}

/// Greedy live-range-minimizing list scheduling (Algorithm 3 flavor):
/// among ready nodes, prefer the one that frees the most operands, then
/// the one adding the least new pressure, then construction order.
fn binary_reduce(g: &ExprGraph, outputs: &[NodeId]) -> Vec<NodeId> {
    let mask = g.reachable(outputs);
    // Remaining-use counts of interior nodes.
    let mut uses: HashMap<NodeId, u32> = HashMap::new();
    let mut pending_ops: HashMap<NodeId, u32> = HashMap::new();
    let mut consumers: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut interior: Vec<NodeId> = Vec::new();
    for i in 0..g.len() {
        if !mask[i] {
            continue;
        }
        let id = NodeId(i as u32);
        let op = g.op(id);
        if op.is_leaf() {
            continue;
        }
        interior.push(id);
        let mut pend = 0;
        for c in op.operands() {
            if !g.op(c).is_leaf() {
                *uses.entry(c).or_insert(0) += 1;
                consumers.entry(c).or_default().push(id);
                pend += 1;
            }
        }
        pending_ops.insert(id, pend);
    }
    // Ready set: interior nodes with all interior operands computed.
    let mut ready: Vec<NodeId> =
        interior.iter().copied().filter(|id| pending_ops[id] == 0).collect();
    let mut order = Vec::with_capacity(interior.len());
    let mut remaining: HashMap<NodeId, u32> = uses.clone();
    let mut computed = vec![false; g.len()];
    while let Some((best_idx, _)) = ready.iter().enumerate().min_by_key(|(_, &id)| {
        // Score: (frees, adds) — maximize frees, minimize adds, then id.
        let mut frees = 0i32;
        for c in g.op(id).operands() {
            if !g.op(c).is_leaf() && remaining.get(&c).copied().unwrap_or(0) == 1 {
                frees += 1;
            }
        }
        let adds = if remaining.get(&id).copied().unwrap_or(0) > 0 { 1i32 } else { 0 };
        (-frees, adds, id.0)
    }) {
        let id = ready.swap_remove(best_idx);
        computed[id.0 as usize] = true;
        order.push(id);
        for c in g.op(id).operands() {
            if !g.op(c).is_leaf() {
                *remaining.get_mut(&c).unwrap() -= 1;
            }
        }
        if let Some(cons) = consumers.get(&id) {
            for &k in cons {
                let p = pending_ops.get_mut(&k).unwrap();
                *p -= 1;
                if *p == 0 && !computed[k.0 as usize] {
                    ready.push(k);
                }
            }
        }
    }
    order
}

/// Every interior reachable node appears exactly once, after its operands.
fn validate_order(g: &ExprGraph, outputs: &[NodeId], order: &[NodeId]) -> bool {
    let mask = g.reachable(outputs);
    let interior_count =
        (0..g.len()).filter(|&i| mask[i] && !g.op(NodeId(i as u32)).is_leaf()).count();
    if order.len() != interior_count {
        return false;
    }
    let mut pos = vec![usize::MAX; g.len()];
    for (p, &n) in order.iter().enumerate() {
        if pos[n.0 as usize] != usize::MAX {
            return false; // duplicate
        }
        pos[n.0 as usize] = p;
    }
    for &n in order {
        for c in g.op(n).operands() {
            if !g.op(c).is_leaf() && pos[c.0 as usize] >= pos[n.0 as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssn::{build_bssn_rhs, BssnParams};

    fn toy_graph() -> (ExprGraph, Vec<NodeId>) {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        let a = g.add(x, y);
        let b = g.mul(a, a);
        let c = g.mul(a, x);
        let o1 = g.add(b, c);
        let o2 = g.sub(b, c);
        (g, vec![o1, o2])
    }

    #[test]
    fn all_strategies_produce_valid_orders() {
        let (g, outs) = toy_graph();
        for s in ScheduleStrategy::all() {
            let sch = schedule(&g, &outs, s);
            assert!(validate_order(&g, &outs, &sch.order), "{s:?}");
        }
    }

    #[test]
    fn all_strategies_same_work() {
        let (g, outs) = toy_graph();
        let lens: Vec<usize> =
            ScheduleStrategy::all().iter().map(|&s| schedule(&g, &outs, s).order.len()).collect();
        assert_eq!(lens[0], lens[1]);
        assert_eq!(lens[1], lens[2]);
    }

    #[test]
    fn bssn_schedules_valid_and_equal_work() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let mut lens = Vec::new();
        for s in ScheduleStrategy::all() {
            let sch = schedule(&rhs.graph, &rhs.outputs, s);
            assert!(validate_order(&rhs.graph, &rhs.outputs, &sch.order), "{s:?}");
            lens.push(sch.order.len());
        }
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn binary_reduce_has_lower_peak_live_than_cse() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let cse = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::CseTopo);
        let br = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::BinaryReduce);
        let st = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::StagedCse);
        let live_cse = cse.max_live(&rhs.graph);
        let live_br = br.max_live(&rhs.graph);
        let live_st = st.max_live(&rhs.graph);
        // The whole point of the paper's Algorithm 3: shorter live ranges.
        assert!(live_br < live_cse, "binary-reduce live {live_br} must beat CSE live {live_cse}");
        assert!(live_st < live_cse, "staged live {live_st} must beat CSE live {live_st}");
        // Paper scale: hundreds of live temporaries for the baseline.
        assert!(live_cse > 100, "CSE peak live = {live_cse}");
    }

    #[test]
    fn staged_interleaves_outputs() {
        // In the staged schedule the first output appears before the last
        // temporary; in the CSE schedule all outputs come last.
        let rhs = build_bssn_rhs(BssnParams::default());
        let st = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::StagedCse);
        let cse = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::CseTopo);
        let out_set: std::collections::HashSet<NodeId> = rhs.outputs.iter().copied().collect();
        // Pure sinks: outputs not consumed by any other reachable node
        // (everything except the Γ̃-rhs nodes that feed the B equations).
        let mask = rhs.graph.reachable(&rhs.outputs);
        let mut consumed: std::collections::HashSet<NodeId> = Default::default();
        for i in 0..rhs.graph.len() {
            if mask[i] {
                for c in rhs.graph.op(NodeId(i as u32)).operands() {
                    consumed.insert(c);
                }
            }
        }
        let sinks: std::collections::HashSet<NodeId> =
            out_set.iter().copied().filter(|o| !consumed.contains(o)).collect();
        let first_sink_st = st.order.iter().position(|n| sinks.contains(n)).unwrap();
        let first_sink_cse = cse.order.iter().position(|n| sinks.contains(n)).unwrap();
        assert!(
            first_sink_st < first_sink_cse,
            "staged must emit its first output earlier ({first_sink_st} vs {first_sink_cse})"
        );
        // CSE: every shared temporary precedes the first output (the
        // SymPyGR all-temps-first property).
        let mut uses: std::collections::HashMap<NodeId, u32> = Default::default();
        for i in 0..rhs.graph.len() {
            if mask[i] {
                for c in rhs.graph.op(NodeId(i as u32)).operands() {
                    *uses.entry(c).or_insert(0) += 1;
                }
            }
        }
        for (pos, n) in cse.order.iter().enumerate() {
            if uses.get(n).copied().unwrap_or(0) >= 2 && !out_set.contains(n) {
                assert!(
                    pos < first_sink_cse,
                    "shared temp {n:?} at {pos} must precede the first output at {first_sink_cse}"
                );
            }
        }
    }

    #[test]
    fn schedules_evaluate_correctly() {
        // Execute a schedule step by step and compare with graph eval.
        let (g, outs) = toy_graph();
        let inputs = [1.5f64, -2.0];
        let expect = g.eval(&outs, &inputs);
        for s in ScheduleStrategy::all() {
            let sch = schedule(&g, &outs, s);
            let mut vals: HashMap<NodeId, f64> = HashMap::new();
            let get = |vals: &HashMap<NodeId, f64>, g: &ExprGraph, id: NodeId| -> f64 {
                match g.op(id) {
                    crate::graph::Op::Const(b) => f64::from_bits(b),
                    crate::graph::Op::Sym(i) => inputs[i as usize],
                    _ => vals[&id],
                }
            };
            for &n in &sch.order {
                let v = match g.op(n) {
                    crate::graph::Op::Add(a, b) => get(&vals, &g, a) + get(&vals, &g, b),
                    crate::graph::Op::Sub(a, b) => get(&vals, &g, a) - get(&vals, &g, b),
                    crate::graph::Op::Mul(a, b) => get(&vals, &g, a) * get(&vals, &g, b),
                    crate::graph::Op::Div(a, b) => get(&vals, &g, a) / get(&vals, &g, b),
                    crate::graph::Op::Neg(a) => -get(&vals, &g, a),
                    crate::graph::Op::Pow(a, k) => get(&vals, &g, a).powi(k),
                    _ => unreachable!("leaves not scheduled"),
                };
                vals.insert(n, v);
            }
            for (o, e) in outs.iter().zip(expect.iter()) {
                assert!((vals[o] - e).abs() < 1e-14, "{s:?}");
            }
        }
    }
}
