//! Hash-consed expression DAG.
//!
//! Every distinct subexpression exists exactly once (structural sharing),
//! so building the BSSN RHS automatically performs common-subexpression
//! elimination. Nodes are small POD values indexed by [`NodeId`]; the DAG
//! is append-only, so `NodeId` ordering is a valid topological order of the
//! construction.

use std::collections::HashMap;

/// Index of a node in an [`ExprGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Expression node operations. Binary ops are kept binary (no n-ary sums)
/// so the binary-reduce scheduler of the paper applies directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Floating constant (bit pattern, for Eq/Hash).
    Const(u64),
    /// Input symbol (field variable or derivative), by input index.
    Sym(u32),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    Neg(NodeId),
    /// Integer power (n >= 2 or n <= -1); `Pow(x, -1)` is reciprocal.
    Pow(NodeId, i32),
}

impl Op {
    /// Operand list (0–2 entries).
    pub fn operands(&self) -> impl Iterator<Item = NodeId> + '_ {
        let (a, b) = match *self {
            Op::Const(_) | Op::Sym(_) => (None, None),
            Op::Neg(x) | Op::Pow(x, _) => (Some(x), None),
            Op::Add(x, y) | Op::Sub(x, y) | Op::Mul(x, y) | Op::Div(x, y) => (Some(x), Some(y)),
        };
        a.into_iter().chain(b)
    }

    /// True for leaves (no operands).
    pub fn is_leaf(&self) -> bool {
        matches!(self, Op::Const(_) | Op::Sym(_))
    }

    /// Double-precision flop cost of this node (0 for leaves; `Pow(x,n)`
    /// costs ~log2|n| multiplies plus a divide if n < 0).
    pub fn flops(&self) -> u64 {
        match *self {
            Op::Const(_) | Op::Sym(_) => 0,
            Op::Neg(_) => 1,
            Op::Add(..) | Op::Sub(..) | Op::Mul(..) => 1,
            Op::Div(..) => 1,
            Op::Pow(_, n) => {
                let m = (n.unsigned_abs().max(2) as f64).log2().ceil() as u64;
                if n < 0 {
                    m + 1
                } else {
                    m
                }
            }
        }
    }
}

/// A hash-consed, append-only expression DAG.
#[derive(Default)]
pub struct ExprGraph {
    nodes: Vec<Op>,
    intern: HashMap<Op, NodeId>,
}

impl ExprGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn op(&self, id: NodeId) -> Op {
        self.nodes[id.0 as usize]
    }

    pub fn nodes(&self) -> &[Op] {
        &self.nodes
    }

    fn intern_op(&mut self, op: Op) -> NodeId {
        if let Some(&id) = self.intern.get(&op) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(op);
        self.intern.insert(op, id);
        id
    }

    /// A floating constant.
    pub fn constant(&mut self, v: f64) -> NodeId {
        self.intern_op(Op::Const(v.to_bits()))
    }

    /// An input symbol.
    pub fn sym(&mut self, input_index: u32) -> NodeId {
        self.intern_op(Op::Sym(input_index))
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        // Light normalization: constant folding with 0, canonical operand
        // order for commutative ops (improves sharing).
        if self.is_zero(a) {
            return b;
        }
        if self.is_zero(b) {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern_op(Op::Add(a, b))
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_zero(b) {
            return a;
        }
        if self.is_zero(a) {
            return self.neg(b);
        }
        if a == b {
            return self.constant(0.0);
        }
        self.intern_op(Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_zero(a) || self.is_zero(b) {
            return self.constant(0.0);
        }
        if self.is_one(a) {
            return b;
        }
        if self.is_one(b) {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern_op(Op::Mul(a, b))
    }

    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.is_zero(a) {
            return self.constant(0.0);
        }
        if self.is_one(b) {
            return a;
        }
        self.intern_op(Op::Div(a, b))
    }

    pub fn neg(&mut self, a: NodeId) -> NodeId {
        if self.is_zero(a) {
            return a;
        }
        if let Op::Neg(x) = self.op(a) {
            return x;
        }
        self.intern_op(Op::Neg(a))
    }

    pub fn pow(&mut self, a: NodeId, n: i32) -> NodeId {
        match n {
            0 => self.constant(1.0),
            1 => a,
            _ => self.intern_op(Op::Pow(a, n)),
        }
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, c: f64, a: NodeId) -> NodeId {
        let k = self.constant(c);
        self.mul(k, a)
    }

    /// Sum of a slice of terms.
    pub fn sum(&mut self, terms: &[NodeId]) -> NodeId {
        let mut acc = self.constant(0.0);
        for &t in terms {
            acc = self.add(acc, t);
        }
        acc
    }

    fn is_zero(&self, a: NodeId) -> bool {
        self.op(a) == Op::Const(0f64.to_bits())
    }

    fn is_one(&self, a: NodeId) -> bool {
        self.op(a) == Op::Const(1f64.to_bits())
    }

    /// Evaluate a set of roots given input symbol values (reference
    /// interpreter, used for validating schedules and tapes).
    pub fn eval(&self, roots: &[NodeId], inputs: &[f64]) -> Vec<f64> {
        let mut vals = vec![0.0f64; self.nodes.len()];
        // NodeIds are topologically ordered by construction.
        for (i, op) in self.nodes.iter().enumerate() {
            vals[i] = match *op {
                Op::Const(b) => f64::from_bits(b),
                Op::Sym(s) => inputs[s as usize],
                Op::Add(a, b) => vals[a.0 as usize] + vals[b.0 as usize],
                Op::Sub(a, b) => vals[a.0 as usize] - vals[b.0 as usize],
                Op::Mul(a, b) => vals[a.0 as usize] * vals[b.0 as usize],
                Op::Div(a, b) => vals[a.0 as usize] / vals[b.0 as usize],
                Op::Neg(a) => -vals[a.0 as usize],
                Op::Pow(a, n) => vals[a.0 as usize].powi(n),
            };
        }
        roots.iter().map(|r| vals[r.0 as usize]).collect()
    }

    /// The set of nodes reachable from `roots` (the live subgraph), as a
    /// boolean mask.
    pub fn reachable(&self, roots: &[NodeId]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if seen[n.0 as usize] {
                continue;
            }
            seen[n.0 as usize] = true;
            for c in self.op(n).operands() {
                if !seen[c.0 as usize] {
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// (nodes, edges) of the subgraph reachable from `roots` — the numbers
    /// the paper quotes for the composed BSSN graph (2516 nodes, 6708
    /// edges).
    pub fn graph_stats(&self, roots: &[NodeId]) -> (usize, usize) {
        let mask = self.reachable(roots);
        let mut nodes = 0;
        let mut edges = 0;
        for (i, op) in self.nodes.iter().enumerate() {
            if mask[i] {
                nodes += 1;
                edges += op.operands().count();
            }
        }
        (nodes, edges)
    }

    /// Number of interior (non-leaf) reachable nodes — the count of CSE
    /// temporaries a naive one-temp-per-subexpression code generator
    /// would materialize (SymPyGR reports ~900).
    pub fn interior_count(&self, roots: &[NodeId]) -> usize {
        let mask = self.reachable(roots);
        self.nodes.iter().enumerate().filter(|(i, op)| mask[*i] && !op.is_leaf()).count()
    }

    /// Number of *multiply-used* interior nodes — the temporaries a
    /// SymPy-style CSE pass would name (`DENDRO_t…`; paper: ~900).
    pub fn shared_count(&self, roots: &[NodeId]) -> usize {
        let mask = self.reachable(roots);
        let mut uses = vec![0u32; self.nodes.len()];
        for (i, op) in self.nodes.iter().enumerate() {
            if mask[i] {
                for c in op.operands() {
                    uses[c.0 as usize] += 1;
                }
            }
        }
        (0..self.nodes.len())
            .filter(|&i| mask[i] && !self.nodes[i].is_leaf() && uses[i] >= 2)
            .count()
    }

    /// Total flops to evaluate the reachable subgraph once (every shared
    /// node counted once — the CSE operation count).
    pub fn flop_count(&self, roots: &[NodeId]) -> u64 {
        let mask = self.reachable(roots);
        self.nodes.iter().enumerate().filter(|(i, _)| mask[*i]).map(|(_, op)| op.flops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_structure() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        let a = g.add(x, y);
        let b = g.add(x, y);
        assert_eq!(a, b);
        let c = g.add(y, x); // commutative normalization
        assert_eq!(a, c);
    }

    #[test]
    fn constant_folding_identities() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let zero = g.constant(0.0);
        let one = g.constant(1.0);
        assert_eq!(g.add(x, zero), x);
        assert_eq!(g.mul(x, one), x);
        assert_eq!(g.mul(x, zero), zero);
        assert_eq!(g.sub(x, x), zero);
        assert_eq!(g.pow(x, 1), x);
        let negneg = {
            let n = g.neg(x);
            g.neg(n)
        };
        assert_eq!(negneg, x);
    }

    #[test]
    fn eval_matches_direct_computation() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        // f = (x + y)^2 / (x - 2y) - x
        let s = g.add(x, y);
        let s2 = g.pow(s, 2);
        let two = g.constant(2.0);
        let ty = g.mul(two, y);
        let d = g.sub(x, ty);
        let q = g.div(s2, d);
        let f = g.sub(q, x);
        let got = g.eval(&[f], &[3.0, 0.5])[0];
        let expect = (3.0f64 + 0.5).powi(2) / (3.0 - 1.0) - 3.0;
        assert!((got - expect).abs() < 1e-14);
    }

    #[test]
    fn eval_negative_power_is_reciprocal() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let inv = g.pow(x, -1);
        let inv2 = g.pow(x, -2);
        let got = g.eval(&[inv, inv2], &[4.0]);
        assert!((got[0] - 0.25).abs() < 1e-15);
        assert!((got[1] - 0.0625).abs() < 1e-15);
    }

    #[test]
    fn reachable_masks_dead_code() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        let live = g.add(x, x);
        let _dead = g.mul(y, y);
        let mask = g.reachable(&[live]);
        assert!(mask[x.0 as usize]);
        assert!(mask[live.0 as usize]);
        assert!(!mask[_dead.0 as usize]);
        assert!(!mask[y.0 as usize]);
    }

    #[test]
    fn graph_stats_counts_nodes_and_edges() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        let a = g.add(x, y); // 2 edges
        let b = g.mul(a, x); // 2 edges
        let (n, e) = g.graph_stats(&[b]);
        assert_eq!(n, 4); // x, y, a, b
        assert_eq!(e, 4);
        assert_eq!(g.interior_count(&[b]), 2);
    }

    #[test]
    fn flop_count_shared_nodes_counted_once() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let s = g.add(x, x);
        let p = g.mul(s, s);
        let q = g.add(p, s); // s shared
        assert_eq!(g.flop_count(&[q]), 3);
    }

    #[test]
    fn sum_of_terms() {
        let mut g = ExprGraph::new();
        let terms: Vec<NodeId> = (0..5).map(|i| g.sym(i)).collect();
        let s = g.sum(&terms);
        let got = g.eval(&[s], &[1.0, 2.0, 3.0, 4.0, 5.0])[0];
        assert_eq!(got, 15.0);
    }
}
