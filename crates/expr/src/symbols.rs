//! The BSSN input-symbol table: 234 inputs, 24 outputs.
//!
//! Section IV-B of the paper: all 24 field variables require all first
//! derivatives (72), the 11 variables `α, β^i, χ, γ̃_ij` require all second
//! derivatives (66), and all 24 need Kreiss–Oliger derivatives (72) —
//! 210 derivatives total, plus the 24 field values themselves = 234 inputs
//! feeding the algebraic `A` component that produces the 24 RHS outputs.

/// Number of evolved field variables.
pub const NUM_VARS: usize = 24;
/// Variables carrying second derivatives (α, β^0..2, χ, γ̃_0..5).
pub const NUM_VARS_2ND: usize = 11;
/// First-derivative inputs.
pub const NUM_D1: usize = 3 * NUM_VARS; // 72
/// Second-derivative inputs (6 symmetric pairs × 11 vars).
pub const NUM_D2: usize = 6 * NUM_VARS_2ND; // 66
/// Kreiss–Oliger derivative inputs.
pub const NUM_KO: usize = 3 * NUM_VARS; // 72
/// Total inputs to `A`.
pub const NUM_INPUTS: usize = NUM_VARS + NUM_D1 + NUM_D2 + NUM_KO; // 234
/// Outputs of `A` (the 24 RHS values).
pub const NUM_OUTPUTS: usize = NUM_VARS;

/// Field variable indices (Dendro-GR ordering).
pub mod var {
    pub const ALPHA: usize = 0;
    pub const BETA0: usize = 1;
    pub const BETA1: usize = 2;
    pub const BETA2: usize = 3;
    pub const B0: usize = 4;
    pub const B1: usize = 5;
    pub const B2: usize = 6;
    pub const CHI: usize = 7;
    pub const K: usize = 8;
    /// Symmetric conformal metric γ̃: 6 components (11,12,13,22,23,33).
    pub const GT0: usize = 9;
    pub const GT5: usize = 14;
    /// Symmetric trace-free extrinsic curvature Ã: 6 components.
    pub const AT0: usize = 15;
    pub const AT5: usize = 20;
    /// Conformal connection Γ̃^i.
    pub const GAMT0: usize = 21;
    pub const GAMT2: usize = 23;

    /// γ̃ component index for (i, j), i,j ∈ 0..3.
    pub fn gt(i: usize, j: usize) -> usize {
        GT0 + super::sym_pair(i, j)
    }

    /// Ã component index for (i, j).
    pub fn at(i: usize, j: usize) -> usize {
        AT0 + super::sym_pair(i, j)
    }

    /// Γ̃^i component index.
    pub fn gamt(i: usize) -> usize {
        GAMT0 + i
    }

    /// β^i component index.
    pub fn beta(i: usize) -> usize {
        BETA0 + i
    }

    /// B^i component index.
    pub fn b_var(i: usize) -> usize {
        B0 + i
    }
}

/// Symmetric-pair index: (0,0)→0 (0,1)→1 (0,2)→2 (1,1)→3 (1,2)→4 (2,2)→5.
pub fn sym_pair(i: usize, j: usize) -> usize {
    let (i, j) = if i <= j { (i, j) } else { (j, i) };
    match (i, j) {
        (0, 0) => 0,
        (0, 1) => 1,
        (0, 2) => 2,
        (1, 1) => 3,
        (1, 2) => 4,
        (2, 2) => 5,
        _ => unreachable!("indices must be < 3"),
    }
}

/// Slot of a variable in the second-derivative block, if it has one.
pub fn second_deriv_slot(v: usize) -> Option<usize> {
    match v {
        var::ALPHA => Some(0),
        var::BETA0 => Some(1),
        var::BETA1 => Some(2),
        var::BETA2 => Some(3),
        var::CHI => Some(4),
        _ if (var::GT0..=var::GT5).contains(&v) => Some(5 + (v - var::GT0)),
        _ => None,
    }
}

/// Flat input index of a field value.
pub fn input_value(v: usize) -> usize {
    debug_assert!(v < NUM_VARS);
    v
}

/// Flat input index of ∂_d of variable `v`.
pub fn input_d1(v: usize, d: usize) -> usize {
    debug_assert!(v < NUM_VARS && d < 3);
    NUM_VARS + v * 3 + d
}

/// Flat input index of ∂_i∂_j of variable `v` (must have second derivs).
pub fn input_d2(v: usize, i: usize, j: usize) -> usize {
    let slot = second_deriv_slot(v).expect("variable has no second derivatives");
    NUM_VARS + NUM_D1 + slot * 6 + sym_pair(i, j)
}

/// Flat input index of the KO derivative along `d` of variable `v`.
pub fn input_ko(v: usize, d: usize) -> usize {
    debug_assert!(v < NUM_VARS && d < 3);
    NUM_VARS + NUM_D1 + NUM_D2 + v * 3 + d
}

/// Human-readable variable names, index-aligned with the `var` module.
pub const VAR_NAMES: [&str; NUM_VARS] = [
    "alpha", "beta0", "beta1", "beta2", "B0", "B1", "B2", "chi", "K", "gt11", "gt12", "gt13",
    "gt22", "gt23", "gt33", "At11", "At12", "At13", "At22", "At23", "At33", "Gamt0", "Gamt1",
    "Gamt2",
];

/// Human-readable name of any flat input index.
pub fn input_name(idx: usize) -> String {
    const AXES: [&str; 3] = ["x", "y", "z"];
    if idx < NUM_VARS {
        return VAR_NAMES[idx].to_string();
    }
    if idx < NUM_VARS + NUM_D1 {
        let r = idx - NUM_VARS;
        return format!("d{}_{}", AXES[r % 3], VAR_NAMES[r / 3]);
    }
    if idx < NUM_VARS + NUM_D1 + NUM_D2 {
        let r = idx - NUM_VARS - NUM_D1;
        let slot = r / 6;
        let pair = r % 6;
        let v = [0usize, 1, 2, 3, 7, 9, 10, 11, 12, 13, 14][slot];
        const PAIRS: [(&str, &str); 6] =
            [("x", "x"), ("x", "y"), ("x", "z"), ("y", "y"), ("y", "z"), ("z", "z")];
        let (a, b) = PAIRS[pair];
        return format!("d{a}{b}_{}", VAR_NAMES[v]);
    }
    let r = idx - NUM_VARS - NUM_D1 - NUM_D2;
    format!("ko{}_{}", AXES[r % 3], VAR_NAMES[r / 3])
}

/// Helper struct bundling symbol-creation against an `ExprGraph`.
pub struct SymbolTable;

impl SymbolTable {
    /// Create (or fetch) the symbol node for a field value.
    pub fn value(g: &mut crate::graph::ExprGraph, v: usize) -> crate::graph::NodeId {
        g.sym(input_value(v) as u32)
    }

    /// ∂_d symbol.
    pub fn d1(g: &mut crate::graph::ExprGraph, v: usize, d: usize) -> crate::graph::NodeId {
        g.sym(input_d1(v, d) as u32)
    }

    /// ∂_i∂_j symbol.
    pub fn d2(
        g: &mut crate::graph::ExprGraph,
        v: usize,
        i: usize,
        j: usize,
    ) -> crate::graph::NodeId {
        g.sym(input_d2(v, i, j) as u32)
    }

    /// KO derivative symbol.
    pub fn ko(g: &mut crate::graph::ExprGraph, v: usize, d: usize) -> crate::graph::NodeId {
        g.sym(input_ko(v, d) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_input_counts() {
        assert_eq!(NUM_D1, 72);
        assert_eq!(NUM_D2, 66);
        assert_eq!(NUM_KO, 72);
        assert_eq!(NUM_D1 + NUM_D2 + NUM_KO, 210, "the paper's 210 derivatives");
        assert_eq!(NUM_INPUTS, 234, "the paper's 234 A-inputs");
    }

    #[test]
    fn input_indices_are_disjoint_and_dense() {
        let mut seen = vec![false; NUM_INPUTS];
        for v in 0..NUM_VARS {
            let i = input_value(v);
            assert!(!seen[i]);
            seen[i] = true;
        }
        for v in 0..NUM_VARS {
            for d in 0..3 {
                let i = input_d1(v, d);
                assert!(!seen[i]);
                seen[i] = true;
                let i = input_ko(v, d);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        for v in 0..NUM_VARS {
            if second_deriv_slot(v).is_some() {
                for a in 0..3 {
                    for b in a..3 {
                        let i = input_d2(v, a, b);
                        if !seen[i] {
                            seen[i] = true;
                        }
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every input slot must be addressable");
    }

    #[test]
    fn d2_symmetric_in_indices() {
        assert_eq!(input_d2(var::CHI, 0, 2), input_d2(var::CHI, 2, 0));
        assert_eq!(input_d2(var::ALPHA, 1, 2), input_d2(var::ALPHA, 2, 1));
    }

    #[test]
    fn gt_at_components() {
        assert_eq!(var::gt(0, 0), var::GT0);
        assert_eq!(var::gt(2, 2), var::GT5);
        assert_eq!(var::gt(1, 0), var::gt(0, 1));
        assert_eq!(var::at(2, 1), var::at(1, 2));
        assert_eq!(var::gamt(2), var::GAMT2);
    }

    #[test]
    fn second_deriv_vars_count() {
        let n = (0..NUM_VARS).filter(|&v| second_deriv_slot(v).is_some()).count();
        assert_eq!(n, NUM_VARS_2ND);
        assert!(second_deriv_slot(var::K).is_none());
        assert!(second_deriv_slot(var::AT0).is_none());
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<String> = (0..NUM_INPUTS).map(input_name).collect();
        assert_eq!(names.len(), NUM_INPUTS);
        assert_eq!(input_name(0), "alpha");
        assert!(input_name(input_d1(var::CHI, 1)).contains("chi"));
    }
}
