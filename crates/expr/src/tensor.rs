//! Small tensor helpers over expression nodes.
//!
//! Transcribing the BSSN equations needs 3-vectors, symmetric 3×3 tensors
//! and rank-3 Christoffel-like objects whose components are DAG nodes.

use crate::graph::{ExprGraph, NodeId};
use crate::symbols::sym_pair;

/// A 3-vector of expression nodes.
#[derive(Clone, Copy, Debug)]
pub struct Vec3(pub [NodeId; 3]);

impl Vec3 {
    pub fn get(&self, i: usize) -> NodeId {
        self.0[i]
    }
}

/// A symmetric 3×3 tensor stored as 6 components (11,12,13,22,23,33).
#[derive(Clone, Copy, Debug)]
pub struct Sym3(pub [NodeId; 6]);

impl Sym3 {
    pub fn get(&self, i: usize, j: usize) -> NodeId {
        self.0[sym_pair(i, j)]
    }

    pub fn from_fn(mut f: impl FnMut(usize, usize) -> NodeId) -> Self {
        Self([f(0, 0), f(0, 1), f(0, 2), f(1, 1), f(1, 2), f(2, 2)])
    }
}

/// A general (non-symmetric) 3×3 matrix of nodes.
#[derive(Clone, Copy, Debug)]
pub struct Mat3(pub [[NodeId; 3]; 3]);

impl Mat3 {
    pub fn get(&self, i: usize, j: usize) -> NodeId {
        self.0[i][j]
    }
}

/// Determinant of a symmetric 3×3.
pub fn det_sym3(g: &mut ExprGraph, m: &Sym3) -> NodeId {
    // det = a(df−e²) − b(bf−ce) + c(be−cd) with
    // [a b c; b d e; c e f].
    let (a, b, c) = (m.get(0, 0), m.get(0, 1), m.get(0, 2));
    let (d, e, f) = (m.get(1, 1), m.get(1, 2), m.get(2, 2));
    let df = g.mul(d, f);
    let e2 = g.mul(e, e);
    let t1 = g.sub(df, e2);
    let t1 = g.mul(a, t1);
    let bf = g.mul(b, f);
    let ce = g.mul(c, e);
    let t2 = g.sub(bf, ce);
    let t2 = g.mul(b, t2);
    let be = g.mul(b, e);
    let cd = g.mul(c, d);
    let t3 = g.sub(be, cd);
    let t3 = g.mul(c, t3);
    let s = g.sub(t1, t2);
    g.add(s, t3)
}

/// Inverse of a symmetric 3×3 (returns a symmetric tensor).
pub fn inv_sym3(g: &mut ExprGraph, m: &Sym3) -> Sym3 {
    let (a, b, c) = (m.get(0, 0), m.get(0, 1), m.get(0, 2));
    let (d, e, f) = (m.get(1, 1), m.get(1, 2), m.get(2, 2));
    let det = det_sym3(g, m);
    let idet = g.pow(det, -1);
    // Adjugate of a symmetric matrix is symmetric.
    let mut adj = [NodeId(0); 6];
    // (0,0): df − e²
    let df = g.mul(d, f);
    let e2 = g.mul(e, e);
    adj[0] = g.sub(df, e2);
    // (0,1): ce − bf
    let ce = g.mul(c, e);
    let bf = g.mul(b, f);
    adj[1] = g.sub(ce, bf);
    // (0,2): be − cd
    let be = g.mul(b, e);
    let cd = g.mul(c, d);
    adj[2] = g.sub(be, cd);
    // (1,1): af − c²
    let af = g.mul(a, f);
    let c2 = g.mul(c, c);
    adj[3] = g.sub(af, c2);
    // (1,2): bc − ae
    let bc = g.mul(b, c);
    let ae = g.mul(a, e);
    adj[4] = g.sub(bc, ae);
    // (2,2): ad − b²
    let ad = g.mul(a, d);
    let b2 = g.mul(b, b);
    adj[5] = g.sub(ad, b2);
    Sym3(adj.map(|x| g.mul(x, idet)))
}

/// Contraction `v^i w_i`.
pub fn dot(g: &mut ExprGraph, v: &Vec3, w: &Vec3) -> NodeId {
    let mut acc = g.constant(0.0);
    for i in 0..3 {
        let p = g.mul(v.get(i), w.get(i));
        acc = g.add(acc, p);
    }
    acc
}

/// `m^{ij} v_j` — raise an index.
pub fn raise(g: &mut ExprGraph, m: &Sym3, v: &Vec3) -> Vec3 {
    let mut out = [NodeId(0); 3];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = g.constant(0.0);
        for j in 0..3 {
            let p = g.mul(m.get(i, j), v.get(j));
            acc = g.add(acc, p);
        }
        *o = acc;
    }
    Vec3(out)
}

/// Double contraction `a^{ij} b_{ij}` of two symmetric tensors.
pub fn contract2(g: &mut ExprGraph, a: &Sym3, b: &Sym3) -> NodeId {
    let mut acc = g.constant(0.0);
    for i in 0..3 {
        for j in 0..3 {
            let p = g.mul(a.get(i, j), b.get(i, j));
            acc = g.add(acc, p);
        }
    }
    acc
}

/// Trace `m^{ij} t_{ij}` with metric inverse `m`.
pub fn trace(g: &mut ExprGraph, minv: &Sym3, t: &Sym3) -> NodeId {
    contract2(g, minv, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym3_from(vals: [f64; 6], g: &mut ExprGraph, base: u32) -> (Sym3, Vec<f64>) {
        let nodes = Sym3([
            g.sym(base),
            g.sym(base + 1),
            g.sym(base + 2),
            g.sym(base + 3),
            g.sym(base + 4),
            g.sym(base + 5),
        ]);
        (nodes, vals.to_vec())
    }

    #[test]
    fn det_of_identity_is_one() {
        let mut g = ExprGraph::new();
        let (m, vals) = sym3_from([1.0, 0.0, 0.0, 1.0, 0.0, 1.0], &mut g, 0);
        let det = det_sym3(&mut g, &m);
        assert_eq!(g.eval(&[det], &vals)[0], 1.0);
    }

    #[test]
    fn det_matches_explicit_formula() {
        let mut g = ExprGraph::new();
        // [2 1 0; 1 3 1; 0 1 4]: det = 2(12−1) − 1(4−0) + 0 = 18.
        let (m, vals) = sym3_from([2.0, 1.0, 0.0, 3.0, 1.0, 4.0], &mut g, 0);
        let det = det_sym3(&mut g, &m);
        assert!((g.eval(&[det], &vals)[0] - 18.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut g = ExprGraph::new();
        let (m, vals) = sym3_from([2.0, 0.5, -0.25, 3.0, 0.75, 4.0], &mut g, 0);
        let inv = inv_sym3(&mut g, &m);
        // Check M · M⁻¹ = I numerically.
        let mut roots = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = g.constant(0.0);
                for k in 0..3 {
                    let p = g.mul(m.get(i, k), inv.get(k, j));
                    acc = g.add(acc, p);
                }
                roots.push(acc);
            }
        }
        let got = g.eval(&roots, &vals);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((got[i * 3 + j] - expect).abs() < 1e-12, "({i},{j}) = {}", got[i * 3 + j]);
            }
        }
    }

    #[test]
    fn unit_det_metric_inverse_is_adjugate() {
        // BSSN keeps det(γ̃) = 1; then the inverse equals the adjugate.
        let mut g = ExprGraph::new();
        // Construct a det-1 symmetric matrix: diag(2, 0.5, 1).
        let (m, vals) = sym3_from([2.0, 0.0, 0.0, 0.5, 0.0, 1.0], &mut g, 0);
        let inv = inv_sym3(&mut g, &m);
        let got = g.eval(&[inv.get(0, 0), inv.get(1, 1), inv.get(2, 2)], &vals);
        assert!((got[0] - 0.5).abs() < 1e-14);
        assert!((got[1] - 2.0).abs() < 1e-14);
        assert!((got[2] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn contraction_helpers() {
        let mut g = ExprGraph::new();
        let v = Vec3([g.sym(0), g.sym(1), g.sym(2)]);
        let w = Vec3([g.sym(3), g.sym(4), g.sym(5)]);
        let d = dot(&mut g, &v, &w);
        let got = g.eval(&[d], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])[0];
        assert_eq!(got, 32.0);
    }

    #[test]
    fn raise_with_identity_is_noop() {
        let mut g = ExprGraph::new();
        let one = g.constant(1.0);
        let zero = g.constant(0.0);
        let id = Sym3([one, zero, zero, one, zero, one]);
        let v = Vec3([g.sym(0), g.sym(1), g.sym(2)]);
        let r = raise(&mut g, &id, &v);
        let got = g.eval(&[r.get(0), r.get(1), r.get(2)], &[7.0, -2.0, 0.5]);
        assert_eq!(got, vec![7.0, -2.0, 0.5]);
    }

    #[test]
    fn contract2_symmetric() {
        let mut g = ExprGraph::new();
        let (a, mut va) = sym3_from([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &mut g, 0);
        let (b, vb) = sym3_from([6.0, 5.0, 4.0, 3.0, 2.0, 1.0], &mut g, 6);
        va.extend(vb);
        let c = contract2(&mut g, &a, &b);
        // Σ a_ij b_ij over full 3×3: diag once, off-diag twice.
        let expect = 1.0 * 6.0 + 4.0 * 3.0 + 6.0 * 1.0 + 2.0 * (2.0 * 5.0 + 3.0 * 4.0 + 5.0 * 2.0);
        assert_eq!(g.eval(&[c], &va)[0], expect);
    }
}
