//! Symbolic expression DAGs and code generation for the BSSN right-hand
//! side.
//!
//! The paper's `A` component — the algebraic combination of the 24 evolved
//! fields and their 210 derivatives into the 24 RHS outputs — is far too
//! entangled to write by hand, so Dendro-GR generates it with
//! SymPy + NetworkX. This crate is the native equivalent:
//!
//! * [`graph`] — a hash-consed expression DAG ([`graph::ExprGraph`]).
//!   Hash-consing *is* common-subexpression elimination: structurally equal
//!   subtrees share a node, mirroring SymPy's CSE output.
//! * [`symbols`] — the input-symbol table: 24 field variables, 72 first
//!   derivatives, 66 second derivatives, 72 Kreiss–Oliger derivatives
//!   (the paper's 234 inputs).
//! * [`tensor`] — 3-vector / symmetric-3×3 helpers used to transcribe the
//!   tensorial BSSN equations.
//! * [`bssn`] — the full BSSN RHS (Eqs. 1–19 of the paper) built
//!   symbolically: Lie derivatives, Christoffel symbols, Ricci tensor,
//!   covariant second derivatives of the lapse, trace-free projection,
//!   Gamma-driver gauge.
//! * [`schedule`] — the three evaluation-order strategies compared in
//!   Table II / Fig. 11: `CseTopo` (SymPyGR baseline), `BinaryReduce`
//!   (Algorithm 3: line-graph topological traversal minimizing temporary
//!   live ranges), `StagedCse` (evaluate each equation as soon as its
//!   inputs are ready).
//! * [`regalloc`] — a register file + Belady-eviction spill model that
//!   turns a schedule into `ptxas`-style spill load/store byte counts for
//!   a given per-thread register budget (the paper uses 56 registers from
//!   `__launch_bounds__(343,3)`).
//! * [`tape`] — compiles a schedule into an executable bytecode tape and
//!   interprets it; the solver's generated-RHS backends run these tapes.

pub mod bssn;
pub mod graph;
pub mod regalloc;
pub mod schedule;
pub mod symbols;
pub mod tape;
pub mod tensor;

pub use graph::{ExprGraph, NodeId, Op};
pub use regalloc::{simulate_spills, SpillStats};
pub use schedule::{schedule, Schedule, ScheduleStrategy};
pub use symbols::{SymbolTable, NUM_INPUTS, NUM_OUTPUTS};
pub use tape::{Tape, TapeInstr};
