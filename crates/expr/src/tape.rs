//! Executable tapes: compiled evaluation schedules.
//!
//! A [`Tape`] is the bytecode the "code generator" emits — the runnable
//! artifact corresponding to the CUDA C the paper's SymPyGR pipeline
//! produces. The solver's generated-RHS backends interpret one tape per
//! grid point (the `A` component of the RHS); the three scheduling
//! strategies produce tapes with identical arithmetic but different
//! temporary-slot footprints, which is what Fig. 11 / Table II measure.
//!
//! Slot allocation reuses freed slots, so the tape's `n_slots` equals the
//! schedule's peak live count plus the operand window — the working-set
//! size that drives cache behaviour during interpretation.

use crate::graph::{ExprGraph, NodeId, Op};
use crate::regalloc::{simulate_spills, SpillStats};
use crate::schedule::Schedule;
use std::collections::HashMap;

/// One tape instruction. `dst`/`a`/`b` are temporary-slot indices;
/// `Input` reads the flat input array, `Output` writes the output array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TapeInstr {
    /// `slots[dst] = constants[c]`
    Const {
        dst: u16,
        c: u16,
    },
    /// `slots[dst] = inputs[i]`
    Input {
        dst: u16,
        i: u16,
    },
    Add {
        dst: u16,
        a: u16,
        b: u16,
    },
    Sub {
        dst: u16,
        a: u16,
        b: u16,
    },
    Mul {
        dst: u16,
        a: u16,
        b: u16,
    },
    Div {
        dst: u16,
        a: u16,
        b: u16,
    },
    Neg {
        dst: u16,
        a: u16,
    },
    Powi {
        dst: u16,
        a: u16,
        n: i16,
    },
    /// `outputs[o] = slots[a]`
    Output {
        o: u16,
        a: u16,
    },
}

/// A compiled, executable evaluation tape.
pub struct Tape {
    pub instrs: Vec<TapeInstr>,
    pub constants: Vec<f64>,
    /// Temporary slots needed by [`Tape::eval_into`].
    pub n_slots: usize,
    pub n_inputs: usize,
    pub n_outputs: usize,
    /// Flop count per evaluation.
    pub flops: u64,
    /// Spill statistics at the 56-register budget used by the paper
    /// (recorded at compile time for the device counters).
    pub spill_stats: SpillStats,
    pub strategy_name: &'static str,
}

impl Tape {
    /// Compile a schedule into a tape. `registers` sets the spill-model
    /// budget recorded in [`Tape::spill_stats`] (the paper uses 56).
    pub fn compile(g: &ExprGraph, schedule: &Schedule, registers: usize) -> Tape {
        let spill_stats = simulate_spills(g, schedule, registers);
        let mut instrs: Vec<TapeInstr> = Vec::with_capacity(schedule.order.len() * 2);
        let mut constants: Vec<f64> = Vec::new();
        let mut const_idx: HashMap<u64, u16> = HashMap::new();

        // Remaining-use counts to recycle slots.
        let mut remaining: HashMap<NodeId, u32> = HashMap::new();
        for &n in &schedule.order {
            for c in g.op(n).operands() {
                *remaining.entry(c).or_insert(0) += 1;
            }
        }
        let out_positions: HashMap<NodeId, Vec<u16>> = {
            let mut m: HashMap<NodeId, Vec<u16>> = HashMap::new();
            for (i, &o) in schedule.outputs.iter().enumerate() {
                m.entry(o).or_default().push(i as u16);
            }
            m
        };

        let mut slot_of: HashMap<NodeId, u16> = HashMap::new();
        let mut free: Vec<u16> = Vec::new();
        let mut n_slots: u16 = 0;
        let mut flops: u64 = 0;

        let alloc = |free: &mut Vec<u16>, n_slots: &mut u16| -> u16 {
            free.pop().unwrap_or_else(|| {
                let s = *n_slots;
                *n_slots += 1;
                s
            })
        };

        // Materialize an operand into a slot (leaves load on demand).
        macro_rules! operand_slot {
            ($id:expr) => {{
                let id: NodeId = $id;
                match g.op(id) {
                    Op::Const(bits) => {
                        let c = *const_idx.entry(bits).or_insert_with(|| {
                            constants.push(f64::from_bits(bits));
                            (constants.len() - 1) as u16
                        });
                        let dst = alloc(&mut free, &mut n_slots);
                        instrs.push(TapeInstr::Const { dst, c });
                        (dst, true)
                    }
                    Op::Sym(i) => {
                        let dst = alloc(&mut free, &mut n_slots);
                        instrs.push(TapeInstr::Input { dst, i: i as u16 });
                        (dst, true)
                    }
                    _ => (*slot_of.get(&id).expect("operand scheduled"), false),
                }
            }};
        }

        for &n in &schedule.order {
            let op = g.op(n);
            let mut temp_slots: Vec<u16> = Vec::new();
            let (sa, sb) = match op {
                Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Div(a, b) => {
                    let (sa, ta) = operand_slot!(a);
                    if ta {
                        temp_slots.push(sa);
                    }
                    let (sb, tb) = operand_slot!(b);
                    if tb {
                        temp_slots.push(sb);
                    }
                    (sa, Some(sb))
                }
                Op::Neg(a) | Op::Pow(a, _) => {
                    let (sa, ta) = operand_slot!(a);
                    if ta {
                        temp_slots.push(sa);
                    }
                    (sa, None)
                }
                Op::Const(_) | Op::Sym(_) => unreachable!("leaves are not scheduled"),
            };
            // Release interior operand slots whose last use this is.
            for c in op.operands() {
                if g.op(c).is_leaf() {
                    continue;
                }
                let r = remaining.get_mut(&c).unwrap();
                *r -= 1;
                if *r == 0 {
                    if let Some(s) = slot_of.remove(&c) {
                        free.push(s);
                    }
                }
            }
            // Release one-shot leaf slots.
            free.extend(temp_slots);
            let dst = alloc(&mut free, &mut n_slots);
            flops += op.flops();
            instrs.push(match op {
                Op::Add(..) => TapeInstr::Add { dst, a: sa, b: sb.unwrap() },
                Op::Sub(..) => TapeInstr::Sub { dst, a: sa, b: sb.unwrap() },
                Op::Mul(..) => TapeInstr::Mul { dst, a: sa, b: sb.unwrap() },
                Op::Div(..) => TapeInstr::Div { dst, a: sa, b: sb.unwrap() },
                Op::Neg(_) => TapeInstr::Neg { dst, a: sa },
                Op::Pow(_, k) => TapeInstr::Powi { dst, a: sa, n: k as i16 },
                _ => unreachable!(),
            });
            // Emit outputs immediately (store-to-global in Algorithm 3).
            if let Some(outs) = out_positions.get(&n) {
                for &o in outs {
                    instrs.push(TapeInstr::Output { o, a: dst });
                }
            }
            if remaining.get(&n).copied().unwrap_or(0) > 0 {
                slot_of.insert(n, dst);
            } else {
                free.push(dst);
            }
        }
        // Outputs that are pure leaves (degenerate but legal).
        for (i, &o) in schedule.outputs.iter().enumerate() {
            match g.op(o) {
                Op::Const(bits) => {
                    let c = *const_idx.entry(bits).or_insert_with(|| {
                        constants.push(f64::from_bits(bits));
                        (constants.len() - 1) as u16
                    });
                    let dst = alloc(&mut free, &mut n_slots);
                    instrs.push(TapeInstr::Const { dst, c });
                    instrs.push(TapeInstr::Output { o: i as u16, a: dst });
                    free.push(dst);
                }
                Op::Sym(s) => {
                    let dst = alloc(&mut free, &mut n_slots);
                    instrs.push(TapeInstr::Input { dst, i: s as u16 });
                    instrs.push(TapeInstr::Output { o: i as u16, a: dst });
                    free.push(dst);
                }
                _ => {}
            }
        }

        let n_inputs = g
            .nodes()
            .iter()
            .filter_map(|op| match op {
                Op::Sym(i) => Some(*i as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Tape {
            instrs,
            constants,
            n_slots: n_slots as usize,
            n_inputs,
            n_outputs: schedule.outputs.len(),
            flops,
            spill_stats,
            strategy_name: schedule.strategy.name(),
        }
    }

    /// Evaluate the tape for one point. `slots` must have `n_slots`
    /// capacity and is reused across calls (the hot-loop workhorse
    /// buffer).
    pub fn eval_into(&self, inputs: &[f64], outputs: &mut [f64], slots: &mut [f64]) {
        debug_assert!(slots.len() >= self.n_slots);
        debug_assert!(outputs.len() >= self.n_outputs);
        for ins in &self.instrs {
            match *ins {
                TapeInstr::Const { dst, c } => slots[dst as usize] = self.constants[c as usize],
                TapeInstr::Input { dst, i } => slots[dst as usize] = inputs[i as usize],
                TapeInstr::Add { dst, a, b } => {
                    slots[dst as usize] = slots[a as usize] + slots[b as usize]
                }
                TapeInstr::Sub { dst, a, b } => {
                    slots[dst as usize] = slots[a as usize] - slots[b as usize]
                }
                TapeInstr::Mul { dst, a, b } => {
                    slots[dst as usize] = slots[a as usize] * slots[b as usize]
                }
                TapeInstr::Div { dst, a, b } => {
                    slots[dst as usize] = slots[a as usize] / slots[b as usize]
                }
                TapeInstr::Neg { dst, a } => slots[dst as usize] = -slots[a as usize],
                TapeInstr::Powi { dst, a, n } => {
                    slots[dst as usize] = slots[a as usize].powi(n as i32)
                }
                TapeInstr::Output { o, a } => outputs[o as usize] = slots[a as usize],
            }
        }
    }

    /// Convenience single-point evaluation with fresh buffers.
    pub fn eval(&self, inputs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_outputs];
        let mut slots = vec![0.0; self.n_slots];
        self.eval_into(inputs, &mut out, &mut slots);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssn::{build_bssn_rhs, BssnParams};
    use crate::schedule::{schedule, ScheduleStrategy};
    use crate::symbols::NUM_INPUTS;

    #[test]
    fn tape_matches_graph_eval_on_toy() {
        let mut g = ExprGraph::new();
        let x = g.sym(0);
        let y = g.sym(1);
        let a = g.add(x, y);
        let b = g.mul(a, a);
        let c = g.div(b, x);
        let d = g.pow(c, -2);
        let o = g.sub(d, y);
        for s in ScheduleStrategy::all() {
            let sch = schedule(&g, &[o, b], s);
            let tape = Tape::compile(&g, &sch, 56);
            let inputs = [2.0f64, 3.0];
            let expect = g.eval(&[o, b], &inputs);
            let got = tape.eval(&inputs);
            assert_eq!(got.len(), 2);
            for (a, b) in got.iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-14, "{s:?}: {got:?} vs {expect:?}");
            }
        }
    }

    #[test]
    fn bssn_tapes_agree_across_strategies() {
        let rhs = build_bssn_rhs(BssnParams::default());
        // Random-ish but well-conditioned inputs: flat space plus noise.
        let mut inputs = vec![0.0f64; NUM_INPUTS];
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.01
        };
        for v in inputs.iter_mut() {
            *v = rng();
        }
        inputs[crate::symbols::input_value(crate::symbols::var::ALPHA)] = 1.0 + rng();
        inputs[crate::symbols::input_value(crate::symbols::var::CHI)] = 1.0 + rng();
        inputs[crate::symbols::input_value(crate::symbols::var::gt(0, 0))] = 1.0 + rng();
        inputs[crate::symbols::input_value(crate::symbols::var::gt(1, 1))] = 1.0 + rng();
        inputs[crate::symbols::input_value(crate::symbols::var::gt(2, 2))] = 1.0 + rng();

        let expect = rhs.graph.eval(&rhs.outputs, &inputs);
        for s in ScheduleStrategy::all() {
            let sch = schedule(&rhs.graph, &rhs.outputs, s);
            let tape = Tape::compile(&rhs.graph, &sch, 56);
            let got = tape.eval(&inputs);
            for (i, (a, b)) in got.iter().zip(expect.iter()).enumerate() {
                assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "{s:?} output {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn slot_counts_reflect_live_ranges() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let slots = |s: ScheduleStrategy| {
            let sch = schedule(&rhs.graph, &rhs.outputs, s);
            Tape::compile(&rhs.graph, &sch, 56).n_slots
        };
        let cse = slots(ScheduleStrategy::CseTopo);
        let br = slots(ScheduleStrategy::BinaryReduce);
        let st = slots(ScheduleStrategy::StagedCse);
        assert!(br < cse, "binary-reduce slots {br} vs CSE {cse}");
        assert!(st < cse, "staged slots {st} vs CSE {cse}");
    }

    #[test]
    fn tape_flops_match_graph_flops() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::StagedCse);
        let tape = Tape::compile(&rhs.graph, &sch, 56);
        assert_eq!(tape.flops, rhs.graph.flop_count(&rhs.outputs));
        // Paper's O_A scale: thousands of ops for the A component.
        assert!(tape.flops > 1_000, "flops = {}", tape.flops);
    }

    #[test]
    fn eval_into_reuses_buffers() {
        let rhs = build_bssn_rhs(BssnParams::default());
        let sch = schedule(&rhs.graph, &rhs.outputs, ScheduleStrategy::BinaryReduce);
        let tape = Tape::compile(&rhs.graph, &sch, 56);
        let mut slots = vec![0.0; tape.n_slots];
        let mut out = vec![0.0; tape.n_outputs];
        let mut inputs = vec![0.0; NUM_INPUTS];
        inputs[0] = 1.0; // alpha
        inputs[7] = 1.0; // chi
        inputs[9] = 1.0;
        inputs[12] = 1.0;
        inputs[14] = 1.0; // gt diag
        tape.eval_into(&inputs, &mut out, &mut slots);
        let first = out.clone();
        tape.eval_into(&inputs, &mut out, &mut slots);
        assert_eq!(first, out, "stale slot state must not leak between evals");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::schedule::{schedule, ScheduleStrategy};
    use proptest::prelude::*;

    /// Build a random DAG over 4 inputs from a sequence of op codes; every
    /// new node picks operands among the existing nodes.
    fn build_random(ops: &[(u8, u8, u8)], g: &mut ExprGraph) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = (0..4).map(|i| g.sym(i)).collect();
        pool.push(g.constant(1.5));
        pool.push(g.constant(-0.75));
        for &(op, a, b) in ops {
            let x = pool[a as usize % pool.len()];
            let y = pool[b as usize % pool.len()];
            let n = match op % 6 {
                0 => g.add(x, y),
                1 => g.sub(x, y),
                2 => g.mul(x, y),
                3 => g.neg(x),
                4 => g.pow(x, 2),
                _ => g.add(x, y),
            };
            pool.push(n);
        }
        // Up to 3 roots from the tail of the pool.
        pool.iter().rev().take(3).copied().collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn all_strategies_and_tapes_agree_on_random_dags(
            ops in prop::collection::vec((0u8..6, 0u8..64, 0u8..64), 1..40),
            inputs in prop::array::uniform4(-2.0f64..2.0),
        ) {
            let mut g = ExprGraph::new();
            let roots = build_random(&ops, &mut g);
            // Skip degenerate all-leaf root sets.
            let interior_roots: Vec<NodeId> =
                roots.iter().copied().filter(|r| !g.op(*r).is_leaf()).collect();
            prop_assume!(!interior_roots.is_empty());
            let expect = g.eval(&interior_roots, &inputs);
            for strat in ScheduleStrategy::all() {
                let sch = schedule(&g, &interior_roots, strat);
                // Schedule sanity: peak live within node count.
                prop_assert!(sch.max_live(&g) <= sch.order.len());
                let tape = Tape::compile(&g, &sch, 8);
                let got = tape.eval(&inputs);
                for (a, b) in got.iter().zip(expect.iter()) {
                    if b.is_finite() {
                        prop_assert!(
                            (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                            "{strat:?}: {a} vs {b}"
                        );
                    }
                }
                // Spill model must be well-defined even at a tiny budget.
                let s = crate::regalloc::simulate_spills(&g, &sch, 2);
                prop_assert!(s.spill_load_bytes >= s.spill_store_bytes || s.spill_store_bytes == 0 || s.spill_load_bytes > 0);
            }
        }
    }
}
