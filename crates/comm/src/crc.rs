//! CRC-32 (IEEE 802.3 polynomial, reflected) for wire and on-disk
//! integrity: halo message headers ([`crate::world`]) and the v2
//! checkpoint format in `gw-core` both append this checksum so that
//! truncated or corrupted payloads are *detected* instead of silently
//! evolving garbage.

/// Reflected CRC-32 polynomial (same parameters as zlib's `crc32`).
const POLY: u32 = 0xedb8_8320;

/// Byte-at-a-time table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (zlib-compatible: init `0xffff_ffff`, final XOR).
pub fn crc32(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Streaming update: feed chunks, then XOR with `0xffff_ffff` at the end
/// (or use [`crc32`] for one-shot data).
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib/IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"halo exchange payload 0123456789";
        let mut st = 0xffff_ffffu32;
        for chunk in data.chunks(7) {
            st = update(st, chunk);
        }
        assert_eq!(st ^ 0xffff_ffff, crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[10] = 0xab;
        let good = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), good, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
