//! The rank world: threads + channels + collectives.
//!
//! Every point-to-point message carries a self-describing integrity
//! header (declared payload length + CRC-32). Receives verify the header
//! and surface violations as [`CommError`] instead of silently handing
//! corrupt ghost data to the solver; dropped messages surface as
//! timeouts. Fault injection ([`crate::fault`]) is off by default and
//! adds no work to the fault-free path beyond the header (one CRC pass
//! per message).

use crate::crc::crc32;
use crate::fault::{CommFaultPlan, FaultAction};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// A tagged message between ranks, with integrity header.
struct Message {
    tag: u64,
    /// Length the sender intended (bytes); a shorter payload means the
    /// message was truncated in flight.
    declared_len: u64,
    /// CRC-32 of the intended payload.
    crc: u32,
    payload: Vec<u8>,
}

/// A detected communication failure. Every variant names the link, so a
/// supervisor log can say exactly which exchange died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No message arrived before the receive timeout (lost/dropped).
    Timeout { src: usize, dst: usize, tag: u64 },
    /// The sending rank is gone.
    Disconnected { src: usize, dst: usize },
    /// Payload shorter than the declared length (truncated in flight).
    Truncated { src: usize, dst: usize, tag: u64, declared: usize, got: usize },
    /// Payload length matches but the checksum does not (corrupted).
    ChecksumMismatch { src: usize, dst: usize, tag: u64 },
    /// A message with an unexpected tag (protocol desync).
    TagMismatch { src: usize, dst: usize, expected: u64, got: u64 },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { src, dst, tag } => {
                write!(f, "timeout waiting for message {src}->{dst} tag {tag} (dropped?)")
            }
            CommError::Disconnected { src, dst } => {
                write!(f, "rank {src} disconnected (link {src}->{dst})")
            }
            CommError::Truncated { src, dst, tag, declared, got } => write!(
                f,
                "truncated message {src}->{dst} tag {tag}: declared {declared} bytes, got {got}"
            ),
            CommError::ChecksumMismatch { src, dst, tag } => {
                write!(f, "checksum mismatch on message {src}->{dst} tag {tag}")
            }
            CommError::TagMismatch { src, dst, expected, got } => {
                write!(f, "tag mismatch on link {src}->{dst}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Per-rank communication traffic counters.
#[derive(Debug, Default)]
pub struct TrafficStats {
    pub messages_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
}

/// Runtime options for a world.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Deterministic message-fault schedule; `None` (default) disables
    /// injection entirely.
    pub faults: Option<CommFaultPlan>,
    /// How long a receive waits before reporting a lost message.
    pub recv_timeout: Duration,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self { faults: None, recv_timeout: Duration::from_secs(10) }
    }
}

/// The world: matrix of channels between `p` ranks.
pub struct World {
    size: usize,
    senders: Vec<Vec<Sender<Message>>>, // senders[src][dst]
    receivers: Vec<Mutex<Vec<Receiver<Message>>>>, // receivers[dst][src]
    barrier: Barrier,
    traffic: Vec<TrafficStats>,
    config: WorldConfig,
    /// Message sequence number per (src, dst) link, for fault decisions.
    link_seq: Vec<AtomicU64>,
    /// Total faults injected so far (bounded by the plan's `max_faults`).
    faults_injected: AtomicUsize,
}

impl World {
    fn new(size: usize, config: WorldConfig) -> Arc<Self> {
        assert!(size >= 1);
        let mut senders: Vec<Vec<Sender<Message>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Receiver<Message>>> = (0..size).map(|_| Vec::new()).collect();
        for dst_chans in receivers.iter_mut() {
            for src_senders in senders.iter_mut() {
                let (tx, rx) = unbounded();
                src_senders.push(tx);
                dst_chans.push(rx);
            }
        }
        Arc::new(Self {
            size,
            senders,
            receivers: receivers.into_iter().map(Mutex::new).collect(),
            barrier: Barrier::new(size),
            traffic: (0..size).map(|_| TrafficStats::default()).collect(),
            config,
            link_seq: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            faults_injected: AtomicUsize::new(0),
        })
    }

    /// Spawn `size` ranks, run `body` on each, return the per-rank results
    /// in rank order. Panics in a rank propagate.
    pub fn run<T, F>(size: usize, body: F) -> (Vec<T>, Vec<(u64, u64)>)
    where
        T: Send,
        F: Fn(RankCtx<'_>) -> T + Sync,
    {
        Self::run_cfg(size, WorldConfig::default(), body)
    }

    /// [`World::run`] with explicit options (fault plan, receive timeout).
    pub fn run_cfg<T, F>(size: usize, config: WorldConfig, body: F) -> (Vec<T>, Vec<(u64, u64)>)
    where
        T: Send,
        F: Fn(RankCtx<'_>) -> T + Sync,
    {
        let world = Self::new(size, config);
        let results: Vec<Mutex<Option<T>>> = (0..size).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (rank, slot) in results.iter().enumerate() {
                let world = Arc::clone(&world);
                let body = &body;
                scope.spawn(move || {
                    let ctx = RankCtx { world: &world, rank };
                    let out = body(ctx);
                    *slot.lock().unwrap() = Some(out);
                });
            }
        });
        let outs =
            results.into_iter().map(|m| m.into_inner().unwrap().expect("rank completed")).collect();
        let traffic = world
            .traffic
            .iter()
            .map(|t| {
                (t.messages_sent.load(Ordering::Relaxed), t.bytes_sent.load(Ordering::Relaxed))
            })
            .collect();
        (outs, traffic)
    }
}

/// A rank's handle to the world.
pub struct RankCtx<'a> {
    world: &'a World,
    rank: usize,
}

impl RankCtx<'_> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.world.size
    }

    /// Point-to-point send (non-blocking; unbounded buffering). The
    /// message carries a length+CRC header; an installed fault plan may
    /// drop or truncate it in flight.
    pub fn send(&self, dst: usize, tag: u64, payload: &[f64]) {
        let bytes: Vec<u8> = payload.iter().flat_map(|v| v.to_le_bytes()).collect();
        let t = &self.world.traffic[self.rank];
        t.messages_sent.fetch_add(1, Ordering::Relaxed);
        t.bytes_sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let mut msg =
            Message { tag, declared_len: bytes.len() as u64, crc: crc32(&bytes), payload: bytes };
        if let Some(plan) = &self.world.config.faults {
            let seq = self.world.link_seq[self.rank * self.world.size + dst]
                .fetch_add(1, Ordering::Relaxed);
            if self.world.faults_injected.load(Ordering::Relaxed) < plan.max_faults {
                match plan.decide(self.rank, dst, seq) {
                    FaultAction::Deliver => {}
                    FaultAction::Drop => {
                        self.world.faults_injected.fetch_add(1, Ordering::Relaxed);
                        return; // lost on the wire
                    }
                    FaultAction::Truncate => {
                        self.world.faults_injected.fetch_add(1, Ordering::Relaxed);
                        msg.payload.truncate(msg.payload.len() / 2);
                    }
                }
            }
        }
        self.world.senders[self.rank][dst].send(msg).expect("receiver alive");
    }

    /// Checked blocking receive of the next message from `src` with
    /// `tag`: verifies arrival (timeout), length and checksum, and
    /// surfaces violations as [`CommError`].
    pub fn try_recv(&self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let dst = self.rank;
        let guard = self.world.receivers[dst].lock().unwrap();
        let got = guard[src].recv_timeout(self.world.config.recv_timeout);
        drop(guard);
        let msg = match got {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { src, dst, tag }),
            Err(RecvTimeoutError::Disconnected) => {
                return Err(CommError::Disconnected { src, dst })
            }
        };
        if msg.tag != tag {
            return Err(CommError::TagMismatch { src, dst, expected: tag, got: msg.tag });
        }
        if msg.payload.len() as u64 != msg.declared_len {
            return Err(CommError::Truncated {
                src,
                dst,
                tag,
                declared: msg.declared_len as usize,
                got: msg.payload.len(),
            });
        }
        if crc32(&msg.payload) != msg.crc {
            return Err(CommError::ChecksumMismatch { src, dst, tag });
        }
        Ok(msg.payload.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Blocking receive that treats any comm fault as fatal for the rank
    /// (collectives and legacy callers; the supervised exchange path uses
    /// [`RankCtx::try_recv`]).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        self.try_recv(src, tag)
            .unwrap_or_else(|e| panic!("rank {}: unrecoverable comm fault: {e}", self.rank))
    }

    /// Barrier across all ranks.
    pub fn barrier(&self) {
        self.world.barrier.wait();
    }

    /// Sum-allreduce of one value.
    pub fn allreduce_sum(&self, v: f64) -> f64 {
        self.allreduce(v, |a, b| a + b)
    }

    /// Max-allreduce of one value.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        self.allreduce(v, f64::max)
    }

    fn allreduce(&self, v: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        // Gather to rank 0, reduce, broadcast. O(p) — fine for the rank
        // counts we simulate; the traffic model uses message counts, not
        // this implementation's latency.
        const TAG: u64 = u64::MAX - 1;
        if self.rank == 0 {
            let mut acc = v;
            for src in 1..self.size() {
                let x = self.recv(src, TAG);
                acc = op(acc, x[0]);
            }
            for dst in 1..self.size() {
                self.send(dst, TAG, &[acc]);
            }
            acc
        } else {
            self.send(0, TAG, &[v]);
            self.recv(0, TAG)[0]
        }
    }

    /// Gather variable-length vectors to every rank (allgatherv).
    pub fn allgatherv(&self, mine: &[f64]) -> Vec<Vec<f64>> {
        const TAG: u64 = u64::MAX - 2;
        for dst in 0..self.size() {
            if dst != self.rank {
                self.send(dst, TAG, mine);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(mine.to_vec());
            } else {
                out.push(self.recv(src, TAG));
            }
        }
        out
    }

    /// Personalized all-to-all: `sends[dst]` goes to rank `dst`; returns
    /// `recvs[src]`.
    pub fn alltoallv(&self, sends: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(sends.len(), self.size());
        const TAG: u64 = u64::MAX - 3;
        for (dst, payload) in sends.iter().enumerate() {
            if dst != self.rank {
                self.send(dst, TAG, payload);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(sends[self.rank].clone());
            } else {
                out.push(self.recv(src, TAG));
            }
        }
        out
    }

    /// Broadcast from root.
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        const TAG: u64 = u64::MAX - 4;
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, TAG, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, TAG)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let (out, traffic) = World::run(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            ctx.allreduce_sum(5.0)
        });
        assert_eq!(out, vec![5.0]);
        assert_eq!(traffic[0], (0, 0));
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let (out, traffic) = World::run(p, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, &[ctx.rank() as f64]);
            ctx.recv(prev, 7)[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
        for t in traffic {
            assert_eq!(t.0, 1);
            assert_eq!(t.1, 8);
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let (out, _) = World::run(5, |ctx| {
            let s = ctx.allreduce_sum(ctx.rank() as f64);
            let m = ctx.allreduce_max(ctx.rank() as f64 * 2.0);
            (s, m)
        });
        for (s, m) in out {
            assert_eq!(s, 10.0);
            assert_eq!(m, 8.0);
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_data() {
        let p = 3;
        let (out, _) = World::run(p, |ctx| {
            let sends: Vec<Vec<f64>> =
                (0..p).map(|dst| vec![(ctx.rank() * 10 + dst) as f64; ctx.rank() + 1]).collect();
            ctx.alltoallv(&sends)
        });
        for (rank, recvs) in out.iter().enumerate() {
            for (src, data) in recvs.iter().enumerate() {
                assert_eq!(data.len(), src + 1);
                assert!(data.iter().all(|&v| v == (src * 10 + rank) as f64));
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let (out, _) = World::run(4, |ctx| ctx.broadcast(2, &[9.0, 8.0]));
        for v in out {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn allgatherv_collects_all() {
        let (out, _) = World::run(3, |ctx| {
            let mine = vec![ctx.rank() as f64; ctx.rank() + 1];
            ctx.allgatherv(&mine)
        });
        for recvs in out {
            assert_eq!(recvs.len(), 3);
            for (src, v) in recvs.iter().enumerate() {
                assert_eq!(v.len(), src + 1);
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = AtomicUsize::new(0);
        World::run(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank's increment is visible.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn dropped_message_times_out() {
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(11).with_drop_rate(1.0)),
            recv_timeout: Duration::from_millis(50),
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, &[1.0, 2.0]);
                Ok(Vec::new())
            } else {
                ctx.try_recv(0, 3)
            }
        });
        assert_eq!(out[1], Err(CommError::Timeout { src: 0, dst: 1, tag: 3 }));
    }

    #[test]
    fn truncated_message_detected() {
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(11).with_truncate_rate(1.0)),
            recv_timeout: Duration::from_millis(200),
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, &[1.0, 2.0, 3.0, 4.0]);
                Ok(Vec::new())
            } else {
                ctx.try_recv(0, 3)
            }
        });
        assert_eq!(
            out[1],
            Err(CommError::Truncated { src: 0, dst: 1, tag: 3, declared: 32, got: 16 })
        );
    }

    #[test]
    fn max_faults_bounds_injection() {
        // drop_rate 1.0 but max_faults 1: only the first message dies.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(5).with_drop_rate(1.0).with_max_faults(1)),
            recv_timeout: Duration::from_millis(100),
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, &[1.0]);
                ctx.send(1, 1, &[2.0]);
                Ok(Vec::new())
            } else {
                // Channels are FIFO: the first arrival carrying tag 1
                // proves message 0 was dropped and message 1 delivered.
                ctx.try_recv(0, 0)
            }
        });
        assert_eq!(out[1], Err(CommError::TagMismatch { src: 0, dst: 1, expected: 0, got: 1 }));
    }

    #[test]
    fn fault_free_path_unchanged_with_plan_installed() {
        // A zero-rate plan must not perturb results or traffic.
        let cfg = WorldConfig { faults: Some(CommFaultPlan::new(9)), ..WorldConfig::default() };
        let (out, traffic) = World::run_cfg(3, cfg, |ctx| {
            let s = ctx.allreduce_sum(ctx.rank() as f64);
            ctx.allgatherv(&[ctx.rank() as f64]).iter().map(|v| v[0]).sum::<f64>() + s
        });
        for v in out {
            assert_eq!(v, 6.0);
        }
        let total: u64 = traffic.iter().map(|t| t.0).sum();
        assert!(total > 0);
    }
}
