//! The rank world: threads + channels + reliable messaging + collectives.
//!
//! Every point-to-point message carries a self-describing integrity
//! header (per-link sequence number, declared payload length, CRC-32).
//! Delivery is *reliable*: the sender keeps every unacknowledged message
//! in a per-link outbox, and the receiver drives bounded retransmission
//! with exponential backoff when a message is detected as dropped
//! (sequence gap or timeout), truncated, or corrupted. The drop /
//! truncate / corrupt faults that [`crate::fault::CommFaultPlan`] injects
//! are therefore recovered transparently; only an exhausted retransmit
//! budget, a protocol desync, or a dead peer surfaces as a [`CommError`].
//!
//! Liveness is tracked per rank: a rank that exits its body (normally or
//! by panic / fail-stop) is marked dead, receivers and the timeout-aware
//! barrier poll that view at the heartbeat cadence, and a wait on a dead
//! peer fails fast with [`CommError::RankDead`] naming the dead rank —
//! never a hang.
//!
//! Fault injection is off by default and the fault-free path adds only
//! the ack bookkeeping (one outbox push + pop per message) on top of the
//! original header CRC pass.

use crate::crc::crc32;
use crate::fault::{CommFaultPlan, FaultAction};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A tagged message between ranks, with integrity header. The payload is
/// shared with the sender's outbox copy unless a fault mutated it.
struct Message {
    tag: u64,
    /// Per-link delivery sequence number (0, 1, 2, … per `src → dst`).
    seq: u64,
    /// Length the sender intended (bytes); a shorter payload means the
    /// message was truncated in flight.
    declared_len: u64,
    /// CRC-32 of the intended payload.
    crc: u32,
    payload: Arc<Vec<u8>>,
}

/// A sent-but-unacknowledged message retained for retransmission. The
/// payload is pristine (faults are applied per transmission attempt).
#[derive(Clone)]
struct OutboxEntry {
    seq: u64,
    tag: u64,
    declared_len: u64,
    crc: u32,
    payload: Arc<Vec<u8>>,
}

/// A detected communication failure. Every variant names the link, so a
/// supervisor log can say exactly which exchange died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No message arrived before the receive deadline (and the sender
    /// never posted it — a lost message is retransmitted instead).
    Timeout { src: usize, dst: usize, tag: u64 },
    /// The sending rank is gone.
    Disconnected { src: usize, dst: usize },
    /// Payload shorter than the declared length (truncated in flight).
    Truncated { src: usize, dst: usize, tag: u64, declared: usize, got: usize },
    /// Payload length matches but the checksum does not (corrupted).
    ChecksumMismatch { src: usize, dst: usize, tag: u64 },
    /// A message with an unexpected tag (protocol desync).
    TagMismatch { src: usize, dst: usize, expected: u64, got: u64 },
    /// Every retransmission attempt of one message also faulted.
    RetransmitsExhausted { src: usize, dst: usize, tag: u64, seq: u64, attempts: u32 },
    /// The peer was declared dead by the liveness view while `dst` was
    /// waiting on it.
    RankDead { rank: usize, dst: usize },
    /// The barrier timed out before every live rank arrived.
    BarrierTimeout { rank: usize },
    /// Delivered payload whose byte length is not a whole number of
    /// f64 words (malformed frame).
    Malformed { src: usize, dst: usize, tag: u64, len: usize },
    /// A collective reply carried fewer values than the protocol
    /// requires.
    ShortCollective { src: usize, dst: usize, tag: u64, got: usize, need: usize },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { src, dst, tag } => {
                write!(f, "timeout waiting for message {src}->{dst} tag {tag} (never sent?)")
            }
            CommError::Disconnected { src, dst } => {
                write!(f, "rank {src} disconnected (link {src}->{dst})")
            }
            CommError::Truncated { src, dst, tag, declared, got } => write!(
                f,
                "truncated message {src}->{dst} tag {tag}: declared {declared} bytes, got {got}"
            ),
            CommError::ChecksumMismatch { src, dst, tag } => {
                write!(f, "checksum mismatch on message {src}->{dst} tag {tag}")
            }
            CommError::TagMismatch { src, dst, expected, got } => {
                write!(f, "tag mismatch on link {src}->{dst}: expected {expected}, got {got}")
            }
            CommError::RetransmitsExhausted { src, dst, tag, seq, attempts } => write!(
                f,
                "message {src}->{dst} tag {tag} seq {seq} lost after {attempts} retransmits"
            ),
            CommError::RankDead { rank, dst } => {
                write!(f, "rank {rank} is dead (detected by rank {dst})")
            }
            CommError::BarrierTimeout { rank } => {
                write!(f, "barrier timed out on rank {rank}")
            }
            CommError::Malformed { src, dst, tag, len } => write!(
                f,
                "malformed message {src}->{dst} tag {tag}: {len} bytes is not a whole \
                 number of f64 words"
            ),
            CommError::ShortCollective { src, dst, tag, got, need } => write!(
                f,
                "short collective reply {src}->{dst} tag {tag}: got {got} values, need {need}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

impl CommError {
    /// The dead rank this error names, if it names one.
    pub fn dead_rank(&self) -> Option<usize> {
        match self {
            CommError::RankDead { rank, .. } => Some(*rank),
            _ => None,
        }
    }
}

/// Per-rank communication traffic counters.
#[derive(Debug, Default)]
pub struct TrafficStats {
    pub messages_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    /// Retransmission attempts this rank's receives triggered.
    pub retransmits: AtomicU64,
    /// Messages this rank acknowledged (delivered reliably).
    pub acks: AtomicU64,
}

/// Snapshot of one rank's traffic, including reliability bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Logical messages sent (retransmits not double-counted).
    pub messages: u64,
    /// Logical payload bytes sent.
    pub bytes: u64,
    /// Retransmission attempts triggered by this rank's receives.
    pub retransmits: u64,
    /// Messages this rank delivered and acknowledged.
    pub acks: u64,
}

/// Runtime options for a world.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Observability probe: counts delivered halo messages/bytes,
    /// retransmissions, and heartbeats (disabled by default; counting
    /// never affects delivery or payload bits).
    pub probe: gw_obs::Probe,
    /// Deterministic message-fault schedule; `None` (default) disables
    /// injection entirely.
    pub faults: Option<CommFaultPlan>,
    /// Total deadline for one receive, including all retransmits.
    pub recv_timeout: Duration,
    /// Bounded retransmission budget per message.
    pub max_retransmits: u32,
    /// Initial receiver wait before the first retransmission; doubles on
    /// every retransmit (exponential backoff), capped at
    /// [`WorldConfig::heartbeat_interval`].
    pub retry_backoff: Duration,
    /// Liveness-poll cadence: the longest a receiver or barrier waits
    /// between checks of the per-rank alive view — so a dead peer is
    /// detected within roughly this interval.
    pub heartbeat_interval: Duration,
    /// Use the dependency-aware overlapped halo-exchange path in the
    /// distributed drivers: post sends early, evaluate interior octants
    /// while ghosts are in flight, finish boundary octants on arrival.
    /// Bit-identical to the blocking path; off by default.
    pub overlap: bool,
    /// Worker threads for the overlapped interior/boundary pipeline,
    /// per rank; 0 resolves like `gw_par::resolve_threads` (the
    /// `GW_THREADS` env var, then the machine's parallelism).
    pub overlap_threads: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            probe: gw_obs::Probe::disabled(),
            faults: None,
            recv_timeout: Duration::from_secs(10),
            max_retransmits: 8,
            retry_backoff: Duration::from_millis(2),
            heartbeat_interval: Duration::from_millis(50),
            overlap: false,
            overlap_threads: 0,
        }
    }
}

/// The sense-reversing barrier state (timeout- and death-aware).
struct BarrierSync {
    state: Mutex<BarrierGen>,
    cv: Condvar,
}

struct BarrierGen {
    arrived: usize,
    generation: u64,
}

/// The world: matrix of channels between `p` ranks plus the reliability
/// state (outboxes, sequence counters, reorder buffers, liveness).
pub struct World {
    size: usize,
    senders: Vec<Vec<Sender<Message>>>, // senders[src][dst]
    receivers: Vec<Mutex<Vec<Receiver<Message>>>>, // receivers[dst][src]
    barrier: BarrierSync,
    traffic: Vec<TrafficStats>,
    config: WorldConfig,
    /// Next send sequence number per (src, dst) link.
    link_seq: Vec<AtomicU64>,
    /// Next expected receive sequence number per (dst, src) link.
    recv_next: Vec<AtomicU64>,
    /// Sent-but-unacked messages per (src, dst) link.
    outbox: Vec<Mutex<VecDeque<OutboxEntry>>>,
    /// Out-of-order arrivals per (dst, src) link, keyed by seq.
    reorder: Vec<Mutex<BTreeMap<u64, Message>>>,
    /// Liveness view: `alive[r]` is cleared when rank `r`'s body exits
    /// (normal completion, error return, panic, or fail-stop).
    alive: Vec<AtomicBool>,
    /// Monotonic per-rank heartbeat counters (bumped on comm progress).
    heartbeats: Vec<AtomicU64>,
    /// Total faults injected so far (bounded by the plan's `max_faults`).
    faults_injected: AtomicUsize,
}

impl World {
    fn new(size: usize, config: WorldConfig) -> Arc<Self> {
        assert!(size >= 1);
        let mut senders: Vec<Vec<Sender<Message>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Receiver<Message>>> = (0..size).map(|_| Vec::new()).collect();
        for dst_chans in receivers.iter_mut() {
            for src_senders in senders.iter_mut() {
                let (tx, rx) = unbounded();
                src_senders.push(tx);
                dst_chans.push(rx);
            }
        }
        Arc::new(Self {
            size,
            senders,
            receivers: receivers.into_iter().map(Mutex::new).collect(),
            barrier: BarrierSync {
                state: Mutex::new(BarrierGen { arrived: 0, generation: 0 }),
                cv: Condvar::new(),
            },
            traffic: (0..size).map(|_| TrafficStats::default()).collect(),
            config,
            link_seq: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            recv_next: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            outbox: (0..size * size).map(|_| Mutex::new(VecDeque::new())).collect(),
            reorder: (0..size * size).map(|_| Mutex::new(BTreeMap::new())).collect(),
            alive: (0..size).map(|_| AtomicBool::new(true)).collect(),
            heartbeats: (0..size).map(|_| AtomicU64::new(0)).collect(),
            faults_injected: AtomicUsize::new(0),
        })
    }

    /// Spawn `size` ranks, run `body` on each, return the per-rank results
    /// in rank order. Panics in a rank propagate.
    pub fn run<T, F>(size: usize, body: F) -> (Vec<T>, Vec<(u64, u64)>)
    where
        T: Send,
        F: Fn(RankCtx<'_>) -> T + Sync,
    {
        Self::run_cfg(size, WorldConfig::default(), body)
    }

    /// [`World::run`] with explicit options (fault plan, receive timeout).
    pub fn run_cfg<T, F>(size: usize, config: WorldConfig, body: F) -> (Vec<T>, Vec<(u64, u64)>)
    where
        T: Send,
        F: Fn(RankCtx<'_>) -> T + Sync,
    {
        let (outs, traffic) = Self::run_cfg_ext(size, config, body);
        (outs, traffic.iter().map(|t| (t.messages, t.bytes)).collect())
    }

    /// [`World::run_cfg`] returning the full per-rank traffic snapshot
    /// (including retransmit and ack counts).
    pub fn run_cfg_ext<T, F>(
        size: usize,
        config: WorldConfig,
        body: F,
    ) -> (Vec<T>, Vec<RankTraffic>)
    where
        T: Send,
        F: Fn(RankCtx<'_>) -> T + Sync,
    {
        let world = Self::new(size, config);
        let results: Vec<Mutex<Option<T>>> = (0..size).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (rank, slot) in results.iter().enumerate() {
                let world = Arc::clone(&world);
                let body = &body;
                scope.spawn(move || {
                    // Clears the alive flag when the body exits for any
                    // reason (return, error, panic) — the "death
                    // certificate" survivors observe.
                    let _guard = AliveGuard { world: &world, rank };
                    let ctx = RankCtx { world: &world, rank, coll_epoch: Cell::new(0) };
                    let out = body(ctx);
                    *slot.lock().unwrap() = Some(out);
                });
            }
        });
        let outs =
            results.into_iter().map(|m| m.into_inner().unwrap().expect("rank completed")).collect();
        let traffic = world
            .traffic
            .iter()
            .map(|t| RankTraffic {
                messages: t.messages_sent.load(Ordering::Relaxed),
                bytes: t.bytes_sent.load(Ordering::Relaxed),
                retransmits: t.retransmits.load(Ordering::Relaxed),
                acks: t.acks.load(Ordering::Relaxed),
            })
            .collect();
        (outs, traffic)
    }

    /// Transmit (or retransmit) an outbox entry on the wire, applying the
    /// fault plan's decision for this attempt.
    fn transmit(&self, src: usize, dst: usize, entry: &OutboxEntry, attempt: u32) {
        let mut payload = Arc::clone(&entry.payload);
        if let Some(plan) = &self.config.faults {
            if self.faults_injected.load(Ordering::Relaxed) < plan.max_faults {
                match plan.decide_retry(src, dst, entry.seq, attempt) {
                    FaultAction::Deliver => {}
                    FaultAction::Drop => {
                        self.faults_injected.fetch_add(1, Ordering::Relaxed);
                        return; // lost on the wire
                    }
                    FaultAction::Truncate => {
                        self.faults_injected.fetch_add(1, Ordering::Relaxed);
                        let mut v = (*payload).clone();
                        let half = v.len() / 2;
                        v.truncate(half);
                        payload = Arc::new(v);
                    }
                    FaultAction::Corrupt => {
                        self.faults_injected.fetch_add(1, Ordering::Relaxed);
                        let mut v = (*payload).clone();
                        if !v.is_empty() {
                            let mid = v.len() / 2;
                            v[mid] ^= 0x40;
                        }
                        payload = Arc::new(v);
                    }
                }
            }
        }
        let msg = Message {
            tag: entry.tag,
            seq: entry.seq,
            declared_len: entry.declared_len,
            crc: entry.crc,
            payload,
        };
        // The receiving half lives in `self.receivers` for the world's
        // lifetime, so this only fails during teardown races — in which
        // case the message is unobservable anyway. Never panic the rank.
        let _ = self.senders[src][dst].send(msg);
    }
}

/// Decode a delivered payload into f64 words. A byte count that is not
/// a multiple of 8 surfaces as a typed error instead of a panic.
fn decode_payload(src: usize, dst: usize, tag: u64, bytes: &[u8]) -> Result<Vec<f64>, CommError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CommError::Malformed { src, dst, tag, len: bytes.len() });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            f64::from_le_bytes(word)
        })
        .collect())
}

/// Progress state for one reliable receive, possibly spread over many
/// nonblocking polls: the expected link sequence number plus the paced
/// retransmission bookkeeping.
struct RecvProgress {
    expected: u64,
    deadline: Instant,
    attempts: u32,
    backoff: Duration,
    /// Earliest instant an *unforced* retransmission may fire — pacing
    /// so a tight poll loop cannot flood the link and burn the budget.
    next_retry: Instant,
}

/// Clears a rank's alive flag when its thread exits, however it exits.
struct AliveGuard<'a> {
    world: &'a World,
    rank: usize,
}

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.world.alive[self.rank].store(false, Ordering::Release);
    }
}

/// Collective-operation kinds mixed into the epoch tag.
const COLL_BASE: u64 = 1 << 63;
const COLL_ALLREDUCE: u64 = 0;
const COLL_ALLGATHERV: u64 = 1;
const COLL_ALLTOALLV: u64 = 2;
const COLL_BROADCAST: u64 = 3;

/// A rank's handle to the world.
pub struct RankCtx<'a> {
    world: &'a World,
    rank: usize,
    /// Monotonic collective-epoch counter: every collective call bumps
    /// it, and the epoch is mixed into the collective's tag so
    /// back-to-back collectives on the same link can never interleave
    /// into a protocol desync. SPMD call order keeps it identical on
    /// every rank.
    coll_epoch: Cell<u64>,
}

impl RankCtx<'_> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.world.size
    }

    fn bump_heartbeat(&self) {
        self.world.heartbeats[self.rank].fetch_add(1, Ordering::Relaxed);
        self.world.config.probe.add(gw_obs::Counter::Heartbeats, 1);
    }

    /// Snapshot of the liveness view: `alive[r]` is false once rank `r`'s
    /// body has exited (normally or not).
    pub fn liveness(&self) -> Vec<bool> {
        self.world.alive.iter().map(|a| a.load(Ordering::Acquire)).collect()
    }

    /// Snapshot of the per-rank heartbeat counters.
    pub fn heartbeats(&self) -> Vec<u64> {
        self.world.heartbeats.iter().map(|h| h.load(Ordering::Relaxed)).collect()
    }

    /// Fail-stop: mark this rank dead immediately (before its thread has
    /// unwound), so survivors detect the death at the next liveness poll.
    /// Used by fault-injection harnesses to simulate a killed rank.
    pub fn declare_dead(&self) {
        self.world.alive[self.rank].store(false, Ordering::Release);
    }

    /// Point-to-point send (non-blocking; unbounded buffering). The
    /// message carries a seq + length + CRC header and is retained in the
    /// per-link outbox until the receiver acknowledges it, so in-flight
    /// faults can be recovered by retransmission.
    pub fn send(&self, dst: usize, tag: u64, payload: &[f64]) {
        let bytes: Vec<u8> = payload.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.bump_heartbeat();
        let t = &self.world.traffic[self.rank];
        t.messages_sent.fetch_add(1, Ordering::Relaxed);
        t.bytes_sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let probe = &self.world.config.probe;
        probe.add(gw_obs::Counter::HaloMessages, 1);
        probe.add(gw_obs::Counter::HaloBytes, bytes.len() as u64);
        let link = self.rank * self.world.size + dst;
        let seq = self.world.link_seq[link].fetch_add(1, Ordering::Relaxed);
        let entry = OutboxEntry {
            seq,
            tag,
            declared_len: bytes.len() as u64,
            crc: crc32(&bytes),
            payload: Arc::new(bytes),
        };
        self.world.outbox[link].lock().unwrap().push_back(entry.clone());
        self.world.transmit(self.rank, dst, &entry, 0);
    }

    /// Fresh receive-progress state for the next in-sequence message on
    /// the `src → self` link.
    fn recv_progress(&self, src: usize) -> RecvProgress {
        let recv_link = self.rank * self.world.size + src;
        let cfg = &self.world.config;
        let now = Instant::now();
        let backoff = cfg.retry_backoff.max(Duration::from_micros(100));
        RecvProgress {
            expected: self.world.recv_next[recv_link].load(Ordering::Relaxed),
            deadline: now + cfg.recv_timeout,
            attempts: 0,
            backoff,
            next_retry: now + backoff,
        }
    }

    /// Request one retransmission of `st.expected`, if the sender has
    /// posted it and the pace allows (`force` overrides the pacing — a
    /// sequence gap or integrity failure is *proof* of loss, whereas a
    /// poll that merely found the channel empty must be rate-limited).
    /// Returns `Err` once the budget is exhausted.
    fn request_retransmit(
        &self,
        src: usize,
        tag: u64,
        st: &mut RecvProgress,
        force: bool,
    ) -> Result<(), CommError> {
        let now = Instant::now();
        if !force && now < st.next_retry {
            return Ok(());
        }
        let dst = self.rank;
        let send_link = src * self.world.size + dst;
        let entry = {
            let ob = self.world.outbox[send_link].lock().unwrap();
            ob.iter().find(|e| e.seq == st.expected).cloned()
        };
        let Some(entry) = entry else { return Ok(()) }; // not sent yet: keep waiting
        st.attempts += 1;
        if st.attempts > self.world.config.max_retransmits {
            return Err(CommError::RetransmitsExhausted {
                src,
                dst,
                tag,
                seq: st.expected,
                attempts: st.attempts - 1,
            });
        }
        self.world.traffic[dst].retransmits.fetch_add(1, Ordering::Relaxed);
        self.world.config.probe.add(gw_obs::Counter::Retransmits, 1);
        self.world.transmit(src, dst, &entry, st.attempts);
        st.backoff = (st.backoff * 2).min(self.world.config.heartbeat_interval);
        st.next_retry = now + st.backoff;
        Ok(())
    }

    /// One step of the reliable-receive state machine: wait up to `wait`
    /// for an arrival and process it. `Ok(Some(payload))` on delivery,
    /// `Ok(None)` while the message is still in flight. Both the
    /// blocking receive and the nonblocking [`RecvHandle`] are thin
    /// loops over this.
    fn recv_poll(
        &self,
        src: usize,
        tag: u64,
        st: &mut RecvProgress,
        wait: Duration,
    ) -> Result<Option<Vec<f64>>, CommError> {
        let dst = self.rank;
        let size = self.world.size;
        let recv_link = dst * size + src; // reorder / recv_next index
        let send_link = src * size + dst; // outbox index
        self.bump_heartbeat();
        // In-order arrival stashed by an earlier receive?
        let stashed = self.world.reorder[recv_link].lock().unwrap().remove(&st.expected);
        let msg = if let Some(m) = stashed {
            Some(m)
        } else {
            let got = {
                let guard = self.world.receivers[dst].lock().unwrap();
                guard[src].recv_timeout(wait)
            };
            match got {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { src, dst })
                }
            }
        };
        match msg {
            Some(msg) if msg.seq < st.expected => Ok(None), // stale duplicate
            Some(msg) if msg.seq > st.expected => {
                // FIFO links: a gap proves `expected` was dropped.
                self.world.reorder[recv_link].lock().unwrap().insert(msg.seq, msg);
                self.request_retransmit(src, tag, st, true)?;
                Ok(None)
            }
            Some(msg) => {
                // In sequence: verify integrity, then the protocol.
                if msg.payload.len() as u64 != msg.declared_len || crc32(&msg.payload) != msg.crc {
                    self.request_retransmit(src, tag, st, true)?;
                    return Ok(None);
                }
                if msg.tag != tag {
                    return Err(CommError::TagMismatch { src, dst, expected: tag, got: msg.tag });
                }
                // Deliver + ack: advance the expected seq and drop the
                // sender's outbox copies up to this seq.
                self.world.recv_next[recv_link].store(st.expected + 1, Ordering::Relaxed);
                {
                    let mut ob = self.world.outbox[send_link].lock().unwrap();
                    while ob.front().is_some_and(|e| e.seq <= st.expected) {
                        ob.pop_front();
                    }
                }
                self.world.traffic[dst].acks.fetch_add(1, Ordering::Relaxed);
                decode_payload(src, dst, tag, &msg.payload).map(Some)
            }
            None => {
                // Timed out on an empty channel. Dead peer that never
                // posted the message ⇒ fail fast naming the rank.
                let sender_dead = !self.world.alive[src].load(Ordering::Acquire);
                let posted = self.world.outbox[send_link]
                    .lock()
                    .unwrap()
                    .iter()
                    .any(|e| e.seq == st.expected);
                if sender_dead && !posted {
                    return Err(CommError::RankDead { rank: src, dst });
                }
                // A blocking wait already slept a full backoff interval,
                // so its retransmission is due; a zero-wait poll is paced.
                self.request_retransmit(src, tag, st, wait > Duration::ZERO)?;
                if Instant::now() >= st.deadline {
                    return Err(CommError::Timeout { src, dst, tag });
                }
                Ok(None)
            }
        }
    }

    /// Reliable blocking receive of the next in-sequence message from
    /// `src` with `tag`. Dropped, truncated, or corrupted transmissions
    /// are recovered by bounded retransmission with exponential backoff;
    /// only an exhausted budget, a dead peer, a protocol desync, or the
    /// overall deadline surfaces as a [`CommError`].
    pub fn try_recv(&self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let mut st = self.recv_progress(src);
        loop {
            let wait = st.backoff.min(self.world.config.heartbeat_interval);
            if let Some(v) = self.recv_poll(src, tag, &mut st, wait)? {
                return Ok(v);
            }
        }
    }

    /// Nonblocking post of a point-to-point message — an explicit alias
    /// of [`RankCtx::send`] (which never blocks: channels are unbounded
    /// and reliability is receiver-driven), named for symmetry with
    /// [`RankCtx::irecv`] in the overlapped exchange path.
    pub fn isend(&self, dst: usize, tag: u64, payload: &[f64]) {
        self.send(dst, tag, payload)
    }

    /// Begin a nonblocking reliable receive from `src` with `tag`,
    /// returning a pollable [`RecvHandle`]. At most one receive (handle
    /// or blocking call) may be outstanding per source link at a time —
    /// the reliable layer tracks one expected sequence number per link.
    pub fn irecv(&self, src: usize, tag: u64) -> RecvHandle<'_, '_> {
        RecvHandle { ctx: self, src, tag, st: self.recv_progress(src), done: false }
    }

    /// Unreliable (raw) receive of the next message from `src`: verifies
    /// arrival, length, checksum and tag, and surfaces violations as a
    /// [`CommError`] without any retransmission — the detection layer the
    /// reliable path is built on, kept public for fault-injection tests.
    /// Must not be mixed with [`RankCtx::try_recv`] on the same link.
    pub fn try_recv_raw(&self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let dst = self.rank;
        let guard = self.world.receivers[dst].lock().unwrap();
        let got = guard[src].recv_timeout(self.world.config.recv_timeout);
        drop(guard);
        let msg = match got {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { src, dst, tag }),
            Err(RecvTimeoutError::Disconnected) => {
                return Err(CommError::Disconnected { src, dst })
            }
        };
        if msg.tag != tag {
            return Err(CommError::TagMismatch { src, dst, expected: tag, got: msg.tag });
        }
        if msg.payload.len() as u64 != msg.declared_len {
            return Err(CommError::Truncated {
                src,
                dst,
                tag,
                declared: msg.declared_len as usize,
                got: msg.payload.len(),
            });
        }
        if crc32(&msg.payload) != msg.crc {
            return Err(CommError::ChecksumMismatch { src, dst, tag });
        }
        decode_payload(src, dst, tag, &msg.payload)
    }

    /// Blocking receive that treats any comm fault as fatal for the rank
    /// (legacy callers; supervised paths use [`RankCtx::try_recv`]).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        self.try_recv(src, tag)
            .unwrap_or_else(|e| panic!("rank {}: unrecoverable comm fault: {e}", self.rank))
    }

    /// Barrier across all ranks (panics on timeout or a dead rank; the
    /// supervised path is [`RankCtx::try_barrier`]).
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("rank {}: barrier failed: {e}", self.rank));
    }

    /// Timeout-aware barrier: waits until every rank arrives, polling the
    /// liveness view at the heartbeat cadence. Never hangs on a dead
    /// rank — returns [`CommError::RankDead`] naming it, or
    /// [`CommError::BarrierTimeout`] after the receive deadline.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.bump_heartbeat();
        let b = &self.world.barrier;
        let mut st = b.state.lock().unwrap();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.world.size {
            st.arrived = 0;
            st.generation += 1;
            b.cv.notify_all();
            return Ok(());
        }
        let deadline = Instant::now() + self.world.config.recv_timeout;
        while st.generation == gen {
            let (st2, _) = b.cv.wait_timeout(st, self.world.config.heartbeat_interval).unwrap();
            st = st2;
            if st.generation != gen {
                break;
            }
            if let Some(dead) = (0..self.world.size)
                .find(|&r| r != self.rank && !self.world.alive[r].load(Ordering::Acquire))
            {
                st.arrived -= 1; // withdraw so a later generation isn't corrupted
                return Err(CommError::RankDead { rank: dead, dst: self.rank });
            }
            if Instant::now() >= deadline {
                st.arrived -= 1;
                return Err(CommError::BarrierTimeout { rank: self.rank });
            }
        }
        Ok(())
    }

    /// Next collective tag: a fresh epoch per collective call, identical
    /// across ranks because collectives are SPMD-ordered.
    fn coll_tag(&self, kind: u64) -> u64 {
        let e = self.coll_epoch.get();
        self.coll_epoch.set(e + 1);
        COLL_BASE | (e << 3) | kind
    }

    /// Sum-allreduce of one value.
    pub fn allreduce_sum(&self, v: f64) -> f64 {
        self.try_allreduce_sum(v)
            .unwrap_or_else(|e| panic!("rank {}: allreduce failed: {e}", self.rank))
    }

    /// Max-allreduce of one value.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        self.try_allreduce_max(v)
            .unwrap_or_else(|e| panic!("rank {}: allreduce failed: {e}", self.rank))
    }

    /// Fault-tolerant sum-allreduce: never hangs on a dead rank.
    pub fn try_allreduce_sum(&self, v: f64) -> Result<f64, CommError> {
        self.try_allreduce(v, |a, b| a + b)
    }

    /// Fault-tolerant max-allreduce: never hangs on a dead rank.
    pub fn try_allreduce_max(&self, v: f64) -> Result<f64, CommError> {
        self.try_allreduce(v, f64::max)
    }

    fn try_allreduce(&self, v: f64, op: impl Fn(f64, f64) -> f64) -> Result<f64, CommError> {
        // Gather to rank 0, reduce, broadcast. O(p) — fine for the rank
        // counts we simulate; the traffic model uses message counts, not
        // this implementation's latency.
        let tag = self.coll_tag(COLL_ALLREDUCE);
        let short = |src: usize, got: usize| CommError::ShortCollective {
            src,
            dst: self.rank,
            tag,
            got,
            need: 1,
        };
        if self.rank == 0 {
            let mut acc = v;
            for src in 1..self.size() {
                let x = self.try_recv(src, tag)?;
                acc = op(acc, x.first().copied().ok_or_else(|| short(src, x.len()))?);
            }
            for dst in 1..self.size() {
                self.send(dst, tag, &[acc]);
            }
            Ok(acc)
        } else {
            self.send(0, tag, &[v]);
            let x = self.try_recv(0, tag)?;
            x.first().copied().ok_or_else(|| short(0, x.len()))
        }
    }

    /// Gather variable-length vectors to every rank (allgatherv).
    pub fn allgatherv(&self, mine: &[f64]) -> Vec<Vec<f64>> {
        self.try_allgatherv(mine)
            .unwrap_or_else(|e| panic!("rank {}: allgatherv failed: {e}", self.rank))
    }

    /// Fault-tolerant allgatherv: never hangs on a dead rank.
    pub fn try_allgatherv(&self, mine: &[f64]) -> Result<Vec<Vec<f64>>, CommError> {
        let tag = self.coll_tag(COLL_ALLGATHERV);
        for dst in 0..self.size() {
            if dst != self.rank {
                self.send(dst, tag, mine);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(mine.to_vec());
            } else {
                out.push(self.try_recv(src, tag)?);
            }
        }
        Ok(out)
    }

    /// Personalized all-to-all: `sends[dst]` goes to rank `dst`; returns
    /// `recvs[src]`.
    pub fn alltoallv(&self, sends: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.try_alltoallv(sends)
            .unwrap_or_else(|e| panic!("rank {}: alltoallv failed: {e}", self.rank))
    }

    /// Fault-tolerant personalized all-to-all: never hangs on a dead rank.
    pub fn try_alltoallv(&self, sends: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CommError> {
        assert_eq!(sends.len(), self.size());
        let tag = self.coll_tag(COLL_ALLTOALLV);
        for (dst, payload) in sends.iter().enumerate() {
            if dst != self.rank {
                self.send(dst, tag, payload);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(sends[self.rank].clone());
            } else {
                out.push(self.try_recv(src, tag)?);
            }
        }
        Ok(out)
    }

    /// Broadcast from root.
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        self.try_broadcast(root, data)
            .unwrap_or_else(|e| panic!("rank {}: broadcast failed: {e}", self.rank))
    }

    /// Fault-tolerant broadcast from root: never hangs on a dead rank.
    pub fn try_broadcast(&self, root: usize, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let tag = self.coll_tag(COLL_BROADCAST);
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, tag, data);
                }
            }
            Ok(data.to_vec())
        } else {
            self.try_recv(root, tag)
        }
    }
}

/// An in-progress nonblocking reliable receive created by
/// [`RankCtx::irecv`]. Polling it drives the same retransmission state
/// machine as the blocking receive — paced by the configured backoff,
/// so a tight compute/poll loop cannot flood the link or burn the
/// retransmit budget — and completion delivers the payload bit-exact.
///
/// A handle owns the link's expected-sequence cursor: complete it
/// (or drop it) before starting another receive from the same source.
pub struct RecvHandle<'c, 'w> {
    ctx: &'c RankCtx<'w>,
    src: usize,
    tag: u64,
    st: RecvProgress,
    done: bool,
}

impl RecvHandle<'_, '_> {
    /// The source rank this handle is receiving from.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Nonblocking progress check: `Ok(Some(payload))` once the message
    /// has been delivered, `Ok(None)` while still in flight. Must not
    /// be called again after it has returned a payload.
    pub fn poll(&mut self) -> Result<Option<Vec<f64>>, CommError> {
        debug_assert!(!self.done, "RecvHandle polled after completion");
        let r = self.ctx.recv_poll(self.src, self.tag, &mut self.st, Duration::ZERO);
        if matches!(r, Ok(Some(_))) {
            self.done = true;
        }
        r
    }

    /// Block until delivery (or a comm error) — the completion of the
    /// nonblocking receive, with blocking-receive retransmit cadence.
    pub fn wait(&mut self) -> Result<Vec<f64>, CommError> {
        debug_assert!(!self.done, "RecvHandle waited after completion");
        loop {
            let wait = self.st.backoff.min(self.ctx.world.config.heartbeat_interval);
            if let Some(v) = self.ctx.recv_poll(self.src, self.tag, &mut self.st, wait)? {
                self.done = true;
                return Ok(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let (out, traffic) = World::run(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            ctx.allreduce_sum(5.0)
        });
        assert_eq!(out, vec![5.0]);
        assert_eq!(traffic[0], (0, 0));
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let (out, traffic) = World::run(p, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, &[ctx.rank() as f64]);
            ctx.recv(prev, 7)[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
        for t in traffic {
            assert_eq!(t.0, 1);
            assert_eq!(t.1, 8);
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let (out, _) = World::run(5, |ctx| {
            let s = ctx.allreduce_sum(ctx.rank() as f64);
            let m = ctx.allreduce_max(ctx.rank() as f64 * 2.0);
            (s, m)
        });
        for (s, m) in out {
            assert_eq!(s, 10.0);
            assert_eq!(m, 8.0);
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_data() {
        let p = 3;
        let (out, _) = World::run(p, |ctx| {
            let sends: Vec<Vec<f64>> =
                (0..p).map(|dst| vec![(ctx.rank() * 10 + dst) as f64; ctx.rank() + 1]).collect();
            ctx.alltoallv(&sends)
        });
        for (rank, recvs) in out.iter().enumerate() {
            for (src, data) in recvs.iter().enumerate() {
                assert_eq!(data.len(), src + 1);
                assert!(data.iter().all(|&v| v == (src * 10 + rank) as f64));
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let (out, _) = World::run(4, |ctx| ctx.broadcast(2, &[9.0, 8.0]));
        for v in out {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn allgatherv_collects_all() {
        let (out, _) = World::run(3, |ctx| {
            let mine = vec![ctx.rank() as f64; ctx.rank() + 1];
            ctx.allgatherv(&mine)
        });
        for recvs in out {
            assert_eq!(recvs.len(), 3);
            for (src, v) in recvs.iter().enumerate() {
                assert_eq!(v.len(), src + 1);
            }
        }
    }

    #[test]
    fn back_to_back_collectives_use_distinct_epoch_tags() {
        // Two identical-shape collectives in a row: without epoch tags a
        // lost first-round message could desync into the second round.
        // With epochs the rounds are cryptographically separated; both
        // must return the right values even under seeded drops.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(21).with_drop_rate(0.2)),
            ..WorldConfig::default()
        };
        let (out, _) = World::run_cfg(3, cfg, |ctx| {
            let a = ctx.try_allreduce_sum(1.0)?;
            let b = ctx.try_allreduce_sum(10.0)?;
            let c = ctx.try_broadcast(1, &[7.0])?;
            Ok::<_, CommError>((a, b, c[0]))
        });
        for r in out {
            assert_eq!(r.unwrap(), (3.0, 30.0, 7.0));
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = AtomicUsize::new(0);
        World::run(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank's increment is visible.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn dropped_message_recovered_by_retransmission() {
        // Every original transmission drops (budget 1): the reliable
        // layer must recover the payload via retransmission, bit-exact.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(11).with_drop_rate(1.0).with_max_faults(1)),
            recv_timeout: Duration::from_secs(5),
            ..WorldConfig::default()
        };
        let (out, traffic) = World::run_cfg_ext(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, &[1.0, 2.0]);
                Ok(Vec::new())
            } else {
                ctx.try_recv(0, 3)
            }
        });
        assert_eq!(out[1], Ok(vec![1.0, 2.0]));
        assert!(traffic[1].retransmits >= 1, "recovery must go through a retransmit");
        assert_eq!(traffic[1].acks, 1);
    }

    #[test]
    fn truncated_and_corrupted_messages_recovered() {
        for plan in [
            CommFaultPlan::new(12).with_truncate_rate(1.0).with_max_faults(2),
            CommFaultPlan::new(13).with_corrupt_rate(1.0).with_max_faults(2),
        ] {
            let cfg = WorldConfig {
                faults: Some(plan),
                recv_timeout: Duration::from_secs(5),
                ..WorldConfig::default()
            };
            let (out, _) = World::run_cfg(2, cfg, |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 3, &[1.0, 2.0, 3.0, 4.0]);
                    Ok(Vec::new())
                } else {
                    ctx.try_recv(0, 3)
                }
            });
            assert_eq!(out[1], Ok(vec![1.0, 2.0, 3.0, 4.0]));
        }
    }

    #[test]
    fn unrecoverable_loss_exhausts_retransmit_budget() {
        // Unlimited faults at drop rate 1: every attempt dies; the
        // receive must surface a typed error, never hang.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(11).with_drop_rate(1.0)),
            recv_timeout: Duration::from_secs(30),
            max_retransmits: 3,
            retry_backoff: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(5),
            ..WorldConfig::default()
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, &[1.0, 2.0]);
                Ok(Vec::new())
            } else {
                ctx.try_recv(0, 3)
            }
        });
        assert_eq!(
            out[1],
            Err(CommError::RetransmitsExhausted { src: 0, dst: 1, tag: 3, seq: 0, attempts: 3 })
        );
    }

    #[test]
    fn raw_path_detects_truncation_and_tag_skew() {
        // The raw (unreliable) receive keeps the original detection
        // semantics: a truncated payload is a typed error, and a dropped
        // message followed by the next one is a tag mismatch.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(11).with_truncate_rate(1.0).with_max_faults(1)),
            recv_timeout: Duration::from_millis(200),
            ..WorldConfig::default()
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, &[1.0, 2.0, 3.0, 4.0]);
                Ok(Vec::new())
            } else {
                ctx.try_recv_raw(0, 3)
            }
        });
        assert_eq!(
            out[1],
            Err(CommError::Truncated { src: 0, dst: 1, tag: 3, declared: 32, got: 16 })
        );

        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(5).with_drop_rate(1.0).with_max_faults(1)),
            recv_timeout: Duration::from_millis(200),
            ..WorldConfig::default()
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, &[1.0]);
                ctx.send(1, 1, &[2.0]);
                Ok(Vec::new())
            } else {
                // Channels are FIFO: the first arrival carrying tag 1
                // proves message 0 was dropped and message 1 delivered.
                ctx.try_recv_raw(0, 0)
            }
        });
        assert_eq!(out[1], Err(CommError::TagMismatch { src: 0, dst: 1, expected: 0, got: 1 }));
    }

    #[test]
    fn dead_rank_detected_by_receiver() {
        let cfg = WorldConfig {
            recv_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(5),
            ..WorldConfig::default()
        };
        let started = Instant::now();
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.declare_dead();
                Err(CommError::RankDead { rank: 0, dst: 0 })
            } else {
                ctx.try_recv(0, 9).map(|_| ())
            }
        });
        assert_eq!(out[1], Err(CommError::RankDead { rank: 0, dst: 1 }));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "death must be detected well before the receive deadline"
        );
    }

    #[test]
    fn dead_rank_detected_by_barrier() {
        let cfg =
            WorldConfig { heartbeat_interval: Duration::from_millis(5), ..WorldConfig::default() };
        let (out, _) = World::run_cfg(3, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.declare_dead();
                Err(CommError::RankDead { rank: 0, dst: 0 })
            } else {
                ctx.try_barrier()
            }
        });
        for (r, res) in out.iter().enumerate().skip(1) {
            assert_eq!(*res, Err(CommError::RankDead { rank: 0, dst: r }));
        }
    }

    #[test]
    fn liveness_view_reflects_completion() {
        let (out, _) = World::run(2, |ctx| {
            if ctx.rank() == 1 {
                // Rank 0 exits immediately; poll until the view shows it.
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    let live = ctx.liveness();
                    assert!(live[1], "a running rank sees itself alive");
                    if !live[0] {
                        return true;
                    }
                    assert!(Instant::now() < deadline, "liveness never updated");
                    std::thread::yield_now();
                }
            }
            true
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn max_faults_bounds_injection() {
        // drop_rate 1.0 but max_faults 1: only the first transmission
        // dies; the reliable layer recovers it and everything after
        // flows fault-free.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(5).with_drop_rate(1.0).with_max_faults(1)),
            recv_timeout: Duration::from_secs(5),
            ..WorldConfig::default()
        };
        let (out, _) = World::run_cfg(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, &[1.0]);
                ctx.send(1, 1, &[2.0]);
                Ok(Vec::new())
            } else {
                let a = ctx.try_recv(0, 0)?;
                let b = ctx.try_recv(0, 1)?;
                Ok::<_, CommError>(vec![a[0], b[0]])
            }
        });
        assert_eq!(out[1], Ok(vec![1.0, 2.0]));
    }

    #[test]
    fn irecv_wait_completes_like_blocking_recv() {
        // Post the receive before the send lands (the overlap pattern):
        // completion must deliver the same bits as a blocking recv.
        let (out, _) = World::run(3, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            let mut h = ctx.irecv(prev, 5);
            ctx.isend(next, 5, &[ctx.rank() as f64; 4]);
            let v = h.wait().unwrap();
            assert_eq!(h.src(), prev);
            v == vec![prev as f64; 4]
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn polled_receive_overlaps_compute_and_recovers_faults() {
        // The first transmission is dropped; a tight poll loop standing
        // in for interior compute must recover it via a *paced*
        // retransmission (budget 8 untouched despite thousands of
        // polls) and deliver bit-exact.
        let cfg = WorldConfig {
            faults: Some(CommFaultPlan::new(11).with_drop_rate(1.0).with_max_faults(1)),
            recv_timeout: Duration::from_secs(5),
            ..WorldConfig::default()
        };
        let (out, traffic) = World::run_cfg_ext(2, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 3, &[1.0, 2.0, 3.0]);
                Ok::<_, CommError>(Vec::new())
            } else {
                let mut h = ctx.irecv(0, 3);
                let mut interior_work = 0.0f64;
                loop {
                    if let Some(v) = h.poll()? {
                        assert!(interior_work.is_finite());
                        return Ok(v);
                    }
                    for i in 0..64 {
                        interior_work += (i as f64).sqrt();
                    }
                }
            }
        });
        assert_eq!(out[1], Ok(vec![1.0, 2.0, 3.0]));
        assert!(traffic[1].retransmits >= 1, "recovery must go through a retransmit");
        assert!(traffic[1].retransmits <= 8, "polling must not flood the retransmit budget");
        assert_eq!(traffic[1].acks, 1);
    }

    #[test]
    fn malformed_payload_length_is_typed_error() {
        assert_eq!(
            decode_payload(0, 1, 7, &[1, 2, 3]),
            Err(CommError::Malformed { src: 0, dst: 1, tag: 7, len: 3 })
        );
        assert_eq!(decode_payload(0, 1, 7, &1.5f64.to_le_bytes()), Ok(vec![1.5]));
    }

    #[test]
    fn short_collective_reply_is_typed_error() {
        // A protocol violation (empty reply where the allreduce needs
        // one value) must degrade to a typed error, not a rank abort.
        let (out, _) = World::run(2, |ctx| {
            if ctx.rank() == 0 {
                matches!(
                    ctx.try_allreduce_sum(1.0),
                    Err(CommError::ShortCollective { src: 1, got: 0, need: 1, .. })
                )
            } else {
                ctx.send(0, COLL_BASE | COLL_ALLREDUCE, &[]);
                true
            }
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn fault_free_path_unchanged_with_plan_installed() {
        // A zero-rate plan must not perturb results or traffic.
        let cfg = WorldConfig { faults: Some(CommFaultPlan::new(9)), ..WorldConfig::default() };
        let (out, traffic) = World::run_cfg_ext(3, cfg, |ctx| {
            let s = ctx.allreduce_sum(ctx.rank() as f64);
            ctx.allgatherv(&[ctx.rank() as f64]).iter().map(|v| v[0]).sum::<f64>() + s
        });
        for v in out {
            assert_eq!(v, 6.0);
        }
        let total: u64 = traffic.iter().map(|t| t.messages).sum();
        assert!(total > 0);
        // Fault-free: not a single retransmission.
        assert!(traffic.iter().all(|t| t.retransmits == 0));
    }
}
