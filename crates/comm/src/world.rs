//! The rank world: threads + channels + collectives.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// A tagged message between ranks.
struct Message {
    tag: u64,
    payload: Vec<u8>,
}

/// Per-rank communication traffic counters.
#[derive(Debug, Default)]
pub struct TrafficStats {
    pub messages_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
}

/// The world: matrix of channels between `p` ranks.
pub struct World {
    size: usize,
    senders: Vec<Vec<Sender<Message>>>, // senders[src][dst]
    receivers: Vec<Mutex<Vec<Receiver<Message>>>>, // receivers[dst][src]
    barrier: Barrier,
    traffic: Vec<TrafficStats>,
}

impl World {
    fn new(size: usize) -> Arc<Self> {
        assert!(size >= 1);
        let mut senders: Vec<Vec<Sender<Message>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Receiver<Message>>> = (0..size).map(|_| Vec::new()).collect();
        for dst_chans in receivers.iter_mut() {
            for src_senders in senders.iter_mut() {
                let (tx, rx) = unbounded();
                src_senders.push(tx);
                dst_chans.push(rx);
            }
        }
        Arc::new(Self {
            size,
            senders,
            receivers: receivers.into_iter().map(Mutex::new).collect(),
            barrier: Barrier::new(size),
            traffic: (0..size).map(|_| TrafficStats::default()).collect(),
        })
    }

    /// Spawn `size` ranks, run `body` on each, return the per-rank results
    /// in rank order. Panics in a rank propagate.
    pub fn run<T, F>(size: usize, body: F) -> (Vec<T>, Vec<(u64, u64)>)
    where
        T: Send,
        F: Fn(RankCtx<'_>) -> T + Sync,
    {
        let world = Self::new(size);
        let results: Vec<Mutex<Option<T>>> = (0..size).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for rank in 0..size {
                let world = Arc::clone(&world);
                let slot = &results[rank];
                let body = &body;
                scope.spawn(move || {
                    let ctx = RankCtx { world: &world, rank };
                    let out = body(ctx);
                    *slot.lock().unwrap() = Some(out);
                });
            }
        });
        let outs = results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("rank completed"))
            .collect();
        let traffic = world
            .traffic
            .iter()
            .map(|t| {
                (t.messages_sent.load(Ordering::Relaxed), t.bytes_sent.load(Ordering::Relaxed))
            })
            .collect();
        (outs, traffic)
    }
}

/// A rank's handle to the world.
pub struct RankCtx<'a> {
    world: &'a World,
    rank: usize,
}

impl RankCtx<'_> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.world.size
    }

    /// Point-to-point send (non-blocking; unbounded buffering).
    pub fn send(&self, dst: usize, tag: u64, payload: &[f64]) {
        let bytes: Vec<u8> = payload.iter().flat_map(|v| v.to_le_bytes()).collect();
        let t = &self.world.traffic[self.rank];
        t.messages_sent.fetch_add(1, Ordering::Relaxed);
        t.bytes_sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.world.senders[self.rank][dst]
            .send(Message { tag, payload: bytes })
            .expect("receiver alive");
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Messages from one sender arrive in order; mismatched tags are an
    /// error (the solver's schedules are deterministic).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        let guard = self.world.receivers[self.rank].lock().unwrap();
        let msg = guard[src].recv().expect("sender alive");
        drop(guard);
        assert_eq!(msg.tag, tag, "rank {} got tag {} from {src}, wanted {tag}", self.rank, msg.tag);
        msg.payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Barrier across all ranks.
    pub fn barrier(&self) {
        self.world.barrier.wait();
    }

    /// Sum-allreduce of one value.
    pub fn allreduce_sum(&self, v: f64) -> f64 {
        self.allreduce(v, |a, b| a + b)
    }

    /// Max-allreduce of one value.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        self.allreduce(v, f64::max)
    }

    fn allreduce(&self, v: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        // Gather to rank 0, reduce, broadcast. O(p) — fine for the rank
        // counts we simulate; the traffic model uses message counts, not
        // this implementation's latency.
        const TAG: u64 = u64::MAX - 1;
        if self.rank == 0 {
            let mut acc = v;
            for src in 1..self.size() {
                let x = self.recv(src, TAG);
                acc = op(acc, x[0]);
            }
            for dst in 1..self.size() {
                self.send(dst, TAG, &[acc]);
            }
            acc
        } else {
            self.send(0, TAG, &[v]);
            self.recv(0, TAG)[0]
        }
    }

    /// Gather variable-length vectors to every rank (allgatherv).
    pub fn allgatherv(&self, mine: &[f64]) -> Vec<Vec<f64>> {
        const TAG: u64 = u64::MAX - 2;
        for dst in 0..self.size() {
            if dst != self.rank {
                self.send(dst, TAG, mine);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(mine.to_vec());
            } else {
                out.push(self.recv(src, TAG));
            }
        }
        out
    }

    /// Personalized all-to-all: `sends[dst]` goes to rank `dst`; returns
    /// `recvs[src]`.
    pub fn alltoallv(&self, sends: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(sends.len(), self.size());
        const TAG: u64 = u64::MAX - 3;
        for (dst, payload) in sends.iter().enumerate() {
            if dst != self.rank {
                self.send(dst, TAG, payload);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(sends[self.rank].clone());
            } else {
                out.push(self.recv(src, TAG));
            }
        }
        out
    }

    /// Broadcast from root.
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        const TAG: u64 = u64::MAX - 4;
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, TAG, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, TAG)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let (out, traffic) = World::run(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            ctx.allreduce_sum(5.0)
        });
        assert_eq!(out, vec![5.0]);
        assert_eq!(traffic[0], (0, 0));
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let (out, traffic) = World::run(p, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, &[ctx.rank() as f64]);
            ctx.recv(prev, 7)[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
        for t in traffic {
            assert_eq!(t.0, 1);
            assert_eq!(t.1, 8);
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let (out, _) = World::run(5, |ctx| {
            let s = ctx.allreduce_sum(ctx.rank() as f64);
            let m = ctx.allreduce_max(ctx.rank() as f64 * 2.0);
            (s, m)
        });
        for (s, m) in out {
            assert_eq!(s, 10.0);
            assert_eq!(m, 8.0);
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_data() {
        let p = 3;
        let (out, _) = World::run(p, |ctx| {
            let sends: Vec<Vec<f64>> = (0..p)
                .map(|dst| vec![(ctx.rank() * 10 + dst) as f64; ctx.rank() + 1])
                .collect();
            ctx.alltoallv(&sends)
        });
        for (rank, recvs) in out.iter().enumerate() {
            for (src, data) in recvs.iter().enumerate() {
                assert_eq!(data.len(), src + 1);
                assert!(data.iter().all(|&v| v == (src * 10 + rank) as f64));
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let (out, _) = World::run(4, |ctx| ctx.broadcast(2, &[9.0, 8.0]));
        for v in out {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn allgatherv_collects_all() {
        let (out, _) = World::run(3, |ctx| {
            let mine = vec![ctx.rank() as f64; ctx.rank() + 1];
            ctx.allgatherv(&mine)
        });
        for recvs in out {
            assert_eq!(recvs.len(), 3);
            for (src, v) in recvs.iter().enumerate() {
                assert_eq!(v.len(), src + 1);
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = AtomicUsize::new(0);
        World::run(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank's increment is visible.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
