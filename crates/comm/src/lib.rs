//! Simulated MPI: rank-parallel execution with typed message passing.
//!
//! The paper's distributed layer (Intel MPI on Frontera / Lonestar 6) is
//! replaced — per the DESIGN.md substitution policy — by an in-process
//! world: ranks are OS threads, point-to-point messages are crossbeam
//! channels, and collectives are built on them. Message counts and byte
//! volumes are metered per rank, which is what the weak/strong scaling
//! models (Figs. 17, 18, 20) consume.
//!
//! * [`world`] — [`world::World::run`] spawns `p` ranks and gives each a
//!   [`world::RankCtx`] with `send`/`recv`, barriers and collectives
//!   (allreduce, gather, alltoallv, broadcast). Point-to-point delivery
//!   is reliable: per-link sequence numbers, receiver-driven acks, and
//!   bounded retransmission with exponential backoff recover injected
//!   drop/truncate/corrupt faults transparently. A per-rank liveness
//!   view plus `try_`-collectives and a timeout-aware barrier mean a
//!   dead rank is detected by name, never waited on forever.
//! * [`ghost`] — the ghost/halo exchange schedule: given an octant
//!   partition and the cross-partition scatter dependencies, build the
//!   per-rank aggregated message plan (one message per neighbor rank per
//!   round — the aggregation ablation of DESIGN.md §5).

//! * [`crc`] — CRC-32 used for message and checkpoint integrity.
//! * [`fault`] — deterministic, seeded fault injection for the message
//!   layer (dropped / truncated halo messages), off by default.

pub mod crc;
pub mod fault;
pub mod ghost;
pub mod world;

pub use fault::{CommFaultPlan, FaultAction};
pub use ghost::{GhostPlan, GhostSchedule};
pub use world::{CommError, RankCtx, RankTraffic, RecvHandle, TrafficStats, World, WorldConfig};
