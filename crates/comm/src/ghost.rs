//! Ghost (halo) exchange planning.
//!
//! Each rank owns a contiguous SFC range of octants (the partition).
//! Scatter dependencies that cross partition boundaries require remote
//! octant blocks; the plan lists, per rank pair, exactly which octants
//! must travel. Messages are aggregated per destination rank (one message
//! per neighbor per exchange — the aggregation the ablation in DESIGN.md
//! §5 compares against per-octant messages).

use gw_octree::partition::PartitionMap;

/// Dependencies: `(src_octant, dst_octant)` pairs (global indices) from
/// the mesh scatter map.
pub type Dependency = (u32, u32);

/// The per-rank ghost exchange plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhostPlan {
    /// `sends[r][q]` = sorted global octant ids rank `r` sends to rank `q`.
    pub sends: Vec<Vec<Vec<u32>>>,
    /// `recvs[r][q]` = sorted global octant ids rank `r` receives from `q`
    /// (mirror of `sends[q][r]`).
    pub recvs: Vec<Vec<Vec<u32>>>,
}

/// Builder + queries.
pub struct GhostSchedule;

impl GhostSchedule {
    /// Build the plan from the partition and the cross-octant
    /// dependencies.
    pub fn build(partition: &PartitionMap, deps: impl Iterator<Item = Dependency>) -> GhostPlan {
        let p = partition.parts();
        let mut sends: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); p]; p];
        for (src, dst) in deps {
            let rs = partition.owner_of_index(src as usize);
            let rd = partition.owner_of_index(dst as usize);
            if rs != rd {
                sends[rs][rd].push(src);
            }
        }
        for row in sends.iter_mut() {
            for list in row.iter_mut() {
                list.sort_unstable();
                list.dedup();
            }
        }
        let mut recvs: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); p]; p];
        for r in 0..p {
            for q in 0..p {
                recvs[r][q] = sends[q][r].clone();
            }
        }
        GhostPlan { sends, recvs }
    }
}

impl GhostPlan {
    pub fn parts(&self) -> usize {
        self.sends.len()
    }

    /// Octants rank `r` ships in one exchange (all destinations).
    pub fn send_volume_octants(&self, r: usize) -> usize {
        self.sends[r].iter().map(|l| l.len()).sum()
    }

    /// Bytes rank `r` ships per exchange for a `dof`-variable field with
    /// `block_points` points per octant.
    pub fn send_bytes(&self, r: usize, dof: usize, block_points: usize) -> u64 {
        (self.send_volume_octants(r) * dof * block_points * 8) as u64
    }

    /// Aggregated messages per exchange from rank `r` (≤ p−1).
    pub fn messages_aggregated(&self, r: usize) -> usize {
        self.sends[r].iter().filter(|l| !l.is_empty()).count()
    }

    /// Unaggregated (one message per octant) count — the ablation
    /// baseline.
    pub fn messages_per_octant(&self, r: usize) -> usize {
        self.send_volume_octants(r)
    }

    /// All ghost octants rank `r` will hold (sorted global ids).
    pub fn ghosts_of(&self, r: usize) -> Vec<u32> {
        let mut v: Vec<u32> = self.recvs[r].iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total bytes on the wire per exchange.
    pub fn total_bytes(&self, dof: usize, block_points: usize) -> u64 {
        (0..self.parts()).map(|r| self.send_bytes(r, dof, block_points)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_octree::partition::partition_uniform;

    /// A 1D-like chain of octants where octant i depends on i−1 and i+1.
    fn chain_deps(n: usize) -> Vec<Dependency> {
        let mut d = Vec::new();
        for i in 0..n as u32 {
            if i > 0 {
                d.push((i - 1, i));
                d.push((i, i - 1));
            }
        }
        d
    }

    #[test]
    fn chain_partition_ghosts_are_boundary_octants() {
        let n = 12;
        let part = partition_uniform(n, 3); // [0..4), [4..8), [8..12)
        let plan = GhostSchedule::build(&part, chain_deps(n).into_iter());
        // Rank 0 sends octant 3 to rank 1; receives octant 4.
        assert_eq!(plan.sends[0][1], vec![3]);
        assert_eq!(plan.recvs[0][1], vec![4]);
        assert_eq!(plan.ghosts_of(0), vec![4]);
        // Middle rank has ghosts on both sides.
        assert_eq!(plan.ghosts_of(1), vec![3, 8]);
        // No self-sends.
        for r in 0..3 {
            assert!(plan.sends[r][r].is_empty());
        }
    }

    #[test]
    fn message_counts_aggregated_vs_per_octant() {
        let n = 100;
        let part = partition_uniform(n, 4);
        // Dense deps: everyone near a cut talks across it; add a wide
        // stencil of ±3.
        let mut deps = Vec::new();
        for i in 0..n as i64 {
            for d in -3i64..=3 {
                let j = i + d;
                if d != 0 && j >= 0 && j < n as i64 {
                    deps.push((i as u32, j as u32));
                }
            }
        }
        let plan = GhostSchedule::build(&part, deps.into_iter());
        for r in 0..4 {
            let agg = plan.messages_aggregated(r);
            let per = plan.messages_per_octant(r);
            assert!(agg <= per);
            assert!(agg <= 3); // at most both neighbors in a 1D chain
            if r == 1 || r == 2 {
                assert_eq!(agg, 2);
                assert_eq!(per, 6); // 3 octants to each side
            }
        }
    }

    #[test]
    fn byte_accounting() {
        let part = partition_uniform(4, 2);
        let plan = GhostSchedule::build(&part, chain_deps(4).into_iter());
        // One octant each way: 2 × dof × pts × 8 bytes total.
        assert_eq!(plan.total_bytes(24, 343), 2 * 24 * 343 * 8);
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let part = partition_uniform(10, 1);
        let plan = GhostSchedule::build(&part, chain_deps(10).into_iter());
        assert_eq!(plan.send_volume_octants(0), 0);
        assert!(plan.ghosts_of(0).is_empty());
    }

    #[test]
    fn symmetric_dependencies_give_symmetric_plan() {
        let part = partition_uniform(20, 4);
        let plan = GhostSchedule::build(&part, chain_deps(20).into_iter());
        for r in 0..4 {
            for q in 0..4 {
                assert_eq!(plan.sends[r][q], plan.recvs[q][r]);
            }
        }
    }
}
