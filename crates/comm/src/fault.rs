//! Deterministic fault injection for the message layer.
//!
//! Production campaigns lose halo messages to flaky links and node
//! failures; silently evolving with a stale or partial ghost block is the
//! worst possible outcome (a bit-wrong answer after 388 node-hours, see
//! Table IV of the paper). The exchange layer therefore carries
//! length+CRC headers ([`crate::world`]), and this module supplies the
//! *test harness* side: a seeded, wall-clock-free schedule of message
//! faults so every detection and recovery path is exercisable in unit
//! tests.
//!
//! Decisions are a pure function of `(seed, src, dst, sequence)`, so a
//! run with the same plan faults exactly the same messages every time —
//! the determinism the ISSUE's acceptance criteria require.

/// What to do with one outgoing message (or retransmission attempt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver untouched.
    Deliver,
    /// Never deliver (receiver times out).
    Drop,
    /// Deliver with the payload cut short (header still describes the
    /// full payload, so the receiver detects the mismatch).
    Truncate,
    /// Deliver with payload bits flipped (length matches, CRC does not).
    Corrupt,
}

/// A seeded schedule of message faults. Fully disabled by default
/// (`CommFaultPlan` is only consulted when installed on a world, and the
/// zero-rate plan never faults).
#[derive(Clone, Copy, Debug)]
pub struct CommFaultPlan {
    /// RNG seed; same seed ⇒ same faulted messages.
    pub seed: u64,
    /// Probability a message is dropped, in [0, 1].
    pub drop_rate: f64,
    /// Probability a message is truncated, in [0, 1].
    pub truncate_rate: f64,
    /// Probability a message payload is bit-corrupted, in [0, 1].
    pub corrupt_rate: f64,
    /// Upper bound on total injected faults (the world enforces it).
    pub max_faults: usize,
}

impl CommFaultPlan {
    /// A plan that never faults (rates zero) — compose with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        Self { seed, drop_rate: 0.0, truncate_rate: 0.0, corrupt_rate: 0.0, max_faults: usize::MAX }
    }

    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    pub fn with_max_faults(mut self, n: usize) -> Self {
        self.max_faults = n;
        self
    }

    /// Decide the fate of message number `seq` on the `src → dst` link.
    /// Pure and deterministic; no wall-clock or OS entropy.
    pub fn decide(&self, src: usize, dst: usize, seq: u64) -> FaultAction {
        self.decide_retry(src, dst, seq, 0)
    }

    /// [`CommFaultPlan::decide`] for retransmission attempt `attempt` of
    /// the same message (attempt 0 = original transmission). Each attempt
    /// gets an independent draw, so a retransmit of a faulted message can
    /// succeed — the property the reliable-delivery layer recovers with.
    pub fn decide_retry(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> FaultAction {
        if self.drop_rate <= 0.0 && self.truncate_rate <= 0.0 && self.corrupt_rate <= 0.0 {
            return FaultAction::Deliver;
        }
        let u = unit(mix(self.seed, src as u64, dst as u64, seq, attempt as u64));
        if u < self.drop_rate {
            FaultAction::Drop
        } else if u < self.drop_rate + self.truncate_rate {
            FaultAction::Truncate
        } else if u < self.drop_rate + self.truncate_rate + self.corrupt_rate {
            FaultAction::Corrupt
        } else {
            FaultAction::Deliver
        }
    }
}

/// splitmix64-style avalanche over the decision key.
fn mix(seed: u64, src: u64, dst: u64, seq: u64, attempt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(src.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(dst.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(seq.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(attempt.wrapping_mul(0xd6e8_feb8_6659_fd93));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map to [0, 1).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fault() {
        let plan = CommFaultPlan::new(42);
        for seq in 0..1000 {
            assert_eq!(plan.decide(0, 1, seq), FaultAction::Deliver);
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = CommFaultPlan::new(7).with_drop_rate(0.1).with_truncate_rate(0.1);
        let b = CommFaultPlan::new(7).with_drop_rate(0.1).with_truncate_rate(0.1);
        for src in 0..4 {
            for dst in 0..4 {
                for seq in 0..200 {
                    assert_eq!(a.decide(src, dst, seq), b.decide(src, dst, seq));
                }
            }
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = CommFaultPlan::new(3).with_drop_rate(0.25);
        let n = 10_000;
        let drops = (0..n).filter(|&s| plan.decide(1, 2, s) == FaultAction::Drop).count();
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn retry_attempts_draw_independently() {
        // A message dropped on attempt 0 must have a fresh chance on each
        // retransmission — otherwise the reliable layer could never
        // recover from a deterministic schedule.
        let plan = CommFaultPlan::new(4).with_drop_rate(0.5);
        let mut dropped_then_recovered = false;
        for seq in 0..64 {
            if plan.decide(0, 1, seq) == FaultAction::Drop {
                dropped_then_recovered |=
                    (1..=8).any(|a| plan.decide_retry(0, 1, seq, a) == FaultAction::Deliver);
            }
        }
        assert!(dropped_then_recovered);
        // Attempt 0 must agree with the plain decide().
        for seq in 0..64 {
            assert_eq!(plan.decide(2, 3, seq), plan.decide_retry(2, 3, seq, 0));
        }
    }

    #[test]
    fn corrupt_rate_produces_corruptions() {
        let plan = CommFaultPlan::new(6).with_corrupt_rate(0.5);
        let hits = (0..256).filter(|&s| plan.decide(0, 1, s) == FaultAction::Corrupt).count();
        assert!(hits > 64, "corrupt rate 0.5 produced only {hits}/256");
    }

    #[test]
    fn different_seeds_differ() {
        let a = CommFaultPlan::new(1).with_drop_rate(0.5);
        let b = CommFaultPlan::new(2).with_drop_rate(0.5);
        let differ = (0..256).any(|s| a.decide(0, 1, s) != b.decide(0, 1, s));
        assert!(differ);
    }
}
