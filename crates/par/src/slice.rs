//! Shared mutable slice for partitioned parallel writes.
//!
//! The same contract as a CUDA global-memory pointer handed to a kernel
//! grid: items executing in parallel may write through it, and the
//! *caller* (not this type) guarantees the write partition is
//! non-overlapping. The solver stages uphold it structurally — e.g. the
//! octant-to-patch scatter's `(destination patch, padding region)`
//! targets are disjoint across source octants by grid construction,
//! which `gw_mesh::Mesh::build` verifies at build time.

use std::cell::UnsafeCell;

/// A `&mut [T]` shareable across the participants of one parallel call.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

// Safety: access discipline is delegated to callers (see module docs);
// the type itself only hands out raw element accesses.
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice for the duration of a parallel call.
    pub fn new(slice: &'a mut [T]) -> Self {
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        // Safety: UnsafeCell<T> has the same layout as T.
        Self { slice: unsafe { &*ptr } }
    }

    pub fn len(&self) -> usize {
        self.slice.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Raw pointer to element `i` (bounds-checked). The caller must
    /// uphold the non-overlap contract when writing through it.
    #[inline]
    pub fn get_mut_ptr(&self, i: usize) -> *mut T {
        self.slice[i].get()
    }

    /// Write one element.
    ///
    /// # Safety
    /// No other thread may concurrently access index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.slice[i].get() = value;
    }

    /// Read one element.
    ///
    /// # Safety
    /// No other thread may concurrently *write* index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.slice[i].get()
    }

    /// Get a mutable sub-slice.
    ///
    /// # Safety
    /// The range must not be concurrently accessed by any other thread.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(start + len <= self.slice.len(), "slice_mut out of bounds");
        std::slice::from_raw_parts_mut(self.slice[start].get(), len)
    }

    /// Get a shared sub-slice.
    ///
    /// # Safety
    /// The range must not be concurrently written by any other thread.
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        assert!(start + len <= self.slice.len(), "slice out of bounds");
        std::slice::from_raw_parts(self.slice[start].get(), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 1024];
        {
            let s = UnsafeSlice::new(&mut data);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 256)..((t + 1) * 256) {
                            // Safety: each thread owns a disjoint quarter.
                            unsafe { s.write(i, i as u64) };
                        }
                    });
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn subslice_views() {
        let mut data = vec![1.0f64; 16];
        let s = UnsafeSlice::new(&mut data);
        unsafe {
            let sub = s.slice_mut(4, 4);
            for v in sub.iter_mut() {
                *v = 2.0;
            }
            assert_eq!(s.slice(0, 4), &[1.0; 4]);
            assert_eq!(s.slice(4, 4), &[2.0; 4]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_subslice_panics() {
        let mut data = vec![0f64; 8];
        let s = UnsafeSlice::new(&mut data);
        unsafe {
            let _ = s.slice(4, 8);
        }
    }
}
