//! `gw-par` — a deterministic shared-memory parallel runtime.
//!
//! The paper's performance story is per-patch parallelism: one GPU block
//! per 13³ patch for octant-to-patch scatter, the fused RHS, copy-back
//! and the RK AXPY stages. This crate provides the host-side analogue —
//! a small persistent thread pool over which those stages fan out one
//! work item per patch (or per contiguous field chunk) — under one hard
//! constraint carried over from the resilience PRs: **results must be
//! bit-identical for any thread count**, so checkpoint replay and
//! rollback stay bit-exact when the pool size changes between runs.
//!
//! Determinism is by construction, not by scheduling:
//!
//! * [`ThreadPool::for_each`] / [`ThreadPool::map`] execute independent
//!   items whose writes go to pre-partitioned, non-overlapping slots
//!   (each item's output depends only on its inputs, never on schedule).
//! * [`tree_reduce`] combines per-item partial results in a *fixed
//!   pairwise order* derived from item indices alone, so floating-point
//!   reductions (constraint norms, residuals) do not depend on which
//!   worker finished first.
//!
//! The build environment has no registry access (see `vendor/README.md`),
//! so this replaces `rayon`; the API is deliberately tiny and can be
//! re-based on rayon mechanically if the registry becomes available.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

mod slice;
pub use slice::UnsafeSlice;

/// Upper bound on the worker count accepted by [`resolve_threads`].
pub const MAX_THREADS: usize = 1024;

/// Resolve a requested thread count: `0` means "auto" — the `GW_THREADS`
/// environment variable if set, otherwise the host's available
/// parallelism. Any resolved value is clamped to `[1, MAX_THREADS]`.
pub fn resolve_threads(requested: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else if let Some(env) = std::env::var("GW_THREADS").ok().and_then(|s| s.parse().ok()) {
        env
    } else {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    };
    n.clamp(1, MAX_THREADS)
}

enum Msg {
    Run(Arc<Job>),
    Exit,
}

/// One parallel call's shared state. Workers pull fixed-size index
/// chunks off `next`; the participant that completes the final item
/// notifies the submitting thread. The raw task pointer is only
/// dereferenced while items remain unclaimed, which the submitting call
/// outlives (it blocks until `done == n`).
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    chunk: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    finished: Mutex<bool>,
    finished_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// Safety: `task` outlives the job (the submitting `for_each` call blocks
// until every item completes before returning and dropping the closure),
// and the closure itself is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run chunks until none remain. Returns `true` if this
    /// participant completed the job's final item.
    fn run(&self) -> bool {
        let mut completed_last = false;
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                break;
            }
            let end = (start + self.chunk).min(self.n);
            // Safety: items remain (start < n), so the submitting call is
            // still blocked in `for_each` and the closure is alive.
            let task = unsafe { &*self.task };
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for i in start..end {
                    task(i);
                }
            }));
            if let Err(payload) = r {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let prev = self.done.fetch_add(end - start, Ordering::AcqRel);
            if prev + (end - start) == self.n {
                completed_last = true;
                let mut fin = self.finished.lock().unwrap();
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
        completed_last
    }

    fn wait(&self) {
        let mut fin = self.finished.lock().unwrap();
        while !*fin {
            fin = self.finished_cv.wait(fin).unwrap();
        }
    }
}

/// A persistent pool of `n − 1` worker threads; the submitting thread is
/// the `n`-th participant of every parallel call. `n = 1` runs inline
/// with no threads and no synchronization.
pub struct ThreadPool {
    n_threads: usize,
    tx: Option<crossbeam::channel::Sender<Msg>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with exactly `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        if n == 1 {
            return Self { n_threads: 1, tx: None, workers: Vec::new() };
        }
        let (tx, rx) = crossbeam::channel::unbounded::<Msg>();
        let workers = (0..n - 1)
            .map(|k| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gw-par-{k}"))
                    .spawn(move || {
                        while let Ok(Msg::Run(job)) = rx.recv() {
                            job.run();
                        }
                    })
                    .expect("spawn gw-par worker")
            })
            .collect();
        Self { n_threads: n, tx: Some(tx), workers }
    }

    /// A process-wide shared pool for `requested` threads (0 = auto; see
    /// [`resolve_threads`]). Pools are cached by resolved size so regrid
    /// cycles that rebuild backends do not respawn threads.
    pub fn shared(requested: usize) -> Arc<ThreadPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
        let n = resolve_threads(requested);
        let mut pools = POOLS.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
        pools.entry(n).or_insert_with(|| Arc::new(ThreadPool::new(n))).clone()
    }

    /// Number of participants (including the submitting thread).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `f(i)` for every `i in 0..n` across the pool. Items must write
    /// only to slots owned by their index (a non-overlapping write
    /// partition); under that contract the result is bit-identical for
    /// any pool size. Blocks until all items complete; re-raises the
    /// first worker panic.
    pub fn for_each<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        // Chunk size balances scheduling overhead against load balance;
        // it does not affect results (items are independent).
        let chunk = (n / (4 * self.n_threads.max(1))).clamp(1, 256);
        self.for_each_chunked(n, chunk, f);
    }

    /// [`ThreadPool::for_each`] with an explicit claim-chunk size (for
    /// very cheap items, e.g. AXPY field chunks).
    pub fn for_each_chunked<F: Fn(usize) + Sync>(&self, n: usize, chunk: usize, f: F) {
        if n == 0 {
            return;
        }
        if self.tx.is_none() || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let task: &(dyn Fn(usize) + Sync) = &f;
        // Safety: the lifetime is erased only for the duration of this
        // call — `job.wait()` below blocks until every item completed,
        // so no worker dereferences `task` after `f` is dropped.
        let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task,
            n,
            chunk: chunk.max(1),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let tx = self.tx.as_ref().expect("pool has workers");
        for _ in 0..self.workers.len() {
            tx.send(Msg::Run(job.clone())).expect("pool alive");
        }
        job.run();
        job.wait();
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Parallel map preserving index order: `out[i] = f(i)`. The output
    /// vector is ordered by item index regardless of scheduling, so a
    /// downstream [`tree_reduce`] is deterministic for any pool size.
    pub fn map<T: Send, F: Fn(usize) -> T + Sync>(&self, n: usize, f: F) -> Vec<T> {
        struct SendPtr<T>(*mut std::mem::MaybeUninit<T>);
        // Safety: each item writes only its own slot (disjoint partition).
        unsafe impl<T: Send> Send for SendPtr<T> {}
        unsafe impl<T: Send> Sync for SendPtr<T> {}
        impl<T> SendPtr<T> {
            fn slot(&self, i: usize) -> *mut std::mem::MaybeUninit<T> {
                // Safety of the add: callers index within the vec length.
                unsafe { self.0.add(i) }
            }
        }

        let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
        out.resize_with(n, std::mem::MaybeUninit::uninit);
        {
            let slots = SendPtr(out.as_mut_ptr());
            self.for_each(n, |i| {
                // Safety: slot i is written exactly once, by item i.
                unsafe {
                    slots.slot(i).write(std::mem::MaybeUninit::new(f(i)));
                }
            });
        }
        // Safety: every slot 0..n was initialized by its item (for_each
        // completed without panicking).
        unsafe {
            let mut out = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr() as *mut T, out.len(), out.capacity())
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            for _ in 0..self.workers.len() {
                let _ = tx.send(Msg::Exit);
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Fixed-order pairwise tree reduction.
///
/// Combines `xs[0] op xs[1]`, `xs[2] op xs[3]`, … level by level. The
/// combination order is a pure function of the slice layout — never of
/// thread scheduling — so reducing per-item partials produced by
/// [`ThreadPool::map`] yields bit-identical floats for any thread count.
/// (It also matches the GPU-style binary reduction the paper's kernels
/// use, keeping CPU and simulated-device reductions aligned.)
pub fn tree_reduce<T: Copy>(xs: &[T], identity: T, op: impl Fn(T, T) -> T) -> T {
    if xs.is_empty() {
        return identity;
    }
    let mut buf: Vec<T> = xs.to_vec();
    while buf.len() > 1 {
        let mut w = 0;
        let mut r = 0;
        while r < buf.len() {
            buf[w] = if r + 1 < buf.len() { op(buf[r], buf[r + 1]) } else { buf[r] };
            w += 1;
            r += 2;
        }
        buf.truncate(w);
    }
    buf[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_runs_every_item_once() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let mut hits = vec![0u64; 1000];
            {
                let slots = UnsafeSlice::new(&mut hits);
                pool.for_each(1000, |i| unsafe { slots.write(i, i as u64 + 1) });
            }
            for (i, v) in hits.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 3, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.map(257, |i| i * i);
            assert_eq!(out.len(), 257);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i);
            }
        }
    }

    #[test]
    fn map_handles_non_copy_values() {
        let pool = ThreadPool::new(4);
        let out = pool.map(100, |i| vec![i; 3]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.for_each(64, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 64);
    }

    #[test]
    fn empty_and_single_item_jobs() {
        let pool = ThreadPool::new(4);
        pool.for_each(0, |_| panic!("must not run"));
        let mut one = [0u64];
        {
            let s = UnsafeSlice::new(&mut one);
            pool.for_each(1, |i| unsafe { s.write(i, 7) });
        }
        assert_eq!(one[0], 7);
    }

    #[test]
    fn tree_reduce_is_fixed_order() {
        // Floats chosen so left-fold and pairwise-tree orders differ in
        // the last bits: the tree order must be the one we get, always.
        let xs: Vec<f64> = (0..1025).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let tree = tree_reduce(&xs, 0.0, |a, b| a + b);
        let fold: f64 = xs.iter().sum();
        // Deterministic: identical on repeat.
        assert_eq!(tree, tree_reduce(&xs, 0.0, |a, b| a + b));
        // And genuinely a different association than the serial fold
        // (documents that callers must not mix the two).
        assert!((tree - fold).abs() < 1e-12);
        assert_ne!(tree.to_bits(), fold.to_bits());
    }

    #[test]
    fn tree_reduce_edge_cases() {
        assert_eq!(tree_reduce(&[] as &[u64], 9, |a, b| a + b), 9);
        assert_eq!(tree_reduce(&[5u64], 0, |a, b| a + b), 5);
        assert_eq!(tree_reduce(&[1u64, 2, 3], 0, |a, b| a + b), 6);
    }

    #[test]
    fn map_tree_reduce_bit_identical_across_thread_counts() {
        let mut got = Vec::new();
        for threads in [1usize, 2, 5, 8] {
            let pool = ThreadPool::new(threads);
            let partials = pool.map(777, |i| ((i as f64) * 0.37).sin());
            let total = tree_reduce(&partials, 0.0, |a, b| a + b);
            got.push(total.to_bits());
        }
        assert!(got.windows(2).all(|w| w[0] == w[1]), "{got:?}");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_each(100, |i| {
                if i == 63 {
                    panic!("boom at 63");
                }
            });
        }));
        assert!(r.is_err(), "panic must cross the pool boundary");
        // The pool stays usable afterwards.
        pool.for_each(10, |_| {});
    }

    #[test]
    fn resolve_threads_clamps_and_defaults() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1 << 20), 1024);
    }

    #[test]
    fn shared_pools_are_cached_by_size() {
        let a = ThreadPool::shared(2);
        let b = ThreadPool::shared(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.n_threads(), 2);
    }

    #[test]
    fn concurrent_submissions_from_many_threads_are_isolated() {
        // The overlapped halo path has every simulated rank thread driving
        // the *same* shared pool concurrently (one `for_each` per RK stage
        // per rank). Submissions must serialize without deadlock, and each
        // caller must see exactly its own work completed — never a slot
        // written by another caller's closure.
        let pool = ThreadPool::shared(4);
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6u64)
                .map(|caller| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || {
                        let mut acc = vec![0u64; 257];
                        for round in 0..8u64 {
                            let slots = UnsafeSlice::new(&mut acc);
                            pool.for_each(257, |i| {
                                let out = unsafe { slots.slice_mut(i, 1) };
                                out[0] = caller * 1_000_000 + round * 1_000 + i as u64;
                            });
                        }
                        acc
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (caller, acc) in results.iter().enumerate() {
            for (i, &v) in acc.iter().enumerate() {
                let expect = caller as u64 * 1_000_000 + 7 * 1_000 + i as u64;
                assert_eq!(v, expect, "caller {caller} slot {i} was cross-written");
            }
        }
    }
}
