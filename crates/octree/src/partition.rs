//! Space-filling-curve partitioning.
//!
//! Dendro-GR assigns contiguous ranges of the Morton-sorted leaf array to
//! ranks (Fernando, Duplyakin & Sundar, HPDC 2017). Contiguity along the SFC
//! keeps partitions geometrically compact, which bounds the ghost (halo)
//! surface — the property the multi-GPU scaling experiments (Figs. 17, 18,
//! 20) depend on.

use crate::key::MortonKey;

/// A partition of a leaf array into `parts` contiguous SFC ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    /// `offsets[r]..offsets[r+1]` is rank r's range; `offsets.len() = parts+1`.
    pub offsets: Vec<usize>,
}

impl PartitionMap {
    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Leaf index range owned by rank `r`.
    pub fn range(&self, r: usize) -> std::ops::Range<usize> {
        self.offsets[r]..self.offsets[r + 1]
    }

    /// The rank owning leaf index `i`.
    pub fn owner_of_index(&self, i: usize) -> usize {
        debug_assert!(i < *self.offsets.last().unwrap());
        // offsets is sorted; find the last offset <= i.
        match self.offsets.binary_search(&i) {
            Ok(r) => {
                // `i` may coincide with the start of several empty ranges;
                // pick the first non-empty one starting at i.
                let mut r = r;
                while self.offsets[r + 1] == i {
                    r += 1;
                }
                r
            }
            Err(r) => r - 1,
        }
    }

    /// The rank owning a given key, by binary search in the leaf array the
    /// map was built over.
    pub fn owner_of_key(&self, leaves: &[MortonKey], k: &MortonKey) -> Option<usize> {
        leaves.binary_search(k).ok().map(|i| self.owner_of_index(i))
    }

    /// Number of leaves per part.
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.parts()).map(|r| self.range(r).len()).collect()
    }
}

/// Partition `weights.len()` leaves into `parts` contiguous ranges with
/// near-equal total weight (greedy prefix-sum splitting).
///
/// Weights are arbitrary non-negative work estimates — in the solver we use
/// grid points per octant (uniform) or measured per-octant kernel cost.
pub fn partition_weighted(weights: &[f64], parts: usize) -> PartitionMap {
    assert!(parts >= 1);
    assert!(weights.iter().all(|w| *w >= 0.0), "weights must be non-negative");
    let n = weights.len();
    // Prefix sums: prefix[i] = sum of weights[..i].
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    for &w in weights {
        prefix.push(prefix.last().unwrap() + w);
    }
    let total = *prefix.last().unwrap();
    let mut offsets = Vec::with_capacity(parts + 1);
    offsets.push(0usize);
    for r in 1..parts {
        let target = total * (r as f64) / (parts as f64);
        // Smallest i with prefix[i] >= target; then pick i or i-1, whichever
        // prefix is closer to the target (classic balanced SFC split).
        let mut i = prefix.partition_point(|&p| p < target);
        if i > 0 && i <= n {
            let lo = prefix[i - 1];
            let hi = prefix[i.min(n)];
            if (target - lo).abs() < (hi - target).abs() {
                i -= 1;
            }
        }
        let i = i.min(n).max(offsets[r - 1]);
        offsets.push(i);
    }
    offsets.push(n);
    PartitionMap { offsets }
}

/// Convenience: uniform weights.
pub fn partition_uniform(n: usize, parts: usize) -> PartitionMap {
    partition_weighted(&vec![1.0; n], parts)
}

/// Load imbalance of a partition under the given weights:
/// `max_part_weight / mean_part_weight` (1.0 = perfect).
pub fn imbalance(weights: &[f64], map: &PartitionMap) -> f64 {
    let parts = map.parts();
    let mut sums = vec![0.0f64; parts];
    for (r, s) in sums.iter_mut().enumerate() {
        *s = map.range(r).map(|i| weights[i]).sum();
    }
    let total: f64 = sums.iter().sum();
    if total == 0.0 {
        return 1.0;
    }
    let mean = total / parts as f64;
    sums.iter().cloned().fold(0.0f64, f64::max) / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partition_is_even() {
        let m = partition_uniform(100, 4);
        assert_eq!(m.parts(), 4);
        assert_eq!(m.sizes(), vec![25, 25, 25, 25]);
        assert!(imbalance(&vec![1.0; 100], &m) <= 1.01);
    }

    #[test]
    fn single_part_takes_all() {
        let m = partition_uniform(17, 1);
        assert_eq!(m.sizes(), vec![17]);
    }

    #[test]
    fn ranges_are_disjoint_and_cover() {
        let w: Vec<f64> = (0..37).map(|i| 1.0 + (i % 5) as f64).collect();
        let m = partition_weighted(&w, 5);
        assert_eq!(m.offsets[0], 0);
        assert_eq!(*m.offsets.last().unwrap(), 37);
        for r in 0..m.parts() - 1 {
            assert!(m.offsets[r] <= m.offsets[r + 1]);
        }
        let covered: usize = m.sizes().iter().sum();
        assert_eq!(covered, 37);
    }

    #[test]
    fn weighted_partition_balances_skewed_weights() {
        // Heavy leaves at the front; greedy split must not dump everything
        // in part 0.
        let mut w = vec![10.0; 10];
        w.extend(vec![1.0; 90]);
        let m = partition_weighted(&w, 4);
        let imb = imbalance(&w, &m);
        assert!(imb < 1.5, "imbalance {imb} too high; sizes {:?}", m.sizes());
    }

    #[test]
    fn owner_of_index_matches_ranges() {
        let m = partition_uniform(20, 3);
        for r in 0..3 {
            for i in m.range(r) {
                assert_eq!(m.owner_of_index(i), r);
            }
        }
    }

    #[test]
    fn more_parts_than_leaves_yields_empty_tail_parts() {
        let m = partition_uniform(2, 4);
        assert_eq!(m.parts(), 4);
        let covered: usize = m.sizes().iter().sum();
        assert_eq!(covered, 2);
    }
}
