//! Morton (Z-order) keys for octants on a `2^MAX_LEVEL` integer lattice.
//!
//! An octant is identified by the integer coordinates of its *anchor* (the
//! corner with minimal coordinates) and its refinement level. At level `l`
//! the octant's side length is `2^(MAX_LEVEL - l)` lattice units and its
//! anchor is aligned to that size. The root octant is level 0 and spans the
//! whole lattice.
//!
//! The total order used throughout the crate is the Morton order on anchors
//! with ties (identical anchors, i.e. ancestor/descendant pairs) broken so
//! the *coarser* octant sorts first. For a linear octree (leaves only,
//! pairwise non-overlapping) anchors are unique, so the tiebreak only matters
//! during construction.

/// Maximum refinement depth supported by the key encoding.
///
/// 20 levels × 3 dimensions = 60 interleaved bits, fitting a `u64` Morton
/// code. The paper's production runs use 13–15 levels (Fig. 1), so 20 leaves
/// comfortable headroom.
pub const MAX_LEVEL: u8 = 20;

/// Side of the lattice: coordinates live in `[0, LATTICE)`.
pub const LATTICE: u32 = 1 << MAX_LEVEL;

/// An octant key: anchor coordinates plus refinement level.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MortonKey {
    x: u32,
    y: u32,
    z: u32,
    level: u8,
}

impl std::fmt::Debug for MortonKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Oct(l={} @ {},{},{})", self.level, self.x, self.y, self.z)
    }
}

/// Interleave the low `MAX_LEVEL` bits of `v` with two zero bits between
/// consecutive bits (the classic "part by 2" bit trick widened to 64 bits).
#[inline]
fn part_by_2(v: u32) -> u64 {
    let mut x = v as u64 & 0x1f_ffff; // 21 bits is enough for MAX_LEVEL = 20
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part_by_2`].
#[inline]
fn compact_by_2(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

impl MortonKey {
    /// Construct a key, checking anchor alignment in debug builds.
    #[inline]
    pub fn new(x: u32, y: u32, z: u32, level: u8) -> Self {
        debug_assert!(level <= MAX_LEVEL, "level {level} > MAX_LEVEL");
        let side = 1u32 << (MAX_LEVEL - level);
        debug_assert!(
            x.is_multiple_of(side) && y.is_multiple_of(side) && z.is_multiple_of(side),
            "anchor ({x},{y},{z}) not aligned to level {level} (side {side})"
        );
        debug_assert!(x < LATTICE && y < LATTICE && z < LATTICE);
        Self { x, y, z, level }
    }

    /// The level-0 octant spanning the whole lattice.
    #[inline]
    pub fn root() -> Self {
        Self { x: 0, y: 0, z: 0, level: 0 }
    }

    #[inline]
    pub fn x(&self) -> u32 {
        self.x
    }
    #[inline]
    pub fn y(&self) -> u32 {
        self.y
    }
    #[inline]
    pub fn z(&self) -> u32 {
        self.z
    }
    #[inline]
    pub fn anchor(&self) -> [u32; 3] {
        [self.x, self.y, self.z]
    }
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Side length in lattice units.
    #[inline]
    pub fn side(&self) -> u32 {
        1 << (MAX_LEVEL - self.level)
    }

    /// Morton code of the anchor: 60 interleaved bits (x lowest).
    #[inline]
    pub fn morton(&self) -> u64 {
        part_by_2(self.x) | (part_by_2(self.y) << 1) | (part_by_2(self.z) << 2)
    }

    /// Reconstruct a key from a Morton code and level.
    #[inline]
    pub fn from_morton(code: u64, level: u8) -> Self {
        Self::new(compact_by_2(code), compact_by_2(code >> 1), compact_by_2(code >> 2), level)
    }

    /// Parent octant; `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<Self> {
        if self.level == 0 {
            return None;
        }
        let side = self.side() << 1;
        let mask = !(side - 1);
        Some(Self { x: self.x & mask, y: self.y & mask, z: self.z & mask, level: self.level - 1 })
    }

    /// Ancestor at the given (coarser or equal) level.
    pub fn ancestor_at(&self, level: u8) -> Self {
        assert!(level <= self.level);
        let side = 1u32 << (MAX_LEVEL - level);
        let mask = !(side - 1);
        Self { x: self.x & mask, y: self.y & mask, z: self.z & mask, level }
    }

    /// The eight children, in Morton order. Panics at `MAX_LEVEL`.
    pub fn children(&self) -> [Self; 8] {
        assert!(self.level < MAX_LEVEL, "cannot refine past MAX_LEVEL");
        let half = self.side() >> 1;
        let l = self.level + 1;
        let mut out = [*self; 8];
        for (i, o) in out.iter_mut().enumerate() {
            let i = i as u32;
            *o = Self {
                x: self.x + (i & 1) * half,
                y: self.y + ((i >> 1) & 1) * half,
                z: self.z + ((i >> 2) & 1) * half,
                level: l,
            };
        }
        out
    }

    /// Index of this octant within its parent (0..8), Morton order.
    #[inline]
    pub fn child_index(&self) -> usize {
        debug_assert!(self.level > 0);
        let side = self.side();
        let bx = (self.x / side) & 1;
        let by = (self.y / side) & 1;
        let bz = (self.z / side) & 1;
        (bx | (by << 1) | (bz << 2)) as usize
    }

    /// True if `self` strictly contains `other` (proper ancestor).
    pub fn is_ancestor_of(&self, other: &Self) -> bool {
        if self.level >= other.level {
            return false;
        }
        other.ancestor_at(self.level).anchor() == self.anchor()
    }

    /// True if self == other or self is an ancestor of other.
    pub fn contains(&self, other: &Self) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// True if the two octants overlap (one contains the other).
    pub fn overlaps(&self, other: &Self) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Deepest first descendant: the `MAX_LEVEL` octant at this anchor.
    pub fn deepest_first_descendant(&self) -> Self {
        Self { x: self.x, y: self.y, z: self.z, level: MAX_LEVEL }
    }

    /// Deepest last descendant: the `MAX_LEVEL` octant at the far corner.
    pub fn deepest_last_descendant(&self) -> Self {
        let off = self.side() - 1;
        Self { x: self.x + off, y: self.y + off, z: self.z + off, level: MAX_LEVEL }
    }

    /// Finest common ancestor of two keys.
    pub fn common_ancestor(&self, other: &Self) -> Self {
        let mut level = self.level.min(other.level);
        loop {
            let a = self.ancestor_at(level);
            if a.anchor() == other.ancestor_at(level).anchor() {
                return a;
            }
            level -= 1; // level 0 always matches, so this terminates
        }
    }

    /// Same-level neighbor offset by `d` octant-sides in each axis.
    /// Returns `None` if it would leave the lattice.
    pub fn neighbor(&self, d: [i8; 3]) -> Option<Self> {
        let side = self.side() as i64;
        let mut c = [0u32; 3];
        for (i, (&a, &di)) in [self.x, self.y, self.z].iter().zip(d.iter()).enumerate() {
            let v = a as i64 + di as i64 * side;
            if v < 0 || v >= LATTICE as i64 {
                return None;
            }
            c[i] = v as u32;
        }
        Some(Self { x: c[0], y: c[1], z: c[2], level: self.level })
    }

    /// All existing same-level neighbors sharing a face (up to 6).
    pub fn face_neighbors(&self) -> Vec<Self> {
        const DIRS: [[i8; 3]; 6] =
            [[-1, 0, 0], [1, 0, 0], [0, -1, 0], [0, 1, 0], [0, 0, -1], [0, 0, 1]];
        DIRS.iter().filter_map(|&d| self.neighbor(d)).collect()
    }

    /// All existing same-level neighbors sharing a face, edge or corner
    /// (up to 26).
    pub fn all_neighbors(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(26);
        for dz in -1i8..=1 {
            for dy in -1i8..=1 {
                for dx in -1i8..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if let Some(n) = self.neighbor([dx, dy, dz]) {
                        out.push(n);
                    }
                }
            }
        }
        out
    }

    /// True if the octant touches the lattice boundary in any direction.
    pub fn touches_domain_boundary(&self) -> bool {
        let side = self.side();
        self.x == 0
            || self.y == 0
            || self.z == 0
            || self.x + side == LATTICE
            || self.y + side == LATTICE
            || self.z + side == LATTICE
    }
}

impl PartialOrd for MortonKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MortonKey {
    /// Morton order on anchors, ancestors before descendants.
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.morton().cmp(&other.morton()).then(self.level.cmp(&other.level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_roundtrip() {
        let k = MortonKey::new(8, 16, 24, MAX_LEVEL - 3);
        assert_eq!(MortonKey::from_morton(k.morton(), k.level()), k);
    }

    #[test]
    fn part_compact_inverse_exhaustive_low_bits() {
        for v in 0u32..512 {
            assert_eq!(compact_by_2(part_by_2(v)), v);
        }
        assert_eq!(compact_by_2(part_by_2(LATTICE - 1)), LATTICE - 1);
    }

    #[test]
    fn root_properties() {
        let r = MortonKey::root();
        assert_eq!(r.side(), LATTICE);
        assert_eq!(r.parent(), None);
        assert!(r.touches_domain_boundary());
    }

    #[test]
    fn children_partition_parent() {
        let p = MortonKey::new(0, 0, 0, 2);
        let ch = p.children();
        // All children are inside the parent, disjoint, and cover its volume.
        let mut vol = 0u64;
        for c in &ch {
            assert_eq!(c.parent().unwrap(), p);
            assert!(p.is_ancestor_of(c));
            vol += (c.side() as u64).pow(3);
        }
        assert_eq!(vol, (p.side() as u64).pow(3));
        for i in 0..8 {
            assert_eq!(ch[i].child_index(), i);
            for j in 0..i {
                assert!(!ch[i].overlaps(&ch[j]));
            }
        }
    }

    #[test]
    fn children_sorted_in_morton_order() {
        let p = MortonKey::new(LATTICE / 2, 0, LATTICE / 2, 1);
        let ch = p.children();
        for w in ch.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ancestor_ordering() {
        // An ancestor shares its anchor's Morton prefix and sorts first.
        let p = MortonKey::new(0, 0, 0, 3);
        let c = p.children()[0];
        assert!(p < c);
        assert!(p.is_ancestor_of(&c));
        assert!(!c.is_ancestor_of(&p));
        assert!(!p.is_ancestor_of(&p));
    }

    #[test]
    fn neighbors_at_boundary_are_clipped() {
        let corner = MortonKey::new(0, 0, 0, 4);
        assert_eq!(corner.face_neighbors().len(), 3);
        assert_eq!(corner.all_neighbors().len(), 7);
        let side = corner.side();
        let interior = MortonKey::new(side * 4, side * 4, side * 4, 4);
        assert_eq!(interior.face_neighbors().len(), 6);
        assert_eq!(interior.all_neighbors().len(), 26);
    }

    #[test]
    fn common_ancestor_of_siblings_is_parent() {
        let p = MortonKey::new(0, 0, 0, 5);
        let ch = p.children();
        assert_eq!(ch[0].common_ancestor(&ch[7]), p);
        assert_eq!(ch[3].common_ancestor(&ch[3]), ch[3]);
    }

    #[test]
    fn deepest_descendants_bracket_subtree() {
        let k = MortonKey::new(LATTICE / 2, LATTICE / 2, 0, 2);
        let dfd = k.deepest_first_descendant();
        let dld = k.deepest_last_descendant();
        assert!(k.is_ancestor_of(&dfd));
        assert!(k.is_ancestor_of(&dld));
        assert!(dfd <= dld);
        // Any descendant's morton code lies within [dfd, dld].
        let child = k.children()[5].children()[2];
        assert!(dfd.morton() <= child.morton() && child.morton() <= dld.morton());
    }

    #[test]
    fn morton_order_matches_z_curve_on_level1() {
        // The 8 level-1 octants must sort exactly in child order.
        let ch = MortonKey::root().children();
        let mut sorted = ch;
        sorted.sort();
        assert_eq!(sorted, ch);
    }

    #[test]
    fn ancestor_at_is_idempotent() {
        let k = MortonKey::new(96, 160, 32, MAX_LEVEL - 5 + 5);
        for l in 0..=k.level() {
            let a = k.ancestor_at(l);
            assert_eq!(a.level(), l);
            assert!(a.contains(&k));
            assert_eq!(a.ancestor_at(l), a);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = MortonKey> {
        (0u8..=10, 0u32..1024, 0u32..1024, 0u32..1024).prop_map(|(l, x, y, z)| {
            let side = 1u32 << (MAX_LEVEL - l);
            let cap = 1u32 << l;
            MortonKey::new((x % cap) * side, (y % cap) * side, (z % cap) * side, l)
        })
    }

    proptest! {
        #[test]
        fn morton_roundtrip_random(k in arb_key()) {
            prop_assert_eq!(MortonKey::from_morton(k.morton(), k.level()), k);
        }

        #[test]
        fn parent_contains_child(k in arb_key()) {
            if let Some(p) = k.parent() {
                prop_assert!(p.is_ancestor_of(&k));
                prop_assert!(p < k || p.anchor() == k.anchor());
                prop_assert!(p.children().contains(&k));
            }
        }

        #[test]
        fn ordering_consistent_with_containment(a in arb_key(), b in arb_key()) {
            // If a contains b then a <= b in SFC order; if disjoint, the
            // order matches anchor Morton codes.
            if a.is_ancestor_of(&b) {
                prop_assert!(a < b);
            } else if !b.is_ancestor_of(&a) && a != b {
                prop_assert_eq!(a < b, (a.morton(), a.level()) < (b.morton(), b.level()));
            }
        }

        #[test]
        fn common_ancestor_contains_both(a in arb_key(), b in arb_key()) {
            let c = a.common_ancestor(&b);
            prop_assert!(c.contains(&a));
            prop_assert!(c.contains(&b));
            // Minimality: no child of c contains both.
            if c.level() < MAX_LEVEL {
                for ch in c.children() {
                    prop_assert!(!(ch.contains(&a) && ch.contains(&b)));
                }
            }
        }

        #[test]
        fn neighbors_are_adjacent_and_symmetric(k in arb_key()) {
            for n in k.all_neighbors() {
                prop_assert_eq!(n.level(), k.level());
                // Symmetric: k is among n's neighbors.
                prop_assert!(n.all_neighbors().contains(&k));
                // Adjacent: anchor offset exactly one side.
                let s = k.side() as i64;
                for (a, b) in k.anchor().iter().zip(n.anchor().iter()) {
                    let d = (*a as i64 - *b as i64).abs();
                    prop_assert!(d == 0 || d == s);
                }
            }
        }

        #[test]
        fn dfd_dld_bracket_all_descendants(k in arb_key()) {
            let dfd = k.deepest_first_descendant().morton();
            let dld = k.deepest_last_descendant().morton();
            prop_assert!(dfd <= dld);
            if k.level() < MAX_LEVEL {
                for c in k.children() {
                    prop_assert!(c.morton() >= dfd);
                    prop_assert!(c.deepest_last_descendant().morton() <= dld);
                }
            }
        }
    }
}
