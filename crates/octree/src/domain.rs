//! Mapping between octants and physical coordinates.
//!
//! Numerical-relativity domains are cubes like `[-400M, 400M]^3` (the paper
//! evolves binaries of total mass `M = 1` with extraction spheres at
//! 50–100 M, so the outer boundary is placed far away). [`Domain`] maps such
//! a cube onto the `[0, 2^MAX_LEVEL)^3` octree lattice.

use crate::key::{MortonKey, LATTICE, MAX_LEVEL};

/// A cubic physical domain mapped onto the octree lattice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Domain {
    /// Physical coordinate of lattice origin.
    pub min: [f64; 3],
    /// Physical coordinate of the far lattice corner.
    pub max: [f64; 3],
}

impl Domain {
    /// A cube `[-half, half]^3`.
    pub fn centered_cube(half: f64) -> Self {
        assert!(half > 0.0);
        Self { min: [-half; 3], max: [half; 3] }
    }

    /// The unit cube `[0,1]^3`.
    pub fn unit() -> Self {
        Self { min: [0.0; 3], max: [1.0; 3] }
    }

    /// Physical extent along each axis.
    pub fn extent(&self) -> [f64; 3] {
        [self.max[0] - self.min[0], self.max[1] - self.min[1], self.max[2] - self.min[2]]
    }

    /// Physical side length of an octant at the given level.
    pub fn octant_size(&self, level: u8) -> f64 {
        self.extent()[0] / (1u64 << level) as f64
    }

    /// Grid spacing inside an octant at `level` carrying `r` points per side
    /// (points are cell-interior, spacing `size/(r-1)` for vertex-centered
    /// layout with `r` points spanning the octant).
    pub fn grid_spacing(&self, level: u8, r: usize) -> f64 {
        self.octant_size(level) / (r as f64 - 1.0)
    }

    /// Physical coordinates of an octant's anchor (min corner).
    pub fn octant_origin(&self, k: &MortonKey) -> [f64; 3] {
        let s = self.extent();
        let inv = 1.0 / LATTICE as f64;
        [
            self.min[0] + k.x() as f64 * inv * s[0],
            self.min[1] + k.y() as f64 * inv * s[1],
            self.min[2] + k.z() as f64 * inv * s[2],
        ]
    }

    /// Physical coordinates of an octant's center.
    pub fn octant_center(&self, k: &MortonKey) -> [f64; 3] {
        let o = self.octant_origin(k);
        let h = self.octant_size(k.level()) * 0.5;
        [o[0] + h, o[1] + h, o[2] + h]
    }

    /// Map a physical point to lattice coordinates (clamped to the lattice).
    pub fn point_to_lattice(&self, p: [f64; 3]) -> [u32; 3] {
        let s = self.extent();
        let mut out = [0u32; 3];
        for i in 0..3 {
            let t = ((p[i] - self.min[i]) / s[i]).clamp(0.0, 1.0);
            out[i] = ((t * LATTICE as f64) as u64).min(LATTICE as u64 - 1) as u32;
        }
        out
    }

    /// The deepest octant containing a physical point.
    pub fn locate(&self, p: [f64; 3], level: u8) -> MortonKey {
        let l = self.point_to_lattice(p);
        MortonKey::new(l[0], l[1], l[2], MAX_LEVEL).ancestor_at(level)
    }

    /// Euclidean distance from a physical point to the octant's closest
    /// point (0 if inside).
    pub fn distance_to_octant(&self, k: &MortonKey, p: [f64; 3]) -> f64 {
        let o = self.octant_origin(k);
        let sz = self.octant_size(k.level());
        let mut d2 = 0.0;
        for i in 0..3 {
            let lo = o[i];
            let hi = o[i] + sz;
            let d = if p[i] < lo {
                lo - p[i]
            } else if p[i] > hi {
                p[i] - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_cube_geometry() {
        let d = Domain::centered_cube(400.0);
        assert_eq!(d.extent(), [800.0; 3]);
        assert_eq!(d.octant_size(0), 800.0);
        assert!((d.octant_size(3) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn octant_center_of_root_is_domain_center() {
        let d = Domain::centered_cube(10.0);
        let c = d.octant_center(&MortonKey::root());
        assert!(c.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn locate_roundtrip() {
        let d = Domain::centered_cube(1.0);
        let k = d.locate([0.3, -0.2, 0.9], 5);
        assert_eq!(k.level(), 5);
        let o = d.octant_origin(&k);
        let sz = d.octant_size(5);
        assert!(o[0] <= 0.3 && 0.3 < o[0] + sz);
        assert!(o[1] <= -0.2 && -0.2 < o[1] + sz);
        assert!(o[2] <= 0.9 && 0.9 < o[2] + sz);
    }

    #[test]
    fn locate_clamps_outside_points() {
        let d = Domain::unit();
        let k = d.locate([2.0, -1.0, 0.5], 3);
        assert_eq!(k.level(), 3);
        // Clamped into the domain.
        let o = d.octant_origin(&k);
        assert!(o[0] >= 0.0 && o[1] >= 0.0);
    }

    #[test]
    fn distance_to_octant_inside_is_zero() {
        let d = Domain::unit();
        let k = d.locate([0.5, 0.5, 0.5], 2);
        assert_eq!(d.distance_to_octant(&k, [0.5, 0.5, 0.5]), 0.0);
    }

    #[test]
    fn distance_to_octant_outside_positive() {
        let d = Domain::unit();
        let k = d.locate([0.1, 0.1, 0.1], 2);
        let dist = d.distance_to_octant(&k, [0.9, 0.9, 0.9]);
        assert!(dist > 0.0);
        // Should be at most the domain diagonal.
        assert!(dist < 3f64.sqrt());
    }

    #[test]
    fn grid_spacing_matches_paper_scale() {
        // Paper Fig. 1: coarsest level 3, finest 15, finest resolution
        // 4.06e-3 for a q=4 run. With r=7 points per octant on a
        // [-400,400]^3 domain: h = 800/2^15/6 = 4.07e-3. Check the formula
        // reproduces that scale.
        let d = Domain::centered_cube(400.0);
        let h = d.grid_spacing(15, 7);
        assert!((h - 800.0 / 32768.0 / 6.0).abs() < 1e-12);
        assert!((h - 4.069e-3).abs() < 1e-4);
    }
}
