//! Neighbor search in sorted linear octrees.
//!
//! Given a 2:1-balanced complete linear octree, a leaf's neighbor across any
//! of its 26 directions is exactly one of: a leaf at the *same* level, the
//! single *coarser* (parent-level) leaf covering that region, a set of
//! *finer* (child-level) leaves tiling it, or the domain boundary. This is
//! the case analysis that Algorithm 2 of the paper dispatches on during the
//! octant-to-patch scatter.

use crate::key::MortonKey;

/// One of the 26 face/edge/corner directions, as per-axis offsets in
/// `{-1, 0, +1}` (not all zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NeighborDirection(pub [i8; 3]);

impl NeighborDirection {
    /// Enumerate all 26 directions, faces first, then edges, then corners.
    pub fn all() -> Vec<Self> {
        let mut v: Vec<Self> = Vec::with_capacity(26);
        for dz in -1i8..=1 {
            for dy in -1i8..=1 {
                for dx in -1i8..=1 {
                    if dx != 0 || dy != 0 || dz != 0 {
                        v.push(Self([dx, dy, dz]));
                    }
                }
            }
        }
        v.sort_by_key(|d| d.arity());
        v
    }

    /// 1 for faces, 2 for edges, 3 for corners.
    pub fn arity(&self) -> u8 {
        self.0.iter().map(|d| d.unsigned_abs()).sum()
    }

    pub fn is_face(&self) -> bool {
        self.arity() == 1
    }

    /// The opposite direction.
    pub fn opposite(&self) -> Self {
        Self([-self.0[0], -self.0[1], -self.0[2]])
    }
}

/// Classification of what occupies the region adjacent to a leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NeighborLevel {
    /// A leaf at the same refinement level.
    Same(MortonKey),
    /// The parent-level leaf covering the neighbor region.
    Coarser(MortonKey),
    /// The child-level leaves tiling the neighbor region that touch the
    /// querying leaf (1, 2 or 4 of them depending on direction arity).
    Finer(Vec<MortonKey>),
    /// The neighbor region lies outside the computational domain.
    Boundary,
}

/// Sorted-leaf-array neighbor query structure.
///
/// Construction is `O(n)` (the input must already be sorted); each query is
/// a couple of binary searches.
pub struct NeighborQuery<'a> {
    leaves: &'a [MortonKey],
}

impl<'a> NeighborQuery<'a> {
    /// Wrap a sorted, non-overlapping leaf array.
    pub fn new(leaves: &'a [MortonKey]) -> Self {
        debug_assert!(leaves.windows(2).all(|w| w[0] < w[1]), "leaves must be sorted");
        Self { leaves }
    }

    /// True if `k` is a leaf of the tree.
    pub fn contains_leaf(&self, k: &MortonKey) -> bool {
        self.leaves.binary_search(k).is_ok()
    }

    /// The leaf covering the given octant region from above (an ancestor or
    /// the octant itself), if any.
    pub fn covering_leaf(&self, probe: &MortonKey) -> Option<MortonKey> {
        let dfd = probe.deepest_first_descendant();
        let idx = match self.leaves.binary_search(&dfd) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let cand = self.leaves[idx];
        cand.contains(probe).then_some(cand)
    }

    /// Classify the neighbor of leaf `k` in direction `dir`.
    ///
    /// Requires the tree to be complete and 2:1 balanced; panics (in debug)
    /// if the balance assumption is violated.
    pub fn neighbor(&self, k: &MortonKey, dir: NeighborDirection) -> NeighborLevel {
        let Some(n) = k.neighbor(dir.0) else {
            return NeighborLevel::Boundary;
        };
        if self.contains_leaf(&n) {
            return NeighborLevel::Same(n);
        }
        if let Some(cov) = self.covering_leaf(&n) {
            if cov != n {
                debug_assert_eq!(
                    cov.level() + 1,
                    k.level(),
                    "2:1 balance violated at {k:?} dir {dir:?}"
                );
                return NeighborLevel::Coarser(cov);
            }
        }
        // Otherwise the region n is tiled by finer leaves; with 2:1 balance
        // they are exactly the children of n facing k.
        let facing = facing_children(&n, dir);
        debug_assert!(
            facing.iter().all(|c| self.contains_leaf(c)),
            "expected finer leaves tiling neighbor of {k:?} dir {dir:?}"
        );
        NeighborLevel::Finer(facing)
    }

    /// All 26 neighbor classifications of a leaf, paired with direction.
    pub fn all_neighbors(&self, k: &MortonKey) -> Vec<(NeighborDirection, NeighborLevel)> {
        NeighborDirection::all().into_iter().map(|d| (d, self.neighbor(k, d))).collect()
    }

    /// All *leaves* (any level) that touch `k` across any face/edge/corner.
    pub fn touching_leaves(&self, k: &MortonKey) -> Vec<MortonKey> {
        let mut out = Vec::new();
        for (_, n) in self.all_neighbors(k) {
            match n {
                NeighborLevel::Same(x) | NeighborLevel::Coarser(x) => out.push(x),
                NeighborLevel::Finer(v) => out.extend(v),
                NeighborLevel::Boundary => {}
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Children of octant `n` that lie on the side of `n` facing *against*
/// direction `dir` (i.e. touching the leaf that queried across `dir`).
fn facing_children(n: &MortonKey, dir: NeighborDirection) -> Vec<MortonKey> {
    let ch = n.children();
    let mut out = Vec::with_capacity(4);
    for (i, c) in ch.iter().enumerate() {
        let bx = (i & 1) as i8;
        let by = ((i >> 1) & 1) as i8;
        let bz = ((i >> 2) & 1) as i8;
        // A child touches the querying leaf if, along each axis where
        // dir != 0, it sits on the near side: dir=+1 means the querying leaf
        // is at lower coordinates, so the child must have bit 0; dir=-1
        // means bit 1.
        let ok = |d: i8, b: i8| match d {
            1 => b == 0,
            -1 => b == 1,
            _ => true,
        };
        if ok(dir.0[0], bx) && ok(dir.0[1], by) && ok(dir.0[2], bz) {
            out.push(*c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{balance_octree, BalanceMode};
    use crate::build::complete_octree;

    fn adaptive_tree() -> Vec<MortonKey> {
        // Refine the origin child twice; balance.
        let c0 = MortonKey::root().children()[0];
        let fine = c0.children()[0].children();
        let t = complete_octree(fine.to_vec());
        balance_octree(&t, BalanceMode::Full)
    }

    #[test]
    fn direction_enumeration() {
        let dirs = NeighborDirection::all();
        assert_eq!(dirs.len(), 26);
        assert_eq!(dirs.iter().filter(|d| d.is_face()).count(), 6);
        assert_eq!(dirs.iter().filter(|d| d.arity() == 2).count(), 12);
        assert_eq!(dirs.iter().filter(|d| d.arity() == 3).count(), 8);
        // Faces come first.
        assert!(dirs[..6].iter().all(|d| d.is_face()));
    }

    #[test]
    fn opposite_is_involution() {
        for d in NeighborDirection::all() {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn uniform_tree_all_same_level() {
        let mut leaves = vec![];
        for c in MortonKey::root().children() {
            leaves.extend(c.children());
        }
        leaves.sort_unstable();
        let q = NeighborQuery::new(&leaves);
        for k in &leaves {
            for (_, n) in q.all_neighbors(k) {
                assert!(matches!(n, NeighborLevel::Same(_) | NeighborLevel::Boundary));
            }
        }
    }

    #[test]
    fn adaptive_tree_classifications_consistent() {
        let t = adaptive_tree();
        let q = NeighborQuery::new(&t);
        let mut saw_coarser = false;
        let mut saw_finer = false;
        for k in &t {
            for (d, n) in q.all_neighbors(k) {
                match n {
                    NeighborLevel::Same(x) => {
                        assert_eq!(x.level(), k.level());
                        // Symmetric: x sees k in the opposite direction.
                        assert_eq!(q.neighbor(&x, d.opposite()), NeighborLevel::Same(*k));
                    }
                    NeighborLevel::Coarser(x) => {
                        assert_eq!(x.level() + 1, k.level());
                        saw_coarser = true;
                    }
                    NeighborLevel::Finer(v) => {
                        assert!(!v.is_empty());
                        let expect = match d.arity() {
                            1 => 4,
                            2 => 2,
                            3 => 1,
                            _ => unreachable!(),
                        };
                        assert_eq!(v.len(), expect);
                        for x in &v {
                            assert_eq!(x.level(), k.level() + 1);
                        }
                        saw_finer = true;
                    }
                    NeighborLevel::Boundary => {}
                }
            }
        }
        assert!(saw_coarser && saw_finer, "adaptive tree must exhibit both transitions");
    }

    #[test]
    fn coarser_finer_are_mutual() {
        // Touching is symmetric: if k sees a coarser neighbor c, then c's
        // touching set contains k (k is a facing child of some region of
        // c), and vice versa. (The *direction* is not simply opposite —
        // a small octant can touch a big one across a face of the big
        // octant's corner region — so we assert set membership.)
        let t = adaptive_tree();
        let q = NeighborQuery::new(&t);
        for k in &t {
            for (_, n) in q.all_neighbors(k) {
                if let NeighborLevel::Coarser(c) = n {
                    assert!(
                        q.touching_leaves(&c).contains(k),
                        "coarse {c:?} must touch fine {k:?}"
                    );
                    assert!(q.touching_leaves(k).contains(&c));
                }
            }
        }
    }

    #[test]
    fn touching_leaves_nonempty_for_interior() {
        let t = adaptive_tree();
        let q = NeighborQuery::new(&t);
        for k in &t {
            let touching = q.touching_leaves(k);
            assert!(!touching.is_empty());
            assert!(!touching.contains(k));
        }
    }

    #[test]
    fn covering_leaf_finds_ancestors() {
        let t = adaptive_tree();
        let q = NeighborQuery::new(&t);
        for k in &t {
            assert_eq!(q.covering_leaf(k), Some(*k));
            if k.level() > 0 {
                // The parent region is covered only if the parent itself is
                // a leaf; otherwise covering_leaf must return None.
                let p = k.parent().unwrap();
                if let Some(c) = q.covering_leaf(&p) {
                    assert_eq!(c, p);
                }
            }
        }
    }
}
