//! Adaptive refinement drivers.
//!
//! Two refinement criteria from the paper's workflow:
//!
//! * [`PunctureRefiner`] — BBH-style grids: refinement level prescribed by
//!   distance to the punctures (black-hole positions), with per-puncture
//!   finest levels (unequal-mass binaries refine the smaller hole deeper —
//!   Table I / Fig. 3). Also supports a spherical-shell mode used to model
//!   the post-merger radially-outgoing-wave grids of Fig. 13.
//! * [`InterpErrorRefiner`] — the wavelet-style criterion: an octant is
//!   refined when trilinear interpolation of the field from its corners
//!   mispredicts the midpoint values by more than a tolerance ε. Driving ε
//!   down produces the convergence series of Fig. 19.

use crate::balance::{balance_octree, BalanceMode};
use crate::build::{complete_octree, linearize};
use crate::domain::Domain;
use crate::key::{MortonKey, MAX_LEVEL};

/// Per-octant refinement decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineDecision {
    /// Split into 8 children.
    Refine,
    /// Leave as is.
    Keep,
    /// Merge with siblings into the parent (honored only when all 8
    /// siblings agree).
    Coarsen,
}

/// A refinement criterion.
pub trait Refiner {
    /// Decide the fate of one leaf.
    fn decide(&self, domain: &Domain, leaf: &MortonKey) -> RefineDecision;

    /// Minimum level any leaf may have (background resolution).
    fn min_level(&self) -> u8 {
        2
    }

    /// Hard cap on refinement depth.
    fn max_level(&self) -> u8 {
        MAX_LEVEL
    }
}

/// Apply one refinement sweep: split/keep/coarsen each leaf per the refiner,
/// then re-complete and re-balance the tree.
pub fn refine_step(
    leaves: &[MortonKey],
    domain: &Domain,
    refiner: &dyn Refiner,
    mode: BalanceMode,
) -> Vec<MortonKey> {
    let mut next: Vec<MortonKey> = Vec::with_capacity(leaves.len());
    let mut i = 0;
    while i < leaves.len() {
        let k = leaves[i];
        let d = decide_clamped(refiner, domain, &k);
        match d {
            RefineDecision::Refine => {
                next.extend(k.children());
                i += 1;
            }
            RefineDecision::Keep => {
                next.push(k);
                i += 1;
            }
            RefineDecision::Coarsen => {
                // Coarsen only if the next 7 leaves are exactly the
                // remaining siblings and all vote to coarsen.
                let p = match k.parent() {
                    Some(p) => p,
                    None => {
                        next.push(k);
                        i += 1;
                        continue;
                    }
                };
                let sibs = p.children();
                let all_here = k == sibs[0]
                    && i + 8 <= leaves.len()
                    && leaves[i..i + 8] == sibs
                    && sibs
                        .iter()
                        .all(|s| decide_clamped(refiner, domain, s) == RefineDecision::Coarsen);
                if all_here {
                    next.push(p);
                    i += 8;
                } else {
                    next.push(k);
                    i += 1;
                }
            }
        }
    }
    linearize(&mut next);
    let t = complete_octree(next);
    balance_octree(&t, mode)
}

fn decide_clamped(refiner: &dyn Refiner, domain: &Domain, k: &MortonKey) -> RefineDecision {
    // The background resolution is mandatory: a criterion that sees no
    // detail at a very coarse level (e.g. an odd-symmetric field sampled
    // at octant centers) must still refine down to `min_level`.
    if k.level() < refiner.min_level() {
        return RefineDecision::Refine;
    }
    let d = refiner.decide(domain, k);
    match d {
        RefineDecision::Refine if k.level() >= refiner.max_level() => RefineDecision::Keep,
        RefineDecision::Coarsen if k.level() <= refiner.min_level() => RefineDecision::Keep,
        _ => d,
    }
}

/// Iterate [`refine_step`] until a fixed point (or `max_sweeps`).
///
/// Borrows the seed leaves — callers that keep their key vector (e.g. the
/// solver's regrid, which compares old vs new grids) no longer clone it.
pub fn refine_loop(
    initial: &[MortonKey],
    domain: &Domain,
    refiner: &dyn Refiner,
    mode: BalanceMode,
    max_sweeps: usize,
) -> Vec<MortonKey> {
    let mut t = balance_octree(&complete_octree(initial.to_vec()), mode);
    for _ in 0..max_sweeps {
        let next = refine_step(&t, domain, refiner, mode);
        if next == t {
            break;
        }
        t = next;
    }
    t
}

/// One puncture: a position with its own finest refinement level.
#[derive(Clone, Copy, Debug)]
pub struct Puncture {
    /// Physical position.
    pub pos: [f64; 3],
    /// Finest level requested at the puncture.
    pub finest_level: u8,
    /// Radius (in units of the mass) of the innermost refinement sphere.
    pub inner_radius: f64,
}

/// Distance-based refinement around a set of punctures.
///
/// The requested level at distance `d` from a puncture decays one level per
/// doubling of distance from `inner_radius`, mimicking the nested refinement
/// spheres of moving-puncture codes (Fig. 3). An optional wave-zone shell
/// keeps a band `[shell_r0, shell_r1]` at `shell_level` to resolve outgoing
/// waves (Fig. 13 grids).
#[derive(Clone, Debug)]
pub struct PunctureRefiner {
    pub punctures: Vec<Puncture>,
    pub base_level: u8,
    pub max_level_cap: u8,
    /// Optional (r0, r1, level) wave-extraction shell centered on origin.
    pub shell: Option<(f64, f64, u8)>,
}

impl PunctureRefiner {
    pub fn new(punctures: Vec<Puncture>, base_level: u8) -> Self {
        let cap = punctures.iter().map(|p| p.finest_level).max().unwrap_or(base_level);
        Self { punctures, base_level, max_level_cap: cap, shell: None }
    }

    /// Add an extraction shell `[r0, r1]` refined to `level`.
    pub fn with_shell(mut self, r0: f64, r1: f64, level: u8) -> Self {
        assert!(r0 < r1);
        self.shell = Some((r0, r1, level));
        self.max_level_cap = self.max_level_cap.max(level);
        self
    }

    /// Desired level for an octant (max over punctures and shell).
    pub fn desired_level(&self, domain: &Domain, k: &MortonKey) -> u8 {
        let mut want = self.base_level;
        for p in &self.punctures {
            let d = domain.distance_to_octant(k, p.pos);
            let lvl = if d <= p.inner_radius {
                p.finest_level
            } else {
                // One level shed per doubling of distance.
                let drop = (d / p.inner_radius).log2().floor() as i32;
                (p.finest_level as i32 - drop).max(self.base_level as i32) as u8
            };
            want = want.max(lvl);
        }
        if let Some((r0, r1, lvl)) = self.shell {
            let c = domain.octant_center(k);
            let r = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
            let half_diag = domain.octant_size(k.level()) * 0.5 * 3f64.sqrt();
            if r + half_diag >= r0 && r - half_diag <= r1 {
                want = want.max(lvl);
            }
        }
        want.min(self.max_level_cap)
    }
}

impl Refiner for PunctureRefiner {
    fn decide(&self, domain: &Domain, leaf: &MortonKey) -> RefineDecision {
        let want = self.desired_level(domain, leaf);
        match leaf.level().cmp(&want) {
            std::cmp::Ordering::Less => RefineDecision::Refine,
            std::cmp::Ordering::Equal => RefineDecision::Keep,
            std::cmp::Ordering::Greater => RefineDecision::Coarsen,
        }
    }

    fn min_level(&self) -> u8 {
        self.base_level
    }

    fn max_level(&self) -> u8 {
        self.max_level_cap
    }
}

/// Interpolation-error ("wavelet") refinement on a scalar field.
///
/// The error estimate compares the field at the octant center against
/// trilinear interpolation from the 8 corners — the lowest-order wavelet
/// detail coefficient. Refine where `|detail| > eps`, coarsen where
/// `|detail| < eps * coarsen_factor`.
pub struct InterpErrorRefiner<F: Fn([f64; 3]) -> f64> {
    pub field: F,
    pub eps: f64,
    pub coarsen_factor: f64,
    pub base_level: u8,
    pub cap_level: u8,
}

impl<F: Fn([f64; 3]) -> f64> InterpErrorRefiner<F> {
    pub fn new(field: F, eps: f64, base_level: u8, cap_level: u8) -> Self {
        assert!(eps > 0.0);
        Self { field, eps, coarsen_factor: 0.1, base_level, cap_level }
    }

    /// The wavelet detail estimate for an octant.
    pub fn detail(&self, domain: &Domain, k: &MortonKey) -> f64 {
        let o = domain.octant_origin(k);
        let s = domain.octant_size(k.level());
        let f = &self.field;
        let mut corners = [0.0f64; 8];
        for (i, c) in corners.iter_mut().enumerate() {
            let i = i as u32;
            *c = f([
                o[0] + (i & 1) as f64 * s,
                o[1] + ((i >> 1) & 1) as f64 * s,
                o[2] + ((i >> 2) & 1) as f64 * s,
            ]);
        }
        let interp = corners.iter().sum::<f64>() / 8.0;
        let center = f([o[0] + 0.5 * s, o[1] + 0.5 * s, o[2] + 0.5 * s]);
        // Also sample face midpoints for robustness against odd symmetry
        // (a field odd about the center has zero center detail).
        let mut max_d: f64 = (center - interp).abs();
        for axis in 0..3 {
            for side in [0.0f64, 1.0] {
                let mut p = [o[0] + 0.5 * s, o[1] + 0.5 * s, o[2] + 0.5 * s];
                p[axis] = o[axis] + side * s;
                let face_val = f(p);
                // Bilinear estimate from the 4 corners of that face.
                let mut est = 0.0;
                let mut cnt = 0.0;
                for (i, c) in corners.iter().enumerate() {
                    let b = [(i & 1) as f64, ((i >> 1) & 1) as f64, ((i >> 2) & 1) as f64];
                    if b[axis] == side {
                        est += c;
                        cnt += 1.0;
                    }
                }
                est /= cnt;
                max_d = max_d.max((face_val - est).abs());
            }
        }
        max_d
    }
}

impl<F: Fn([f64; 3]) -> f64> Refiner for InterpErrorRefiner<F> {
    fn decide(&self, domain: &Domain, leaf: &MortonKey) -> RefineDecision {
        let d = self.detail(domain, leaf);
        if d > self.eps {
            RefineDecision::Refine
        } else if d < self.eps * self.coarsen_factor {
            RefineDecision::Coarsen
        } else {
            RefineDecision::Keep
        }
    }

    fn min_level(&self) -> u8 {
        self.base_level
    }

    fn max_level(&self) -> u8 {
        self.cap_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::is_balanced;
    use crate::build::is_complete_linear;

    #[test]
    fn puncture_refiner_refines_near_puncture() {
        let domain = Domain::centered_cube(16.0);
        let p = Puncture { pos: [4.0, 0.0, 0.0], finest_level: 7, inner_radius: 0.5 };
        let r = PunctureRefiner::new(vec![p], 2);
        let t = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 20);
        assert!(is_complete_linear(&t));
        assert!(is_balanced(&t, BalanceMode::Full));
        // The leaf containing the puncture is at the finest level.
        let leaf = t
            .iter()
            .find(|k| domain.distance_to_octant(k, [4.0, 0.0, 0.0]) == 0.0)
            .expect("puncture covered");
        assert_eq!(leaf.level(), 7);
        // Far corners stay coarse.
        let far =
            t.iter().find(|k| domain.distance_to_octant(k, [-15.0, -15.0, -15.0]) == 0.0).unwrap();
        assert!(far.level() <= 4);
    }

    #[test]
    fn unequal_mass_binary_has_asymmetric_depths() {
        // q = 4: the small hole gets 2 extra levels (Table I scale).
        let domain = Domain::centered_cube(16.0);
        let big = Puncture { pos: [-1.6, 0.0, 0.0], finest_level: 6, inner_radius: 0.8 };
        let small = Puncture { pos: [6.4, 0.0, 0.0], finest_level: 8, inner_radius: 0.2 };
        let r = PunctureRefiner::new(vec![big, small], 2);
        let t = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 25);
        let l_big = t.iter().find(|k| domain.distance_to_octant(k, big.pos) == 0.0).unwrap();
        let l_small = t.iter().find(|k| domain.distance_to_octant(k, small.pos) == 0.0).unwrap();
        assert_eq!(l_big.level(), 6);
        assert_eq!(l_small.level(), 8);
    }

    #[test]
    fn shell_refiner_creates_band() {
        let domain = Domain::centered_cube(16.0);
        let r = PunctureRefiner::new(vec![], 2).with_shell(8.0, 12.0, 5);
        let t = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 12);
        // A leaf strictly inside the shell is refined to level 5; one well
        // inside the hollow is not. (Probe points chosen off octant
        // boundaries so exactly one leaf matches.)
        let on_shell =
            t.iter().find(|k| domain.distance_to_octant(k, [10.1, 0.1, 0.1]) == 0.0).unwrap();
        assert_eq!(on_shell.level(), 5);
        let inside =
            t.iter().find(|k| domain.distance_to_octant(k, [0.4, 0.3, 0.2]) == 0.0).unwrap();
        assert!(inside.level() < 5);
    }

    #[test]
    fn interp_refiner_tracks_gaussian() {
        let domain = Domain::centered_cube(2.0);
        let field = |p: [f64; 3]| {
            let r2 = p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
            (-r2 / 0.5).exp()
        };
        let r = InterpErrorRefiner::new(field, 3e-2, 2, 6);
        let t = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 8);
        assert!(is_complete_linear(&t));
        let center =
            t.iter().find(|k| domain.distance_to_octant(k, [0.05, 0.05, 0.05]) == 0.0).unwrap();
        let corner =
            t.iter().find(|k| domain.distance_to_octant(k, [-1.9, -1.9, -1.9]) == 0.0).unwrap();
        assert!(
            center.level() > corner.level(),
            "center {} should be finer than corner {}",
            center.level(),
            corner.level()
        );
    }

    #[test]
    fn smaller_eps_refines_more() {
        let domain = Domain::centered_cube(1.0);
        let field = |p: [f64; 3]| ((p[0] * 2.0).sin() * (p[1] * 2.0).cos()) * (-p[2] * p[2]).exp();
        let mut sizes = Vec::new();
        for eps in [1e-1, 3e-2, 1e-2] {
            let r = InterpErrorRefiner::new(field, eps, 2, 5);
            let t = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 8);
            sizes.push(t.len());
        }
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "sizes {sizes:?} not monotone");
        assert!(sizes[2] > sizes[0], "eps sweep must change the grid");
    }

    #[test]
    fn refine_loop_is_stable_fixed_point() {
        let domain = Domain::centered_cube(16.0);
        let p = Puncture { pos: [0.0, 0.0, 0.0], finest_level: 5, inner_radius: 1.0 };
        let r = PunctureRefiner::new(vec![p], 2);
        let t = refine_loop(&[MortonKey::root()], &domain, &r, BalanceMode::Full, 20);
        let t2 = refine_step(&t, &domain, &r, BalanceMode::Full);
        assert_eq!(t, t2, "converged grid must be a fixed point");
    }

    #[test]
    fn coarsen_merges_agreeing_siblings() {
        // Start from a uniformly fine tree with a refiner wanting level 2.
        let domain = Domain::centered_cube(1.0);
        let mut fine = Vec::new();
        for a in MortonKey::root().children() {
            for b in a.children() {
                fine.extend(b.children());
            }
        }
        fine.sort_unstable();
        struct Want2;
        impl Refiner for Want2 {
            fn decide(&self, _d: &Domain, leaf: &MortonKey) -> RefineDecision {
                if leaf.level() > 2 {
                    RefineDecision::Coarsen
                } else {
                    RefineDecision::Keep
                }
            }
            fn min_level(&self) -> u8 {
                2
            }
        }
        let t = refine_loop(&fine, &domain, &Want2, BalanceMode::Full, 10);
        assert!(t.iter().all(|k| k.level() == 2));
        assert_eq!(t.len(), 64);
    }
}
