//! Linear octree construction.
//!
//! Bottom-up construction in the style of Sundar, Sampath & Biros (SISC 2008),
//! which is what Dendro-GR uses: octrees are stored as sorted vectors of leaf
//! keys, and construction works with `linearize` (overlap removal),
//! `complete_region` (fill the SFC gap between two octants with the minimal
//! number of maximal octants) and `complete_octree` (extend a partial set of
//! leaves to a full domain cover).

use crate::key::MortonKey;

/// Sort keys and remove overlaps, keeping the **finest** octant of any
/// ancestor/descendant pair. The result is a valid linear octree fragment
/// (pairwise non-overlapping, sorted).
///
/// Keeping the finest octant is the convention used during refinement-driven
/// construction: a refined child supersedes the coarse cell it came from.
pub fn linearize(keys: &mut Vec<MortonKey>) {
    keys.sort_unstable();
    keys.dedup();
    // After sorting, an ancestor immediately precedes (not necessarily
    // adjacently) its descendants; a single backward sweep removing any key
    // that is an ancestor of its successor is not sufficient in general
    // (e.g. [A, B, C] where A contains both B and C but B does not contain
    // C). However in Morton order all descendants of A form a contiguous
    // range right after A, so it *is* sufficient to compare each key with
    // its immediate successor.
    let mut out: Vec<MortonKey> = Vec::with_capacity(keys.len());
    for &k in keys.iter() {
        while let Some(&last) = out.last() {
            if last.is_ancestor_of(&k) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(k);
    }
    *keys = out;
}

/// Remove overlaps keeping the **coarsest** octant of any overlapping pair.
pub fn linearize_keep_coarse(keys: &mut Vec<MortonKey>) {
    keys.sort_unstable();
    keys.dedup();
    let mut out: Vec<MortonKey> = Vec::with_capacity(keys.len());
    for &k in keys.iter() {
        if let Some(&last) = out.last() {
            if last.contains(&k) {
                continue;
            }
        }
        out.push(k);
    }
    *keys = out;
}

/// Compute the minimal list of maximal octants that cover exactly the SFC
/// gap strictly between octants `a` and `b` (neither included).
///
/// Preconditions: `a < b` and neither contains the other.
pub fn complete_region(a: MortonKey, b: MortonKey) -> Vec<MortonKey> {
    assert!(a < b, "complete_region requires a < b");
    assert!(!a.overlaps(&b), "complete_region requires disjoint endpoints");
    let fca = a.common_ancestor(&b);
    let mut out = Vec::new();
    // Walk the subtree of the common ancestor; emit maximal octants that lie
    // strictly between a and b in SFC order.
    let mut stack: Vec<MortonKey> = fca.children().to_vec();
    // Process in order (stack is LIFO, so push reversed).
    stack.reverse();
    while let Some(k) = stack.pop() {
        if k.contains(&a) || k.contains(&b) {
            // Straddles an endpoint: descend.
            let mut ch = k.children().to_vec();
            ch.reverse();
            stack.extend(ch);
            continue;
        }
        if a.contains(&k) || b.contains(&k) {
            // Inside an endpoint: already covered, not part of the gap.
            continue;
        }
        let after_a = k.morton() > a.morton();
        let before_b = k.deepest_last_descendant().morton() < b.morton();
        if after_a && before_b {
            // Entirely inside the gap: emit as a maximal cover octant.
            out.push(k);
        }
    }
    out.sort_unstable();
    out
}

/// Extend a set of non-overlapping octants into a complete linear octree
/// covering the whole domain: gaps before the first key, between consecutive
/// keys, and after the last key are filled with maximal octants.
pub fn complete_octree(mut keys: Vec<MortonKey>) -> Vec<MortonKey> {
    if keys.is_empty() {
        return vec![MortonKey::root()];
    }
    linearize(&mut keys);
    if keys.len() == 1 && keys[0] == MortonKey::root() {
        return keys;
    }
    let root = MortonKey::root();
    let first_dfd = root.deepest_first_descendant();
    let last_dld = root.deepest_last_descendant();

    let mut out = Vec::with_capacity(keys.len() * 2);
    // Fill from the domain start to the first key.
    let first = keys[0];
    if first.morton() != first_dfd.morton() {
        // The minimal first octant in the gap's "left endpoint" role: use the
        // deepest first descendant of root as a virtual predecessor.
        out.extend(complete_region_from_start(first));
    }
    for w in keys.windows(2) {
        out.push(w[0]);
        let (a, b) = (w[0], w[1]);
        // Consecutive leaves may already be SFC-adjacent.
        if !sfc_adjacent(a, b) {
            out.extend(complete_region(a, b));
        }
    }
    out.push(*keys.last().unwrap());
    let last = *keys.last().unwrap();
    if last.deepest_last_descendant().morton() != last_dld.morton() {
        out.extend(complete_region_to_end(last));
    }
    out.sort_unstable();
    out
}

/// True if `b` immediately follows `a` on the SFC with no gap.
fn sfc_adjacent(a: MortonKey, b: MortonKey) -> bool {
    a.deepest_last_descendant().morton() + 1 == b.morton()
}

/// Maximal octants covering the region before `k` (from the domain start).
fn complete_region_from_start(k: MortonKey) -> Vec<MortonKey> {
    // Ancestors of k: for each, emit children that precede k.
    let mut out = Vec::new();
    let mut cur = MortonKey::root();
    while cur.level() < k.level() {
        for c in cur.children() {
            if c.deepest_last_descendant().morton() < k.morton() && !c.contains(&k) {
                out.push(c);
            }
        }
        cur = k.ancestor_at(cur.level() + 1);
    }
    out.sort_unstable();
    out
}

/// Maximal octants covering the region after `k` (to the domain end).
fn complete_region_to_end(k: MortonKey) -> Vec<MortonKey> {
    let mut out = Vec::new();
    let mut cur = MortonKey::root();
    let k_end = k.deepest_last_descendant().morton();
    while cur.level() < k.level() {
        for c in cur.children() {
            if c.morton() > k_end {
                out.push(c);
            }
        }
        cur = k.ancestor_at(cur.level() + 1);
    }
    out.sort_unstable();
    out
}

/// Build a complete linear octree from a point cloud: refine until no leaf
/// holds more than `max_points` points or `max_level` is reached.
///
/// Points are given in lattice coordinates (see [`crate::domain::Domain`] for
/// physical-to-lattice mapping). This is the classic top-down construction;
/// Dendro's bottom-up variant produces the same tree for the same inputs.
pub fn octree_from_points(points: &[[u32; 3]], max_points: usize, max_level: u8) -> Vec<MortonKey> {
    assert!(max_points >= 1);
    let mut leaves = Vec::new();
    let mut stack: Vec<(MortonKey, Vec<usize>)> =
        vec![(MortonKey::root(), (0..points.len()).collect())];
    while let Some((k, idx)) = stack.pop() {
        if idx.len() <= max_points || k.level() >= max_level {
            leaves.push(k);
            continue;
        }
        let ch = k.children();
        let mut buckets: [Vec<usize>; 8] = Default::default();
        for i in idx {
            let p = points[i];
            let c = ch
                .iter()
                .position(|c| {
                    let s = c.side();
                    p[0] >= c.x()
                        && p[0] < c.x() + s
                        && p[1] >= c.y()
                        && p[1] < c.y() + s
                        && p[2] >= c.z()
                        && p[2] < c.z() + s
                })
                .expect("point must be in one child");
            buckets[c].push(i);
        }
        for (c, b) in ch.into_iter().zip(buckets) {
            stack.push((c, b));
        }
    }
    leaves.sort_unstable();
    leaves
}

/// Verify that `keys` form a complete linear octree: sorted, non-overlapping,
/// and covering the whole domain volume.
pub fn is_complete_linear(keys: &[MortonKey]) -> bool {
    if keys.is_empty() {
        return false;
    }
    let mut vol: u128 = 0;
    for w in keys.windows(2) {
        if w[0] >= w[1] || w[0].overlaps(&w[1]) {
            return false;
        }
        if !sfc_adjacent(w[0], w[1]) {
            return false;
        }
    }
    for k in keys {
        vol += (k.side() as u128).pow(3);
    }
    vol == (crate::key::LATTICE as u128).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{LATTICE, MAX_LEVEL};

    #[test]
    fn linearize_keeps_finest() {
        let p = MortonKey::new(0, 0, 0, 2);
        let c = p.children()[3];
        let mut v = vec![p, c];
        linearize(&mut v);
        assert_eq!(v, vec![c]);
    }

    #[test]
    fn linearize_keep_coarse_keeps_coarsest() {
        let p = MortonKey::new(0, 0, 0, 2);
        let c = p.children()[3];
        let g = c.children()[0];
        let mut v = vec![g, c, p];
        linearize_keep_coarse(&mut v);
        assert_eq!(v, vec![p]);
    }

    #[test]
    fn linearize_handles_nested_chains() {
        let a = MortonKey::root();
        let b = a.children()[0];
        let c = b.children()[0];
        let d = b.children()[7];
        let mut v = vec![a, b, c, d];
        linearize(&mut v);
        assert_eq!(v, vec![c, d]);
    }

    #[test]
    fn complete_region_fills_gap_between_corner_leaves() {
        let root = MortonKey::root();
        let first = root.children()[0].children()[0];
        let last = root.children()[7].children()[7];
        let gap = complete_region(first, last);
        // first + gap + last must tile the domain completely.
        let mut all = vec![first, last];
        all.extend(gap);
        all.sort_unstable();
        assert!(is_complete_linear(&all));
    }

    #[test]
    fn complete_region_between_siblings_is_empty() {
        let ch = MortonKey::root().children();
        assert!(complete_region(ch[0], ch[1]).is_empty());
    }

    #[test]
    fn complete_octree_from_empty_is_root() {
        assert_eq!(complete_octree(vec![]), vec![MortonKey::root()]);
    }

    #[test]
    fn complete_octree_from_single_deep_leaf() {
        let k = MortonKey::new(0, 0, 0, 3);
        let t = complete_octree(vec![k]);
        assert!(is_complete_linear(&t));
        assert!(t.contains(&k));
        // Minimal completion: 3 levels × 7 siblings + the leaf itself.
        assert_eq!(t.len(), 3 * 7 + 1);
    }

    #[test]
    fn complete_octree_from_interior_leaf() {
        let mid = LATTICE / 2;
        let k = MortonKey::new(mid, mid, mid, 4);
        let t = complete_octree(vec![k]);
        assert!(is_complete_linear(&t));
        assert!(t.contains(&k));
    }

    #[test]
    fn complete_octree_idempotent_on_complete_tree() {
        let t = complete_octree(vec![MortonKey::new(0, 0, 0, 2)]);
        let t2 = complete_octree(t.clone());
        assert_eq!(t, t2);
    }

    #[test]
    fn octree_from_points_uniform_points() {
        // Eight points, one per level-1 octant => either root (if max_points
        // >= 8) or the 8 children.
        let h = LATTICE / 2;
        let pts: Vec<[u32; 3]> = (0..8u32)
            .map(|i| [(i & 1) * h + 1, ((i >> 1) & 1) * h + 1, ((i >> 2) & 1) * h + 1])
            .collect();
        let t = octree_from_points(&pts, 8, MAX_LEVEL);
        assert_eq!(t, vec![MortonKey::root()]);
        let t = octree_from_points(&pts, 1, MAX_LEVEL);
        assert!(is_complete_linear(&t));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn octree_from_clustered_points_is_adaptive() {
        // Cluster near origin forces deep refinement there only.
        let pts: Vec<[u32; 3]> = (0..32u32).map(|i| [i % 4, (i / 4) % 4, i / 16]).collect();
        let t = octree_from_points(&pts, 2, 10);
        assert!(is_complete_linear(&t));
        let max_l = t.iter().map(|k| k.level()).max().unwrap();
        let min_l = t.iter().map(|k| k.level()).min().unwrap();
        assert!(max_l > min_l, "tree should be adaptive");
    }

    #[test]
    fn max_level_respected() {
        let pts = vec![[0, 0, 0], [0, 0, 0], [1, 0, 0]];
        let t = octree_from_points(&pts, 1, 3);
        assert!(t.iter().all(|k| k.level() <= 3));
        assert!(is_complete_linear(&t));
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use crate::key::{MortonKey, MAX_LEVEL};

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    #[test]
    fn complete_octree_fuzz_random_leaf_sets() {
        let mut seed = 42u64;
        for trial in 0..50 {
            let n = 1 + (lcg(&mut seed) % 20) as usize;
            let mut keys = Vec::new();
            for _ in 0..n {
                let level = 1 + (lcg(&mut seed) % 6) as u8;
                let side = 1u32 << (MAX_LEVEL - level);
                let x = (lcg(&mut seed) as u32 % (1 << level)) * side;
                let y = (lcg(&mut seed) as u32 % (1 << level)) * side;
                let z = (lcg(&mut seed) as u32 % (1 << level)) * side;
                keys.push(MortonKey::new(x, y, z, level));
            }
            let t = complete_octree(keys.clone());
            assert!(is_complete_linear(&t), "trial {trial} keys {keys:?}");
        }
    }
}

#[cfg(test)]
mod fuzz_region {
    use super::*;
    use crate::key::{MortonKey, MAX_LEVEL};

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn rand_key(seed: &mut u64) -> MortonKey {
        let level = 1 + (lcg(seed) % 5) as u8;
        let side = 1u32 << (MAX_LEVEL - level);
        MortonKey::new(
            (lcg(seed) as u32 % (1 << level)) * side,
            (lcg(seed) as u32 % (1 << level)) * side,
            (lcg(seed) as u32 % (1 << level)) * side,
            level,
        )
    }

    #[test]
    fn complete_region_fuzz_pairs() {
        let mut seed = 7u64;
        for trial in 0..500 {
            let (mut a, mut b) = (rand_key(&mut seed), rand_key(&mut seed));
            if a.overlaps(&b) || a == b {
                continue;
            }
            if b < a {
                std::mem::swap(&mut a, &mut b);
            }
            let gap = complete_region(a, b);
            // Check: sorted, disjoint, covers exactly [a_end+1, b_start-1].
            let mut all = vec![a];
            all.extend(gap.clone());
            all.push(b);
            let mut vol: u128 = 0;
            for w in all.windows(2) {
                assert!(
                    w[0] < w[1],
                    "trial {trial}: order {:?} {:?} gap={gap:?} a={a:?} b={b:?}",
                    w[0],
                    w[1]
                );
                assert!(
                    w[0].deepest_last_descendant().morton() + 1 == w[1].morton(),
                    "trial {trial}: not adjacent {:?} -> {:?}\n a={a:?} b={b:?}\n gap={gap:?}",
                    w[0],
                    w[1]
                );
            }
            for k in &all {
                vol += (k.side() as u128).pow(3);
            }
            let expect = (b.deepest_last_descendant().morton() - a.morton() + 1) as u128;
            assert_eq!(vol, expect, "trial {trial} a={a:?} b={b:?}");
        }
    }
}
