//! Linear octree substrate for the `gw-amr` solver.
//!
//! This crate reproduces the octree machinery of the Dendro-GR framework that
//! the paper builds on (section III-B of the paper):
//!
//! * **Morton / space-filling-curve keys** ([`key::MortonKey`]) — octants are
//!   identified by their anchor coordinates on a `2^MAX_LEVEL` integer lattice
//!   plus a refinement level; ordering is the Morton (Z-order) curve with
//!   ancestors sorting before descendants.
//! * **Linear octrees** ([`build`]) — only leaves are stored, sorted in SFC
//!   order. Construction is bottom-up from seed points or from a refinement
//!   callback, with `linearize` removing overlaps and `complete_region` /
//!   `complete_octree` filling gaps (Sundar, Sampath & Biros, SISC 2008).
//! * **2:1 balance** ([`balance`]) — no leaf may touch (face, edge or corner)
//!   a leaf more than one level away. This constraint is what keeps the
//!   octant-to-patch scatter kernel down to three cases (same / coarser /
//!   finer neighbor), as exploited in section IV-A of the paper.
//! * **Neighbor search** ([`neighbors`]) — face/edge/corner neighbor lookup
//!   in a sorted linear octree.
//! * **SFC partitioning** ([`partition`]) — contiguous-in-SFC weighted
//!   partitions across ranks/devices.
//! * **Adaptive refinement drivers** ([`refine`]) — puncture-distance-based
//!   refinement (BBH grids, Figs. 3, 12, 13) and an interpolation-error
//!   (wavelet-style) tolerance criterion (Fig. 19's ε sweep).
//! * **Physical domain mapping** ([`domain`]) — octants to coordinates.
//!
//! The octree is purely an index structure: field storage, ghost layers and
//! patch maps live in the `gw-mesh` crate.

pub mod balance;
pub mod build;
pub mod domain;
pub mod key;
pub mod neighbors;
pub mod partition;
pub mod refine;

pub use balance::{balance_octree, is_balanced, BalanceMode};
pub use build::{
    complete_octree, complete_region, is_complete_linear, linearize, octree_from_points,
};
pub use domain::Domain;
pub use key::{MortonKey, MAX_LEVEL};
pub use neighbors::{NeighborDirection, NeighborLevel, NeighborQuery};
pub use partition::{partition_weighted, PartitionMap};
pub use refine::{
    refine_loop, refine_step, InterpErrorRefiner, Puncture, PunctureRefiner, RefineDecision,
    Refiner,
};
